// Ablation for the hybrid method (§6): all-three-relationships cost of
// baseline vs cubeMasking vs hybrid (exact full/compl + clustered partial),
// with the partial recall the hybrid pays for its speed.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/cube_masking.h"
#include "core/hybrid.h"
#include "core/occurrence_matrix.h"

namespace {

using namespace rdfcube;

void BM_AllTypes(benchmark::State& state, int method) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  std::size_t partial_pairs = 0;
  for (auto _ : state) {
    core::CountingSink sink;
    Status st;
    switch (method) {
      case 0: {
        const core::OccurrenceMatrix om(observations);
        core::BaselineOptions options;
        st = core::RunBaseline(observations, om, options, &sink);
        break;
      }
      case 1: {
        core::CubeMaskingOptions options;
        st = core::RunCubeMasking(observations, options, &sink);
        break;
      }
      default: {
        core::HybridOptions options;
        st = core::RunHybrid(observations, options, &sink);
        break;
      }
    }
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    partial_pairs = sink.partial();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["partial_pairs"] = static_cast<double>(partial_pairs);
}

}  // namespace

int main(int argc, char** argv) {
  for (long n : {2000, 5000, 10000}) {
    benchmark::RegisterBenchmark("all_types/baseline",
                                 [](benchmark::State& s) { BM_AllTypes(s, 0); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("all_types/cubeMasking",
                                 [](benchmark::State& s) { BM_AllTypes(s, 1); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("all_types/hybrid",
                                 [](benchmark::State& s) { BM_AllTypes(s, 2); })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("ablation_hybrid", argc, argv);
}
