// Ablation (paper §6 future work, implemented here): cost of keeping the
// relationship sets current incrementally vs recomputing from scratch after
// a batch of insertions.
//
// Expected shape: integrating one observation costs ~O(candidates in
// comparable cubes), so maintaining the sets across a stream of k additions
// beats k full recomputations by a widening margin.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/incremental.h"
#include "core/occurrence_matrix.h"

namespace {

using namespace rdfcube;

// Incrementally integrate all n observations one at a time.
void BM_IncrementalStream(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  std::size_t total = 0;
  for (auto _ : state) {
    core::IncrementalEngine engine(&observations,
                                   core::RelationshipSelector::FullOnly());
    for (qb::ObsId i = 0; i < observations.size(); ++i) {
      const Status st = engine.OnObservationAdded(i);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    total = engine.num_full();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["full_pairs"] = static_cast<double>(total);
}

// The alternative: recompute the batch answer after every 10% of the stream
// (10 recomputations), the cheapest realistic refresh policy without
// incremental maintenance.
void BM_PeriodicRecompute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::OccurrenceMatrix om(observations);
  std::size_t total = 0;
  for (auto _ : state) {
    for (int refresh = 1; refresh <= 10; ++refresh) {
      std::vector<qb::ObsId> prefix(observations.size() * refresh / 10);
      for (std::size_t i = 0; i < prefix.size(); ++i) {
        prefix[i] = static_cast<qb::ObsId>(i);
      }
      core::CountingSink sink;
      core::BaselineOptions options;
      options.selector = core::RelationshipSelector::FullOnly();
      const Status st =
          core::RunBaselineSubset(observations, om, prefix, options, &sink);
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
      total = sink.full();
    }
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["full_pairs"] = static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  for (long n : {2000, 5000}) {
    benchmark::RegisterBenchmark("incremental/stream", BM_IncrementalStream)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("incremental/periodic_recompute",
                                 BM_PeriodicRecompute)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("ablation_incremental", argc, argv);
}
