// Ablation (paper §6 future work, implemented here): parallel cubeMasking —
// the comparable-cube-pair work list sharded over a thread pool — against
// the sequential run, across thread counts.
//
// Note: speedup is bounded by the host's core count; on a single-core
// container the interest is the overhead profile (the sharded run should not
// be significantly slower than sequential).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/cube_masking.h"
#include "core/parallel_masking.h"

namespace {

using namespace rdfcube;

void BM_Sequential(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::Lattice lattice(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    core::CubeMaskingOptions options;
    options.selector.partial_containment = false;  // full + compl
    const Status st = core::RunCubeMasking(observations, lattice, options, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["threads"] = 1;
}

void BM_Parallel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::Lattice lattice(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    core::ParallelMaskingOptions options;
    options.num_threads = threads;
    options.selector.partial_containment = false;
    const Status st = core::RunCubeMaskingParallel(observations, lattice, options, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = rdfcube::benchutil::LargeMode() ? 50000 : 10000;
  benchmark::RegisterBenchmark("masking/sequential", BM_Sequential)
      ->Arg(static_cast<long>(n))
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  for (long threads : {1, 2, 4}) {
    benchmark::RegisterBenchmark("masking/parallel", BM_Parallel)
        ->Args({static_cast<long>(n), threads})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  return rdfcube::benchutil::RunBenchMain("ablation_parallel", argc, argv);
}
