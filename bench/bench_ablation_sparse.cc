// Ablation for the paper's sparse-matrix remark (§3.1): the dense bit-vector
// occurrence matrix vs the CSR sparse matrix — memory footprint and baseline
// runtime on the statistical corpus (wide feature space, few set bits/row).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "core/sparse_matrix.h"

namespace {

using namespace rdfcube;

void BM_DenseBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::OccurrenceMatrix om(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    core::BaselineOptions options;
    options.selector.partial_containment = false;
    const Status st = core::RunBaseline(observations, om, options, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["matrix_bytes"] = static_cast<double>(
      om.num_rows() * ((om.num_columns() + 63) / 64) * 8);
}

void BM_SparseBaseline(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::SparseOccurrenceMatrix om(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    core::SparseBaselineOptions options;
    options.selector.partial_containment = false;
    const Status st =
        core::RunBaselineSparse(observations, om, options, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["matrix_bytes"] = static_cast<double>(om.ApproximateBytes());
}

}  // namespace

int main(int argc, char** argv) {
  for (long n : {2000, 5000, 10000}) {
    benchmark::RegisterBenchmark("baseline/dense", BM_DenseBaseline)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("baseline/sparse", BM_SparseBaseline)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("ablation_sparse", argc, argv);
}
