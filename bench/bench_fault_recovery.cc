// Recovery overhead (robustness work, paper §6 "distributed and parallel
// contexts"): what do fault tolerance mechanisms cost when nothing fails,
// and what does recovering from injected failures cost when things do?
//
//   distributed/failure_free  vs  distributed/injected_faults
//       the same partitioned run with worker crashes (p=0.1) and message
//       drops/duplications (p=0.05 each) injected; the output is identical
//       (tested property), the counters show the retry/resend work.
//   masking/plain  vs  masking/checkpointed
//       the fused cubeMasking pass with and without periodic snapshot
//       writes (every 8 outer cubes, atomic temp-file + rename).
//
// Expected shape: failure-free fault instrumentation is noise (one pointer
// load per injection point); injected-fault overhead tracks the number of
// retried task attempts; checkpoint overhead is dominated by serializing the
// accumulated relationship sets, so it grows with result density.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/checkpoint.h"
#include "core/cube_masking.h"
#include "core/distributed.h"
#include "util/fault.h"

namespace {

using namespace rdfcube;

constexpr uint64_t kSeed = 29;

void BM_DistributedFailureFree(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  core::DistributedStats stats;
  for (auto _ : state) {
    core::CountingSink sink;
    stats = core::DistributedStats();
    core::DistributedOptions options;
    const Status st = core::RunDistributedMasking(observations, options, &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["cross_pairs"] = static_cast<double>(stats.cross_pairs);
}

void BM_DistributedInjectedFaults(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  core::DistributedStats stats;
  for (auto _ : state) {
    FaultInjector injector(kSeed);
    injector.ArmProbability(core::kFaultWorkerCrash, 0.1);
    injector.ArmProbability(core::kFaultMessageDrop, 0.05);
    injector.ArmProbability(core::kFaultMessageDuplicate, 0.05);
    ScopedFaultInjection scope(&injector);
    core::CountingSink sink;
    stats = core::DistributedStats();
    core::DistributedOptions options;
    const Status st = core::RunDistributedMasking(observations, options, &sink, &stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["worker_crashes"] = static_cast<double>(stats.worker_crashes);
  state.counters["task_retries"] = static_cast<double>(stats.task_retries);
  state.counters["dropped_messages"] =
      static_cast<double>(stats.dropped_messages);
  state.counters["backoff_ms"] = stats.simulated_backoff_ms;
}

void BM_MaskingPlain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  for (auto _ : state) {
    core::CountingSink sink;
    core::CubeMaskingOptions options;
    const Status st = core::RunCubeMasking(observations, options, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
}

void BM_MaskingCheckpointed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const std::string path =
      "/tmp/rdfcube_bench_fault_recovery_" + std::to_string(n) + ".ckpt";
  std::remove(path.c_str());
  core::CheckpointRunStats run_stats;
  for (auto _ : state) {
    core::CountingSink sink;
    core::CubeMaskingOptions options;
    core::CheckpointOptions ckpt;
    ckpt.path = path;
    ckpt.interval_cubes = 8;
    run_stats = core::CheckpointRunStats();
    const Status st = core::RunCubeMaskingCheckpointed(observations, options, ckpt,
                                                       &sink, nullptr,
                                                       &run_stats);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["checkpoints"] =
      static_cast<double>(run_stats.checkpoints_written);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<long> sizes =
      benchutil::LargeMode() ? std::vector<long>{2000, 5000, 10000, 20000}
                             : std::vector<long>{2000, 5000};
  for (long n : sizes) {
    benchmark::RegisterBenchmark("distributed/failure_free",
                                 BM_DistributedFailureFree)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("distributed/injected_faults",
                                 BM_DistributedInjectedFaults)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("masking/plain", BM_MaskingPlain)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("masking/checkpointed", BM_MaskingCheckpointed)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("fault_recovery", argc, argv);
}
