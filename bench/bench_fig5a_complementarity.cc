// Fig. 5(a): execution time for *complementarity* across the five methods
// as input size grows (real-world corpus prefixes).
//
// Expected shape (paper §4.1): cubeMasking fastest (complementarity only
// requires within-cube comparisons), baseline quadratic, clustering between,
// SPARQL/rules adequate only at small sizes then t/o / o/m.

#include <benchmark/benchmark.h>

#include "bench/fig5_method_sweep.h"

int main(int argc, char** argv) {
  rdfcube::benchutil::RegisterMethodSweep(
      rdfcube::benchutil::RelationshipKind::kComplementarity);
  return rdfcube::benchutil::RunBenchMain("fig5a_complementarity", argc, argv);
}
