// Fig. 5(b): execution time for *full containment* across the five methods
// as input size grows (real-world corpus prefixes).
//
// Expected shape (paper §4.1): roughly one order of magnitude between
// cubeMasking and the baseline; SPARQL/rules infeasible beyond small inputs.

#include <benchmark/benchmark.h>

#include "bench/fig5_method_sweep.h"

int main(int argc, char** argv) {
  rdfcube::benchutil::RegisterMethodSweep(
      rdfcube::benchutil::RelationshipKind::kFull);
  return rdfcube::benchutil::RunBenchMain("fig5b_full_containment", argc, argv);
}
