// Fig. 5(c): execution time for *partial containment* across the five
// methods (note: as in the paper, the SPARQL approach only *detects* partial
// containment, it does not quantify the degree; the native methods quantify).
//
// Expected shape (paper §4.1): partial containment is the most expensive
// native computation (no whole-row shortcut; every dimension is evaluated),
// and the lattice prunes less (any-dimension comparability).

#include <benchmark/benchmark.h>

#include "bench/fig5_method_sweep.h"

int main(int argc, char** argv) {
  rdfcube::benchutil::RegisterMethodSweep(
      rdfcube::benchutil::RelationshipKind::kPartial);
  return rdfcube::benchutil::RunBenchMain("fig5c_partial_containment", argc,
                                          argv);
}
