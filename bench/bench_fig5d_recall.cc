// Fig. 5(d): recall of the three clustering configurations (canopy,
// hierarchical, x-means — each fitted on a 10% sample) against the baseline
// ground truth, as input size grows.
//
// Expected shape (paper §4.1): "x-means, even when applied to a random 10%
// sample of the data, outperforms the other two in the resulting recall".
//
// Partial-containment recall is estimated over a deterministic 1-in-16 hash
// sample of pairs (see PartialSamplingSink) because the exact partial set
// grows quadratically.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/clustering_method.h"
#include "core/occurrence_matrix.h"
#include "obs/trace.h"

namespace {

using namespace rdfcube;
using benchutil::PartialSamplingSink;
using benchutil::RealWorldPrefix;

constexpr uint32_t kPartialStride = 16;

std::vector<std::size_t> RecallSizes() {
  if (benchutil::SmokeMode()) return {500, 1000};
  if (benchutil::LargeMode()) return {2000, 5000, 10000, 20000, 50000};
  return {2000, 5000, 10000};
}

// Ground truth per input size, computed once and shared by all algorithms.
const PartialSamplingSink& GroundTruth(std::size_t n,
                                       const core::OccurrenceMatrix& om,
                                       const qb::ObservationSet& obs) {
  static std::map<std::size_t, std::unique_ptr<PartialSamplingSink>>* cache =
      new std::map<std::size_t, std::unique_ptr<PartialSamplingSink>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto sink = std::make_unique<PartialSamplingSink>(kPartialStride);
    core::BaselineOptions options;
    const Status st = core::RunBaseline(obs, om, options, sink.get());
    if (!st.ok()) std::abort();
    it = cache->emplace(n, std::move(sink)).first;
  }
  return *it->second;
}

// Occurrence matrix per size, shared across algorithms.
const core::OccurrenceMatrix& Matrix(std::size_t n,
                                     const qb::ObservationSet& obs) {
  static std::map<std::size_t, std::unique_ptr<core::OccurrenceMatrix>>*
      cache = new std::map<std::size_t,
                           std::unique_ptr<core::OccurrenceMatrix>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<core::OccurrenceMatrix>(obs))
             .first;
  }
  return *it->second;
}

void BM_ClusteringRecall(benchmark::State& state,
                         core::ClusterAlgorithm algorithm) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = RealWorldPrefix(n);
  const qb::ObservationSet& observations = *corpus.observations;
  const core::OccurrenceMatrix& om = Matrix(n, observations);
  // Not part of the measured time: ground truth is the reference, only the
  // clustering method's own runtime is the Fig. 5(a)-(c) story.
  PartialSamplingSink truth = GroundTruth(n, om, observations);

  const char* span_name =
      algorithm == core::ClusterAlgorithm::kCanopy ? "bench/recall_canopy"
      : algorithm == core::ClusterAlgorithm::kHierarchical
          ? "bench/recall_hierarchical"
          : "bench/recall_x_means";
  rdfcube::obs::TraceSpan span(span_name);
  benchutil::Recall recall;
  for (auto _ : state) {
    PartialSamplingSink lossy(kPartialStride);
    core::ClusteringMethodOptions options;
    options.algorithm = algorithm;
    options.sample_fraction = 0.10;  // the paper's sampling configuration
    const Status st =
        core::RunClusteringMethod(observations, om, options, &lossy, nullptr);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    state.PauseTiming();
    recall = benchutil::ComputeRecall(&truth, &lossy);
    state.ResumeTiming();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["recall_full"] = recall.full;
  state.counters["recall_partial"] = recall.partial;
  state.counters["recall_compl"] = recall.complementary;
}

}  // namespace

int main(int argc, char** argv) {
  using core::ClusterAlgorithm;
  for (std::size_t n : RecallSizes()) {
    for (auto [name, algorithm] :
         {std::pair<const char*, ClusterAlgorithm>{
              "recall/canopy", ClusterAlgorithm::kCanopy},
          {"recall/hierarchical", ClusterAlgorithm::kHierarchical},
          {"recall/x-means", ClusterAlgorithm::kXMeans}}) {
      benchmark::RegisterBenchmark(
          name,
          [algorithm](benchmark::State& s) {
            BM_ClusteringRecall(s, algorithm);
          })
          ->Arg(static_cast<long>(n))
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  return rdfcube::benchutil::RunBenchMain("fig5d_recall", argc, argv);
}
