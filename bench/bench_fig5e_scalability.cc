// Fig. 5(e): log-log execution time vs input size on the synthetic corpus
// (§4.2), for baseline / clustering / cubeMasking.
//
// As in the paper, the baseline is *measured* only up to a cutoff and
// *projected* quadratically beyond it (the paper projected its 2.5M point:
// "it took more than 7 days to complete"). The projection rows are printed
// after the measured benchmarks with the `projected` counter set.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "obs/trace.h"

namespace {

using namespace rdfcube;

std::vector<std::size_t> Sizes() {
  if (benchutil::SmokeMode()) return {1000, 2000};
  if (benchutil::LargeMode()) {
    return {10000, 50000, 250000, 1000000, 2500000};
  }
  return {5000, 10000, 25000, 50000};
}

// Baseline is measured only up to this size; larger inputs are projected.
std::size_t BaselineCutoff() {
  if (benchutil::SmokeMode()) return 1000;
  return benchutil::LargeMode() ? 50000 : 10000;
}

double g_baseline_secs_at_cutoff = 0.0;

void BM_Scalability(benchmark::State& state, core::Method method) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::Synthetic(n);
  const char* span_name = method == core::Method::kBaseline ? "bench/baseline"
                          : method == core::Method::kClustering
                              ? "bench/clustering"
                              : "bench/cubeMasking";
  obs::TraceSpan span(span_name);
  std::size_t pairs = 0;
  for (auto _ : state) {
    core::CountingSink sink;
    core::EngineOptions options;
    options.method = method;
    // Full containment only: the headline scalability figure.
    options.selector = core::RelationshipSelector::FullOnly();
    const Status st =
        core::ComputeRelationships(*corpus.observations, options, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    pairs = sink.full();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["projected"] = 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (std::size_t n : Sizes()) {
    if (n <= BaselineCutoff()) {
      benchmark::RegisterBenchmark("scalability/baseline",
                                   [](benchmark::State& s) {
                                     BM_Scalability(s, core::Method::kBaseline);
                                   })
          ->Arg(static_cast<long>(n))
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
    benchmark::RegisterBenchmark("scalability/clustering",
                                 [](benchmark::State& s) {
                                   BM_Scalability(s, core::Method::kClustering);
                                 })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "scalability/cubeMasking",
        [](benchmark::State& s) {
          BM_Scalability(s, core::Method::kCubeMasking);
        })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  // Quadratic projection of the baseline beyond the cutoff (the paper did
  // exactly this for its 2.5M synthetic point). Re-measure the cutoff cheaply
  // here rather than plumbing state out of the registered benchmarks; the
  // epilogue runs inside the harness's root span, so the projection cost is
  // visible as its own phase in BENCH_fig5e_scalability.json.
  const auto project_baseline = [] {
    const std::size_t cutoff = BaselineCutoff();
    const qb::Corpus& corpus = benchutil::Synthetic(cutoff);
    obs::TraceSpan span("bench/baseline_projection");
    core::CountingSink sink;
    core::EngineOptions options;
    options.method = core::Method::kBaseline;
    options.selector = core::RelationshipSelector::FullOnly();
    const Status st =
        core::ComputeRelationships(*corpus.observations, options, &sink);
    if (!st.ok()) {
      std::fprintf(stderr, "baseline projection run failed: %s\n",
                   st.ToString().c_str());
      return;
    }
    g_baseline_secs_at_cutoff = span.ElapsedSeconds();
    std::printf("\n--- baseline projection (quadratic, measured at %zu = %.2fs) ---\n",
                cutoff, g_baseline_secs_at_cutoff);
    for (std::size_t n : Sizes()) {
      if (n <= cutoff) continue;
      const double factor = static_cast<double>(n) / static_cast<double>(cutoff);
      std::printf("scalability/baseline/%zu (PROJECTED)   %.1f ms\n", n,
                  g_baseline_secs_at_cutoff * factor * factor * 1e3);
    }
  };
  return rdfcube::benchutil::RunBenchMain("fig5e_scalability", argc, argv,
                                          project_baseline);
}
