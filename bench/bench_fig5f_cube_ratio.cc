// Fig. 5(f): ratio of discovered cubes (populated lattice nodes) to
// observation count as the input grows, on both the real-world prefixes and
// the synthetic corpus.
//
// Expected shape (paper §4.1): "the number of cubes in a collection of
// datasets will increase in a lower rate than the number of input
// observations" — the ratio falls monotonically, which is what makes
// cubeMasking scale.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/lattice.h"
#include "obs/trace.h"

namespace {

using namespace rdfcube;

void BM_CubeRatioRealWorld(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::RealWorldPrefix(n);
  obs::TraceSpan span("bench/cube_ratio_real_world");
  std::size_t cubes = 0;
  for (auto _ : state) {
    const core::Lattice lattice(*corpus.observations);
    cubes = lattice.num_cubes();
    benchmark::DoNotOptimize(cubes);
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["cubes"] = static_cast<double>(cubes);
  state.counters["cubes_per_obs"] =
      static_cast<double>(cubes) / static_cast<double>(n);
}

void BM_CubeRatioSynthetic(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = benchutil::Synthetic(n);
  obs::TraceSpan span("bench/cube_ratio_synthetic");
  std::size_t cubes = 0;
  for (auto _ : state) {
    const core::Lattice lattice(*corpus.observations);
    cubes = lattice.num_cubes();
    benchmark::DoNotOptimize(cubes);
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["cubes"] = static_cast<double>(cubes);
  state.counters["cubes_per_obs"] =
      static_cast<double>(cubes) / static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  for (std::size_t n : rdfcube::benchutil::NativeSweepSizes()) {
    benchmark::RegisterBenchmark("cube_ratio/real_world", BM_CubeRatioRealWorld)
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("cube_ratio/synthetic", BM_CubeRatioSynthetic)
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("fig5f_cube_ratio", argc, argv);
}
