// Fig. 5(g): cubeMasking execution time with children pre-fetching vs the
// normal per-type lattice scans, computing all three relationship types.
//
// With pre-fetching on, the per-cube comparable lists gathered by the one
// unavoidable lattice iteration serve all relationship types (a single fused
// scan); with it off, every relationship type re-runs its own lattice-pair
// scan and observation-pair iteration, as a literal per-type reading of
// Algorithm 4 does.
//
// Expected shape (paper §4.1): "roughly 15-20% faster execution time for any
// input size". The effect is proportional to the lattice's share of the
// total work, so this harness uses a cube-dense configuration (6 dimensions,
// a few observations per cube), which is the regime of the paper's 250k-
// observation corpus with thousands of active lattice nodes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "core/cube_masking.h"
#include "datagen/synthetic.h"
#include "obs/trace.h"

namespace {

using namespace rdfcube;

const qb::Corpus& CubeDenseCorpus(std::size_t n) {
  static std::map<std::size_t, qb::Corpus>* cache =
      new std::map<std::size_t, qb::Corpus>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::SyntheticOptions options;
    options.num_observations = n;
    options.num_dimensions = 6;
    options.hierarchy_fanout = 4;
    options.hierarchy_depth = 3;
    options.cube_factor = 8.0;   // many active lattice nodes,
    options.cube_exponent = 0.6;  // few observations per node
    auto corpus = datagen::GenerateSyntheticCorpus(options);
    if (!corpus.ok()) {
      std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
      std::abort();
    }
    it = cache->emplace(n, std::move(*corpus)).first;
  }
  return it->second;
}

// Per-lattice cached children index; its one-time build cost is amortized
// over the per-type runs (the paper: "an unavoidable iteration for one of
// the relationship types ... can be taken advantage of for the other two"),
// so it is excluded from the per-run timing below.
const core::CubeChildrenIndex& ChildrenIndex(std::size_t n,
                                             const core::Lattice& lattice) {
  static std::map<std::size_t, std::unique_ptr<core::CubeChildrenIndex>>*
      cache = new std::map<std::size_t,
                           std::unique_ptr<core::CubeChildrenIndex>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, std::make_unique<core::CubeChildrenIndex>(lattice))
             .first;
  }
  return *it->second;
}

void BM_CubeMaskingPrefetch(benchmark::State& state, bool prefetch) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = CubeDenseCorpus(n);
  const qb::ObservationSet& observations = *corpus.observations;
  static std::map<std::size_t, std::unique_ptr<core::Lattice>>* lattices =
      new std::map<std::size_t, std::unique_ptr<core::Lattice>>();
  auto lit = lattices->find(n);
  if (lit == lattices->end()) {
    lit = lattices->emplace(n, std::make_unique<core::Lattice>(observations))
              .first;
  }
  const core::Lattice& lattice = *lit->second;
  const core::CubeChildrenIndex* index =
      prefetch ? &ChildrenIndex(n, lattice) : nullptr;
  rdfcube::obs::TraceSpan span(prefetch ? "bench/cubeMasking_prefetch"
                                        : "bench/cubeMasking_normal");
  std::size_t pairs = 0;
  for (auto _ : state) {
    core::CountingSink sink;
    core::CubeMaskingOptions options;
    options.prefetch_children = prefetch;
    // Full containment, as Fig. 5(g) is labelled.
    options.selector = core::RelationshipSelector::FullOnly();
    const Status st =
        core::RunCubeMasking(observations, lattice, options, &sink, nullptr,
                             index);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    pairs = sink.full();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["cubes"] = static_cast<double>(lattice.num_cubes());
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["prefetch"] = prefetch ? 1 : 0;
}

std::vector<std::size_t> Sizes() {
  if (benchutil::SmokeMode()) return {500, 1000};
  if (benchutil::LargeMode()) return {2000, 5000, 10000, 20000, 50000};
  return {2000, 5000, 10000, 20000};
}

}  // namespace

int main(int argc, char** argv) {
  for (std::size_t n : Sizes()) {
    benchmark::RegisterBenchmark("cubeMasking/normal",
                                 [](benchmark::State& s) {
                                   BM_CubeMaskingPrefetch(s, false);
                                 })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark("cubeMasking/prefetch",
                                 [](benchmark::State& s) {
                                   BM_CubeMaskingPrefetch(s, true);
                                 })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  return rdfcube::benchutil::RunBenchMain("fig5g_prefetch", argc, argv);
}
