// Tables 2 and 3 of the paper: the occurrence matrix, one per-dimension
// containment matrix, and the overall containment matrix of the running
// example (Figures 1-2), printed verbatim, plus micro-benchmarks of
// computeOCM / baseline / cubeMasking on that example.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "core/baseline.h"
#include "core/containment_matrix.h"
#include "core/cube_masking.h"
#include "core/occurrence_matrix.h"
#include "tests/test_corpus.h"

namespace {

using namespace rdfcube;

const qb::Corpus& Example() {
  static const qb::Corpus* corpus =
      new qb::Corpus(testutil::MakeRunningExample());
  return *corpus;
}

void BM_BuildOccurrenceMatrix(benchmark::State& state) {
  const qb::ObservationSet& observations = *Example().observations;
  for (auto _ : state) {
    core::OccurrenceMatrix om(observations);
    benchmark::DoNotOptimize(om.num_columns());
  }
}
BENCHMARK(BM_BuildOccurrenceMatrix);

void BM_ComputeOcm(benchmark::State& state) {
  const qb::ObservationSet& observations = *Example().observations;
  const core::OccurrenceMatrix om(observations);
  for (auto _ : state) {
    auto matrices = core::ContainmentMatrices::Compute(om);
    benchmark::DoNotOptimize(matrices.ok());
  }
}
BENCHMARK(BM_ComputeOcm);

void BM_BaselineExample(benchmark::State& state) {
  const qb::ObservationSet& observations = *Example().observations;
  const core::OccurrenceMatrix om(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    const Status st =
        core::RunBaseline(observations, om, core::BaselineOptions{}, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
}
BENCHMARK(BM_BaselineExample);

void BM_CubeMaskingExample(benchmark::State& state) {
  const qb::ObservationSet& observations = *Example().observations;
  const core::Lattice lattice(observations);
  for (auto _ : state) {
    core::CountingSink sink;
    const Status st = core::RunCubeMasking(observations, lattice,
                                           core::CubeMaskingOptions{}, &sink);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(sink.full());
  }
}
BENCHMARK(BM_CubeMaskingExample);

}  // namespace

int main(int argc, char** argv) {
  const qb::ObservationSet& observations = *Example().observations;
  const core::OccurrenceMatrix om(observations);
  std::printf("=== Table 2: occurrence matrix OM ===\n%s\n",
              om.ToTable(observations).c_str());
  auto matrices = core::ContainmentMatrices::Compute(om);
  if (matrices.ok()) {
    std::printf("=== Table 3(a): CM for refArea ===\n%s\n",
                matrices->ToTable(observations, 0).c_str());
    std::printf("=== Table 3(b): overall containment matrix OCM ===\n%s\n",
                matrices->ToTable(observations).c_str());
  }
  return rdfcube::benchutil::RunBenchMain("running_example", argc, argv);
}
