// Serving-path latency/throughput (DESIGN.md §6): an in-process
// rdfcube_serverd instance under a closed-loop client fleet, measuring the
// end-to-end RPC cost of the two serving workloads:
//
//   point/...   single-observation lookups (containers / contained /
//               complements / partial rotate per request) — the paper's
//               "which cubes relate to this one" interactive query.
//   scan/...    bulk relationship dumps (kScan with a record limit) — the
//               analytics export path, dominated by response encoding.
//
// Unlike the chaos soak (tests/server_soak_test.cc) nothing is fault
// injected and the admission queue is sized so nothing sheds: the numbers
// are the healthy-path baseline the robustness features degrade from.
// Exact percentiles are computed from the full per-request latency vector
// (no histogram buckets); per-request timing rides on obs::TraceSpan, so
// the same spans also land in the trace ring for span_rollup.
//
// BENCH_serve.json stats (schema in EXPERIMENTS.md): for each workload
// <w> in {point, scan}: <w>.p50_us, <w>.p99_us, <w>.qps, <w>.requests,
// <w>.errors; plus server.requests_total / server.shed_total /
// server.deadline_expired_total from the server's own counters, and the
// per-op RED attribution op.<op>.requests / op.<op>.mean_us for every wire
// op (delta of the rdfcube_server_<op>_* metrics over the run; the ops this
// bench never sends report zero). check_bench_json.sh asserts the op.*
// requests sum equals server.requests_total — the same conservation law the
// chaos soak enforces.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/snapshot.h"
#include "datagen/realworld.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace {

using namespace rdfcube;

struct WorkloadResult {
  std::vector<double> latencies_us;
  double qps = 0.0;
  uint64_t errors = 0;
};

// Wire-op identifiers, in protocol order (server/protocol.h OpName).
constexpr const char* kOpNames[] = {
    "ping",  "containers", "contained", "complements", "partial",
    "scan",  "stats",      "metrics",   "slowlog",     "tracedump"};
constexpr std::size_t kNumOps = sizeof(kOpNames) / sizeof(kOpNames[0]);

struct OpStat {
  uint64_t requests = 0;
  double mean_us = 0.0;
};

struct ServeRunStats {
  WorkloadResult point;
  WorkloadResult scan;
  uint64_t server_requests = 0;
  uint64_t server_sheds = 0;
  uint64_t server_deadline_expired = 0;
  OpStat per_op[kNumOps];
  bool ran = false;
};

ServeRunStats g_stats;

uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const obs::HistogramSample* FindHistogram(const obs::MetricsSnapshot& snap,
                                          const std::string& name) {
  for (const obs::HistogramSample& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// Per-op RED attribution as the delta of the global rdfcube_server_<op>_*
/// metrics between two snapshots; ops whose metrics never registered (or
/// never moved) report zero.
void FillPerOpStats(const obs::MetricsSnapshot& before,
                    const obs::MetricsSnapshot& after, OpStat* out) {
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const std::string base = std::string("rdfcube_server_") + kOpNames[i];
    out[i].requests = CounterValue(after, base + "_requests_total") -
                      CounterValue(before, base + "_requests_total");
    const obs::HistogramSample* ha = FindHistogram(after, base + "_latency_us");
    const obs::HistogramSample* hb =
        FindHistogram(before, base + "_latency_us");
    const uint64_t count = (ha != nullptr ? ha->count : 0) -
                           (hb != nullptr ? hb->count : 0);
    const double sum =
        (ha != nullptr ? ha->sum : 0.0) - (hb != nullptr ? hb->sum : 0.0);
    out[i].mean_us = count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
}

/// Exact nearest-rank percentile over an unsorted latency vector.
double PercentileUs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const double pos = q * static_cast<double>(latencies->size() - 1);
  const std::size_t idx = static_cast<std::size_t>(std::llround(pos));
  return (*latencies)[std::min(idx, latencies->size() - 1)];
}

/// One closed-loop client thread: `requests` RPCs built by `make_request`,
/// each timed individually. Latencies land in `out`; non-kOk responses and
/// transport errors count as errors (the queue is sized to admit everything,
/// so any error is a real regression, surfaced via the <w>.errors stat).
void ClientLoop(uint16_t port, std::size_t requests,
                const std::function<server::Request(std::size_t)>& make_request,
                std::vector<double>* out, std::atomic<uint64_t>* errors) {
  server::ClientOptions copts;
  copts.port = port;
  copts.request_timeout_seconds = 30.0;
  out->reserve(requests);
  server::Client client(copts);
  for (std::size_t i = 0; i < requests; ++i) {
    const server::Request req = make_request(i);
    obs::TraceSpan rpc("serve/rpc");
    const Result<server::Response> resp = client.Call(req);
    out->push_back(rpc.ElapsedSeconds() * 1e6);
    if (!resp.ok() || resp.value().code != server::RespCode::kOk) {
      errors->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

WorkloadResult RunWorkload(
    const char* phase, uint16_t port, std::size_t num_threads,
    std::size_t requests_per_thread,
    const std::function<server::Request(std::size_t)>& make_request) {
  WorkloadResult result;
  std::vector<std::vector<double>> per_thread(num_threads);
  std::atomic<uint64_t> errors{0};
  obs::TraceSpan span(phase);
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(ClientLoop, port, requests_per_thread, make_request,
                         &per_thread[t], &errors);
  }
  for (std::thread& th : threads) th.join();
  const double elapsed = span.ElapsedSeconds();
  span.End();
  for (std::vector<double>& v : per_thread) {
    result.latencies_us.insert(result.latencies_us.end(), v.begin(), v.end());
  }
  result.qps = elapsed > 0.0
                   ? static_cast<double>(result.latencies_us.size()) / elapsed
                   : 0.0;
  result.errors = errors.load(std::memory_order_relaxed);
  return result;
}

void RunServe() {
  std::size_t n = 2000, point_threads = 4, point_per_thread = 1500;
  std::size_t scan_threads = 2, scan_per_thread = 100;
  uint32_t scan_limit = 2000;
  if (benchutil::LargeMode()) {
    n = 20000;
    point_per_thread = 5000;
    scan_per_thread = 250;
  }
  if (benchutil::SmokeMode()) {
    n = 400;
    point_threads = 2;
    point_per_thread = 150;
    scan_per_thread = 15;
    scan_limit = 500;
  }

  server::ServerOptions sopts;
  sopts.num_workers = 4;
  // Closed-loop clients never have more than `threads` requests in flight;
  // this capacity guarantees zero shedding (asserted via the
  // server.shed_total stat) so latencies measure evaluation, not backoff.
  sopts.max_queue = 256;
  sopts.default_deadline_seconds = 30.0;
  sopts.max_deadline_seconds = 60.0;
  server::Server srv(sopts);
  {
    obs::TraceSpan setup("serve/setup");
    Result<qb::Corpus> corpus = datagen::GenerateRealWorldPrefix(n, 42);
    if (!corpus.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   corpus.status().ToString().c_str());
      std::abort();
    }
    core::RelationshipSnapshot::BuildOptions bopts;
    bopts.version = 1;
    auto snap =
        core::RelationshipSnapshot::Build(std::move(corpus.value()), bopts);
    if (!snap.ok()) {
      std::fprintf(stderr, "snapshot build failed: %s\n",
                   snap.status().ToString().c_str());
      std::abort();
    }
    const Status st = srv.Start(std::move(snap.value()));
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }

  const uint32_t num_obs = static_cast<uint32_t>(n);
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Global().Snapshot();
  g_stats.point = RunWorkload(
      "serve/point_lookup", srv.port(), point_threads, point_per_thread,
      [num_obs](std::size_t i) {
        server::Request req;
        switch (i % 4) {
          case 0: req.op = server::Op::kContainers; break;
          case 1: req.op = server::Op::kContained; break;
          case 2: req.op = server::Op::kComplements; break;
          default:
            req.op = server::Op::kPartial;
            req.min_degree = 0.5;
            break;
        }
        req.target = static_cast<uint32_t>(i * 7919) % num_obs;
        return req;
      });
  g_stats.scan = RunWorkload("serve/bulk_scan", srv.port(), scan_threads,
                             scan_per_thread, [scan_limit](std::size_t) {
                               server::Request req;
                               req.op = server::Op::kScan;
                               req.limit = scan_limit;
                               return req;
                             });

  {
    obs::TraceSpan drain("serve/drain");
    srv.Stop();
  }
  // Tallies are read after Stop() joins the workers: a job's per-op counter
  // ticks in the post-write epilogue, so an earlier read could undercount
  // the op.* side of the conservation law.
  g_stats.server_requests = srv.requests_total();
  g_stats.server_sheds = srv.shed_total();
  g_stats.server_deadline_expired = srv.deadline_expired_total();
  const obs::MetricsSnapshot metrics_after =
      obs::MetricsRegistry::Global().Snapshot();
  FillPerOpStats(metrics_before, metrics_after, g_stats.per_op);
  g_stats.ran = true;
}

void Decorate(obs::RunReport* report) {
  if (!g_stats.ran) return;
  auto add_workload = [report](const char* prefix, WorkloadResult* w) {
    const std::string p(prefix);
    report->AddStat(p + ".requests",
                    static_cast<double>(w->latencies_us.size()));
    report->AddStat(p + ".errors", static_cast<double>(w->errors));
    report->AddStat(p + ".p50_us", PercentileUs(&w->latencies_us, 0.50));
    report->AddStat(p + ".p99_us", PercentileUs(&w->latencies_us, 0.99));
    report->AddStat(p + ".qps", w->qps);
  };
  add_workload("point", &g_stats.point);
  add_workload("scan", &g_stats.scan);
  report->AddStat("server.requests_total",
                  static_cast<double>(g_stats.server_requests));
  report->AddStat("server.shed_total",
                  static_cast<double>(g_stats.server_sheds));
  report->AddStat("server.deadline_expired_total",
                  static_cast<double>(g_stats.server_deadline_expired));
  for (std::size_t i = 0; i < kNumOps; ++i) {
    const std::string p = std::string("op.") + kOpNames[i];
    report->AddStat(p + ".requests",
                    static_cast<double>(g_stats.per_op[i].requests));
    report->AddStat(p + ".mean_us", g_stats.per_op[i].mean_us);
  }
}

}  // namespace

void BM_Serve(benchmark::State& state) {
  for (auto _ : state) RunServe();
}

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("serve/run", BM_Serve)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  const int rc = benchutil::RunBenchMain("serve", argc, argv, nullptr,
                                         Decorate);
  if (rc != 0) return rc;
  const uint64_t errors = g_stats.point.errors + g_stats.scan.errors;
  if (errors > 0) {
    std::fprintf(stderr, "serve bench saw %llu request errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  return 0;
}
