// Table 4 of the paper: the seven datasets' schemas (which of the nine
// dimensions each instantiates), their observation counts and measures —
// printed from the generator's specs and verified against a generated
// corpus — plus generation-throughput benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/realworld.h"
#include "util/string_util.h"

namespace {

using namespace rdfcube;

void BM_GenerateRealWorld(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto corpus = datagen::GenerateRealWorldPrefix(n, 42);
    if (!corpus.ok()) {
      state.SkipWithError(corpus.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(corpus->observations->size());
  }
  state.counters["observations"] = static_cast<double>(n);
}

}  // namespace

int main(int argc, char** argv) {
  // --- Print Table 4. ---------------------------------------------------------
  const char* kAllDims[] = {"refArea",     "refPeriod", "sex",
                            "unit",        "age",       "economicActivity",
                            "citizenship", "education", "householdSize"};
  std::printf("=== Table 4: dataset dimensions, observations, measures ===\n");
  std::printf("%-8s", "dataset");
  for (const char* d : kAllDims) std::printf(" %-9.9s", d);
  std::printf(" %-10s %s\n", "obs", "measure");
  for (const auto& spec : datagen::RealWorldSpecs()) {
    std::printf("%-8s", spec.name.c_str());
    for (const char* d : kAllDims) {
      bool present = false;
      for (const auto& dim : spec.dimensions) {
        if (IriLocalName(dim) == d) present = true;
      }
      std::printf(" %-9s", present ? "Y" : "N");
    }
    std::printf(" %-10zu %s\n", spec.observations_at_scale1,
                std::string(IriLocalName(spec.measure)).c_str());
  }

  // --- Verify the generated corpus matches the specs at a small scale. -----
  const std::size_t check_n = 2465;  // 1% of the paper's 246.5k
  const qb::Corpus& corpus = rdfcube::benchutil::RealWorldPrefix(check_n);
  std::printf("\ngenerated at 1%% scale: %zu observations, %zu datasets, "
              "%zu dimensions, %zu measures\n",
              corpus.observations->size(), corpus.observations->num_datasets(),
              corpus.space->num_dimensions(), corpus.space->num_measures());
  std::size_t codes = 0;
  for (qb::DimId d = 0; d < corpus.space->num_dimensions(); ++d) {
    codes += corpus.space->code_list(d).size();
  }
  std::printf("distinct hierarchical values: %zu (paper: ~2.6k)\n\n", codes);

  for (std::size_t n : {1000, 5000, 20000}) {
    benchmark::RegisterBenchmark("generate/real_world", BM_GenerateRealWorld)
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  return rdfcube::benchutil::RunBenchMain("table4", argc, argv);
}
