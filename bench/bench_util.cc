#include "bench/bench_util.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "datagen/realworld.h"
#include "datagen/synthetic.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "qb/exporter.h"

namespace rdfcube {
namespace benchutil {

bool LargeMode() {
  const char* env = std::getenv("RDFCUBE_BENCH_LARGE");
  return env != nullptr && env[0] == '1';
}

bool SmokeMode() {
  const char* env = std::getenv("RDFCUBE_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

std::vector<std::size_t> NativeSweepSizes() {
  if (SmokeMode()) return {500, 1000};
  if (LargeMode()) {
    // The paper's sweep: 2k, then 20k..250k in 20k-40k steps.
    return {2000, 20000, 60000, 100000, 150000, 200000, 250000};
  }
  return {2000, 5000, 10000, 20000};
}

std::vector<std::size_t> ComparisonSweepSizes() {
  if (SmokeMode()) return {50, 100};
  if (LargeMode()) return {100, 300, 1000, 3000};
  return {100, 300, 600};
}

double ComparisonTimeoutSeconds() {
  if (SmokeMode()) return 5.0;
  return LargeMode() ? 300.0 : 20.0;
}

int RunBenchMain(const std::string& name, int argc, char** argv,
                 const std::function<void()>& epilogue,
                 const std::function<void(obs::RunReport*)>& decorate) {
  benchmark::Initialize(&argc, argv);

  // Fresh observability state per process: the report should describe this
  // run only, not whatever static initialization touched the registry.
  obs::MetricsRegistry::Global().ResetAll();
  obs::TraceCollector::Global().Enable();
  uint64_t root_id = 0;
  {
    obs::TraceSpan root("bench/" + name);
    root_id = root.id();
    benchmark::RunSpecifiedBenchmarks();
    if (epilogue) epilogue();
  }
  obs::TraceCollector::Global().Disable();

  obs::RunReport report(name);
  report.AddMeta("large_mode", LargeMode() ? "1" : "0");
  report.AddMeta("smoke_mode", SmokeMode() ? "1" : "0");
  report.CaptureMetrics();
  report.CapturePhases(root_id);
  if (decorate) decorate(&report);

  const char* out_dir = std::getenv("RDFCUBE_BENCH_OUT_DIR");
  std::string path = (out_dir != nullptr && out_dir[0] != '\0') ? out_dir : ".";
  path += "/BENCH_" + name + ".json";
  const Status st = obs::WriteRunReportJson(report, path);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("BENCH report: %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}

const qb::Corpus& RealWorldPrefix(std::size_t n) {
  static std::map<std::size_t, qb::Corpus>* cache =
      new std::map<std::size_t, qb::Corpus>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    auto corpus = datagen::GenerateRealWorldPrefix(n, /*seed=*/42);
    if (!corpus.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   corpus.status().ToString().c_str());
      std::abort();
    }
    it = cache->emplace(n, std::move(*corpus)).first;
  }
  return it->second;
}

const qb::Corpus& Synthetic(std::size_t n) {
  static std::map<std::size_t, qb::Corpus>* cache =
      new std::map<std::size_t, qb::Corpus>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    datagen::SyntheticOptions options;
    options.num_observations = n;
    auto corpus = datagen::GenerateSyntheticCorpus(options);
    if (!corpus.ok()) {
      std::fprintf(stderr, "synthetic generation failed: %s\n",
                   corpus.status().ToString().c_str());
      std::abort();
    }
    it = cache->emplace(n, std::move(*corpus)).first;
  }
  return it->second;
}

const rdf::TripleStore& RealWorldPrefixRdf(std::size_t n) {
  static std::map<std::size_t, rdf::TripleStore>* cache =
      new std::map<std::size_t, rdf::TripleStore>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    rdf::TripleStore store;
    const Status st = qb::ExportCorpusToRdf(RealWorldPrefix(n), &store);
    if (!st.ok()) {
      std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    it = cache->emplace(n, std::move(store)).first;
  }
  return it->second;
}

namespace {

double RatioOr1(std::size_t hits, std::size_t total) {
  if (total == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

Recall ComputeRecall(core::CollectingSink* truth, core::CollectingSink* lossy) {
  truth->Canonicalize();
  lossy->Canonicalize();
  Recall recall;
  {
    std::set<std::pair<qb::ObsId, qb::ObsId>> found(lossy->full().begin(),
                                                    lossy->full().end());
    std::size_t hits = 0;
    for (const auto& p : truth->full()) hits += found.count(p);
    recall.full = RatioOr1(hits, truth->full().size());
  }
  {
    std::set<std::pair<qb::ObsId, qb::ObsId>> found(
        lossy->complementary().begin(), lossy->complementary().end());
    std::size_t hits = 0;
    for (const auto& p : truth->complementary()) hits += found.count(p);
    recall.complementary = RatioOr1(hits, truth->complementary().size());
  }
  {
    std::set<std::pair<qb::ObsId, qb::ObsId>> found;
    for (const auto& p : lossy->partial()) found.insert({p.a, p.b});
    std::size_t hits = 0;
    for (const auto& p : truth->partial()) hits += found.count({p.a, p.b});
    recall.partial = RatioOr1(hits, truth->partial().size());
  }
  return recall;
}

}  // namespace benchutil
}  // namespace rdfcube
