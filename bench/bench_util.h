// Shared helpers for the benchmark harnesses: corpus caches (so repeated
// benchmark registrations reuse one generated corpus per size), method
// runners with timeout reporting, recall computation, and the RunBenchMain
// observability harness every bench binary's main() delegates to.
//
// Sizing: by default the harnesses sweep reduced input sizes so that the
// whole bench suite finishes in minutes on one core; set RDFCUBE_BENCH_LARGE=1
// to sweep the paper's full 2k..250k (and 2.5M synthetic) range, or
// RDFCUBE_BENCH_SMOKE=1 to shrink everything to seconds (CI validation of
// the BENCH_*.json pipeline, see scripts/check_bench_json.sh).

#ifndef RDFCUBE_BENCH_BENCH_UTIL_H_
#define RDFCUBE_BENCH_BENCH_UTIL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/relationship.h"
#include "qb/corpus.h"
#include "rdf/triple_store.h"

namespace rdfcube {
namespace obs {
class RunReport;
}  // namespace obs

namespace benchutil {

/// True when RDFCUBE_BENCH_LARGE=1: sweep the paper's full input range.
bool LargeMode();

/// True when RDFCUBE_BENCH_SMOKE=1: shrink sweeps to smoke-test sizes so a
/// bench binary finishes in seconds (wins over LargeMode when both are set).
bool SmokeMode();

/// Runs the registered google-benchmark suite under the observability
/// harness: resets the global metrics registry, enables span collection,
/// wraps the whole run (plus the optional `epilogue`, for post-run work such
/// as fig5e's baseline projection) in one root TraceSpan, then writes a
/// RunReport as `BENCH_<name>.json` into $RDFCUBE_BENCH_OUT_DIR (default:
/// the current directory). `decorate`, when given, runs against the report
/// after metrics/phases are captured but before it is written — harnesses
/// that compute their own scalar results (latency percentiles, QPS) add
/// them there via RunReport::AddStat. Returns the process exit code; every
/// bench binary's main() should `return RunBenchMain(...)`.
int RunBenchMain(const std::string& name, int argc, char** argv,
                 const std::function<void()>& epilogue = nullptr,
                 const std::function<void(obs::RunReport*)>& decorate = nullptr);

/// Input sizes for the native-method sweeps (Fig. 5(a)-(c)).
/// Reduced: {2k, 5k, 10k, 20k}; large: {2k, 20k, ..., 250k} per the paper.
std::vector<std::size_t> NativeSweepSizes();

/// Input sizes for the SPARQL/rule comparison methods (they explode early;
/// the paper reports >1h at 20k and t/o beyond).
std::vector<std::size_t> ComparisonSweepSizes();

/// Timeout applied to SPARQL/rule runs (seconds).
double ComparisonTimeoutSeconds();

/// Returns the cached real-world corpus prefix of `n` observations
/// (generated once per size; see datagen::GenerateRealWorldPrefix).
const qb::Corpus& RealWorldPrefix(std::size_t n);

/// Returns the cached synthetic corpus of `n` observations (§4.2 generator).
const qb::Corpus& Synthetic(std::size_t n);

/// Returns the cached RDF export of the real-world prefix of `n`
/// observations (for the SPARQL/rule methods).
const rdf::TripleStore& RealWorldPrefixRdf(std::size_t n);

/// \brief Recall of a lossy result against the baseline ground truth.
struct Recall {
  double full = 1.0;
  double partial = 1.0;
  double complementary = 1.0;
};

/// Computes per-type recall of `lossy` against `truth` (both canonicalized
/// internally). Empty truth counts as recall 1.
Recall ComputeRecall(core::CollectingSink* truth, core::CollectingSink* lossy);

/// \brief CollectingSink variant that keeps every full/complementarity pair
/// but only a deterministic 1-in-`stride` hash sample of partial pairs.
///
/// Partial containment sets grow as ~0.25 * n^2 on the statistical corpus
/// (hundreds of millions of pairs at paper scale); sampling the same pair
/// subset on both the ground-truth and the lossy run yields an unbiased
/// recall estimate with bounded memory.
class PartialSamplingSink : public core::CollectingSink {
 public:
  explicit PartialSamplingSink(uint32_t stride) : stride_(stride) {}

  void OnPartialContainment(qb::ObsId a, qb::ObsId b, double degree,
                            uint64_t dim_mask) override {
    if (((a * 2654435761u) ^ b) % stride_ != 0) return;
    core::CollectingSink::OnPartialContainment(a, b, degree, dim_mask);
  }

 private:
  uint32_t stride_;
};

}  // namespace benchutil
}  // namespace rdfcube

#endif  // RDFCUBE_BENCH_BENCH_UTIL_H_
