// Shared implementation of the Fig. 5(a)/(b)/(c) harnesses: execution time
// of one relationship type across the five methods (baseline, clustering,
// cubeMasking, SPARQL-based, rule-based) as the input size grows.
//
// Each binary instantiates RegisterMethodSweep with the relationship type.
// Timeouts / row caps of the comparison methods are reported through the
// `timed_out` / `out_of_memory` counters — the paper's "t/o" and "o/m" cells.

#ifndef RDFCUBE_BENCH_FIG5_METHOD_SWEEP_H_
#define RDFCUBE_BENCH_FIG5_METHOD_SWEEP_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "rules/paper_rules.h"
#include "sparql/paper_queries.h"

namespace rdfcube {
namespace benchutil {

enum class RelationshipKind { kFull, kPartial, kComplementarity };

inline core::RelationshipSelector SelectorFor(RelationshipKind kind) {
  switch (kind) {
    case RelationshipKind::kFull:
      return core::RelationshipSelector::FullOnly();
    case RelationshipKind::kPartial:
      return core::RelationshipSelector::PartialOnly();
    case RelationshipKind::kComplementarity:
      return core::RelationshipSelector::ComplOnly();
  }
  return {};
}

inline void BM_NativeMethod(benchmark::State& state, core::Method method,
                            RelationshipKind kind) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const qb::Corpus& corpus = RealWorldPrefix(n);
  const char* span_name = method == core::Method::kBaseline ? "bench/baseline"
                          : method == core::Method::kClustering
                              ? "bench/clustering"
                              : "bench/cubeMasking";
  obs::TraceSpan span(span_name);
  std::size_t pairs = 0;
  for (auto _ : state) {
    core::CountingSink sink;
    core::EngineOptions options;
    options.method = method;
    options.selector = SelectorFor(kind);
    const Status st =
        core::ComputeRelationships(*corpus.observations, options, &sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    pairs = sink.full() + sink.partial() + sink.complementary();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["pairs"] = static_cast<double>(pairs);
}

inline void BM_SparqlMethod(benchmark::State& state, RelationshipKind kind) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const rdf::TripleStore& store = RealWorldPrefixRdf(n);
  std::string query;
  switch (kind) {
    case RelationshipKind::kFull:
      query = sparql::FullContainmentQuery();
      break;
    case RelationshipKind::kPartial:
      query = sparql::PartialContainmentQuery();
      break;
    case RelationshipKind::kComplementarity:
      query = sparql::ComplementarityQuery();
      break;
  }
  obs::TraceSpan span("bench/sparql");
  bool timed_out = false, oom = false;
  std::size_t pairs = 0;
  for (auto _ : state) {
    auto result = sparql::RunRelationshipQuery(
        store, query, Deadline(ComparisonTimeoutSeconds()),
        /*max_rows=*/5000000);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    timed_out = result->timed_out;
    oom = result->out_of_memory;
    pairs = result->pairs.size();
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["pairs"] = static_cast<double>(pairs);
  state.counters["timed_out"] = timed_out ? 1 : 0;    // the paper's "t/o"
  state.counters["out_of_memory"] = oom ? 1 : 0;      // the paper's "o/m"
}

inline void BM_RuleMethod(benchmark::State& state, RelationshipKind kind) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // Restrict the rule set to the closure rules plus the rule of the
  // benchmarked relationship, mirroring the paper's per-type runs.
  const char* keep = kind == RelationshipKind::kFull ? "full-containment"
                     : kind == RelationshipKind::kPartial
                         ? "partial-containment"
                         : "complementarity";
  obs::TraceSpan span("bench/rules");
  bool timed_out = false, oom = false;
  std::size_t derived = 0;
  for (auto _ : state) {
    // The rule engine mutates the store: rebuild a fresh copy per iteration
    // (copy cost is negligible next to the chaining itself).
    rdf::TripleStore store = RealWorldPrefixRdf(n);
    std::vector<rules::Rule> rules;
    for (auto& rule : rules::PaperRules()) {
      if (rule.name.find("broader") == 0 || rule.name == keep) {
        rules.push_back(std::move(rule));
      }
    }
    rules::ChainOptions options;
    options.deadline = Deadline(ComparisonTimeoutSeconds());
    options.max_derived = 5000000;
    auto stats = rules::RunForwardChaining(rules, &store, options);
    if (!stats.ok()) {
      timed_out = stats.status().IsTimedOut();
      oom = stats.status().IsResourceExhausted();
    } else {
      derived = stats->derived;
    }
  }
  state.counters["observations"] = static_cast<double>(n);
  state.counters["derived"] = static_cast<double>(derived);
  state.counters["timed_out"] = timed_out ? 1 : 0;
  state.counters["out_of_memory"] = oom ? 1 : 0;
}

/// Registers the five-method sweep for one relationship type.
inline void RegisterMethodSweep(RelationshipKind kind) {
  const std::string suffix = kind == RelationshipKind::kFull ? "full"
                             : kind == RelationshipKind::kPartial
                                 ? "partial"
                                 : "complementarity";
  for (std::size_t n : NativeSweepSizes()) {
    benchmark::RegisterBenchmark(
        ("baseline/" + suffix).c_str(),
        [kind](benchmark::State& s) {
          BM_NativeMethod(s, core::Method::kBaseline, kind);
        })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("clustering/" + suffix).c_str(),
        [kind](benchmark::State& s) {
          BM_NativeMethod(s, core::Method::kClustering, kind);
        })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("cubeMasking/" + suffix).c_str(),
        [kind](benchmark::State& s) {
          BM_NativeMethod(s, core::Method::kCubeMasking, kind);
        })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  for (std::size_t n : ComparisonSweepSizes()) {
    benchmark::RegisterBenchmark(
        ("sparql/" + suffix).c_str(),
        [kind](benchmark::State& s) { BM_SparqlMethod(s, kind); })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("rules/" + suffix).c_str(),
        [kind](benchmark::State& s) { BM_RuleMethod(s, kind); })
        ->Arg(static_cast<long>(n))
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace benchutil
}  // namespace rdfcube

#endif  // RDFCUBE_BENCH_FIG5_METHOD_SWEEP_H_
