# Empty compiler generated dependencies file for bench_ablation_sparse.
# This may be replaced when dependencies are built.
