
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_recovery.cc" "bench/CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cc.o" "gcc" "bench/CMakeFiles/bench_fault_recovery.dir/bench_fault_recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/rdfcube_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rdfcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rdfcube_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/rdfcube_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/rdfcube_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/qb/CMakeFiles/rdfcube_qb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdfcube_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
