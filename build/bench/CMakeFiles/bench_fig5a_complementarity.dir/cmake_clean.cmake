file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_complementarity.dir/bench_fig5a_complementarity.cc.o"
  "CMakeFiles/bench_fig5a_complementarity.dir/bench_fig5a_complementarity.cc.o.d"
  "bench_fig5a_complementarity"
  "bench_fig5a_complementarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_complementarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
