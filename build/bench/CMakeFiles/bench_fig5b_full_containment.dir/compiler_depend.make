# Empty compiler generated dependencies file for bench_fig5b_full_containment.
# This may be replaced when dependencies are built.
