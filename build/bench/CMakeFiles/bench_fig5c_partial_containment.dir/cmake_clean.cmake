file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_partial_containment.dir/bench_fig5c_partial_containment.cc.o"
  "CMakeFiles/bench_fig5c_partial_containment.dir/bench_fig5c_partial_containment.cc.o.d"
  "bench_fig5c_partial_containment"
  "bench_fig5c_partial_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_partial_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
