# Empty dependencies file for bench_fig5c_partial_containment.
# This may be replaced when dependencies are built.
