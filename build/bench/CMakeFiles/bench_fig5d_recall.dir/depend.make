# Empty dependencies file for bench_fig5d_recall.
# This may be replaced when dependencies are built.
