# Empty dependencies file for bench_fig5e_scalability.
# This may be replaced when dependencies are built.
