# Empty compiler generated dependencies file for bench_fig5f_cube_ratio.
# This may be replaced when dependencies are built.
