file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5g_prefetch.dir/bench_fig5g_prefetch.cc.o"
  "CMakeFiles/bench_fig5g_prefetch.dir/bench_fig5g_prefetch.cc.o.d"
  "bench_fig5g_prefetch"
  "bench_fig5g_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5g_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
