# Empty compiler generated dependencies file for bench_fig5g_prefetch.
# This may be replaced when dependencies are built.
