file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_benchutil.dir/bench_util.cc.o"
  "CMakeFiles/rdfcube_benchutil.dir/bench_util.cc.o.d"
  "librdfcube_benchutil.a"
  "librdfcube_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
