file(REMOVE_RECURSE
  "librdfcube_benchutil.a"
)
