# Empty compiler generated dependencies file for rdfcube_benchutil.
# This may be replaced when dependencies are built.
