file(REMOVE_RECURSE
  "CMakeFiles/data_journalist.dir/data_journalist.cpp.o"
  "CMakeFiles/data_journalist.dir/data_journalist.cpp.o.d"
  "data_journalist"
  "data_journalist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_journalist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
