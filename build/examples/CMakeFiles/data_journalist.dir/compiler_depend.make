# Empty compiler generated dependencies file for data_journalist.
# This may be replaced when dependencies are built.
