file(REMOVE_RECURSE
  "CMakeFiles/federation_alignment.dir/federation_alignment.cpp.o"
  "CMakeFiles/federation_alignment.dir/federation_alignment.cpp.o.d"
  "federation_alignment"
  "federation_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
