# Empty dependencies file for federation_alignment.
# This may be replaced when dependencies are built.
