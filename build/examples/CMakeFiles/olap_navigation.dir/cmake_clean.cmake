file(REMOVE_RECURSE
  "CMakeFiles/olap_navigation.dir/olap_navigation.cpp.o"
  "CMakeFiles/olap_navigation.dir/olap_navigation.cpp.o.d"
  "olap_navigation"
  "olap_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
