# Empty compiler generated dependencies file for olap_navigation.
# This may be replaced when dependencies are built.
