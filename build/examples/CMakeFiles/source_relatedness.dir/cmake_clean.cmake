file(REMOVE_RECURSE
  "CMakeFiles/source_relatedness.dir/source_relatedness.cpp.o"
  "CMakeFiles/source_relatedness.dir/source_relatedness.cpp.o.d"
  "source_relatedness"
  "source_relatedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_relatedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
