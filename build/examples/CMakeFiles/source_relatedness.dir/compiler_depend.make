# Empty compiler generated dependencies file for source_relatedness.
# This may be replaced when dependencies are built.
