file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_align.dir/matcher.cc.o"
  "CMakeFiles/rdfcube_align.dir/matcher.cc.o.d"
  "librdfcube_align.a"
  "librdfcube_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
