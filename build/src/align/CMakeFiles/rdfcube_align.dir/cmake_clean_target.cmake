file(REMOVE_RECURSE
  "librdfcube_align.a"
)
