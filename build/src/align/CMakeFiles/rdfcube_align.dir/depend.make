# Empty dependencies file for rdfcube_align.
# This may be replaced when dependencies are built.
