
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/agglomerative.cc.o" "gcc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/agglomerative.cc.o.d"
  "/root/repo/src/cluster/canopy.cc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/canopy.cc.o" "gcc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/canopy.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/metric.cc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/metric.cc.o" "gcc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/metric.cc.o.d"
  "/root/repo/src/cluster/xmeans.cc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/xmeans.cc.o" "gcc" "src/cluster/CMakeFiles/rdfcube_cluster.dir/xmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
