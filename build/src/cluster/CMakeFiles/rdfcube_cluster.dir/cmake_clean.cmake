file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_cluster.dir/agglomerative.cc.o"
  "CMakeFiles/rdfcube_cluster.dir/agglomerative.cc.o.d"
  "CMakeFiles/rdfcube_cluster.dir/canopy.cc.o"
  "CMakeFiles/rdfcube_cluster.dir/canopy.cc.o.d"
  "CMakeFiles/rdfcube_cluster.dir/kmeans.cc.o"
  "CMakeFiles/rdfcube_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/rdfcube_cluster.dir/metric.cc.o"
  "CMakeFiles/rdfcube_cluster.dir/metric.cc.o.d"
  "CMakeFiles/rdfcube_cluster.dir/xmeans.cc.o"
  "CMakeFiles/rdfcube_cluster.dir/xmeans.cc.o.d"
  "librdfcube_cluster.a"
  "librdfcube_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
