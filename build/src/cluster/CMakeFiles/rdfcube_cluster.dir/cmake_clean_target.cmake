file(REMOVE_RECURSE
  "librdfcube_cluster.a"
)
