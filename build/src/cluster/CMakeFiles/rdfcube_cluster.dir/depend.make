# Empty dependencies file for rdfcube_cluster.
# This may be replaced when dependencies are built.
