
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/core/CMakeFiles/rdfcube_core.dir/aggregate.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/aggregate.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/core/CMakeFiles/rdfcube_core.dir/baseline.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/baseline.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/rdfcube_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/clustering_method.cc" "src/core/CMakeFiles/rdfcube_core.dir/clustering_method.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/clustering_method.cc.o.d"
  "/root/repo/src/core/containment_matrix.cc" "src/core/CMakeFiles/rdfcube_core.dir/containment_matrix.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/containment_matrix.cc.o.d"
  "/root/repo/src/core/cube_masking.cc" "src/core/CMakeFiles/rdfcube_core.dir/cube_masking.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/cube_masking.cc.o.d"
  "/root/repo/src/core/distributed.cc" "src/core/CMakeFiles/rdfcube_core.dir/distributed.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/distributed.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/rdfcube_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/engine.cc.o.d"
  "/root/repo/src/core/explorer.cc" "src/core/CMakeFiles/rdfcube_core.dir/explorer.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/explorer.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/rdfcube_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/rdfcube_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/lattice.cc" "src/core/CMakeFiles/rdfcube_core.dir/lattice.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/lattice.cc.o.d"
  "/root/repo/src/core/occurrence_matrix.cc" "src/core/CMakeFiles/rdfcube_core.dir/occurrence_matrix.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/occurrence_matrix.cc.o.d"
  "/root/repo/src/core/parallel_masking.cc" "src/core/CMakeFiles/rdfcube_core.dir/parallel_masking.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/parallel_masking.cc.o.d"
  "/root/repo/src/core/relatedness.cc" "src/core/CMakeFiles/rdfcube_core.dir/relatedness.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/relatedness.cc.o.d"
  "/root/repo/src/core/relationship.cc" "src/core/CMakeFiles/rdfcube_core.dir/relationship.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/relationship.cc.o.d"
  "/root/repo/src/core/relationship_rdf.cc" "src/core/CMakeFiles/rdfcube_core.dir/relationship_rdf.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/relationship_rdf.cc.o.d"
  "/root/repo/src/core/skyline.cc" "src/core/CMakeFiles/rdfcube_core.dir/skyline.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/skyline.cc.o.d"
  "/root/repo/src/core/sparse_matrix.cc" "src/core/CMakeFiles/rdfcube_core.dir/sparse_matrix.cc.o" "gcc" "src/core/CMakeFiles/rdfcube_core.dir/sparse_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qb/CMakeFiles/rdfcube_qb.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdfcube_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
