file(REMOVE_RECURSE
  "librdfcube_core.a"
)
