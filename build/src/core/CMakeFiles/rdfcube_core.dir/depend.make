# Empty dependencies file for rdfcube_core.
# This may be replaced when dependencies are built.
