
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/perturb.cc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/perturb.cc.o" "gcc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/perturb.cc.o.d"
  "/root/repo/src/datagen/realworld.cc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/realworld.cc.o" "gcc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/realworld.cc.o.d"
  "/root/repo/src/datagen/synthetic.cc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/synthetic.cc.o" "gcc" "src/datagen/CMakeFiles/rdfcube_datagen.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/qb/CMakeFiles/rdfcube_qb.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
