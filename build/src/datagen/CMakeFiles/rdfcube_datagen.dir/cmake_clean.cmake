file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_datagen.dir/perturb.cc.o"
  "CMakeFiles/rdfcube_datagen.dir/perturb.cc.o.d"
  "CMakeFiles/rdfcube_datagen.dir/realworld.cc.o"
  "CMakeFiles/rdfcube_datagen.dir/realworld.cc.o.d"
  "CMakeFiles/rdfcube_datagen.dir/synthetic.cc.o"
  "CMakeFiles/rdfcube_datagen.dir/synthetic.cc.o.d"
  "librdfcube_datagen.a"
  "librdfcube_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
