file(REMOVE_RECURSE
  "librdfcube_datagen.a"
)
