# Empty dependencies file for rdfcube_datagen.
# This may be replaced when dependencies are built.
