
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/code_list.cc" "src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/code_list.cc.o" "gcc" "src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/code_list.cc.o.d"
  "/root/repo/src/hierarchy/skos_loader.cc" "src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/skos_loader.cc.o" "gcc" "src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/skos_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
