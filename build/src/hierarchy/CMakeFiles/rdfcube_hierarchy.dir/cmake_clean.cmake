file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_hierarchy.dir/code_list.cc.o"
  "CMakeFiles/rdfcube_hierarchy.dir/code_list.cc.o.d"
  "CMakeFiles/rdfcube_hierarchy.dir/skos_loader.cc.o"
  "CMakeFiles/rdfcube_hierarchy.dir/skos_loader.cc.o.d"
  "librdfcube_hierarchy.a"
  "librdfcube_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
