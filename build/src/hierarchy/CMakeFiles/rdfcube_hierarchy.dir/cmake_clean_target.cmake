file(REMOVE_RECURSE
  "librdfcube_hierarchy.a"
)
