# Empty compiler generated dependencies file for rdfcube_hierarchy.
# This may be replaced when dependencies are built.
