
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qb/binary_io.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/binary_io.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/binary_io.cc.o.d"
  "/root/repo/src/qb/corpus.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/corpus.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/corpus.cc.o.d"
  "/root/repo/src/qb/csv_importer.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/csv_importer.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/csv_importer.cc.o.d"
  "/root/repo/src/qb/cube_space.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/cube_space.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/cube_space.cc.o.d"
  "/root/repo/src/qb/exporter.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/exporter.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/exporter.cc.o.d"
  "/root/repo/src/qb/loader.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/loader.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/loader.cc.o.d"
  "/root/repo/src/qb/observation_set.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/observation_set.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/observation_set.cc.o.d"
  "/root/repo/src/qb/slice.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/slice.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/slice.cc.o.d"
  "/root/repo/src/qb/validate.cc" "src/qb/CMakeFiles/rdfcube_qb.dir/validate.cc.o" "gcc" "src/qb/CMakeFiles/rdfcube_qb.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
