file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_qb.dir/binary_io.cc.o"
  "CMakeFiles/rdfcube_qb.dir/binary_io.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/corpus.cc.o"
  "CMakeFiles/rdfcube_qb.dir/corpus.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/csv_importer.cc.o"
  "CMakeFiles/rdfcube_qb.dir/csv_importer.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/cube_space.cc.o"
  "CMakeFiles/rdfcube_qb.dir/cube_space.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/exporter.cc.o"
  "CMakeFiles/rdfcube_qb.dir/exporter.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/loader.cc.o"
  "CMakeFiles/rdfcube_qb.dir/loader.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/observation_set.cc.o"
  "CMakeFiles/rdfcube_qb.dir/observation_set.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/slice.cc.o"
  "CMakeFiles/rdfcube_qb.dir/slice.cc.o.d"
  "CMakeFiles/rdfcube_qb.dir/validate.cc.o"
  "CMakeFiles/rdfcube_qb.dir/validate.cc.o.d"
  "librdfcube_qb.a"
  "librdfcube_qb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_qb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
