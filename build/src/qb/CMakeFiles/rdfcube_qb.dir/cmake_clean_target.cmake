file(REMOVE_RECURSE
  "librdfcube_qb.a"
)
