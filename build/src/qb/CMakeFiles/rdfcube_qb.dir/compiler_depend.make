# Empty compiler generated dependencies file for rdfcube_qb.
# This may be replaced when dependencies are built.
