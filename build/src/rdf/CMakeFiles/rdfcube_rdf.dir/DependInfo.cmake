
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/triple_store.cc.o" "gcc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/triple_store.cc.o.d"
  "/root/repo/src/rdf/turtle_parser.cc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/turtle_parser.cc.o" "gcc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/turtle_parser.cc.o.d"
  "/root/repo/src/rdf/turtle_writer.cc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/turtle_writer.cc.o" "gcc" "src/rdf/CMakeFiles/rdfcube_rdf.dir/turtle_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
