file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_rdf.dir/dictionary.cc.o"
  "CMakeFiles/rdfcube_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/rdfcube_rdf.dir/term.cc.o"
  "CMakeFiles/rdfcube_rdf.dir/term.cc.o.d"
  "CMakeFiles/rdfcube_rdf.dir/triple_store.cc.o"
  "CMakeFiles/rdfcube_rdf.dir/triple_store.cc.o.d"
  "CMakeFiles/rdfcube_rdf.dir/turtle_parser.cc.o"
  "CMakeFiles/rdfcube_rdf.dir/turtle_parser.cc.o.d"
  "CMakeFiles/rdfcube_rdf.dir/turtle_writer.cc.o"
  "CMakeFiles/rdfcube_rdf.dir/turtle_writer.cc.o.d"
  "librdfcube_rdf.a"
  "librdfcube_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
