file(REMOVE_RECURSE
  "librdfcube_rdf.a"
)
