# Empty compiler generated dependencies file for rdfcube_rdf.
# This may be replaced when dependencies are built.
