file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_rules.dir/engine.cc.o"
  "CMakeFiles/rdfcube_rules.dir/engine.cc.o.d"
  "CMakeFiles/rdfcube_rules.dir/paper_rules.cc.o"
  "CMakeFiles/rdfcube_rules.dir/paper_rules.cc.o.d"
  "librdfcube_rules.a"
  "librdfcube_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
