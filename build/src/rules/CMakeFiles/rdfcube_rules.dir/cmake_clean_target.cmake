file(REMOVE_RECURSE
  "librdfcube_rules.a"
)
