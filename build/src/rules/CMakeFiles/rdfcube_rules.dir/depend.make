# Empty dependencies file for rdfcube_rules.
# This may be replaced when dependencies are built.
