
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/engine.cc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/engine.cc.o" "gcc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/engine.cc.o.d"
  "/root/repo/src/sparql/paper_queries.cc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/paper_queries.cc.o" "gcc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/paper_queries.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/parser.cc.o" "gcc" "src/sparql/CMakeFiles/rdfcube_sparql.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
