file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_sparql.dir/engine.cc.o"
  "CMakeFiles/rdfcube_sparql.dir/engine.cc.o.d"
  "CMakeFiles/rdfcube_sparql.dir/paper_queries.cc.o"
  "CMakeFiles/rdfcube_sparql.dir/paper_queries.cc.o.d"
  "CMakeFiles/rdfcube_sparql.dir/parser.cc.o"
  "CMakeFiles/rdfcube_sparql.dir/parser.cc.o.d"
  "librdfcube_sparql.a"
  "librdfcube_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
