file(REMOVE_RECURSE
  "librdfcube_sparql.a"
)
