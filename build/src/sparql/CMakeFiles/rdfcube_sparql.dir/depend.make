# Empty dependencies file for rdfcube_sparql.
# This may be replaced when dependencies are built.
