
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitvector.cc" "src/util/CMakeFiles/rdfcube_util.dir/bitvector.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/bitvector.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/util/CMakeFiles/rdfcube_util.dir/csv.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/csv.cc.o.d"
  "/root/repo/src/util/fault.cc" "src/util/CMakeFiles/rdfcube_util.dir/fault.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/fault.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/rdfcube_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/rdfcube_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/util/CMakeFiles/rdfcube_util.dir/string_util.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/rdfcube_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/rdfcube_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
