file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_util.dir/bitvector.cc.o"
  "CMakeFiles/rdfcube_util.dir/bitvector.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/csv.cc.o"
  "CMakeFiles/rdfcube_util.dir/csv.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/fault.cc.o"
  "CMakeFiles/rdfcube_util.dir/fault.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/random.cc.o"
  "CMakeFiles/rdfcube_util.dir/random.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/status.cc.o"
  "CMakeFiles/rdfcube_util.dir/status.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/string_util.cc.o"
  "CMakeFiles/rdfcube_util.dir/string_util.cc.o.d"
  "CMakeFiles/rdfcube_util.dir/thread_pool.cc.o"
  "CMakeFiles/rdfcube_util.dir/thread_pool.cc.o.d"
  "librdfcube_util.a"
  "librdfcube_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
