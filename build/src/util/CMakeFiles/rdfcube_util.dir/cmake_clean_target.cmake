file(REMOVE_RECURSE
  "librdfcube_util.a"
)
