# Empty compiler generated dependencies file for rdfcube_util.
# This may be replaced when dependencies are built.
