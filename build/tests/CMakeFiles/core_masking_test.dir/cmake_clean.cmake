file(REMOVE_RECURSE
  "CMakeFiles/core_masking_test.dir/core_masking_test.cc.o"
  "CMakeFiles/core_masking_test.dir/core_masking_test.cc.o.d"
  "core_masking_test"
  "core_masking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
