# Empty compiler generated dependencies file for core_masking_test.
# This may be replaced when dependencies are built.
