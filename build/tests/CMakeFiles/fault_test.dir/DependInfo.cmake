
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/fault_test.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/fault_test.dir/fault_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rdfcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qb/CMakeFiles/rdfcube_qb.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/rdfcube_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rdfcube_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/rdfcube_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfcube_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdfcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
