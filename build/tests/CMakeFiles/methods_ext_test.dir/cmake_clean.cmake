file(REMOVE_RECURSE
  "CMakeFiles/methods_ext_test.dir/methods_ext_test.cc.o"
  "CMakeFiles/methods_ext_test.dir/methods_ext_test.cc.o.d"
  "methods_ext_test"
  "methods_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methods_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
