# Empty compiler generated dependencies file for methods_ext_test.
# This may be replaced when dependencies are built.
