file(REMOVE_RECURSE
  "CMakeFiles/qb_test.dir/qb_test.cc.o"
  "CMakeFiles/qb_test.dir/qb_test.cc.o.d"
  "qb_test"
  "qb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
