# Empty compiler generated dependencies file for qb_test.
# This may be replaced when dependencies are built.
