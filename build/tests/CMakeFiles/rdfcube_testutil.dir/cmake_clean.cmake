file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_testutil.dir/test_corpus.cc.o"
  "CMakeFiles/rdfcube_testutil.dir/test_corpus.cc.o.d"
  "librdfcube_testutil.a"
  "librdfcube_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
