file(REMOVE_RECURSE
  "librdfcube_testutil.a"
)
