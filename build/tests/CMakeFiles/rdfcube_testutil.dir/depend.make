# Empty dependencies file for rdfcube_testutil.
# This may be replaced when dependencies are built.
