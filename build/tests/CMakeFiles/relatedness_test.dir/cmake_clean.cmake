file(REMOVE_RECURSE
  "CMakeFiles/relatedness_test.dir/relatedness_test.cc.o"
  "CMakeFiles/relatedness_test.dir/relatedness_test.cc.o.d"
  "relatedness_test"
  "relatedness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relatedness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
