# Empty compiler generated dependencies file for relatedness_test.
# This may be replaced when dependencies are built.
