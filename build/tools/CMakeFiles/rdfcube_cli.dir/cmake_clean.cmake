file(REMOVE_RECURSE
  "CMakeFiles/rdfcube_cli.dir/rdfcube_cli.cpp.o"
  "CMakeFiles/rdfcube_cli.dir/rdfcube_cli.cpp.o.d"
  "rdfcube_cli"
  "rdfcube_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfcube_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
