# Empty dependencies file for rdfcube_cli.
# This may be replaced when dependencies are built.
