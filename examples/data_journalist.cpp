// The paper's motivating scenario (§1, Figures 1-3): a data journalist has
// collected three multidimensional datasets about population, unemployment
// and poverty from different RDF sources and wants to know how their
// observations relate. This example ships the datasets as an embedded Turtle
// document (the paper's Listing 1 style), runs the full pipeline —
// parse -> QB load -> relationship computation — and prints the derived
// table of Figure 3, plus the occurrence matrix (Table 2) and the OCM
// (Table 3(b)).
//
// Build & run:  ./build/examples/data_journalist

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "rdfcube/rdfcube.h"
#include "util/string_util.h"

using namespace rdfcube;

namespace {

// Datasets D1-D3 of Figure 2 over the hierarchies of Figure 1.
const char kJournalistData[] = R"(
@prefix qb:   <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix ex:   <http://example.org/> .

# ---- Code lists (Figure 1) -------------------------------------------------
ex:geoScheme a skos:ConceptScheme .
ex:World    skos:inScheme ex:geoScheme .
ex:Europe   skos:inScheme ex:geoScheme ; skos:broader ex:World .
ex:America  skos:inScheme ex:geoScheme ; skos:broader ex:World .
ex:Greece   skos:inScheme ex:geoScheme ; skos:broader ex:Europe .
ex:Italy    skos:inScheme ex:geoScheme ; skos:broader ex:Europe .
ex:Athens   skos:inScheme ex:geoScheme ; skos:broader ex:Greece .
ex:Ioannina skos:inScheme ex:geoScheme ; skos:broader ex:Greece .
ex:Rome     skos:inScheme ex:geoScheme ; skos:broader ex:Italy .
ex:US       skos:inScheme ex:geoScheme ; skos:broader ex:America .
ex:TX       skos:inScheme ex:geoScheme ; skos:broader ex:US .
ex:Austin   skos:inScheme ex:geoScheme ; skos:broader ex:TX .

ex:timeScheme a skos:ConceptScheme .
ex:AllTime  skos:inScheme ex:timeScheme .
ex:Y2001    skos:inScheme ex:timeScheme ; skos:broader ex:AllTime .
ex:Y2011    skos:inScheme ex:timeScheme ; skos:broader ex:AllTime .
ex:Jan2011  skos:inScheme ex:timeScheme ; skos:broader ex:Y2011 .
ex:Feb2011  skos:inScheme ex:timeScheme ; skos:broader ex:Y2011 .

ex:sexScheme a skos:ConceptScheme .
ex:Total  skos:inScheme ex:sexScheme .
ex:Female skos:inScheme ex:sexScheme ; skos:broader ex:Total .
ex:Male   skos:inScheme ex:sexScheme ; skos:broader ex:Total .

ex:refArea   a qb:DimensionProperty ; qb:codeList ex:geoScheme .
ex:refPeriod a qb:DimensionProperty ; qb:codeList ex:timeScheme .
ex:sex       a qb:DimensionProperty ; qb:codeList ex:sexScheme .
ex:population   a qb:MeasureProperty .
ex:unemployment a qb:MeasureProperty .
ex:poverty      a qb:MeasureProperty .

# ---- D1: population by area, period, sex -----------------------------------
ex:dsd1 a qb:DataStructureDefinition ;
  qb:component ex:c11, ex:c12, ex:c13, ex:c14 .
ex:c11 qb:dimension ex:refArea .
ex:c12 qb:dimension ex:refPeriod .
ex:c13 qb:dimension ex:sex .
ex:c14 qb:measure ex:population .
ex:D1 a qb:DataSet ; qb:structure ex:dsd1 .

ex:o11 a qb:Observation ; qb:dataSet ex:D1 ;
  ex:refArea ex:Athens ; ex:refPeriod ex:Y2001 ; ex:sex ex:Total ;
  ex:population 5000000 .
ex:o12 a qb:Observation ; qb:dataSet ex:D1 ;
  ex:refArea ex:Austin ; ex:refPeriod ex:Y2011 ; ex:sex ex:Male ;
  ex:population 445000 .
ex:o13 a qb:Observation ; qb:dataSet ex:D1 ;
  ex:refArea ex:Austin ; ex:refPeriod ex:Y2011 ; ex:sex ex:Total ;
  ex:population 885000 .

# ---- D2: unemployment + poverty by area, period ------------------------------
ex:dsd2 a qb:DataStructureDefinition ;
  qb:component ex:c21, ex:c22, ex:c23, ex:c24 .
ex:c21 qb:dimension ex:refArea .
ex:c22 qb:dimension ex:refPeriod .
ex:c23 qb:measure ex:unemployment .
ex:c24 qb:measure ex:poverty .
ex:D2 a qb:DataSet ; qb:structure ex:dsd2 .

ex:o21 a qb:Observation ; qb:dataSet ex:D2 ;
  ex:refArea ex:Greece ; ex:refPeriod ex:Y2011 ;
  ex:unemployment 26 ; ex:poverty 15 .
ex:o22 a qb:Observation ; qb:dataSet ex:D2 ;
  ex:refArea ex:Italy ; ex:refPeriod ex:Y2011 ;
  ex:unemployment 20 ; ex:poverty 10 .

# ---- D3: unemployment by area, period ----------------------------------------
ex:dsd3 a qb:DataStructureDefinition ; qb:component ex:c31, ex:c32, ex:c33 .
ex:c31 qb:dimension ex:refArea .
ex:c32 qb:dimension ex:refPeriod .
ex:c33 qb:measure ex:unemployment .
ex:D3 a qb:DataSet ; qb:structure ex:dsd3 .

ex:o31 a qb:Observation ; qb:dataSet ex:D3 ;
  ex:refArea ex:Athens ; ex:refPeriod ex:Y2001 ; ex:unemployment 10 .
ex:o32 a qb:Observation ; qb:dataSet ex:D3 ;
  ex:refArea ex:Athens ; ex:refPeriod ex:Jan2011 ; ex:unemployment 30 .
ex:o33 a qb:Observation ; qb:dataSet ex:D3 ;
  ex:refArea ex:Rome ; ex:refPeriod ex:Feb2011 ; ex:unemployment 7 .
ex:o34 a qb:Observation ; qb:dataSet ex:D3 ;
  ex:refArea ex:Ioannina ; ex:refPeriod ex:Jan2011 ; ex:unemployment 15 .
ex:o35 a qb:Observation ; qb:dataSet ex:D3 ;
  ex:refArea ex:Austin ; ex:refPeriod ex:Y2011 ; ex:unemployment 3 .
)";

std::string Short(const std::string& iri) {
  return std::string(IriLocalName(iri));
}

// Renders one observation's coordinates + measures on a line.
void PrintObservation(const qb::ObservationSet& obs, qb::ObsId id,
                      const char* indent) {
  const qb::CubeSpace& space = obs.space();
  std::printf("%s%-5s |", indent, Short(obs.obs(id).iri).c_str());
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    std::printf(" %-9s",
                Short(space.code_list(d).name(obs.ValueOrRoot(id, d))).c_str());
  }
  std::printf("|");
  for (const auto& [m, value] : obs.obs(id).values) {
    std::printf(" %s=%g", Short(space.measure_iri(m)).c_str(), value);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // --- Parse the three RDF sources. ---------------------------------------
  rdf::TripleStore store;
  Status st = rdf::ParseTurtle(kJournalistData, &store);
  if (!st.ok()) {
    std::fprintf(stderr, "parse: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu triples from 3 sources\n", store.size());

  // --- Load into the multidimensional model. -------------------------------
  auto corpus = qb::LoadCorpusFromRdf(store);
  if (!corpus.ok()) {
    std::fprintf(stderr, "load: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const qb::ObservationSet& obs = *corpus->observations;
  std::printf("loaded %zu observations in %zu datasets over %zu dimensions\n\n",
              obs.size(), obs.num_datasets(), obs.space().num_dimensions());

  // --- The occurrence matrix of Table 2. -----------------------------------
  const core::OccurrenceMatrix om(obs);
  std::printf("=== Occurrence matrix (paper Table 2) ===\n%s\n",
              om.ToTable(obs).c_str());

  // --- The OCM of Table 3(b). -----------------------------------------------
  auto matrices = core::ContainmentMatrices::Compute(om);
  if (!matrices.ok()) {
    std::fprintf(stderr, "%s\n", matrices.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Overall containment matrix (paper Table 3(b)) ===\n%s\n",
              matrices->ToTable(obs).c_str());

  // --- Relationships, rendered like Figure 3. --------------------------------
  core::CollectingSink sink;
  core::EngineOptions options;
  options.method = core::Method::kCubeMasking;
  st = core::ComputeRelationships(obs, options, &sink);
  if (!st.ok()) {
    std::fprintf(stderr, "compute: %s\n", st.ToString().c_str());
    return 1;
  }
  sink.Canonicalize();

  std::printf("=== Derived relationships (paper Figure 3) ===\n");
  std::map<qb::ObsId, std::vector<qb::ObsId>> contains;
  for (const auto& [a, b] : sink.full()) contains[a].push_back(b);
  for (const auto& [container, contained] : contains) {
    PrintObservation(obs, container, "");
    std::printf("  contains:\n");
    for (qb::ObsId b : contained) PrintObservation(obs, b, "    ");
  }
  for (const auto& [a, b] : sink.complementary()) {
    PrintObservation(obs, a, "");
    std::printf("  complements:\n");
    PrintObservation(obs, b, "    ");
  }

  std::printf("\n=== Partial containments (degree > 0.5) ===\n");
  for (const auto& p : sink.partial()) {
    if (p.degree <= 0.5) continue;
    std::printf("  %-4s partially contains %-4s (%.2f)\n",
                Short(obs.obs(p.a).iri).c_str(),
                Short(obs.obs(p.b).iri).c_str(), p.degree);
  }
  return 0;
}
