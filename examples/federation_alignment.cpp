// Federation with dimension alignment: two publishers code the same regions
// under different URI conventions; the align module (the paper's LIMES
// substitute, §4) links the code lists, the corpus is rebuilt over the
// reconciled dimension bus, and complementarity reveals which remote
// observations describe the same points.
//
// Build & run:  ./build/examples/federation_alignment

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "rdfcube/rdfcube.h"

using namespace rdfcube;

// Status is [[nodiscard]] tree-wide; abort loudly if corpus setup fails.
static void Ensure(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

int main() {
  // --- Source A codes (the journalist's reference vocabulary). --------------
  const std::vector<std::string> reference = {
      "http://ref.example.org/code/Athens",
      "http://ref.example.org/code/Ioannina",
      "http://ref.example.org/code/Rome",
      "http://ref.example.org/code/Milan",
      "http://ref.example.org/code/Berlin",
      "http://ref.example.org/code/Hamburg",
      "http://ref.example.org/code/Paris",
      "http://ref.example.org/code/Madrid",
  };

  // --- Source B publishes the same places under its own namespace with
  // case/separator noise (simulated remote source).
  datagen::PerturbOptions perturb;
  perturb.seed = 7;
  perturb.suffix_prob = 0.0;
  const std::vector<std::string> remote = datagen::PerturbUris(reference, perturb);

  std::printf("reference codes: %zu, remote codes: %zu\n", reference.size(),
              remote.size());
  std::printf("example remote URI: %s\n\n", remote[0].c_str());

  // --- Alignment (cosine over URI local-name trigrams, like the paper's
  // LIMES configuration).
  align::MatcherOptions matcher;
  matcher.threshold = 0.55;
  const std::vector<align::Link> links = align::MatchUris(remote, reference, matcher);
  std::printf("alignment found %zu links:\n", links.size());
  std::unordered_map<std::string, std::string> to_reference;
  for (const align::Link& link : links) {
    std::printf("  %-55s -> %-45s (%.2f)\n", link.source.c_str(),
                link.target.c_str(), link.similarity);
    to_reference[link.source] = link.target;
  }
  if (links.size() != remote.size()) {
    std::fprintf(stderr, "alignment incomplete; raise the threshold data\n");
    return 1;
  }

  // --- Build the reconciled corpus: source B's observations are translated
  // to reference codes before loading (the paper: incoming data are
  // "translated to a reference vocabulary before being used").
  qb::CorpusBuilder builder;
  Ensure(builder.AddDimension("ex:city", "AllCities"));
  for (const std::string& code : reference) {
    Ensure(builder.AddCode("ex:city", code, "AllCities"));
  }
  Ensure(builder.AddMeasure("ex:population"));
  Ensure(builder.AddMeasure("ex:airQuality"));
  Ensure(builder.AddDataset("sourceA", {"ex:city"}, {"ex:population"}));
  Ensure(builder.AddDataset("sourceB", {"ex:city"}, {"ex:airQuality"}));

  // Source A rows.
  for (std::size_t i = 0; i < reference.size(); ++i) {
    Ensure(builder.AddObservation("sourceA", "A/obs" + std::to_string(i),
                                  {{"ex:city", reference[i]}},
                                  {{"ex:population", 1.0e5 * double(i + 1)}}));
  }
  // Source B rows arrive with remote codes; translate through the alignment.
  for (std::size_t i = 0; i < remote.size(); ++i) {
    Ensure(builder.AddObservation("sourceB", "B/obs" + std::to_string(i),
                                  {{"ex:city", to_reference.at(remote[i])}},
                                  {{"ex:airQuality", 10.0 + double(i)}}));
  }
  auto corpus = std::move(builder).Build();
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // --- Complementarity across the two sources. -------------------------------
  core::CollectingSink sink;
  core::EngineOptions options;
  options.method = core::Method::kCubeMasking;
  const Status st =
      core::ComputeRelationships(*corpus->observations, options, &sink);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\ncomplementary pairs after reconciliation: %zu\n",
              sink.complementary().size());
  for (const auto& [a, b] : sink.complementary()) {
    std::printf("  %s <-> %s\n", corpus->observations->obs(a).iri.c_str(),
                corpus->observations->obs(b).iri.c_str());
  }
  std::printf("\n(each pair joins population with air quality for one city)\n");
  return 0;
}
