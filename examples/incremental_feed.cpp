// Incremental maintenance (paper §6 future work, implemented here): a live
// feed of observations arrives one at a time; the IncrementalEngine keeps
// the relationship sets current, and retirement removes a source's
// contributions without recomputation.
//
// Build & run:  ./build/examples/incremental_feed

#include <cstdio>

#include "rdfcube/rdfcube.h"

using namespace rdfcube;

int main() {
  // Simulated feed: a slice of the statistical corpus arriving in order.
  auto corpus = datagen::GenerateRealWorldPrefix(/*total_observations=*/800,
                                                 /*seed=*/3);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const qb::ObservationSet& obs = *corpus->observations;

  core::IncrementalEngine engine(&obs, core::RelationshipSelector::All());

  std::printf("%-10s %-12s %-12s %-12s\n", "ingested", "full", "partial",
              "complement");
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    const Status st = engine.OnObservationAdded(i);
    if (!st.ok()) {
      std::fprintf(stderr, "add %u: %s\n", i, st.ToString().c_str());
      return 1;
    }
    if ((i + 1) % 200 == 0 || i + 1 == obs.size()) {
      std::printf("%-10u %-12zu %-12zu %-12zu\n", i + 1, engine.num_full(),
                  engine.num_partial(), engine.num_complementary());
    }
  }

  // Retire dataset D6's observations (say the GDP source revoked access).
  const qb::DatasetMeta& d6 = obs.dataset(5);
  std::size_t retired = 0;
  for (qb::ObsId id : d6.observations) {
    if (engine.OnObservationRetired(id).ok()) ++retired;
  }
  std::printf("\nretired %zu observations of %s\n", retired, d6.iri.c_str());
  std::printf("after retirement: full=%zu partial=%zu complement=%zu\n",
              engine.num_full(), engine.num_partial(),
              engine.num_complementary());

  // Spot query: does any pair still involve a D6 observation?
  core::CollectingSink sink;
  engine.Export(&sink);
  for (const auto& [a, b] : sink.full()) {
    if (obs.obs(a).dataset == 5 || obs.obs(b).dataset == 5) {
      std::fprintf(stderr, "stale relationship survived retirement!\n");
      return 1;
    }
  }
  std::printf("no stale relationships reference the retired dataset\n");
  return 0;
}
