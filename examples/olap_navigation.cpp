// OLAP-style exploration on top of containment: roll-up / drill-down
// navigation between observations of a generated statistical corpus, skyline
// extraction (the "top-level observations" of the paper's related work), and
// k-dominant skylines.
//
// Build & run:  ./build/examples/olap_navigation

#include <cstdio>
#include <map>

#include "rdfcube/rdfcube.h"
#include "util/string_util.h"

using namespace rdfcube;

namespace {

std::string Coord(const qb::ObservationSet& obs, qb::ObsId id) {
  const qb::CubeSpace& space = obs.space();
  std::string out = "(";
  bool first = true;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    const hierarchy::CodeId c = obs.ValueOrRoot(id, d);
    if (c == space.code_list(d).root()) continue;  // hide roots for brevity
    if (!first) out += ", ";
    out += std::string(IriLocalName(space.code_list(d).name(c)));
    first = false;
  }
  out += first ? "ALL)" : ")";
  return out;
}

}  // namespace

int main() {
  // A small slice of the paper's seven-dataset statistical corpus.
  auto corpus = datagen::GenerateRealWorldPrefix(/*total_observations=*/1500,
                                                 /*seed=*/42);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const qb::ObservationSet& obs = *corpus->observations;
  std::printf("corpus: %zu observations, %zu datasets, %zu dimensions\n",
              obs.size(), obs.num_datasets(), obs.space().num_dimensions());

  const core::Lattice lattice(obs);
  std::printf("lattice: %zu populated cubes\n\n", lattice.num_cubes());

  // --- Roll-up / drill-down navigation via full containment. ----------------
  core::CollectingSink sink;
  core::CubeMaskingOptions options;
  options.selector = core::RelationshipSelector::FullOnly();
  Status st = core::RunCubeMasking(obs, lattice, options, &sink);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("full containment pairs: %zu\n", sink.full().size());

  // Pick the observation with the most drill-down targets and show its
  // navigation neighbourhood.
  std::map<qb::ObsId, std::vector<qb::ObsId>> drill_down, roll_up;
  for (const auto& [a, b] : sink.full()) {
    drill_down[a].push_back(b);
    roll_up[b].push_back(a);
  }
  qb::ObsId hub = 0;
  std::size_t best = 0;
  for (const auto& [a, targets] : drill_down) {
    if (targets.size() > best) {
      best = targets.size();
      hub = a;
    }
  }
  if (best > 0) {
    std::printf("\n--- navigation from %s %s ---\n", obs.obs(hub).iri.c_str(),
                Coord(obs, hub).c_str());
    std::printf("drill-down targets (it fully contains %zu):\n", best);
    std::size_t shown = 0;
    for (qb::ObsId b : drill_down[hub]) {
      std::printf("  v %s %s\n", obs.obs(b).iri.c_str(),
                  Coord(obs, b).c_str());
      if (++shown == 5) {
        std::printf("  ... (%zu more)\n", best - shown);
        break;
      }
    }
    if (!roll_up[hub].empty()) {
      std::printf("roll-up targets (%zu observations contain it)\n",
                  roll_up[hub].size());
    }
  }

  // --- Skylines. --------------------------------------------------------------
  const auto skyline = core::ComputeSkyline(obs, lattice);
  std::printf("\nskyline: %zu of %zu observations are not strictly contained\n",
              skyline.size(), obs.size());
  const std::size_t k = obs.space().num_dimensions() - 2;
  const auto k_dominant = core::ComputeKDominantSkyline(obs, k);
  std::printf("%zu-dominant skyline: %zu observations\n", k,
              k_dominant.size());
  std::printf("(k-dominance prunes %s aggressively, per Chan et al. [6])\n",
              k_dominant.size() <= skyline.size() ? "more" : "less");
  return 0;
}
