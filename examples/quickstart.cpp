// Quickstart: build a tiny two-source cube programmatically, compute all
// three relationship types with the cubeMasking engine, and print them.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "rdfcube/rdfcube.h"

using namespace rdfcube;

// Status is [[nodiscard]] tree-wide; even a quickstart checks its returns
// (every Add below is statically well-formed, so Ensure only documents that).
static void Ensure(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

int main() {
  // --- 1. Describe the schema bus: dimensions with hierarchical code lists.
  qb::CorpusBuilder builder;
  Ensure(builder.AddDimension("ex:geo", "World"));
  Ensure(builder.AddCode("ex:geo", "Europe", "World"));
  Ensure(builder.AddCode("ex:geo", "Greece", "Europe"));
  Ensure(builder.AddCode("ex:geo", "Athens", "Greece"));
  Ensure(builder.AddDimension("ex:year", "AllYears"));
  Ensure(builder.AddCode("ex:year", "2015", "AllYears"));
  Ensure(builder.AddCode("ex:year", "2016", "AllYears"));

  Ensure(builder.AddMeasure("ex:population"));
  Ensure(builder.AddMeasure("ex:unemployment"));

  // --- 2. Two datasets from different publishers.
  Ensure(builder.AddDataset("eurostat", {"ex:geo", "ex:year"},
                            {"ex:population"}));
  Ensure(builder.AddDataset("worldbank", {"ex:geo", "ex:year"},
                            {"ex:unemployment"}));

  Ensure(builder.AddObservation("eurostat", "pop-greece-2015",
                                {{"ex:geo", "Greece"}, {"ex:year", "2015"}},
                                {{"ex:population", 10.7e6}}));
  Ensure(builder.AddObservation("eurostat", "pop-athens-2015",
                                {{"ex:geo", "Athens"}, {"ex:year", "2015"}},
                                {{"ex:population", 3.1e6}}));
  Ensure(builder.AddObservation("worldbank", "unemp-greece-2015",
                                {{"ex:geo", "Greece"}, {"ex:year", "2015"}},
                                {{"ex:unemployment", 24.9}}));
  Ensure(builder.AddObservation("worldbank", "unemp-athens-2016",
                                {{"ex:geo", "Athens"}, {"ex:year", "2016"}},
                                {{"ex:unemployment", 22.3}}));

  auto corpus = std::move(builder).Build();
  if (!corpus.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 corpus.status().ToString().c_str());
    return 1;
  }
  const qb::ObservationSet& obs = *corpus->observations;

  // --- 3. Compute relationships (cubeMasking: fast and lossless).
  core::CollectingSink sink;
  core::EngineOptions options;
  options.method = core::Method::kCubeMasking;
  core::EngineReport report;
  const Status st = core::ComputeRelationships(obs, options, &sink, &report);
  if (!st.ok()) {
    std::fprintf(stderr, "computation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // --- 4. Consume the results.
  std::printf("computed in %.3f ms over %zu cubes\n\n",
              report.elapsed_seconds * 1e3, report.masking.num_cubes);
  std::printf("full containment (aggregating -> detailed):\n");
  for (const auto& [a, b] : sink.full()) {
    std::printf("  %s  fully contains  %s\n", obs.obs(a).iri.c_str(),
                obs.obs(b).iri.c_str());
  }
  std::printf("\npartial containment (degree = fraction of dimensions):\n");
  for (const auto& p : sink.partial()) {
    std::printf("  %s  partially contains  %s   (degree %.2f)\n",
                obs.obs(p.a).iri.c_str(), obs.obs(p.b).iri.c_str(), p.degree);
  }
  std::printf("\ncomplementarity (same point, different facts):\n");
  for (const auto& [a, b] : sink.complementary()) {
    std::printf("  %s  complements  %s\n", obs.obs(a).iri.c_str(),
                obs.obs(b).iri.c_str());
  }
  return 0;
}
