// Quantifying the degree of relatedness between data sources (paper §1):
// given the seven-dataset statistical corpus, tally cross-dataset
// relationships per source pair and rank which sources combine best —
// the decision the motivating data journalist needs to make before
// integrating anything.
//
// Build & run:  ./build/examples/source_relatedness

#include <algorithm>
#include <cstdio>

#include "core/relatedness.h"
#include "rdfcube/rdfcube.h"

using namespace rdfcube;

int main() {
  auto corpus = datagen::GenerateRealWorldPrefix(/*total_observations=*/2000,
                                                 /*seed=*/42);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const qb::ObservationSet& obs = *corpus->observations;
  std::printf("corpus: %zu observations across %zu sources\n\n", obs.size(),
              obs.num_datasets());

  // One cubeMasking pass feeds the relatedness tally.
  core::RelatednessSink sink(&obs);
  core::CubeMaskingOptions options;
  Status st = core::RunCubeMasking(obs, options, &sink);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  auto matrix = sink.Compute();
  std::sort(matrix.begin(), matrix.end(),
            [](const core::DatasetRelatedness& x,
               const core::DatasetRelatedness& y) { return x.score > y.score; });

  std::printf("%-5s %-5s %-8s %-8s %-8s %-9s %-8s %s\n", "src", "src",
              "dimOvl", "measOvl", "full", "partial", "compl", "score");
  for (const auto& r : matrix) {
    std::printf("%-5s %-5s %-8.2f %-8.2f %-8zu %-9zu %-8zu %.4f\n",
                obs.dataset(r.a).iri.c_str(), obs.dataset(r.b).iri.c_str(),
                r.dimension_overlap, r.measure_overlap, r.full_containments,
                r.partial_containments, r.complementarities, r.score);
  }

  // Spot-check the similarity metric on the best pair's observations.
  if (!matrix.empty()) {
    const auto& best = matrix.front();
    std::printf("\nmost related sources: %s and %s\n",
                obs.dataset(best.a).iri.c_str(),
                obs.dataset(best.b).iri.c_str());
    const qb::ObsId a = obs.dataset(best.a).observations.front();
    const qb::ObsId b = obs.dataset(best.b).observations.front();
    std::printf("hierarchy similarity of their first observations: %.3f\n",
                core::ObservationSimilarity(obs, a, b));
  }
  return 0;
}
