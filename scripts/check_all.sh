#!/bin/sh
# Single entry point for every gate this repo defines:
#
#   build        tier-1 build of the main tree
#   ctest        the full test suite (includes lint_test, race_stress_test
#                and the header self-containment target)
#   deps         scripts/check_deps.sh (the architecture gate: include graph
#                vs the declared layer DAG in tools/layers.txt, plus the
#                DOT/JSON graph exports)
#   static       scripts/check_static_analysis.sh (rdfcube_lint, the
#                rdfcube_callgraph hot-path gate, clang-tidy, the clang
#                -Wthread-safety proof, gcc -fanalyzer)
#   soak smoke   the server chaos soak (tests/server_soak_test) re-run in
#                RDFCUBE_BENCH_SMOKE=1 mode — a seconds-scale pass with a
#                different fault seed than the full-length ctest run
#   serve scrape a live rdfcube_serverd instance queried over TCP: a known
#                request count is sent through rdfcube_cli, the kMetrics
#                scrape is validated by scripts/check_prometheus.sh, and the
#                per-op requests_total must match the count exactly (the
#                scrape artifact is kept in build/serve_scrape for CI upload)
#   bench json   scripts/check_bench_json.sh (BENCH_*.json schema + the
#                phases-sum-to-wall-clock invariant, smoke-mode run,
#                2x wall-clock ceiling vs bench/baseline)
#   sanitizers   scripts/check_sanitizers.sh (ASan, UBSan, TSan trees)
#
# Usage: scripts/check_all.sh [--fast]
#   --fast skips the sanitizer rebuilds (three extra -j1 trees; by far the
#   slowest stage) — the mode meant for inner-loop use. CI runs the full set.
set -eu

cd "$(dirname "$0")/.."
fast=0
if [ "${1:-}" = "--fast" ]; then fast=1; fi

echo "== build =="
cmake -B build >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build build -j1

echo "== ctest =="
ctest --test-dir build --output-on-failure

echo "== server soak (smoke) =="
RDFCUBE_BENCH_SMOKE=1 ./build/tests/server_soak_test

echo "== serve scrape =="
scripts/check_serve_scrape.sh build

echo "== architecture gate =="
# Also runs inside the static stage; kept explicit so --fast still fails
# loudly on a layering break even if the static stage is later reshaped.
scripts/check_deps.sh

echo "== static analysis =="
scripts/check_static_analysis.sh

echo "== bench json =="
scripts/check_bench_json.sh --baseline bench/baseline

if [ "$fast" -eq 0 ]; then
  echo "== sanitizers =="
  scripts/check_sanitizers.sh
fi

echo "check_all passed"
