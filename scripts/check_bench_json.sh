#!/bin/sh
# BENCH_*.json gate: every bench binary must emit a machine-readable run
# report whose phase breakdown actually accounts for the run.
#
#   1. Builds the fastest bench binary (bench_fig5f_cube_ratio) plus the
#      serving-path harness (bench_serve) and runs both in smoke mode with
#      RDFCUBE_BENCH_OUT_DIR pointed at $build/bench_reports (kept around so
#      CI can upload the JSONs as artifacts).
#   2. Validates each emitted BENCH_<name>.json: parses as JSON, carries the
#      schema keys (name, schema_version, wall_seconds, meta, stats, phases,
#      span_rollup, metrics), and the per-phase total_seconds — including the
#      synthetic "(harness)" entry — sum to within 10% of wall_seconds.
#   3. BENCH_serve.json additionally must report the serving workloads:
#      <w>.{p50_us,p99_us,qps,requests,errors} for w in {point, scan}, with
#      zero request errors and zero sheds (the harness sizes the admission
#      queue so a healthy server never sheds — a shed here is a regression),
#      plus per-op RED stats op.<op>.{requests,mean_us} for every wire op,
#      whose request counts must sum to exactly server.requests_total (the
#      metrics-conservation law the chaos soak also enforces).
#
# The 10% tolerance is the acceptance criterion for the observability layer:
# CapturePhases partitions the root span exactly, so a drift here means the
# harness stopped timing through the span tree.
#
#   4. With --baseline <dir>, each smoke run's wall_seconds is compared
#      against the committed default-size baseline of the same name: the
#      smoke sizes are strictly smaller than the default sizes, so a smoke
#      run taking more than 2x the default-size baseline's wall clock is an
#      order-of-magnitude perf regression, not noise. Reports with no
#      committed baseline are skipped with a notice.
#
# Usage: scripts/check_bench_json.sh [build-dir] [--baseline <dir>]
#        (build-dir default: build)
set -eu

cd "$(dirname "$0")/.."
build="build"
baseline_dir=""
while [ $# -gt 0 ]; do
  case "$1" in
    --baseline)
      [ $# -ge 2 ] || { echo "usage: $0 [build-dir] [--baseline <dir>]" >&2; exit 2; }
      baseline_dir="$2"
      shift 2
      ;;
    --baseline=*)
      baseline_dir="${1#--baseline=}"
      shift
      ;;
    -*)
      echo "usage: $0 [build-dir] [--baseline <dir>]" >&2
      exit 2
      ;;
    *)
      build="$1"
      shift
      ;;
  esac
done

cmake -B "$build" >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target bench_fig5f_cube_ratio bench_serve

out_dir="$build/bench_reports"
rm -rf "$out_dir"
mkdir -p "$out_dir"

for bin in bench_fig5f_cube_ratio bench_serve; do
  echo "== bench smoke run: $bin =="
  RDFCUBE_BENCH_SMOKE=1 RDFCUBE_BENCH_OUT_DIR="$out_dir" \
    "$build/bench/$bin" >/dev/null
done

for report in "$out_dir/BENCH_fig5f_cube_ratio.json" \
              "$out_dir/BENCH_serve.json"; do
  if [ ! -f "$report" ]; then
    echo "FAIL: $report was not written" >&2
    exit 1
  fi

  echo "== validate $report =="
  python3 - "$report" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

required = ["name", "schema_version", "wall_seconds", "meta", "stats",
            "phases", "span_rollup", "metrics"]
missing = [key for key in required if key not in report]
if missing:
    sys.exit(f"FAIL: missing keys {missing} in {path}")

if report["schema_version"] != 1:
    sys.exit(f"FAIL: unexpected schema_version {report['schema_version']}")

wall = report["wall_seconds"]
if not wall > 0:
    sys.exit(f"FAIL: wall_seconds must be positive, got {wall}")

phases = report["phases"]
if not phases:
    sys.exit("FAIL: phases is empty")
for phase in phases:
    for key in ("name", "count", "total_seconds", "self_seconds"):
        if key not in phase:
            sys.exit(f"FAIL: phase entry missing {key}: {phase}")
if not any(p["name"] == "(harness)" for p in phases):
    sys.exit("FAIL: no synthetic (harness) phase entry")

total = sum(p["total_seconds"] for p in phases)
drift = abs(total - wall) / wall
if drift > 0.10:
    sys.exit(f"FAIL: phase sum {total:.6f}s vs wall {wall:.6f}s "
             f"({drift:.1%} drift, >10%)")

metrics = report["metrics"]
for kind in ("counters", "gauges", "histograms"):
    if kind not in metrics:
        sys.exit(f"FAIL: metrics missing {kind}")

if report["name"] == "serve":
    stats = report["stats"]
    for w in ("point", "scan"):
        for key in ("p50_us", "p99_us", "qps", "requests", "errors"):
            if f"{w}.{key}" not in stats:
                sys.exit(f"FAIL: serve stats missing {w}.{key}")
        if not stats[f"{w}.requests"] > 0:
            sys.exit(f"FAIL: serve ran zero {w} requests")
        if stats[f"{w}.errors"] != 0:
            sys.exit(f"FAIL: serve saw {stats[f'{w}.errors']} {w} errors")
        if not stats[f"{w}.qps"] > 0:
            sys.exit(f"FAIL: serve {w}.qps must be positive")
        if not stats[f"{w}.p99_us"] >= stats[f"{w}.p50_us"]:
            sys.exit(f"FAIL: serve {w} p99 below p50")
    if stats.get("server.shed_total", 0) != 0:
        sys.exit("FAIL: healthy-path serve bench shed requests")
    # Per-op RED attribution: every wire op reports its request count and
    # mean latency, and the op counts conserve the server's own tally —
    # every worker-handled request ticked exactly one per-op counter.
    ops = ("ping", "containers", "contained", "complements", "partial",
           "scan", "stats", "metrics", "slowlog", "tracedump")
    for op in ops:
        for key in ("requests", "mean_us"):
            if f"op.{op}.{key}" not in stats:
                sys.exit(f"FAIL: serve stats missing op.{op}.{key}")
    op_sum = sum(stats[f"op.{op}.requests"] for op in ops)
    if op_sum != stats.get("server.requests_total"):
        sys.exit(f"FAIL: per-op requests sum {op_sum} != "
                 f"server.requests_total {stats.get('server.requests_total')} "
                 f"— per-op RED counters do not conserve the request tally")
    for w in ("point", "scan"):
        needed = [f"serve/{'point_lookup' if w == 'point' else 'bulk_scan'}"]
        if not any(p["name"] in needed for p in phases):
            sys.exit(f"FAIL: serve phases missing {needed[0]}")

print(f"OK: {report['name']}: {len(phases)} phases sum to {total:.6f}s "
      f"of {wall:.6f}s wall ({drift:.2%} drift)")
EOF

  if [ -n "$baseline_dir" ]; then
    base="$baseline_dir/$(basename "$report")"
    if [ -f "$base" ]; then
      echo "== baseline compare $(basename "$report") =="
      python3 - "$report" "$base" <<'EOF'
import json
import sys

current_path, baseline_path = sys.argv[1], sys.argv[2]
with open(current_path) as f:
    current = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

wall = current["wall_seconds"]
base_wall = baseline["wall_seconds"]
# The current run is smoke-sized, the committed baseline default-sized:
# smoke <= default is the expectation, so 2x default is a hard ceiling.
if wall > 2.0 * base_wall:
    sys.exit(f"FAIL: {current['name']}: smoke wall {wall:.3f}s exceeds 2x "
             f"the default-size baseline {base_wall:.3f}s — wall-clock "
             f"regression")
print(f"OK: {current['name']}: smoke wall {wall:.3f}s within 2x baseline "
      f"{base_wall:.3f}s")
EOF
    else
      echo "== no committed baseline for $(basename "$report"); skipped =="
    fi
  fi
done

echo "bench json check passed"
