#!/bin/sh
# BENCH_*.json gate: every bench binary must emit a machine-readable run
# report whose phase breakdown actually accounts for the run.
#
#   1. Builds the fastest bench binary (bench_fig5f_cube_ratio) and runs it
#      in smoke mode with RDFCUBE_BENCH_OUT_DIR pointed at a scratch dir.
#   2. Validates the emitted BENCH_<name>.json: parses as JSON, carries the
#      schema keys (name, schema_version, wall_seconds, meta, stats, phases,
#      span_rollup, metrics), and the per-phase total_seconds — including the
#      synthetic "(harness)" entry — sum to within 10% of wall_seconds.
#
# The 10% tolerance is the acceptance criterion for the observability layer:
# CapturePhases partitions the root span exactly, so a drift here means the
# harness stopped timing through the span tree.
#
# Usage: scripts/check_bench_json.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "$build" >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target bench_fig5f_cube_ratio

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

echo "== bench smoke run =="
RDFCUBE_BENCH_SMOKE=1 RDFCUBE_BENCH_OUT_DIR="$out_dir" \
  "$build/bench/bench_fig5f_cube_ratio" >/dev/null

report="$out_dir/BENCH_fig5f_cube_ratio.json"
if [ ! -f "$report" ]; then
  echo "FAIL: $report was not written" >&2
  exit 1
fi

echo "== validate $report =="
python3 - "$report" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)

required = ["name", "schema_version", "wall_seconds", "meta", "stats",
            "phases", "span_rollup", "metrics"]
missing = [key for key in required if key not in report]
if missing:
    sys.exit(f"FAIL: missing keys {missing} in {path}")

if report["schema_version"] != 1:
    sys.exit(f"FAIL: unexpected schema_version {report['schema_version']}")

wall = report["wall_seconds"]
if not wall > 0:
    sys.exit(f"FAIL: wall_seconds must be positive, got {wall}")

phases = report["phases"]
if not phases:
    sys.exit("FAIL: phases is empty")
for phase in phases:
    for key in ("name", "count", "total_seconds", "self_seconds"):
        if key not in phase:
            sys.exit(f"FAIL: phase entry missing {key}: {phase}")
if not any(p["name"] == "(harness)" for p in phases):
    sys.exit("FAIL: no synthetic (harness) phase entry")

total = sum(p["total_seconds"] for p in phases)
drift = abs(total - wall) / wall
if drift > 0.10:
    sys.exit(f"FAIL: phase sum {total:.6f}s vs wall {wall:.6f}s "
             f"({drift:.1%} drift, >10%)")

metrics = report["metrics"]
for kind in ("counters", "gauges", "histograms"):
    if kind not in metrics:
        sys.exit(f"FAIL: metrics missing {kind}")

print(f"OK: {report['name']}: {len(phases)} phases sum to {total:.6f}s "
      f"of {wall:.6f}s wall ({drift:.2%} drift)")
EOF

echo "bench json check passed"
