#!/bin/sh
# Architecture gate: tools/rdfcube_deps extracts the comment/string-aware
# #include graph of src/, tools/ and bench/, checks it against the declared
# layer DAG in tools/layers.txt (undeclared edges, modules missing from the
# manifest, file- and module-level cycles, transitive-only namespace uses),
# and exports the graph as DOT + JSON into the build tree so CI can upload
# exactly the artifacts that explain a failure (the exports are written even
# when the gate fails).
#
# Usage: scripts/check_deps.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "$build" >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target rdfcube_deps

"$build/tools/rdfcube_deps" . \
  --dot="$build/deps_graph.dot" \
  --json="$build/deps_graph.json"
