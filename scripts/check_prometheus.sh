#!/bin/sh
# Prometheus exposition-format gate: validates a text scrape (as served by
# the kMetrics wire op / `rdfcube_cli query <host:port> metrics`) against
# the subset of the format the registry emits:
#
#   1. Every sample line belongs to a metric family introduced by a
#      `# HELP <name> <help>` line immediately followed by
#      `# TYPE <name> counter|gauge|histogram`, each exactly once.
#   2. Metric family names follow the repo scheme
#      rdfcube_<module>_<name>[_<unit>] (lint check `metric-names`).
#   3. Histogram families emit cumulative `<name>_bucket{le="..."}` samples
#      with strictly increasing bounds, a final le="+Inf" bucket, and
#      `<name>_sum` / `<name>_count`; bucket counts are monotonically
#      non-decreasing and the +Inf bucket equals `<name>_count`.
#   4. Sample values parse as numbers; no duplicate sample names outside
#      histogram series; no stray text.
#
# Usage: scripts/check_prometheus.sh <scrape-file>
#        (or `-` to read the scrape from stdin)
set -eu

if [ $# -ne 1 ]; then
  echo "usage: $0 <scrape-file|->" >&2
  exit 2
fi

input="$1"
if [ "$input" = "-" ]; then
  tmp="$(mktemp)"
  trap 'rm -f "$tmp"' EXIT
  cat > "$tmp"
  input="$tmp"
fi
[ -f "$input" ] || { echo "FAIL: no such scrape file: $input" >&2; exit 1; }

python3 - "$input" <<'EOF'
import re
import sys

path = sys.argv[1]
with open(path) as f:
    lines = f.read().split("\n")
if lines and lines[-1] == "":
    lines.pop()

NAME_RE = re.compile(r"^rdfcube_[a-z0-9]+_[a-z0-9_]+$")
SAMPLE_RE = re.compile(
    r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r' (?P<value>\S+)$')
LE_RE = re.compile(r'^le="(?P<bound>[^"]*)"$')


def fail(lineno, msg):
    sys.exit(f"FAIL: line {lineno}: {msg}")


families = {}   # name -> {"kind": str, "help": bool, "line": int}
samples = {}    # sample name (incl. _bucket/_sum/_count) -> list of entries
order = []      # family names in exposition order
pending_help = None

for i, line in enumerate(lines, start=1):
    if line == "":
        fail(i, "blank line in exposition")
    if line.startswith("# HELP "):
        parts = line.split(" ", 3)
        if len(parts) < 4:
            fail(i, "malformed HELP line")
        name = parts[2]
        if name in families:
            fail(i, f"duplicate HELP for {name}")
        if pending_help is not None:
            fail(i, f"HELP for {pending_help} not followed by its TYPE")
        pending_help = name
        continue
    if line.startswith("# TYPE "):
        parts = line.split(" ")
        if len(parts) != 4:
            fail(i, "malformed TYPE line")
        name, kind = parts[2], parts[3]
        if kind not in ("counter", "gauge", "histogram"):
            fail(i, f"unknown TYPE {kind} for {name}")
        if pending_help != name:
            fail(i, f"TYPE for {name} not preceded by its HELP")
        if not NAME_RE.match(name):
            fail(i, f"metric name {name} violates the "
                    "rdfcube_<module>_<name>_<unit> scheme")
        families[name] = {"kind": kind, "line": i}
        order.append(name)
        pending_help = None
        continue
    if line.startswith("#"):
        fail(i, "unknown comment line (only HELP/TYPE allowed)")
    m = SAMPLE_RE.match(line)
    if m is None:
        fail(i, f"unparseable sample line: {line!r}")
    sample = m.group("name")
    base = sample
    for suffix in ("_bucket", "_sum", "_count"):
        if sample.endswith(suffix) and sample[: -len(suffix)] in families:
            base = sample[: -len(suffix)]
            break
    if base not in families:
        fail(i, f"sample {sample} has no preceding HELP/TYPE family")
    value = m.group("value")
    try:
        float(value)
    except ValueError:
        fail(i, f"sample value {value!r} is not a number")
    samples.setdefault(base, []).append(
        {"sample": sample, "labels": m.group("labels"),
         "value": float(value), "line": i})

if pending_help is not None:
    sys.exit(f"FAIL: trailing HELP for {pending_help} without TYPE")
if not order:
    sys.exit("FAIL: scrape contains no metric families")

for name in order:
    family = families[name]
    series = samples.get(name, [])
    if not series:
        sys.exit(f"FAIL: family {name} declared but has no samples")
    kind = family["kind"]
    if kind in ("counter", "gauge"):
        if len(series) != 1:
            sys.exit(f"FAIL: {kind} {name} has {len(series)} samples")
        entry = series[0]
        if entry["sample"] != name or entry["labels"] is not None:
            sys.exit(f"FAIL: {kind} {name} sample is malformed "
                     f"(line {entry['line']})")
        if kind == "counter" and entry["value"] < 0:
            sys.exit(f"FAIL: counter {name} is negative")
        continue
    # Histogram: cumulative buckets with increasing le, then _sum, _count.
    buckets, total, seen_sum = [], None, False
    for entry in series:
        if entry["sample"] == name + "_bucket":
            le = LE_RE.match(entry["labels"] or "")
            if le is None:
                sys.exit(f"FAIL: histogram {name} bucket without an le "
                         f"label (line {entry['line']})")
            bound = le.group("bound")
            buckets.append((float("inf") if bound == "+Inf"
                            else float(bound), entry["value"]))
        elif entry["sample"] == name + "_sum":
            seen_sum = True
        elif entry["sample"] == name + "_count":
            total = entry["value"]
        else:
            sys.exit(f"FAIL: unexpected sample {entry['sample']} in "
                     f"histogram {name}")
    if not buckets:
        sys.exit(f"FAIL: histogram {name} has no buckets")
    if buckets[-1][0] != float("inf"):
        sys.exit(f"FAIL: histogram {name} missing the +Inf bucket")
    if not seen_sum or total is None:
        sys.exit(f"FAIL: histogram {name} missing _sum or _count")
    bounds = [b for b, _ in buckets]
    if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
        sys.exit(f"FAIL: histogram {name} le bounds not strictly increasing")
    counts = [c for _, c in buckets]
    if counts != sorted(counts):
        sys.exit(f"FAIL: histogram {name} bucket counts not cumulative")
    if counts[-1] != total:
        sys.exit(f"FAIL: histogram {name} +Inf bucket {counts[-1]} != "
                 f"_count {total}")

print(f"OK: {len(order)} metric families, "
      f"{sum(len(v) for v in samples.values())} samples, "
      f"{sum(1 for f in families.values() if f['kind'] == 'histogram')} "
      f"histograms all well-formed")
EOF
