#!/bin/sh
# Builds the robustness/fault/race test suites under ASan, UBSan and TSan and
# runs them.
#
# The fault-injection and checkpoint/resume paths push hostile bytes through
# every deserializer and exercise crash/retry control flow; running them
# sanitized is the cheapest way to prove "rejects cleanly" never means
# "reads out of bounds first". The thread pass adds race_stress_test, which
# exists specifically to give TSan contention to observe (thread-pool
# submit/error races, concurrent masking runs, checkpoint storms, admission
# queue and snapshot-swap storms) plus the fault-injected server soak; the
# address/undefined passes add server_test, whose protocol fuzzers push
# hostile frames through the wire decoders, and snapshot_fuzz_test, which
# mutates every byte of a snapshot file through LoadFrom. Uses separate build trees so the
# sanitized builds never pollute the main ./build.
#
# Usage: scripts/check_sanitizers.sh [sanitizer ...]
#   sanitizers: address undefined thread (default: all three)
set -eu

sanitizers="${*:-address undefined thread}"
cd "$(dirname "$0")/.."

for san in $sanitizers; do
  case "$san" in
    thread) targets="race_stress_test fault_test robustness_test server_soak_test" ;;
    *)      targets="robustness_test fault_test binary_io_test server_test snapshot_fuzz_test" ;;
  esac
  regex="$(echo "$targets" | tr ' ' '|')"
  dir="build-$(echo "$san" | cut -c1-4)"
  echo "== configuring $dir (-fsanitize=$san) =="
  cmake -B "$dir" -DRDFCUBE_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  # -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
  # shellcheck disable=SC2086  # word splitting of $targets is intended
  cmake --build "$dir" -j1 --target $targets
  echo "== $san: ctest -R '$regex' =="
  # TSan aborts with exit 66 on the first data race (halt_on_error default
  # varies by toolchain); pin the options so a race always fails the run.
  # detect_deadlocks=1 turns on TSan's runtime lock-order graph — the
  # dynamic twin of the static lock-order gate (rdfcube_callgraph
  # lock-order-cycle vs tools/lock_order.txt, DESIGN.md §5i): any
  # inversion the race_stress lock-order section manages to interleave
  # fails the run with both acquisition stacks (second_deadlock_stack=1).
  TSAN_OPTIONS="halt_on_error=1 detect_deadlocks=1 second_deadlock_stack=1" \
    ctest --test-dir "$dir" -R "$regex" --output-on-failure
done

echo "sanitizer runs passed"
