#!/bin/sh
# Builds the robustness/fault test suites under ASan and UBSan and runs them.
#
# The fault-injection and checkpoint/resume paths push hostile bytes through
# every deserializer and exercise crash/retry control flow; running them
# sanitized is the cheapest way to prove "rejects cleanly" never means
# "reads out of bounds first". Uses separate build trees so the sanitized
# builds never pollute the main ./build.
#
# Usage: scripts/check_sanitizers.sh [test targets...]
#   default targets: robustness_test fault_test binary_io_test
set -eu

targets="${*:-robustness_test fault_test binary_io_test}"
regex="$(echo "$targets" | tr ' ' '|')"
cd "$(dirname "$0")/.."

for san in address undefined; do
  dir="build-$(echo "$san" | cut -c1-4)"
  echo "== configuring $dir (-fsanitize=$san) =="
  cmake -B "$dir" -DRDFCUBE_SANITIZE="$san" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  # -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
  # shellcheck disable=SC2086  # word splitting of $targets is intended
  cmake --build "$dir" -j1 --target $targets
  echo "== $san: ctest -R '$regex' =="
  ctest --test-dir "$dir" -R "$regex" --output-on-failure
done

echo "sanitizer runs passed"
