#!/bin/sh
# Live serving-observability gate (the PR-8 acceptance check): boots a real
# rdfcube_serverd on the demo corpus, drives a known mix of requests through
# rdfcube_cli over TCP, then
#
#   1. validates the kMetrics scrape with scripts/check_prometheus.sh
#      (HELP/TYPE pairing, name scheme, histogram le-monotonicity),
#   2. asserts the per-op rdfcube_server_<op>_requests_total counters match
#      the request mix EXACTLY — worker ops count, reactor-inline obs
#      scrapes count only toward their own op, and a scrape never counts
#      itself (RED attribution is exact, not approximate),
#   3. exercises the slowlog and tracez endpoints end-to-end, and
#   4. SIGTERMs the daemon and requires an orderly drain (exit 0 plus the
#      structured "drained" log line).
#
# Artifacts (scrape, slowlog, trace, daemon log) land in
# <build>/serve_scrape/ so CI can upload them.
#
# Usage: scripts/check_serve_scrape.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "$build" >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target rdfcube_serverd rdfcube_cli

out_dir="$build/serve_scrape"
rm -rf "$out_dir"
mkdir -p "$out_dir"

serverd="$build/tools/rdfcube_serverd"
cli="$build/tools/rdfcube_cli"
corpus="tests/data/demo.ttl"

"$serverd" "$corpus" --port=0 --slowlog=16 \
  > "$out_dir/serverd.out" 2> "$out_dir/serverd.log" &
srv_pid=$!
trap 'kill "$srv_pid" 2>/dev/null || true' EXIT

port=""
for _ in $(seq 1 50); do
  port=$(sed -n 's/^serving on port \([0-9][0-9]*\)$/\1/p' \
         "$out_dir/serverd.out")
  [ -n "$port" ] && break
  if ! kill -0 "$srv_pid" 2>/dev/null; then
    echo "FAIL: rdfcube_serverd exited before serving" >&2
    cat "$out_dir/serverd.log" >&2
    exit 1
  fi
  sleep 0.2
done
if [ -z "$port" ]; then
  echo "FAIL: rdfcube_serverd never announced its port" >&2
  exit 1
fi
addr="127.0.0.1:$port"
echo "serverd up on $addr"

# The known request mix (per-op counts asserted against the scrape below):
# 7 ping + 3 containers + 2 scan + 1 stats ride the worker path, 1 tracedump
# rides admission too (its capture window sleeps on a worker), and 1 slowlog
# is answered inline by the reactor. 14 worker requests total.
for _ in 1 2 3 4 5 6 7; do "$cli" query "$addr" ping      > /dev/null; done
for _ in 1 2 3;         do "$cli" query "$addr" containers 0 > /dev/null; done
for _ in 1 2;           do "$cli" query "$addr" scan --limit=5 > /dev/null; done
"$cli" query "$addr" stats              > /dev/null
"$cli" query "$addr" tracez --limit=10  > "$out_dir/tracez.json"
"$cli" query "$addr" slowlog            > "$out_dir/slowlog.json"
"$cli" query "$addr" metrics            > "$out_dir/metrics.prom"

echo "== exposition format =="
scripts/check_prometheus.sh "$out_dir/metrics.prom"

echo "== exact per-op attribution =="
python3 - "$out_dir/metrics.prom" "$out_dir/slowlog.json" \
          "$out_dir/tracez.json" <<'EOF'
import json
import sys

scrape_path, slowlog_path, tracez_path = sys.argv[1:4]
values = {}
with open(scrape_path) as f:
    for line in f:
        if line.startswith("#"):
            continue
        name, _, value = line.rstrip("\n").partition(" ")
        if "{" not in name:
            values[name] = float(value)

# The scrape is taken last, so every earlier request is fully attributed;
# the metrics op itself reads 0 because a scrape increments its own counter
# only after rendering the response text.
expected = {
    "rdfcube_server_ping_requests_total": 7,
    "rdfcube_server_containers_requests_total": 3,
    "rdfcube_server_scan_requests_total": 2,
    "rdfcube_server_stats_requests_total": 1,
    "rdfcube_server_tracedump_requests_total": 1,
    "rdfcube_server_slowlog_requests_total": 1,
    "rdfcube_server_metrics_requests_total": 0,
    # Worker tally: slowlog and metrics were answered inline by the reactor.
    "rdfcube_server_requests_total": 14,
    "rdfcube_server_shed_total": 0,
}
for name, want in expected.items():
    got = values.get(name)
    if got != want:
        sys.exit(f"FAIL: {name} = {got}, want {want}")

with open(slowlog_path) as f:
    slowlog = json.load(f)
if not isinstance(slowlog, list) or not slowlog:
    sys.exit("FAIL: slowlog dump is empty despite worker traffic")
for entry in slowlog:
    for key in ("op", "request_id", "latency_us", "deadline_remaining_ms",
                "snapshot_version", "sequence"):
        if key not in entry:
            sys.exit(f"FAIL: slowlog entry missing {key}: {entry}")

with open(tracez_path) as f:
    trace = json.load(f)
if "traceEvents" not in trace:
    sys.exit("FAIL: tracez output is not Chrome trace JSON")

print(f"OK: per-op counters match the request mix exactly "
      f"({len(slowlog)} slowlog entries, "
      f"{len(trace['traceEvents'])} trace events)")
EOF

echo "== orderly drain =="
kill -TERM "$srv_pid"
drain_rc=0
wait "$srv_pid" || drain_rc=$?
trap - EXIT
if [ "$drain_rc" -ne 0 ]; then
  echo "FAIL: serverd exited $drain_rc on SIGTERM (wanted orderly drain)" >&2
  cat "$out_dir/serverd.log" >&2
  exit 1
fi
if ! grep -q 'msg="drained"' "$out_dir/serverd.log"; then
  echo "FAIL: no structured 'drained' log line after SIGTERM" >&2
  cat "$out_dir/serverd.log" >&2
  exit 1
fi

echo "serve scrape check passed (artifacts in $out_dir)"
