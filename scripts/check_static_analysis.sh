#!/bin/sh
# Static-analysis gate: the repo-specific checker plus three compiler-level
# analyses. Dual-compiler by design — clang carries the thread-safety proof,
# gcc carries the path-sensitive -fanalyzer pass — so a single-toolchain
# container still runs what it can and says what it skipped.
#
#   1. tools/rdfcube_lint — mechanical enforcement of the CLAUDE.md
#      invariants (no-throw hot paths, std::function recursion in
#      sparql/rules, umbrella-header sync, Doxygen on public items, checked
#      parses, checked .value() unwraps, bare stopwatches, lock annotations,
#      obs shadowing, metric names) plus the architecture checks it shares
#      with rdfcube_deps (layer-dag, include-cycle, iwyu-direct). Always
#      runs; failing it fails the gate. A machine-readable copy of the
#      findings lands in <build>/lint_report.json for artifact upload.
#   1b. tools/rdfcube_callgraph — the cross-TU call-graph analyzer and
#      hot-path purity gate (DESIGN.md §5g): links every src/ function
#      definition across translation units, computes transitive
#      alloc/lock/throw summaries, and fails when an RDFCUBE_HOT kernel
#      reaches an allocation or lock. Exports <build>/callgraph.{json,dot}
#      and <build>/hot_path_report.json for artifact upload. (The same gate
#      runs inside rdfcube_lint as the hot-path-alloc/hot-path-lock checks;
#      this stage additionally produces the graph artifacts.) The same
#      invocation carries the taint gate (DESIGN.md §5h): forward taint
#      propagation from RDFCUBE_TAINT_SOURCE decode entry points proves no
#      untrusted byte count reaches a sized sink (resize/reserve/assign/
#      new[]/memcpy-family) without a limit comparison, and that size
#      arithmetic on tainted values goes through util/safe_math. Findings
#      fail the gate with source-to-sink witness chains; the full taint
#      state lands in <build>/taint_report.json for artifact upload. The
#      same invocation also carries the lock gate (DESIGN.md §5i): it
#      replays every MutexLock scope, links the acquisitions into a global
#      lock-order graph, and fails on lock-order-cycle (nesting not declared
#      in tools/lock_order.txt, or any cycle), blocking-under-lock
#      (RDFCUBE_BLOCKING primitive reachable with a Mutex held), and
#      callback-under-lock (std::function/virtual dispatch with a Mutex
#      held). The lock graph + findings land in <build>/lock_report.json
#      (and <build>/lock_graph.dot) for artifact upload.
#   2. scripts/check_deps.sh — the architecture gate proper: rdfcube_deps
#      re-runs the layer checks standalone (a missing tools/layers.txt is an
#      error here, where rdfcube_lint merely skips the layer checks) and
#      exports the include graph as <build>/deps_graph.{dot,json}.
#   3. clang-tidy over compile_commands.json with the checked-in .clang-tidy
#      profile, chunked so one bad translation unit cannot starve the rest
#      of the run and any failing chunk fails the gate. Skipped with a
#      notice when the binary is absent.
#   4. clang -Wthread-safety: a separate build tree configured with
#      -DRDFCUBE_THREAD_SAFETY=ON compiles the library under
#      -Wthread-safety -Wthread-safety-beta -Werror, turning the
#      util/thread_annotations.h capability annotations into a compile-time
#      lock-discipline proof. Skipped with a notice when clang++ is absent.
#   5. gcc -fanalyzer over the leaf libraries (src/util, src/obs, src/rdf:
#      no dependencies above the C++ runtime, so the path-sensitive analysis
#      stays tractable). C++ support is still experimental in gcc 12; the
#      two known false-positive categories on this tree are suppressed
#      (-Wanalyzer-malloc-leak fires through inlined std::string temporaries,
#      -Wanalyzer-use-of-uninitialized-value through std::function's stored
#      callable) and everything else is -Werror. Skipped with a notice when
#      g++ is absent.
#
# After the lint stage the merged SARIF (every lexical, architecture,
# call-graph, taint, and lock finding in one SARIF 2.1.0 run) is written to
# <build>/analysis.sarif — emitted on failure too, so CI can upload the
# findings that failed the gate.
#
# Usage: scripts/check_static_analysis.sh [build-dir]   (default: build)
#
# Exit codes: 0 = every stage that ran passed; non-zero = the first failing
# stage's status (stage 1 lint findings, 1b call-graph/taint/lock findings,
# 2 architecture violations, 3-5 compiler diagnostics under -Werror).
# Stages 3-5 are skipped with a notice when their toolchain is absent;
# skipping is not a failure.
usage() {
  cat <<'EOF'
Usage: scripts/check_static_analysis.sh [build-dir]   (default: build)

Stages, in order:
  1   rdfcube_lint            lexical + architecture + call-graph checks;
                              writes <build>/lint_report.json and the merged
                              <build>/analysis.sarif (all findings, SARIF
                              2.1.0; written on failure too)
  1b  rdfcube_callgraph       hot-path purity + taint + lock-order gates;
                              writes <build>/callgraph.{json,dot},
                              <build>/hot_path_report.json,
                              <build>/taint_report.json,
                              <build>/lock_report.json,
                              <build>/lock_graph.dot
  2   scripts/check_deps.sh   architecture gate standalone (missing
                              tools/layers.txt is an error here); writes
                              <build>/deps_graph.{dot,json}
  3   clang-tidy              chunked over compile_commands.json (skipped
                              when not installed)
  4   clang -Wthread-safety   capability-annotation proof in build-tsafe
                              (skipped when clang++ absent)
  5   gcc -fanalyzer          path-sensitive pass over leaf libraries
                              (skipped when g++ absent)

Exit codes: 0 on success; otherwise the first failing stage's exit status.
Toolchain-absent skips (stages 3-5) do not fail the gate.
EOF
}
case "${1:-}" in
  -h|--help) usage; exit 0 ;;
esac
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

# Reuse the existing tree's generator; just make sure the lint binary and the
# compilation database exist.
cmake -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target rdfcube_lint rdfcube_callgraph

echo "== rdfcube_lint =="
# One JSON run for the artifact, one SARIF run for the merged code-scanning
# upload (both carry the full finding set — lexical, architecture,
# call-graph, taint, lock), then the human-readable listing on failure.
lint_status=0
"$build/tools/rdfcube_lint" . --format=json > "$build/lint_report.json" ||
  lint_status=$?
"$build/tools/rdfcube_lint" . --format=sarif > "$build/analysis.sarif" || true
if [ "$lint_status" -ne 0 ]; then
  "$build/tools/rdfcube_lint" . || true
  exit "$lint_status"
fi
echo "rdfcube_lint: clean ($build/lint_report.json, $build/analysis.sarif)"

echo "== call-graph / hot-path + taint + lock gate (rdfcube_callgraph) =="
if [ -x "$build/tools/rdfcube_callgraph" ]; then
  "$build/tools/rdfcube_callgraph" . \
    --json="$build/callgraph.json" \
    --dot="$build/callgraph.dot" \
    --hot-report="$build/hot_path_report.json" \
    --taint-report="$build/taint_report.json" \
    --lock-report="$build/lock_report.json" \
    --lock-dot="$build/lock_graph.dot"
  echo "call graph exported ($build/callgraph.json," \
       "$build/hot_path_report.json, $build/taint_report.json," \
       "$build/lock_report.json)"
else
  echo "== rdfcube_callgraph binary missing; hot/taint/lock gate skipped =="
fi

echo "== architecture gate (rdfcube_deps) =="
scripts/check_deps.sh "$build"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # Chunked: clang-tidy stops a whole invocation on the first unreadable
  # file, so batching 4 TUs per process bounds the blast radius; xargs
  # propagates any chunk's failure and set -e turns it into a gate failure.
  find src tools -name '*.cc' -o -name '*.cpp' \
    | xargs -n 4 clang-tidy -p "$build" --quiet
else
  echo "== clang-tidy not installed; skipped =="
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Wthread-safety =="
  # A dedicated tree: the thread-safety analysis needs clang, and mixing
  # compilers in one build directory invalidates the cache.
  cmake -B build-tsafe \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DRDFCUBE_THREAD_SAFETY=ON >/dev/null
  # Every module library: annotated classes (ThreadPool, FaultInjector,
  # MetricsRegistry, trace collector, TripleStore) are used across all of
  # them, and a REQUIRES violation only surfaces in the TU that locks wrong.
  for lib in rdfcube_base rdfcube_util rdfcube_obs rdfcube_rdf rdfcube_hierarchy \
             rdfcube_qb rdfcube_cluster rdfcube_core rdfcube_sparql \
             rdfcube_rules rdfcube_datagen rdfcube_align; do
    cmake --build build-tsafe -j1 --target "$lib"
  done
else
  echo "== clang++ not installed; -Wthread-safety proof skipped =="
fi

if command -v g++ >/dev/null 2>&1; then
  echo "== gcc -fanalyzer (leaf libraries) =="
  for f in src/base/*.cc src/util/*.cc src/obs/*.cc src/rdf/*.cc; do
    echo "  $f"
    g++ -std=c++20 -Isrc -fsyntax-only \
      -fanalyzer \
      -Wno-analyzer-use-of-uninitialized-value \
      -Wno-analyzer-malloc-leak \
      -Werror "$f"
  done
else
  echo "== g++ not installed; -fanalyzer pass skipped =="
fi

echo "static analysis passed"
