#!/bin/sh
# Static-analysis gate: the repo-specific checker plus clang-tidy.
#
#   1. tools/rdfcube_lint — mechanical enforcement of the CLAUDE.md
#      invariants (no-throw hot paths, std::function recursion in
#      sparql/rules, umbrella-header sync, Doxygen on public items,
#      checked parses). Always runs; failing it fails the gate.
#   2. clang-tidy over compile_commands.json with the checked-in .clang-tidy
#      profile. Skipped with a notice when the binary is absent (the CI
#      image carries it; minimal dev containers may not).
#
# Usage: scripts/check_static_analysis.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

# Reuse the existing tree's generator; just make sure the lint binary and the
# compilation database exist.
cmake -B "$build" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
# -j1: parallel compiles OOM-kill cc1plus on small containers (CLAUDE.md).
cmake --build "$build" -j1 --target rdfcube_lint

echo "== rdfcube_lint =="
"$build/tools/rdfcube_lint" .

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # shellcheck disable=SC2046  # the file list is intentionally word-split
  clang-tidy -p "$build" --quiet $(find src tools -name '*.cc' -o -name '*.cpp')
else
  echo "== clang-tidy not installed; skipped (rdfcube_lint pass only) =="
fi

echo "static analysis passed"
