#include "align/matcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/string_util.h"

namespace rdfcube {
namespace align {

namespace {

// Trigram multiset as a sparse count map (padded with sentinels so short
// strings still produce trigrams).
std::unordered_map<std::string, int> Trigrams(const std::string& s) {
  std::unordered_map<std::string, int> grams;
  const std::string padded = "^^" + s + "$$";
  for (std::size_t i = 0; i + 3 <= padded.size(); ++i) {
    ++grams[padded.substr(i, 3)];
  }
  return grams;
}

double Cosine(const std::unordered_map<std::string, int>& a,
              const std::unordered_map<std::string, int>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [gram, count] : a) {
    na += static_cast<double>(count) * count;
    auto it = b.find(gram);
    if (it != b.end()) dot += static_cast<double>(count) * it->second;
  }
  for (const auto& [gram, count] : b) {
    nb += static_cast<double>(count) * count;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::string Normalize(const std::string& uri, const MatcherOptions& options) {
  std::string s = options.local_name_only
                      ? std::string(IriLocalName(uri))
                      : uri;
  if (options.case_insensitive) s = ToLowerAscii(s);
  return s;
}

}  // namespace

double TrigramCosine(const std::string& a, const std::string& b) {
  return Cosine(Trigrams(a), Trigrams(b));
}

std::vector<Link> MatchUris(const std::vector<std::string>& sources,
                            const std::vector<std::string>& targets,
                            const MatcherOptions& options) {
  // Precompute target trigram profiles.
  std::vector<std::unordered_map<std::string, int>> target_grams;
  target_grams.reserve(targets.size());
  for (const std::string& t : targets) {
    target_grams.push_back(Trigrams(Normalize(t, options)));
  }
  std::vector<bool> target_used(targets.size(), false);

  std::vector<Link> links;
  for (const std::string& source : sources) {
    const auto source_grams = Trigrams(Normalize(source, options));
    double best = -1.0;
    std::size_t best_t = 0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      if (target_used[t]) continue;
      const double sim = Cosine(source_grams, target_grams[t]);
      if (sim > best) {
        best = sim;
        best_t = t;
      }
    }
    if (best >= options.threshold) {
      target_used[best_t] = true;
      links.push_back({source, targets[best_t], best});
    }
  }
  return links;
}

}  // namespace align
}  // namespace rdfcube
