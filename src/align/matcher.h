// Dimension-value alignment (LIMES substitute): the paper's preprocessing
// step links equivalent hierarchy nodes across sources by cosine similarity
// over URI identifiers (§4: "used their cosine distance in order to find
// close matches based on the identifiers usually found in the suffix part of
// a URI"). This module provides the same capability with a trigram cosine
// matcher so the pipeline is runnable end-to-end without external tooling.

#ifndef RDFCUBE_ALIGN_MATCHER_H_
#define RDFCUBE_ALIGN_MATCHER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"

namespace rdfcube {
namespace align {

/// \brief One alignment link (source URI -> target URI) with its score.
struct Link {
  std::string source;
  std::string target;
  double similarity;  // cosine in [0, 1]
};

/// \brief Tuning knobs for the trigram-cosine code-list matcher.
struct MatcherOptions {
  /// Links below this cosine similarity are dropped.
  double threshold = 0.7;
  /// Compare only the URI local name (after the last '/' or '#'), like the
  /// paper's configuration; false compares whole URIs.
  bool local_name_only = true;
  /// Lower-case before extracting trigrams.
  bool case_insensitive = true;
};

/// \brief Computes, for every source URI, the best-scoring target URI above
/// the threshold (stable greedy one-to-one matching: each target is used at
/// most once, ties broken by source order).
std::vector<Link> MatchUris(const std::vector<std::string>& sources,
                            const std::vector<std::string>& targets,
                            const MatcherOptions& options = {});

/// Character-trigram cosine similarity between two strings (exposed for
/// tests and custom pipelines).
double TrigramCosine(const std::string& a, const std::string& b);

}  // namespace align
}  // namespace rdfcube

#endif  // RDFCUBE_ALIGN_MATCHER_H_
