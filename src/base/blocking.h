// Blocking annotation for the cross-TU lock-order gate (DESIGN.md §5i).
//
// RDFCUBE_BLOCKING marks a function *definition* as one that can park the
// calling thread for an unbounded (or deadline-bounded) time: socket I/O
// (server/socket_io.h ConnectTo/WriteFrame/ReadFrame), ThreadPool
// submit-and-wait, condition-variable waits (MutexLock::Wait*), sleeps, and
// anything else that hands the CPU back to the scheduler while other threads
// may be spinning on a lock this thread holds.
//
// The callgraph analyzer (tools/callgraph, lint check blocking-under-lock)
// propagates the blocking summary backwards through transitive callers —
// exactly like the hot-path alloc/lock facts — and fails when any blocking
// function is *reachable* from a call site that executes with a
// rdfcube::Mutex held. Holding a lock across a block inflates tail latency
// for every thread contending on that lock and, combined with a second lock,
// is the classic lost-wakeup/deadlock recipe.
//
// One sanctioned exception the analyzer grants automatically: waiting on a
// condition variable *through the lock being held* (`lock.Wait(cv)` /
// `lock.WaitWithDeadline(cv, d)` where `lock` is the active MutexLock).
// That wait releases the mutex for its duration, so the held set at the wait
// site excludes that mutex. Waiting on a *different* MutexLock's condvar
// while this one stays held is still a finding.
//
// The macro must sit on the *definition* (the declaration carrying the `{`
// body): the analyzer is lexical and reads the annotation from the function
// header it extracts. It expands to nothing — it exists purely for the
// analyzer (and the human reader).
//
// Usage:
//   RDFCUBE_BLOCKING Status WriteFrame(int fd, const std::string& payload,
//                                      const Deadline& deadline) { ... }

#ifndef RDFCUBE_BASE_BLOCKING_H_
#define RDFCUBE_BASE_BLOCKING_H_

/// Marks a function definition as one that can park the calling thread
/// (socket/file I/O, condvar waits, sleeps, ThreadPool waits): enrolls it in
/// the blocking-under-lock gate — no call path may reach it while a
/// rdfcube::Mutex is held (DESIGN.md §5i).
#define RDFCUBE_BLOCKING

#endif  // RDFCUBE_BASE_BLOCKING_H_
