// Hot/cold path annotations for the relationship kernels.
//
// RDFCUBE_HOT marks a function *definition* as a hot-path kernel. It does two
// things at once:
//   1. compiles to [[gnu::hot]] (gcc/clang), hinting layout/optimization, and
//   2. opts the function into the static hot-path purity gate
//      (tools/callgraph, lint checks hot-path-alloc / hot-path-lock): the
//      function and everything it transitively calls must stay free of heap
//      allocation (new/malloc/unreserved container growth) and of
//      rdfcube::Mutex / std::mutex acquisition.
//
// RDFCUBE_COLD is the escape hatch: it marks a function as a deliberate
// slow path (error formatting, diagnostics). The callgraph analyzer stops
// transitive fact propagation at cold functions, so a hot kernel may call a
// cold helper on its failure branch without tripping the gate — the idiom for
// "move formatting off the hot path".
//
// Both must sit on the *definition* (the declaration that carries the `{`
// body): the analyzer is lexical and reads the annotation from the function
// header it extracts. Annotating only a forward declaration does nothing.
//
// Usage:
//   RDFCUBE_HOT bool Covers(const BitVector& other) const { ... }
//   RDFCUBE_COLD static Status PointLookupNotFound(qb::ObsId id) { ... }

#ifndef RDFCUBE_BASE_HOT_H_
#define RDFCUBE_BASE_HOT_H_

#if defined(__GNUC__) || defined(__clang__)
/// Marks a function definition as a hot-path kernel: compiler layout hint
/// plus enrollment in the hot-path purity gate (no alloc, no locks,
/// transitively — see tools/callgraph and DESIGN.md §5g).
#define RDFCUBE_HOT [[gnu::hot]]
/// Marks a function definition as a deliberate slow path; transitive
/// hot-path fact propagation stops here (the "formatting off the hot path"
/// escape hatch).
#define RDFCUBE_COLD [[gnu::cold]]
#else
#define RDFCUBE_HOT
#define RDFCUBE_COLD
#endif

#endif  // RDFCUBE_BASE_HOT_H_
