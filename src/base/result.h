// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef RDFCUBE_BASE_RESULT_H_
#define RDFCUBE_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace rdfcube {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// The canonical return type for operations that produce a value but may
/// fail, e.g. `Result<Dataset> LoadDataset(...)`. Mirrors arrow::Result /
/// absl::StatusOr. [[nodiscard]] for the same reason as Status: a dropped
/// Result hides the failure *and* leaks the value.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return st;` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result must not be built from an OK Status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value to `lhs` (which must already be declared or be a
/// declaration like `auto x`).
#define RDFCUBE_ASSIGN_OR_RETURN(lhs, rexpr)        \
  RDFCUBE_ASSIGN_OR_RETURN_IMPL(                    \
      RDFCUBE_CONCAT_NAME(_result_, __LINE__), lhs, rexpr)

#define RDFCUBE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define RDFCUBE_CONCAT_NAME(a, b) RDFCUBE_CONCAT_NAME_INNER(a, b)
#define RDFCUBE_CONCAT_NAME_INNER(a, b) a##b

}  // namespace rdfcube

#endif  // RDFCUBE_BASE_RESULT_H_
