#include "base/status.h"

namespace rdfcube {

std::string_view StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace rdfcube
