// Status: lightweight error propagation without exceptions on hot paths.
// Modeled after the RocksDB / Arrow Status idiom.

#ifndef RDFCUBE_BASE_STATUS_H_
#define RDFCUBE_BASE_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace rdfcube {

/// \brief Outcome of a fallible operation.
///
/// A Status is either OK (the common, allocation-free case) or carries an
/// error code plus a human-readable message. Functions that can fail return
/// Status (or Result<T>, see result.h) instead of throwing: parsing malformed
/// Turtle, loading an ill-formed cube, or querying an unknown dimension are
/// expected runtime conditions, not programming errors.
///
/// The class is [[nodiscard]]: silently dropping a returned Status produces
/// plausible-but-wrong results instead of failures (exactly the bug class the
/// paper's semantics make expensive to debug), so every discarded return is a
/// compile error under -Werror.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kParseError,
    kOutOfRange,
    kFailedPrecondition,
    kTimedOut,
    kResourceExhausted,
    kInternal,
    kIOError,
  };

  /// Constructs an OK status.
  Status() = default;

  /// \name Factory functions for each error code.
  /// @{
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  [[nodiscard]] static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  [[nodiscard]] static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  [[nodiscard]] static Status ParseError(std::string_view msg) {
    return Status(Code::kParseError, msg);
  }
  [[nodiscard]] static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  [[nodiscard]] static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  [[nodiscard]] static Status TimedOut(std::string_view msg) {
    return Status(Code::kTimedOut, msg);
  }
  [[nodiscard]] static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  [[nodiscard]] static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  [[nodiscard]] static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  /// @}

  bool ok() const { return rep_ == nullptr; }
  Code code() const { return rep_ == nullptr ? Code::kOk : rep_->code; }

  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsAlreadyExists() const { return code() == Code::kAlreadyExists; }
  bool IsParseError() const { return code() == Code::kParseError; }
  bool IsOutOfRange() const { return code() == Code::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == Code::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code() == Code::kTimedOut; }
  bool IsResourceExhausted() const {
    return code() == Code::kResourceExhausted;
  }
  bool IsInternal() const { return code() == Code::kInternal; }
  bool IsIOError() const { return code() == Code::kIOError; }

  /// Error message, empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ == nullptr ? kEmpty : rep_->message;
  }

  /// "OK" or "<CodeName>: <message>" for diagnostics and logging.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg)
      : rep_(std::make_shared<const Rep>(Rep{code, std::string(msg)})) {}

  struct Rep {
    Code code;
    std::string message;
  };
  // shared_ptr keeps Status copyable and cheap to pass; OK stays pointer-free.
  std::shared_ptr<const Rep> rep_;
};

/// Returns the symbolic name of a status code, e.g. "NotFound".
std::string_view StatusCodeName(Status::Code code);

/// Propagates a non-OK Status to the caller. Use inside functions that
/// themselves return Status.
#define RDFCUBE_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::rdfcube::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace rdfcube

#endif  // RDFCUBE_BASE_STATUS_H_
