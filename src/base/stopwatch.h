// Wall-clock stopwatch used by the benchmark harnesses and timeout guards.

#ifndef RDFCUBE_BASE_STOPWATCH_H_
#define RDFCUBE_BASE_STOPWATCH_H_

#include <chrono>
#include <limits>

namespace rdfcube {

/// \brief Monotonic wall-clock timer.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds (the obs::TraceSpan / histogram unit).
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Cooperative deadline for long-running comparison methods.
///
/// The paper reports SPARQL/rule methods as "t/o" (timed out) beyond small
/// inputs; benches pass a Deadline into those engines so they abandon work
/// and report a TimedOut status the way the original experiments capped runs.
class Deadline {
 public:
  /// No deadline: never expires.
  Deadline() : limit_seconds_(-1.0) {}

  /// Expires `seconds` from now.
  explicit Deadline(double seconds) : limit_seconds_(seconds) {}

  bool Expired() const {
    return limit_seconds_ >= 0.0 && watch_.ElapsedSeconds() > limit_seconds_;
  }

  /// True when this deadline carries a limit (the default-constructed
  /// Deadline never expires and reports no limit).
  bool HasLimit() const { return limit_seconds_ >= 0.0; }

  /// Seconds until expiry, clamped at 0 once expired. Without a limit this
  /// returns +infinity — a deadline that never comes — so callers can
  /// distinguish "already expired" (0.0) from "no limit" without a separate
  /// HasLimit() probe. (Before this sentinel both cases returned 0.0.)
  double RemainingSeconds() const {
    if (!HasLimit()) return std::numeric_limits<double>::infinity();
    const double rest = limit_seconds_ - watch_.ElapsedSeconds();
    return rest > 0.0 ? rest : 0.0;
  }

 private:
  Stopwatch watch_;
  double limit_seconds_;
};

}  // namespace rdfcube

#endif  // RDFCUBE_BASE_STOPWATCH_H_
