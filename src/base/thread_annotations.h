// Compile-time lock discipline (DESIGN.md §5e).
//
// Clang's -Wthread-safety capability analysis turns the lock invariants this
// tree used to keep in comments ("guarded by mu_", "call with the lock held")
// into build errors. The macros below expand to the Clang thread-safety
// attributes when the compiler understands them and to nothing otherwise, so
// GCC builds are byte-for-byte unaffected.
//
// libstdc++'s std::mutex carries no capability attributes, so locking through
// std::lock_guard is invisible to the analysis. Mutex and MutexLock below are
// zero-overhead annotated wrappers: Mutex is the capability, MutexLock is the
// RDFCUBE_SCOPED_CAPABILITY guard (holding a std::unique_lock so
// condition-variable waits work through MutexLock::Wait without dropping the
// analyzed capability).
//
// Idiom at a glance:
//
//   class Worklist {
//    public:
//     void Push(Item item) {
//       MutexLock lock(&mu_);
//       items_.push_back(std::move(item));   // OK: capability held
//       ready_.notify_one();
//     }
//    private:
//     void CompactLocked() RDFCUBE_REQUIRES(mu_);  // caller holds mu_
//     Mutex mu_;
//     std::condition_variable ready_ RDFCUBE_CONDVAR_PAIRED_WITH(mu_);
//     std::vector<Item> items_ RDFCUBE_GUARDED_BY(mu_);
//   };
//
// Build with scripts/check_static_analysis.sh (clang stage) or directly:
//   CXX=clang++ cmake -B build-tsafe -DRDFCUBE_THREAD_SAFETY=ON

#ifndef RDFCUBE_BASE_THREAD_ANNOTATIONS_H_
#define RDFCUBE_BASE_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/blocking.h"
#include "base/stopwatch.h"

#if defined(__clang__) && defined(__has_attribute)
#define RDFCUBE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define RDFCUBE_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (applied to the class declaration).
#define RDFCUBE_CAPABILITY(x) RDFCUBE_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define RDFCUBE_SCOPED_CAPABILITY RDFCUBE_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define RDFCUBE_GUARDED_BY(x) RDFCUBE_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define RDFCUBE_PT_GUARDED_BY(x) RDFCUBE_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function precondition: the caller already holds the capability.
#define RDFCUBE_REQUIRES(...) \
  RDFCUBE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function precondition: the caller holds the capability at least shared.
#define RDFCUBE_REQUIRES_SHARED(...) \
  RDFCUBE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively) and does not release it.
#define RDFCUBE_ACQUIRE(...) \
  RDFCUBE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Shared-acquisition counterpart of RDFCUBE_ACQUIRE.
#define RDFCUBE_ACQUIRE_SHARED(...) \
  RDFCUBE_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability.
#define RDFCUBE_RELEASE(...) \
  RDFCUBE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Shared-release counterpart of RDFCUBE_RELEASE.
#define RDFCUBE_RELEASE_SHARED(...) \
  RDFCUBE_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value meaning success, e.g. RDFCUBE_TRY_ACQUIRE(true).
#define RDFCUBE_TRY_ACQUIRE(...) \
  RDFCUBE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock guard
/// for functions that acquire it themselves).
#define RDFCUBE_EXCLUDES(...) \
  RDFCUBE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Declares lock acquisition order: this capability before the given ones.
#define RDFCUBE_ACQUIRED_BEFORE(...) \
  RDFCUBE_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Declares lock acquisition order: this capability after the given ones.
#define RDFCUBE_ACQUIRED_AFTER(...) \
  RDFCUBE_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define RDFCUBE_ASSERT_CAPABILITY(x) \
  RDFCUBE_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the given capability.
#define RDFCUBE_RETURN_CAPABILITY(x) \
  RDFCUBE_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the unchecked access is safe.
#define RDFCUBE_NO_THREAD_SAFETY_ANALYSIS \
  RDFCUBE_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Documentation-only marker pairing a std::condition_variable member with
/// the Mutex its waiters hold. Expands to nothing on every compiler (a
/// condition variable is not itself a capability: notify_* is deliberately
/// legal without the lock) but satisfies the lock-annotation lint and tells
/// the reader which lock the wait predicate is evaluated under.
#define RDFCUBE_CONDVAR_PAIRED_WITH(x)

namespace rdfcube {

/// \brief Annotated exclusive mutex: a zero-overhead std::mutex wrapper that
/// Clang's capability analysis can see. Guarded data members are declared
/// `T field_ RDFCUBE_GUARDED_BY(mu_);` and may only be touched under a
/// MutexLock on `mu_` (or from a function annotated RDFCUBE_REQUIRES(mu_)).
class RDFCUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the calling thread holds the mutex.
  void Lock() RDFCUBE_ACQUIRE() { mu_.lock(); }

  /// Releases the mutex (caller must hold it).
  void Unlock() RDFCUBE_RELEASE() { mu_.unlock(); }

  /// Acquires the mutex iff it is free; true on success.
  [[nodiscard]] bool TryLock() RDFCUBE_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;  // lint:allow(lock-annotation) — this IS the capability
};

/// \brief RAII guard for Mutex (the RDFCUBE_SCOPED_CAPABILITY the analysis
/// tracks). Backed by std::unique_lock so condition-variable waits are a
/// method on the guard: the capability is modeled as held across Wait(),
/// matching how clang treats condition-variable sleeps (the lock is
/// reacquired before Wait returns, so guarded reads after it are safe).
class RDFCUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RDFCUBE_ACQUIRE(mu) : lock_(mu->mu_) {}
  ~MutexLock() RDFCUBE_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Atomically releases the mutex and sleeps on `cv`; holds the mutex again
  /// when this returns. Spurious wakeups propagate — loop on the predicate:
  ///   while (!ready_) lock.Wait(ready_cv_);
  /// RDFCUBE_BLOCKING (DESIGN.md §5i): waiting on *this* lock's mutex is the
  /// sanctioned condvar idiom and exempt; calling it while a *different*
  /// MutexLock stays held parks the thread with that lock taken and is a
  /// blocking-under-lock finding.
  RDFCUBE_BLOCKING void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Wait() bounded by `deadline`: sleeps on `cv` until notified or the
  /// deadline expires, holding the mutex again either way. Returns false iff
  /// the wait timed out (the deadline passed without a notification reaching
  /// this waiter). Spurious wakeups return true — as with Wait(), loop on the
  /// predicate and re-check it after a false return too, since a
  /// notification can race the timeout:
  ///   while (!ready_) {
  ///     if (!lock.WaitWithDeadline(ready_cv_, deadline)) break;
  ///   }
  ///   // decide on `ready_`, not on the return value
  /// A limitless Deadline degrades to a plain Wait() (never times out); an
  /// already-expired one still atomically releases and reacquires the mutex
  /// but sleeps no longer than the implementation's zero-timeout wait.
  RDFCUBE_BLOCKING [[nodiscard]] bool WaitWithDeadline(
      std::condition_variable& cv, const Deadline& deadline) {
    if (!deadline.HasLimit()) {  // infinity sentinel: wait_for would overflow
      cv.wait(lock_);
      return true;
    }
    return cv.wait_for(lock_, std::chrono::duration<double>(
                                  deadline.RemainingSeconds())) ==
           std::cv_status::no_timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace rdfcube

#endif  // RDFCUBE_BASE_THREAD_ANNOTATIONS_H_
