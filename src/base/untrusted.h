// Taint annotations for the cross-TU input-flow gate (DESIGN.md §5h).
//
// RDFCUBE_TAINT_SOURCE marks a function *definition* as a decode entry point:
// its inputs are untrusted bytes (a network frame, a snapshot/corpus file,
// turtle or CSV text), so every length, count, offset, or id it produces is
// attacker-controlled until validated. The callgraph analyzer
// (tools/callgraph, lint checks untrusted-size-sink / unchecked-size-arith /
// missing-limit-clamp) propagates taint from source functions through their
// transitive callees and requires a visible bounds guard (a comparison
// against a named limit constant, a .size()/Remaining() check, or
// util/safe_math CheckedAdd/CheckedMul) in any tainted function that feeds a
// sized sink (resize/reserve/new T[n]/memcpy/arithmetic subscripts).
//
// RDFCUBE_TAINT_BARRIER is the validated boundary: a function that only ever
// receives fully validated values (or validates everything itself before
// fanning out). Taint propagation stops at barrier functions — neither the
// barrier nor its callees inherit taint through that edge. Marking a barrier
// is an auditable assertion, the taint-gate analogue of RDFCUBE_COLD: prefer
// adding a real guard; reach for the barrier only when the validation
// genuinely lives at a different layer (e.g. ids pre-checked by the caller).
//
// Both must sit on the *definition* (the declaration carrying the `{` body):
// the analyzer is lexical and reads the annotation from the function header
// it extracts. Annotating only a forward declaration does nothing. The
// macros expand to nothing — they exist purely for the analyzer (and the
// human reader).
//
// Usage:
//   RDFCUBE_TAINT_SOURCE Result<Request> DecodeRequest(
//       const std::string& payload) { ... }
//   RDFCUBE_TAINT_BARRIER Status ApplyValidatedDelta(const Delta& d) { ... }

#ifndef RDFCUBE_BASE_UNTRUSTED_H_
#define RDFCUBE_BASE_UNTRUSTED_H_

/// Marks a function definition as a decode entry point over untrusted bytes:
/// enrolls it (and its transitive callees) in the taint gate — sized sinks
/// reached from here must carry a visible bounds guard (DESIGN.md §5h).
#define RDFCUBE_TAINT_SOURCE

/// Marks a function definition as a validated boundary: taint propagation
/// stops here. An auditable assertion that every value crossing this call
/// has already been bounds-checked.
#define RDFCUBE_TAINT_BARRIER

#endif  // RDFCUBE_BASE_UNTRUSTED_H_
