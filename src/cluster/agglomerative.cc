#include "cluster/agglomerative.h"

#include <limits>
#include <vector>

namespace rdfcube {
namespace cluster {

Result<CentroidModel> Agglomerative(
    const std::vector<const BitVector*>& points,
    const AgglomerativeOptions& options, std::vector<uint32_t>* assignment) {
  if (points.empty()) {
    return Status::InvalidArgument("agglomerative: no points");
  }
  if (options.target_k == 0) {
    return Status::InvalidArgument("agglomerative: target_k == 0");
  }
  const std::size_t n = points.size();
  const std::size_t dims = points[0]->size();

  // Pairwise Jaccard distances (upper triangle), then Lance-Williams
  // average-linkage updates on merge.
  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = JaccardDistance(*points[i], *points[j]);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }
  std::vector<bool> alive(n, true);
  std::vector<std::size_t> size(n, 1);
  std::vector<int> parent(n, -1);  // merge target for dead clusters
  std::size_t num_alive = n;

  while (num_alive > options.target_k) {
    // Find the closest live pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!alive[j]) continue;
        if (dist[i * n + j] < best) {
          best = dist[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }
    if (best > options.max_merge_distance) break;
    // Merge bj into bi; average-linkage distance update.
    const double wi = static_cast<double>(size[bi]);
    const double wj = static_cast<double>(size[bj]);
    for (std::size_t x = 0; x < n; ++x) {
      if (!alive[x] || x == bi || x == bj) continue;
      const double d =
          (wi * dist[bi * n + x] + wj * dist[bj * n + x]) / (wi + wj);
      dist[bi * n + x] = d;
      dist[x * n + bi] = d;
    }
    alive[bj] = false;
    parent[bj] = static_cast<int>(bi);
    size[bi] += size[bj];
    --num_alive;
  }

  // Resolve each point's final cluster representative.
  auto find_rep = [&](std::size_t i) {
    while (parent[i] >= 0) i = static_cast<std::size_t>(parent[i]);
    return i;
  };
  // Compact representatives into dense cluster ids and build centroids.
  std::vector<int> dense(n, -1);
  CentroidModel model;
  std::vector<uint32_t> assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t rep = find_rep(i);
    if (dense[rep] < 0) {
      dense[rep] = static_cast<int>(model.centroids.size());
      model.centroids.emplace_back(dims);
    }
    assign[i] = static_cast<uint32_t>(dense[rep]);
    model.centroids[assign[i]].Accumulate(*points[i]);
  }
  for (Centroid& c : model.centroids) c.Normalize();
  if (assignment != nullptr) *assignment = assign;
  return model;
}

}  // namespace cluster
}  // namespace rdfcube
