// Bottom-up (agglomerative) hierarchical clustering with average linkage —
// the third clustering configuration of the paper (§3.2).

#ifndef RDFCUBE_CLUSTER_AGGLOMERATIVE_H_
#define RDFCUBE_CLUSTER_AGGLOMERATIVE_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "base/result.h"

namespace rdfcube {
namespace cluster {

/// \brief Parameters of average-linkage agglomerative clustering.
struct AgglomerativeOptions {
  /// Stop merging when this many clusters remain.
  std::size_t target_k = 16;
  /// Also stop when the closest pair is farther than this Jaccard distance.
  double max_merge_distance = 0.95;
};

/// \brief Average-linkage hierarchical clustering (O(n^2) distance matrix;
/// intended for the sampled subset, per the paper's sample-then-assign
/// scheme). Returns the resulting clusters as a CentroidModel.
[[nodiscard]] Result<CentroidModel> Agglomerative(
    const std::vector<const BitVector*>& points,
    const AgglomerativeOptions& options,
    std::vector<uint32_t>* assignment = nullptr);

}  // namespace cluster
}  // namespace rdfcube

#endif  // RDFCUBE_CLUSTER_AGGLOMERATIVE_H_
