#include "cluster/canopy.h"

#include <vector>

#include "util/random.h"

namespace rdfcube {
namespace cluster {

Result<CentroidModel> Canopy(const std::vector<const BitVector*>& points,
                             const CanopyOptions& options,
                             std::vector<uint32_t>* assignment) {
  if (points.empty()) return Status::InvalidArgument("canopy: no points");
  if (!(options.t2 < options.t1)) {
    return Status::InvalidArgument("canopy requires t2 < t1");
  }
  const std::size_t n = points.size();
  const std::size_t dims = points[0]->size();
  Rng rng(options.seed);

  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  CentroidModel model;

  while (!pool.empty()) {
    // Pick a random remaining point as a canopy center.
    const std::size_t pick = static_cast<std::size_t>(rng.Uniform(pool.size()));
    const std::size_t center = pool[pick];
    Centroid c(dims);
    c.Accumulate(*points[center]);
    c.Normalize();
    model.centroids.push_back(std::move(c));

    // Remove all points within the tight threshold from the pool.
    std::vector<std::size_t> remaining;
    remaining.reserve(pool.size());
    for (std::size_t idx : pool) {
      if (idx == center) continue;
      const double d = JaccardDistance(*points[idx], *points[center]);
      if (d > options.t2) remaining.push_back(idx);
    }
    pool.swap(remaining);
  }

  if (assignment != nullptr) {
    assignment->assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      (*assignment)[i] = static_cast<uint32_t>(model.Assign(*points[i]));
    }
  }
  return model;
}

}  // namespace cluster
}  // namespace rdfcube
