// Canopy clustering (McCallum, Nigam & Ungar [21]): fast threshold-based
// center selection with a cheap distance, used by the paper as one of the
// three clustering configurations.

#ifndef RDFCUBE_CLUSTER_CANOPY_H_
#define RDFCUBE_CLUSTER_CANOPY_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "base/result.h"

namespace rdfcube {
namespace cluster {

/// \brief Canopy thresholds (loose/tight distance cutoffs).
struct CanopyOptions {
  /// Loose threshold: points within t1 of a center join its canopy.
  double t1 = 0.75;
  /// Tight threshold (t2 < t1): points within t2 are removed from the
  /// candidate pool and cannot seed new canopies.
  double t2 = 0.45;
  uint64_t seed = 42;
};

/// \brief Runs canopy selection over `points` with Jaccard distance and
/// returns the canopy centers as a CentroidModel (assignment by nearest
/// center), so it composes with the same per-cluster baseline driver as
/// k-means/x-means.
[[nodiscard]] Result<CentroidModel> Canopy(const std::vector<const BitVector*>& points,
                             const CanopyOptions& options,
                             std::vector<uint32_t>* assignment = nullptr);

}  // namespace cluster
}  // namespace rdfcube

#endif  // RDFCUBE_CLUSTER_CANOPY_H_
