#include "cluster/kmeans.h"

#include <limits>

#include "obs/metrics.h"

namespace rdfcube {
namespace cluster {

std::size_t CentroidModel::Assign(const BitVector& p) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = CentroidDistance(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

Result<CentroidModel> KMeans(const std::vector<const BitVector*>& points,
                             const KMeansOptions& options,
                             std::vector<uint32_t>* assignment) {
  if (points.empty()) return Status::InvalidArgument("k-means: no points");
  if (options.k == 0) return Status::InvalidArgument("k-means: k == 0");
  const std::size_t n = points.size();
  const std::size_t dims = points[0]->size();
  const std::size_t k = options.k < n ? options.k : n;
  Rng rng(options.seed);

  // k-means++ seeding: first center uniform, then D^2-weighted.
  CentroidModel model;
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  {
    const std::size_t first = static_cast<std::size_t>(rng.Uniform(n));
    Centroid c(dims);
    c.Accumulate(*points[first]);
    c.Normalize();
    model.centroids.push_back(std::move(c));
  }
  while (model.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = CentroidDistance(*points[i], model.centroids.back());
      if (d < min_dist[i]) min_dist[i] = d;
      total += min_dist[i] * min_dist[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.NextDouble() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_dist[i] * min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<std::size_t>(rng.Uniform(n));
    }
    Centroid c(dims);
    c.Accumulate(*points[chosen]);
    c.Normalize();
    model.centroids.push_back(std::move(c));
  }

  // Lloyd iterations.
  static obs::Counter& iterations = obs::DefaultCounter(
      "rdfcube_cluster_iterations_total", "Lloyd iterations across fits");
  std::vector<uint32_t> assign(n, 0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    iterations.Increment();
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const uint32_t c = static_cast<uint32_t>(model.Assign(*points[i]));
      if (c != assign[i]) {
        assign[i] = c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    std::vector<Centroid> next(model.centroids.size(), Centroid(dims));
    for (std::size_t i = 0; i < n; ++i) next[assign[i]].Accumulate(*points[i]);
    for (std::size_t c = 0; c < next.size(); ++c) {
      if (next[c].count == 0) {
        // Re-seed empty clusters on a random point.
        next[c].Accumulate(*points[rng.Uniform(n)]);
      }
      next[c].Normalize();
    }
    model.centroids = std::move(next);
  }
  if (assignment != nullptr) {
    assignment->assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      (*assignment)[i] = static_cast<uint32_t>(model.Assign(*points[i]));
    }
  }
  return model;
}

}  // namespace cluster
}  // namespace rdfcube
