// Lloyd k-means over binary points with generalized-Jaccard assignment.

#ifndef RDFCUBE_CLUSTER_KMEANS_H_
#define RDFCUBE_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/metric.h"
#include "util/bitvector.h"
#include "util/random.h"
#include "base/result.h"

namespace rdfcube {
namespace cluster {

/// \brief A fitted centroid model: cluster points by nearest centroid.
struct CentroidModel {
  std::vector<Centroid> centroids;

  /// Index of the nearest centroid to `p` (generalized Jaccard).
  std::size_t Assign(const BitVector& p) const;
};

/// \brief k-means parameters (k, iteration budget, seed).
struct KMeansOptions {
  std::size_t k = 8;
  std::size_t max_iterations = 20;
  uint64_t seed = 42;
};

/// \brief Runs Lloyd's algorithm on `points` (k-means++ style seeding).
///
/// Returns the fitted model; `assignment` (if non-null) receives the final
/// cluster index of each input point. Fails when points is empty or
/// k == 0. If k exceeds the number of points it is clamped.
[[nodiscard]] Result<CentroidModel> KMeans(const std::vector<const BitVector*>& points,
                             const KMeansOptions& options,
                             std::vector<uint32_t>* assignment = nullptr);

}  // namespace cluster
}  // namespace rdfcube

#endif  // RDFCUBE_CLUSTER_KMEANS_H_
