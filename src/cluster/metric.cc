#include "cluster/metric.h"

#include "obs/metrics.h"

namespace rdfcube {
namespace cluster {

namespace {

// One relaxed increment per distance call; each call is an O(dims) loop, so
// the atomic is noise, and Fig. 5-style runs can report evaluation counts.
obs::Counter& DistanceEvals() {
  static obs::Counter& c =
      obs::DefaultCounter("rdfcube_cluster_distance_evals_total",
                          "Point-to-centroid distance evaluations");
  return c;
}

}  // namespace

void Centroid::Accumulate(const BitVector& p) {
  for (std::size_t i = 0; i < mean.size(); ++i) {
    if (p.Test(i)) mean[i] += 1.0;
  }
  ++count;
}

void Centroid::Normalize() {
  if (count == 0) return;
  const double inv = 1.0 / static_cast<double>(count);
  for (double& m : mean) m *= inv;
}

double CentroidDistance(const BitVector& p, const Centroid& c) {
  DistanceEvals().Increment();
  double min_sum = 0.0, max_sum = 0.0;
  for (std::size_t i = 0; i < c.mean.size(); ++i) {
    const double x = p.Test(i) ? 1.0 : 0.0;
    const double y = c.mean[i];
    min_sum += x < y ? x : y;
    max_sum += x > y ? x : y;
  }
  if (max_sum == 0.0) return 0.0;
  return 1.0 - min_sum / max_sum;
}

double SquaredEuclidean(const BitVector& p, const Centroid& c) {
  DistanceEvals().Increment();
  double sum = 0.0;
  for (std::size_t i = 0; i < c.mean.size(); ++i) {
    const double d = (p.Test(i) ? 1.0 : 0.0) - c.mean[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace cluster
}  // namespace rdfcube
