// Distance metrics over the binary feature space of occurrence-matrix rows.
// The paper (§4) uses the Jaccard coefficient "as a similarity metric for our
// binary feature space".

#ifndef RDFCUBE_CLUSTER_METRIC_H_
#define RDFCUBE_CLUSTER_METRIC_H_

#include <vector>

#include "util/bitvector.h"

namespace rdfcube {
namespace cluster {

/// Jaccard distance 1 - |a AND b|/|a OR b| between two binary points.
inline double JaccardDistance(const BitVector& a, const BitVector& b) {
  return 1.0 - a.Jaccard(b);
}

/// \brief Real-valued centroid of binary points.
///
/// Centroids are per-column means in [0, 1]; distance to a binary point uses
/// the generalized (Ruzicka) Jaccard: 1 - sum(min) / sum(max), which reduces
/// to the plain Jaccard distance when the centroid is itself binary.
struct Centroid {
  std::vector<double> mean;
  std::size_t count = 0;

  explicit Centroid(std::size_t dims = 0) : mean(dims, 0.0) {}

  /// Adds one binary point to the running mean.
  void Accumulate(const BitVector& p);

  /// Finishes the mean after all Accumulate calls.
  void Normalize();
};

/// Generalized Jaccard distance between a binary point and a centroid.
double CentroidDistance(const BitVector& p, const Centroid& c);

/// Squared Euclidean distance (used by the x-means BIC computation).
double SquaredEuclidean(const BitVector& p, const Centroid& c);

}  // namespace cluster
}  // namespace rdfcube

#endif  // RDFCUBE_CLUSTER_METRIC_H_
