#include "cluster/xmeans.h"

#include <cmath>
#include <limits>

namespace rdfcube {
namespace cluster {

namespace {

// BIC of a set of points under `model` (spherical Gaussian, shared variance),
// per Pelleg & Moore. Higher is better.
double Bic(const std::vector<const BitVector*>& points,
           const CentroidModel& model) {
  const std::size_t n = points.size();
  const std::size_t k = model.centroids.size();
  const std::size_t dims = points.empty() ? 0 : points[0]->size();
  if (n <= k) return -std::numeric_limits<double>::infinity();

  // Cluster sizes and pooled variance.
  std::vector<std::size_t> sizes(k, 0);
  double ssq = 0.0;
  for (const BitVector* p : points) {
    const std::size_t c = model.Assign(*p);
    ++sizes[c];
    ssq += SquaredEuclidean(*p, model.centroids[c]);
  }
  const double variance =
      ssq / static_cast<double>(n - k) + 1e-9;  // avoid log(0) on duplicates

  double loglik = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const double rn = static_cast<double>(sizes[c]);
    if (rn <= 0.0) continue;
    loglik += rn * std::log(rn) - rn * std::log(static_cast<double>(n)) -
              rn / 2.0 * std::log(2.0 * M_PI) -
              rn * static_cast<double>(dims) / 2.0 * std::log(variance) -
              (rn - static_cast<double>(k)) / 2.0;
  }
  const double free_params =
      static_cast<double>(k - 1 + k * dims + 1);  // weights + means + variance
  return loglik - free_params / 2.0 * std::log(static_cast<double>(n));
}

}  // namespace

Result<CentroidModel> XMeans(const std::vector<const BitVector*>& points,
                             const XMeansOptions& options,
                             std::vector<uint32_t>* assignment) {
  if (points.empty()) return Status::InvalidArgument("x-means: no points");
  KMeansOptions base;
  base.k = options.min_k;
  base.max_iterations = options.kmeans_iterations;
  base.seed = options.seed;
  std::vector<uint32_t> assign;
  RDFCUBE_ASSIGN_OR_RETURN(CentroidModel model, KMeans(points, base, &assign));

  // Improve-structure loop: try splitting each cluster in two; keep splits
  // whose local BIC beats the unsplit parent's.
  bool changed = true;
  uint64_t seed = options.seed;
  while (changed && model.centroids.size() < options.max_k) {
    changed = false;
    std::vector<Centroid> next_centroids;
    for (std::size_t c = 0; c < model.centroids.size(); ++c) {
      std::vector<const BitVector*> members;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (assign[i] == c) members.push_back(points[i]);
      }
      // Cluster count if this cluster is split and all remaining ones kept.
      const std::size_t projected =
          next_centroids.size() + 2 + (model.centroids.size() - c - 1);
      if (members.size() < 4 || projected > options.max_k) {
        next_centroids.push_back(model.centroids[c]);
        continue;
      }
      // Parent model: this single centroid.
      CentroidModel parent;
      parent.centroids.push_back(model.centroids[c]);
      const double parent_bic = Bic(members, parent);

      KMeansOptions split_opts;
      split_opts.k = 2;
      split_opts.max_iterations = options.kmeans_iterations;
      split_opts.seed = ++seed;
      auto child = KMeans(members, split_opts, nullptr);
      if (!child.ok()) {
        next_centroids.push_back(model.centroids[c]);
        continue;
      }
      const double child_bic = Bic(members, *child);
      if (child_bic > parent_bic) {
        next_centroids.push_back(child->centroids[0]);
        next_centroids.push_back(child->centroids[1]);
        changed = true;
      } else {
        next_centroids.push_back(model.centroids[c]);
      }
    }
    model.centroids = std::move(next_centroids);
    // Re-assign after structural change.
    for (std::size_t i = 0; i < points.size(); ++i) {
      assign[i] = static_cast<uint32_t>(model.Assign(*points[i]));
    }
  }
  if (assignment != nullptr) *assignment = assign;
  return model;
}

}  // namespace cluster
}  // namespace rdfcube
