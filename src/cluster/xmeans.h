// X-means (Pelleg & Moore [26]): k-means with BIC-driven estimation of the
// number of clusters. The clustering configuration the paper found best
// (§4.1: "x-means outperformed the other two methods greatly in terms of
// recall achieved in comparable time frames").

#ifndef RDFCUBE_CLUSTER_XMEANS_H_
#define RDFCUBE_CLUSTER_XMEANS_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "base/result.h"

namespace rdfcube {
namespace cluster {

/// \brief x-means parameters (k range and split criterion).
struct XMeansOptions {
  std::size_t min_k = 2;
  std::size_t max_k = 64;
  std::size_t kmeans_iterations = 15;
  uint64_t seed = 42;
};

/// \brief Runs x-means: starts from min_k centroids and recursively splits
/// clusters in two while the split improves the BIC score, until max_k.
///
/// BIC uses the identity spherical-Gaussian model of the original paper
/// (variance estimated from within-cluster squared Euclidean distances).
[[nodiscard]] Result<CentroidModel> XMeans(const std::vector<const BitVector*>& points,
                             const XMeansOptions& options,
                             std::vector<uint32_t>* assignment = nullptr);

}  // namespace cluster
}  // namespace rdfcube

#endif  // RDFCUBE_CLUSTER_XMEANS_H_
