#include "core/aggregate.h"

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

#include <algorithm>
#include <limits>

namespace rdfcube {
namespace core {

namespace {

// a's padded coordinate contains b's on every dimension.
bool Contains(const qb::ObservationSet& obs,
              const std::vector<hierarchy::CodeId>& coord, qb::ObsId b) {
  const qb::CubeSpace& space = obs.space();
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    if (!space.code_list(d).IsAncestorOrSelf(coord[d],
                                             obs.ValueOrRoot(b, d))) {
      return false;
    }
  }
  return true;
}

bool ObsContainsStrict(const qb::ObservationSet& obs, qb::ObsId a,
                       qb::ObsId b) {
  const qb::CubeSpace& space = obs.space();
  bool strict = false;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    const hierarchy::CodeId va = obs.ValueOrRoot(a, d);
    const hierarchy::CodeId vb = obs.ValueOrRoot(b, d);
    if (!space.code_list(d).IsAncestorOrSelf(va, vb)) return false;
    if (va != vb) strict = true;
  }
  return strict;
}

}  // namespace

Result<RollUpResult> RollUp(
    const qb::ObservationSet& obs, const Lattice& lattice,
    const std::vector<std::pair<qb::DimId, hierarchy::CodeId>>& target,
    AggregateFn fn, bool leaves_only) {
  const qb::CubeSpace& space = obs.space();
  RollUpResult result;
  result.coordinate.resize(space.num_dimensions());
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    result.coordinate[d] = space.code_list(d).root();
  }
  for (const auto& [dim, code] : target) {
    if (dim >= space.num_dimensions()) {
      return Status::InvalidArgument("roll-up target: unknown dimension id");
    }
    if (code >= space.code_list(dim).size()) {
      return Status::InvalidArgument("roll-up target: code id out of range");
    }
    result.coordinate[dim] = code;
  }

  // Candidate cubes: level signature componentwise >= the target's levels.
  CubeSignature target_sig;
  target_sig.levels.resize(space.num_dimensions());
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    target_sig.levels[d] =
        static_cast<uint8_t>(space.code_list(d).level(result.coordinate[d]));
  }
  for (CubeId c = 0; c < lattice.num_cubes(); ++c) {
    if (!target_sig.DominatesAll(lattice.signature(c))) continue;
    for (qb::ObsId o : lattice.members(c)) {
      if (Contains(obs, result.coordinate, o)) result.contained.push_back(o);
    }
  }
  std::sort(result.contained.begin(), result.contained.end());

  // Drop in-scope aggregates of in-scope finer rows.
  std::vector<qb::ObsId> contributors = result.contained;
  if (leaves_only) {
    std::vector<qb::ObsId> kept;
    for (qb::ObsId a : contributors) {
      bool is_aggregate = false;
      for (qb::ObsId b : contributors) {
        if (a == b) continue;
        if (obs.obs(a).dataset == obs.obs(b).dataset &&
            obs.SharesMeasure(a, b) && ObsContainsStrict(obs, a, b)) {
          is_aggregate = true;
          break;
        }
      }
      if (!is_aggregate) kept.push_back(a);
    }
    contributors.swap(kept);
  }

  // Aggregate per measure.
  for (qb::MeasureId m = 0; m < space.num_measures(); ++m) {
    double acc = 0.0;
    double min_v = std::numeric_limits<double>::infinity();
    double max_v = -std::numeric_limits<double>::infinity();
    std::size_t count = 0;
    for (qb::ObsId o : contributors) {
      for (const auto& [measure, value] : obs.obs(o).values) {
        if (measure != m) continue;
        acc += value;
        min_v = std::min(min_v, value);
        max_v = std::max(max_v, value);
        ++count;
      }
    }
    if (count == 0) continue;
    double out = 0.0;
    switch (fn) {
      case AggregateFn::kSum:
        out = acc;
        break;
      case AggregateFn::kAverage:
        out = acc / static_cast<double>(count);
        break;
      case AggregateFn::kMin:
        out = min_v;
        break;
      case AggregateFn::kMax:
        out = max_v;
        break;
      case AggregateFn::kCount:
        out = static_cast<double>(count);
        break;
    }
    result.measures.push_back({m, out, count});
  }
  return result;
}

}  // namespace core
}  // namespace rdfcube
