// Roll-up aggregation on top of containment (paper §2: "all contained
// observations must be aggregated (e.g., a roll-up operation) for being
// observation complement with the containing one").
//
// Given a target coordinate (a value per dimension, roots allowed), this
// module finds the observations the target would fully contain and
// aggregates their measures, materializing the roll-up the containment
// relationships promise.

#ifndef RDFCUBE_CORE_AGGREGATE_H_
#define RDFCUBE_CORE_AGGREGATE_H_

#include <utility>
#include <vector>

#include "base/result.h"
#include "core/lattice.h"
#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// How measure values of contained observations are combined.
enum class AggregateFn {
  kSum,
  kAverage,
  kMin,
  kMax,
  kCount,
};

/// \brief One aggregated measure of a roll-up.
struct AggregatedMeasure {
  qb::MeasureId measure;
  double value;
  /// Observations that contributed a value for this measure.
  std::size_t contributors;
};

/// \brief Result of RollUp.
struct RollUpResult {
  /// Target coordinate, root-padded (parallel to global dimensions).
  std::vector<hierarchy::CodeId> coordinate;
  std::vector<AggregatedMeasure> measures;
  /// All observations dimensionally contained by the coordinate.
  std::vector<qb::ObsId> contained;
};

/// \brief Aggregates every observation whose (root-padded) coordinates are
/// contained by `target` — the materialization of a roll-up to that point.
///
/// `target` maps DimId -> CodeId for the pinned dimensions; unpinned
/// dimensions default to the code-list root (aggregate over everything).
/// Only *strictly deeper or equal* observations contribute; an observation
/// exactly at the target coordinate contributes like any other.
///
/// Double-counting caveat: the input may already contain aggregate rows
/// (a Greece row next to its city rows). With `leaves_only` (default), an
/// in-scope observation is excluded when it strictly contains another
/// in-scope observation of the same dataset with an overlapping measure —
/// i.e. coarse rows whose finer rows are also being aggregated are dropped,
/// so each fact is counted once.
[[nodiscard]] Result<RollUpResult> RollUp(
    const qb::ObservationSet& obs, const Lattice& lattice,
    const std::vector<std::pair<qb::DimId, hierarchy::CodeId>>& target,
    AggregateFn fn = AggregateFn::kSum, bool leaves_only = true);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_AGGREGATE_H_
