#include "core/baseline.h"

#include "qb/cube_space.h"
#include "qb/observation_set.h"

#include <numeric>
#include <vector>

namespace rdfcube {
namespace core {

namespace {

// Processes the ordered pair (a, b) in both directions. Returns void; all
// emission goes through the sink.
inline void ProcessPair(const qb::ObservationSet& obs,
                        const OccurrenceMatrix& om, qb::ObsId a, qb::ObsId b,
                        const RelationshipSelector& sel,
                        RelationshipSink* sink) {
  const std::size_t k = om.num_dimensions();
  const bool shares = obs.SharesMeasure(a, b);

  if (!sel.partial_containment) {
    // Fast path: only whole-row covering checks are needed.
    const bool ab = om.ContainsAll(a, b);
    const bool ba = om.ContainsAll(b, a);
    if (sel.full_containment && shares) {
      if (ab) sink->OnFullContainment(a, b);
      if (ba) sink->OnFullContainment(b, a);
    }
    if (sel.complementarity && ab && ba) {
      sink->OnComplementarity(a < b ? a : b, a < b ? b : a);
    }
    return;
  }

  // Quantifying path: per-dimension CM row for both directions.
  std::size_t count_ab = 0, count_ba = 0;
  uint64_t mask_ab = 0, mask_ba = 0;
  for (qb::DimId d = 0; d < k; ++d) {
    if (om.Contains(a, b, d)) {
      ++count_ab;
      if (sel.partial_dimension_map) mask_ab |= (uint64_t{1} << d);
    }
    if (om.Contains(b, a, d)) {
      ++count_ba;
      if (sel.partial_dimension_map) mask_ba |= (uint64_t{1} << d);
    }
  }
  const bool full_ab = count_ab == k;
  const bool full_ba = count_ba == k;
  if (shares) {
    if (sel.full_containment) {
      if (full_ab) sink->OnFullContainment(a, b);
      if (full_ba) sink->OnFullContainment(b, a);
    }
    if (count_ab > 0 && !full_ab) {
      sink->OnPartialContainment(
          a, b, static_cast<double>(count_ab) / static_cast<double>(k),
          mask_ab);
    }
    if (count_ba > 0 && !full_ba) {
      sink->OnPartialContainment(
          b, a, static_cast<double>(count_ba) / static_cast<double>(k),
          mask_ba);
    }
  }
  if (sel.complementarity && full_ab && full_ba) {
    sink->OnComplementarity(a < b ? a : b, a < b ? b : a);
  }
}

}  // namespace

Status RunBaselineSubset(const qb::ObservationSet& obs,
                         const OccurrenceMatrix& om,
                         const std::vector<qb::ObsId>& ids,
                         const BaselineOptions& options,
                         RelationshipSink* sink) {
  constexpr std::size_t kDeadlineStride = 4096;
  std::size_t since_check = 0;
  for (std::size_t x = 0; x < ids.size(); ++x) {
    for (std::size_t y = x + 1; y < ids.size(); ++y) {
      ProcessPair(obs, om, ids[x], ids[y], options.selector, sink);
      if (++since_check >= kDeadlineStride) {
        since_check = 0;
        if (options.deadline.Expired()) {
          return Status::TimedOut("baseline exceeded its deadline");
        }
      }
    }
  }
  return Status::OK();
}

Status RunBaseline(const qb::ObservationSet& obs, const OccurrenceMatrix& om,
                   const BaselineOptions& options, RelationshipSink* sink) {
  std::vector<qb::ObsId> ids(obs.size());
  std::iota(ids.begin(), ids.end(), 0);
  return RunBaselineSubset(obs, om, ids, options, sink);
}

Status RunBaseline(const qb::ObservationSet& obs,
                   const BaselineOptions& options, RelationshipSink* sink) {
  const OccurrenceMatrix om(obs);
  return RunBaseline(obs, om, options, sink);
}

}  // namespace core
}  // namespace rdfcube
