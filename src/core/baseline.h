// The streaming baseline method (paper §3.1, Algorithms 1+2 fused): visits
// every ordered pair of observations exactly once and emits relationships
// without materializing the OCM.

#ifndef RDFCUBE_CORE_BASELINE_H_
#define RDFCUBE_CORE_BASELINE_H_

#include "core/occurrence_matrix.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// \brief Options for the baseline run.
struct BaselineOptions {
  RelationshipSelector selector;
  /// Cooperative timeout; returns Status::TimedOut when exceeded (relations
  /// already emitted stay emitted).
  Deadline deadline;
};

/// \brief Runs the O(n^2) baseline over `om`, emitting into `sink`.
///
/// Per the paper's own optimization notes: when partial containment is not
/// requested, pairs are ruled out with two whole-row bit-vector covering
/// checks (early-exiting inside the AND loop) instead of per-dimension
/// iteration; when partial containment is requested, the per-dimension CM
/// row is evaluated to quantify the degree.
///
/// Relationship semantics (identical across all methods):
///  * full:    measures overlap AND every dimension (root-padded) of a
///             covers b,
///  * partial: measures overlap AND 0 < #covering dims < |P|,
///  * compl:   mutual full dimensional containment (no measure condition;
///             Def. 3 is purely dimensional), reported once per unordered
///             pair.
[[nodiscard]] Status RunBaseline(const qb::ObservationSet& obs, const OccurrenceMatrix& om,
                   const BaselineOptions& options, RelationshipSink* sink);

/// Convenience overload: builds the OccurrenceMatrix internally.
[[nodiscard]] Status RunBaseline(const qb::ObservationSet& obs,
                   const BaselineOptions& options, RelationshipSink* sink);

/// \brief Baseline over an explicit subset of observation ids (used by the
/// clustering method to run per-cluster; Algorithm 3 line 5).
[[nodiscard]] Status RunBaselineSubset(const qb::ObservationSet& obs,
                         const OccurrenceMatrix& om,
                         const std::vector<qb::ObsId>& ids,
                         const BaselineOptions& options,
                         RelationshipSink* sink);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_BASELINE_H_
