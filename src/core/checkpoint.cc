#include "core/checkpoint.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/lattice.h"
#include "core/snapshot_io.h"
#include "obs/metrics.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"
#include "util/fault.h"

namespace rdfcube {
namespace core {

namespace {

using snapshot::ByteReader;
using snapshot::PutDouble;
using snapshot::PutU32;
using snapshot::PutU64;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Mix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

Status Corrupt(const char* what) {
  return Status::ParseError(std::string("corrupt checkpoint: ") + what);
}

// Forwards every emission to the caller's sink while recording it in the
// checkpoint state, so a snapshot carries everything emitted so far.
class TeeSink : public RelationshipSink {
 public:
  TeeSink(MaskingCheckpoint* state, RelationshipSink* downstream)
      : state_(state), downstream_(downstream) {}

  void OnFullContainment(ObsId a, ObsId b) override {
    state_->full.emplace_back(a, b);
    downstream_->OnFullContainment(a, b);
  }
  void OnPartialContainment(ObsId a, ObsId b, double degree,
                            uint64_t dim_mask) override {
    state_->partial.push_back({a, b, degree, dim_mask});
    downstream_->OnPartialContainment(a, b, degree, dim_mask);
  }
  void OnComplementarity(ObsId a, ObsId b) override {
    state_->complementary.emplace_back(a, b);
    downstream_->OnComplementarity(a, b);
  }

 private:
  MaskingCheckpoint* state_;
  RelationshipSink* downstream_;
};

}  // namespace

uint64_t FingerprintObservations(const qb::ObservationSet& obs) {
  return FingerprintObservationsPrefix(obs,
                                       static_cast<qb::ObsId>(obs.size()));
}

uint64_t FingerprintObservationsPrefix(const qb::ObservationSet& obs,
                                       qb::ObsId n) {
  const qb::CubeSpace& space = obs.space();
  uint64_t h = kFnvOffset;
  Mix(&h, n);
  Mix(&h, space.num_dimensions());
  Mix(&h, space.num_measures());
  for (qb::ObsId i = 0; i < n; ++i) {
    const qb::Observation& o = obs.obs(i);
    Mix(&h, o.dataset);
    for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
      Mix(&h, obs.ValueOrRoot(i, d));
    }
    Mix(&h, o.values.size());
    for (const auto& [m, value] : o.values) {
      Mix(&h, m);
      uint64_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      Mix(&h, bits);
    }
  }
  return h;
}

uint32_t SelectorBits(const RelationshipSelector& selector) {
  return (selector.full_containment ? 1u : 0u) |
         (selector.partial_containment ? 2u : 0u) |
         (selector.complementarity ? 4u : 0u) |
         (selector.partial_dimension_map ? 8u : 0u);
}

std::string SerializeMaskingCheckpoint(const MaskingCheckpoint& ckpt) {
  std::string out;
  out.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU64(&out, ckpt.fingerprint);
  PutU32(&out, ckpt.selector_bits);
  PutU32(&out, ckpt.next_cube);
  PutU64(&out, ckpt.full.size());
  for (const auto& [a, b] : ckpt.full) {
    PutU32(&out, a);
    PutU32(&out, b);
  }
  PutU64(&out, ckpt.partial.size());
  for (const CollectingSink::Partial& p : ckpt.partial) {
    PutU32(&out, p.a);
    PutU32(&out, p.b);
    PutDouble(&out, p.degree);
    PutU64(&out, p.dim_mask);
  }
  PutU64(&out, ckpt.complementary.size());
  for (const auto& [a, b] : ckpt.complementary) {
    PutU32(&out, a);
    PutU32(&out, b);
  }
  return out;
}

Result<MaskingCheckpoint> DeserializeMaskingCheckpoint(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return Corrupt("bad magic");
  }
  ByteReader r(bytes);
  {
    // Advance past the 8-byte magic (already validated above).
    uint64_t magic_bytes;
    if (!r.GetU64(&magic_bytes)) return Corrupt("truncated header");
  }
  MaskingCheckpoint ckpt;
  if (!r.GetU64(&ckpt.fingerprint)) return Corrupt("fingerprint");
  if (!r.GetU32(&ckpt.selector_bits)) return Corrupt("selector bits");
  if (ckpt.selector_bits > 0xfu) return Corrupt("selector bits out of range");
  uint32_t next_cube;
  if (!r.GetU32(&next_cube)) return Corrupt("next cube");
  ckpt.next_cube = next_cube;

  uint64_t count;
  if (!r.GetU64(&count)) return Corrupt("full count");
  if (count > r.Remaining() / 8) return Corrupt("full count out of range");
  ckpt.full.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t a, b;
    if (!r.GetU32(&a) || !r.GetU32(&b)) return Corrupt("full pair");
    ckpt.full.emplace_back(a, b);
  }
  if (!r.GetU64(&count)) return Corrupt("partial count");
  if (count > r.Remaining() / 24) return Corrupt("partial count out of range");
  ckpt.partial.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CollectingSink::Partial p;
    if (!r.GetU32(&p.a) || !r.GetU32(&p.b) || !r.GetDouble(&p.degree) ||
        !r.GetU64(&p.dim_mask)) {
      return Corrupt("partial record");
    }
    // Degrees live strictly inside (0, 1); the negated form also rejects NaN.
    if (!(p.degree > 0.0 && p.degree < 1.0)) return Corrupt("partial degree");
    ckpt.partial.push_back(p);
  }
  if (!r.GetU64(&count)) return Corrupt("complementarity count");
  if (count > r.Remaining() / 8) {
    return Corrupt("complementarity count out of range");
  }
  ckpt.complementary.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t a, b;
    if (!r.GetU32(&a) || !r.GetU32(&b)) return Corrupt("complementarity pair");
    if (a >= b) return Corrupt("complementarity pair not ordered");
    ckpt.complementary.emplace_back(a, b);
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes");
  return ckpt;
}

Status AtomicWriteFile(const std::string& bytes, const std::string& path) {
  // The staging name must be unique per call: with a fixed `path + ".tmp"`,
  // two concurrent savers truncate each other's staging file and one renames
  // a half-written snapshot into place (caught by race_stress_test under
  // TSan). Readers still only ever see `path` via the atomic rename.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("cannot open snapshot for writing: " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IOError("snapshot write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IOError("snapshot rename failed: " + ec.message());
  static obs::Counter& saves = obs::DefaultCounter(
      "rdfcube_checkpoint_saves_total", "Checkpoint snapshots written");
  static obs::Counter& bytes_written =
      obs::DefaultCounter("rdfcube_checkpoint_bytes_written_total",
                          "Checkpoint bytes written to disk");
  saves.Increment();
  bytes_written.Increment(bytes.size());
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError("snapshot path is a directory: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open snapshot: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in && !in.eof()) return Status::IOError("snapshot read failed: " + path);
  std::string bytes = buf.str();
  static obs::Counter& restores = obs::DefaultCounter(
      "rdfcube_checkpoint_restores_total", "Checkpoint snapshots read back");
  static obs::Counter& bytes_read = obs::DefaultCounter(
      "rdfcube_checkpoint_bytes_read_total", "Checkpoint bytes read from disk");
  restores.Increment();
  bytes_read.Increment(bytes.size());
  return bytes;
}

Status SaveMaskingCheckpoint(const MaskingCheckpoint& ckpt,
                             const std::string& path) {
  return AtomicWriteFile(SerializeMaskingCheckpoint(ckpt), path);
}

Result<MaskingCheckpoint> LoadMaskingCheckpoint(const std::string& path) {
  RDFCUBE_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DeserializeMaskingCheckpoint(bytes);
}

Status RunCubeMaskingCheckpointed(const qb::ObservationSet& obs,
                                  const CubeMaskingOptions& options,
                                  const CheckpointOptions& ckpt,
                                  RelationshipSink* sink,
                                  CubeMaskingStats* stats,
                                  CheckpointRunStats* run_stats) {
  if (ckpt.path.empty()) {
    return Status::InvalidArgument("checkpoint path is empty");
  }
  const Lattice lattice(obs);
  const CubeId num_cubes = static_cast<CubeId>(lattice.num_cubes());

  MaskingCheckpoint state;
  state.fingerprint = FingerprintObservations(obs);
  state.selector_bits = SelectorBits(options.selector);

  std::error_code ec;
  if (std::filesystem::exists(ckpt.path, ec)) {
    RDFCUBE_ASSIGN_OR_RETURN(MaskingCheckpoint loaded,
                             LoadMaskingCheckpoint(ckpt.path));
    if (loaded.fingerprint != state.fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint was taken over a different observation set");
    }
    if (loaded.selector_bits != state.selector_bits) {
      return Status::FailedPrecondition(
          "checkpoint was taken with a different relationship selector");
    }
    if (loaded.next_cube > num_cubes) {
      return Corrupt("next cube out of range");
    }
    state = std::move(loaded);
    // Replay what the interrupted run had already emitted; the per-type
    // sequences continue exactly where the snapshot left them.
    for (const auto& [a, b] : state.full) sink->OnFullContainment(a, b);
    for (const CollectingSink::Partial& p : state.partial) {
      sink->OnPartialContainment(p.a, p.b, p.degree, p.dim_mask);
    }
    for (const auto& [a, b] : state.complementary) {
      sink->OnComplementarity(a, b);
    }
    if (run_stats != nullptr) {
      run_stats->resumed = true;
      run_stats->resumed_from = state.next_cube;
    }
  }

  // The fused pass is the resumable unit (see RunCubeMaskingOuterRange);
  // pre-fetch the children index once for all outer cubes when asked to.
  std::unique_ptr<CubeChildrenIndex> children;
  if (options.prefetch_children) {
    children = std::make_unique<CubeChildrenIndex>(lattice);
  }

  TeeSink tee(&state, sink);
  const std::size_t interval =
      ckpt.interval_cubes == 0 ? 1 : ckpt.interval_cubes;
  std::size_t since_checkpoint = 0;
  for (CubeId c = state.next_cube; c < num_cubes; ++c) {
    RDFCUBE_RETURN_IF_ERROR(RunCubeMaskingOuterRange(
        obs, lattice, options, c, c + 1, &tee, stats, children.get()));
    state.next_cube = c + 1;
    if (++since_checkpoint >= interval) {
      since_checkpoint = 0;
      RDFCUBE_RETURN_IF_ERROR(SaveMaskingCheckpoint(state, ckpt.path));
      if (run_stats != nullptr) ++run_stats->checkpoints_written;
    }
    if (FaultTriggered(kFaultCheckpointKill)) {
      // Models the process dying here: whatever checkpoint is on disk is
      // what a new run will resume from.
      return Status::Internal("injected kill after outer cube " +
                              std::to_string(c));
    }
  }
  if (ckpt.delete_on_success) {
    std::filesystem::remove(ckpt.path, ec);  // best effort
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
