// Checkpoint/resume for long cubeMasking batch runs.
//
// A checkpointed run computes the fused cubeMasking pass one outer cube at a
// time (RunCubeMaskingOuterRange) and periodically serializes its progress —
// the next outer cube to compute plus every relationship emitted so far — to
// a versioned binary snapshot (qb/binary_io wire idiom). A run killed
// mid-computation resumes from the snapshot: the checkpointed emissions are
// replayed into the fresh sink and computation continues from the recorded
// cube, so the resumed run's per-type emission sequences are identical to an
// uninterrupted run's (tested property). Work done after the last checkpoint
// and before the kill is simply recomputed.
//
// The snapshot records a fingerprint of the observation set and the selector
// so a checkpoint can never resume against different data or a different
// relationship selection (FailedPrecondition).

#ifndef RDFCUBE_CORE_CHECKPOINT_H_
#define RDFCUBE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/cube_masking.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/result.h"
#include "base/status.h"

namespace rdfcube {
namespace core {

/// Injection point (see util/fault.h) consulted once per completed outer
/// cube: a triggered fault aborts the run as if the process were killed,
/// leaving the last written checkpoint behind for a resume.
inline constexpr char kFaultCheckpointKill[] = "checkpoint.kill";

/// Magic + version written at the head of every masking checkpoint.
inline constexpr char kCheckpointMagic[8] = {'R', 'D', 'F', 'C',
                                             'K', 'P', 'T', '1'};

/// \brief Where and how often to checkpoint.
struct CheckpointOptions {
  /// Snapshot file. Written atomically (temp file + rename) so a kill during
  /// a checkpoint write can never leave a torn file behind.
  std::string path;
  /// Write a snapshot after every `interval_cubes` completed outer cubes.
  std::size_t interval_cubes = 8;
  /// Remove the snapshot when the run completes (a finished run needs no
  /// resume point).
  bool delete_on_success = true;
};

/// \brief What a checkpointed run did (resume provenance + write count).
struct CheckpointRunStats {
  /// True when an existing snapshot was loaded and replayed.
  bool resumed = false;
  /// First outer cube computed live (0 for a fresh run).
  CubeId resumed_from = 0;
  std::size_t checkpoints_written = 0;
};

/// \brief Serializable progress of a cubeMasking run.
struct MaskingCheckpoint {
  /// FingerprintObservations() of the observation set the run was over.
  uint64_t fingerprint = 0;
  /// SelectorBits() of the run's relationship selector.
  uint32_t selector_bits = 0;
  /// Outer cubes [0, next_cube) are fully computed and their emissions are
  /// recorded below.
  CubeId next_cube = 0;
  std::vector<std::pair<ObsId, ObsId>> full;
  std::vector<CollectingSink::Partial> partial;
  std::vector<std::pair<ObsId, ObsId>> complementary;
};

/// FNV-1a fingerprint of an observation set's content (dataset ids,
/// root-padded dimension values, measure values); two sets with any
/// differing observation fingerprint differently (with the usual 64-bit
/// collision caveat).
uint64_t FingerprintObservations(const qb::ObservationSet& obs);

/// Fingerprint of the first `n` observations of `obs` (n <= obs.size()),
/// byte-identical to FingerprintObservations over a set holding exactly those
/// n observations. Lets an extended corpus prove it is a strict superset of a
/// snapshot's corpus: the prefix fingerprint must equal the snapshot's.
uint64_t FingerprintObservationsPrefix(const qb::ObservationSet& obs,
                                       qb::ObsId n);

/// Packs a selector into the low four bits (full, partial, compl, dim-map).
uint32_t SelectorBits(const RelationshipSelector& selector);

/// Serializes `ckpt` to a versioned byte string.
std::string SerializeMaskingCheckpoint(const MaskingCheckpoint& ckpt);

/// Parses a byte string produced by SerializeMaskingCheckpoint. Fails with
/// ParseError on bad magic, truncation, impossible counts, or trailing
/// bytes.
[[nodiscard]] Result<MaskingCheckpoint> DeserializeMaskingCheckpoint(
    const std::string& bytes);

/// Atomically writes `bytes` to `path` via a temp file + rename, so a kill
/// mid-write can never leave a torn snapshot. IOError on any filesystem
/// failure. Shared by every snapshot writer (masking + incremental).
[[nodiscard]] Status AtomicWriteFile(const std::string& bytes, const std::string& path);

/// Reads the whole file at `path`. IOError when unreadable or a directory.
[[nodiscard]] Result<std::string> ReadFileBytes(const std::string& path);

/// Atomically writes `ckpt` to `path` (temp file + rename). IOError on any
/// filesystem failure.
[[nodiscard]] Status SaveMaskingCheckpoint(const MaskingCheckpoint& ckpt,
                             const std::string& path);

/// Loads a checkpoint from `path`. IOError when unreadable, ParseError when
/// corrupt.
[[nodiscard]] Result<MaskingCheckpoint> LoadMaskingCheckpoint(const std::string& path);

/// \brief Runs cubeMasking with periodic checkpoints, resuming from
/// `ckpt.path` when a snapshot is already there.
///
/// Emits into `sink` exactly what RunCubeMasking would (checkpointed
/// emissions are replayed first on a resume, in original per-type order).
/// Fails with FailedPrecondition when an existing snapshot was taken over a
/// different observation set or selector, and with Internal("injected kill
/// ...") when the kFaultCheckpointKill point fires. `stats` accounting
/// covers only the live (non-replayed) portion of a resumed run.
[[nodiscard]] Status RunCubeMaskingCheckpointed(const qb::ObservationSet& obs,
                                  const CubeMaskingOptions& options,
                                  const CheckpointOptions& ckpt,
                                  RelationshipSink* sink,
                                  CubeMaskingStats* stats = nullptr,
                                  CheckpointRunStats* run_stats = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_CHECKPOINT_H_
