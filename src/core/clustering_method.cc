#include "core/clustering_method.h"

#include <vector>

#include "cluster/agglomerative.h"
#include "cluster/canopy.h"
#include "cluster/kmeans.h"
#include "cluster/xmeans.h"
#include "core/baseline.h"
#include "obs/trace.h"
#include "qb/observation_set.h"
#include "util/random.h"

namespace rdfcube {
namespace core {

namespace obx = ::rdfcube::obs;

const char* ClusterAlgorithmName(ClusterAlgorithm algorithm) {
  switch (algorithm) {
    case ClusterAlgorithm::kXMeans:
      return "x-means";
    case ClusterAlgorithm::kCanopy:
      return "canopy";
    case ClusterAlgorithm::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

Status RunClusteringMethod(const qb::ObservationSet& obs,
                           const OccurrenceMatrix& om,
                           const ClusteringMethodOptions& options,
                           RelationshipSink* sink,
                           ClusteringMethodStats* stats) {
  const std::size_t n = om.num_rows();
  if (n == 0) return Status::OK();

  // --- Sample ---------------------------------------------------------------
  std::vector<const BitVector*> sample;
  {
    obx::TraceSpan span("clustering/sample");
    Rng rng(options.seed);
    std::size_t sample_size =
        static_cast<std::size_t>(static_cast<double>(n) *
                                 options.sample_fraction);
    if (sample_size < 2) sample_size = n < 2 ? n : 2;
    if (sample_size > n) sample_size = n;
    const std::vector<std::size_t> sample_ids =
        rng.SampleWithoutReplacement(n, sample_size);
    sample.reserve(sample_ids.size());
    for (std::size_t i : sample_ids) sample.push_back(&om.row(i));
    if (stats != nullptr) stats->sample_size = sample.size();
  }

  // --- Fit ------------------------------------------------------------------
  obx::TraceSpan fit_span("clustering/fit");
  cluster::CentroidModel model;
  switch (options.algorithm) {
    case ClusterAlgorithm::kXMeans: {
      cluster::XMeansOptions xo;
      xo.max_k = options.max_clusters;
      xo.seed = options.seed;
      RDFCUBE_ASSIGN_OR_RETURN(model, cluster::XMeans(sample, xo));
      break;
    }
    case ClusterAlgorithm::kCanopy: {
      cluster::CanopyOptions co;
      co.seed = options.seed;
      RDFCUBE_ASSIGN_OR_RETURN(model, cluster::Canopy(sample, co));
      break;
    }
    case ClusterAlgorithm::kHierarchical: {
      cluster::AgglomerativeOptions ao;
      ao.target_k = options.max_clusters;
      RDFCUBE_ASSIGN_OR_RETURN(model, cluster::Agglomerative(sample, ao));
      break;
    }
  }
  if (options.deadline.Expired()) {
    return Status::TimedOut("clustering method exceeded its deadline");
  }
  fit_span.End();

  // --- Assign all points to fitted clusters ----------------------------------
  std::vector<std::vector<qb::ObsId>> members(model.centroids.size());
  {
    obx::TraceSpan span("clustering/assign");
    for (qb::ObsId i = 0; i < n; ++i) {
      members[model.Assign(om.row(i))].push_back(i);
    }
    if (stats != nullptr) {
      stats->num_clusters = members.size();
      for (const auto& m : members) {
        if (m.size() > stats->largest_cluster) {
          stats->largest_cluster = m.size();
        }
      }
    }
  }

  // --- Baseline within each cluster (Algorithm 3, lines 3-6) -----------------
  obx::TraceSpan intra_span("clustering/intra_cluster_baseline");
  BaselineOptions bo;
  bo.selector = options.selector;
  bo.deadline = options.deadline;
  for (const auto& cluster_members : members) {
    if (cluster_members.size() < 2) continue;
    RDFCUBE_RETURN_IF_ERROR(
        RunBaselineSubset(obs, om, cluster_members, bo, sink));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
