// The clustering computation method (paper §3.2, Algorithm 3): cluster the
// occurrence matrix, then run the baseline within each cluster. Trades recall
// for speed — relationships across clusters are lost.

#ifndef RDFCUBE_CORE_CLUSTERING_METHOD_H_
#define RDFCUBE_CORE_CLUSTERING_METHOD_H_

#include <cstdint>

#include "core/occurrence_matrix.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// Which clustering configuration to use (the three the paper evaluates).
enum class ClusterAlgorithm {
  kXMeans,
  kCanopy,
  kHierarchical,
};

const char* ClusterAlgorithmName(ClusterAlgorithm algorithm);

/// \brief Algorithm choice and parameters for the clustering method.
struct ClusteringMethodOptions {
  RelationshipSelector selector;
  Deadline deadline;
  ClusterAlgorithm algorithm = ClusterAlgorithm::kXMeans;
  /// Fraction of observations used to fit the clustering (the paper fits on
  /// a 10% random sample and assigns the rest to the fitted clusters).
  double sample_fraction = 0.10;
  /// Fallbacks / caps for the individual algorithms.
  std::size_t max_clusters = 64;
  uint64_t seed = 42;
};

/// \brief Cluster-size and per-phase accounting of a clustering run.
struct ClusteringMethodStats {
  std::size_t sample_size = 0;
  std::size_t num_clusters = 0;
  std::size_t largest_cluster = 0;
};

/// \brief Runs Algorithm 3: fit clusters on a sample of OM rows, assign all
/// observations, then run the baseline within each cluster, unioning results
/// into `sink`.
[[nodiscard]] Status RunClusteringMethod(const qb::ObservationSet& obs,
                           const OccurrenceMatrix& om,
                           const ClusteringMethodOptions& options,
                           RelationshipSink* sink,
                           ClusteringMethodStats* stats = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_CLUSTERING_METHOD_H_
