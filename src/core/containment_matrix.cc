#include "core/containment_matrix.h"

#include <cstdio>

#include "qb/cube_space.h"
#include "qb/observation_set.h"
#include "util/string_util.h"

namespace rdfcube {
namespace core {

Result<ContainmentMatrices> ContainmentMatrices::Compute(
    const OccurrenceMatrix& om, std::size_t max_cells) {
  const std::size_t n = om.num_rows();
  if (n != 0 && n > max_cells / n) {
    return Status::ResourceExhausted(
        "materialized OCM would need " + std::to_string(n) + "^2 cells; use "
        "the streaming baseline for corpora this large");
  }
  ContainmentMatrices out;
  out.n_ = n;
  out.counts_.assign(n * n, 0);
  out.cm_.resize(om.num_dimensions());
  for (qb::DimId d = 0; d < om.num_dimensions(); ++d) {
    std::vector<uint8_t>& cm = out.cm_[d];
    cm.assign(n * n, 0);
    for (qb::ObsId a = 0; a < n; ++a) {
      for (qb::ObsId b = 0; b < n; ++b) {
        if (om.Contains(a, b, d)) {
          cm[a * n + b] = 1;
          ++out.counts_[a * n + b];
        }
      }
    }
  }
  return out;
}

void ContainmentMatrices::EmitRelationships(const qb::ObservationSet& obs,
                                            const RelationshipSelector& selector,
                                            RelationshipSink* sink) const {
  const std::size_t k = cm_.size();
  for (qb::ObsId i = 0; i < n_; ++i) {
    for (qb::ObsId j = 0; j < n_; ++j) {
      if (i == j) continue;
      const uint16_t count = counts_[i * n_ + j];
      if (count == k) {
        const bool mutual = counts_[j * n_ + i] == k;
        if (selector.full_containment && obs.SharesMeasure(i, j)) {
          sink->OnFullContainment(i, j);
        }
        // Complementarity is symmetric; report once per unordered pair.
        if (selector.complementarity && mutual && i < j) {
          sink->OnComplementarity(i, j);
        }
      } else if (count > 0) {
        if (selector.partial_containment && obs.SharesMeasure(i, j)) {
          uint64_t mask = 0;
          if (selector.partial_dimension_map) {
            for (qb::DimId d = 0; d < k; ++d) {
              if (cm_[d][i * n_ + j]) mask |= (uint64_t{1} << d);
            }
          }
          sink->OnPartialContainment(
              i, j, static_cast<double>(count) / static_cast<double>(k), mask);
        }
      }
    }
  }
}

std::string ContainmentMatrices::ToTable(const qb::ObservationSet& obs,
                                         int dim) const {
  std::string out;
  out += dim < 0 ? "OCM" : "CM[" + std::string(IriLocalName(
                               obs.space().dimension_iri(dim))) + "]";
  for (qb::ObsId j = 0; j < n_; ++j) {
    out.push_back(' ');
    out += std::string(IriLocalName(obs.obs(j).iri));
  }
  out.push_back('\n');
  for (qb::ObsId i = 0; i < n_; ++i) {
    out += std::string(IriLocalName(obs.obs(i).iri));
    for (qb::ObsId j = 0; j < n_; ++j) {
      char buf[16];
      if (dim < 0) {
        std::snprintf(buf, sizeof(buf), " %.2f", ocm(i, j));
      } else {
        std::snprintf(buf, sizeof(buf), " %d", cm(dim, i, j) ? 1 : 0);
      }
      out += buf;
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace core
}  // namespace rdfcube
