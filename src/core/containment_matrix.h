// Materialized containment matrices CM_i and the Overall Containment Matrix
// OCM (paper §3.1, Algorithm 1, Tables 3(a)/3(b)). Quadratic in memory —
// meant for small corpora, interactive inspection, and the running-example
// reproduction; large runs use the streaming baseline (baseline.h).

#ifndef RDFCUBE_CORE_CONTAINMENT_MATRIX_H_
#define RDFCUBE_CORE_CONTAINMENT_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/occurrence_matrix.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/result.h"

namespace rdfcube {
namespace core {

/// \brief Per-dimension boolean containment matrices plus their normalized
/// sum.
///
/// CM_d[a][b] == 1 iff sf(o_a, o_b)|p_d holds (row a covers row b on
/// dimension d's columns); OCM[a][b] = (1/|P|) * sum_d CM_d[a][b].
class ContainmentMatrices {
 public:
  /// Runs Algorithm 1 (computeOCM) over the occurrence matrix. Fails with
  /// ResourceExhausted when n^2 would exceed `max_cells` (default 10^8).
  [[nodiscard]] static Result<ContainmentMatrices> Compute(const OccurrenceMatrix& om,
                                             std::size_t max_cells = 100000000);

  std::size_t n() const { return n_; }
  std::size_t num_dimensions() const { return cm_.size(); }

  /// CM_d cell. 1 means o_a's value contains o_b's on dimension d.
  bool cm(qb::DimId d, qb::ObsId a, qb::ObsId b) const {
    return cm_[d][a * n_ + b];
  }

  /// OCM cell in [0, 1]: 1 = full dimensional containment, 0 = none.
  double ocm(qb::ObsId a, qb::ObsId b) const {
    return static_cast<double>(counts_[a * n_ + b]) /
           static_cast<double>(cm_.size());
  }

  /// Runs Algorithm 2 (baseline) over the materialized matrices, applying
  /// the measure-overlap gate of Def. 4 for containment.
  void EmitRelationships(const qb::ObservationSet& obs,
                         const RelationshipSelector& selector,
                         RelationshipSink* sink) const;

  /// Renders OCM (or a CM_d when `dim` >= 0) as a text table mirroring
  /// Table 3 of the paper.
  std::string ToTable(const qb::ObservationSet& obs, int dim = -1) const;

 private:
  std::size_t n_ = 0;
  // cm_[d] is an n*n row-major boolean matrix.
  std::vector<std::vector<uint8_t>> cm_;
  // counts_[a*n+b] = number of dimensions with CM_d[a][b] == 1.
  std::vector<uint16_t> counts_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_CONTAINMENT_MATRIX_H_
