#include "core/cube_masking.h"

#include <algorithm>
#include <vector>

#include "base/hot.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

// The `obs` parameter name shadows namespace rdfcube::obs inside function
// bodies; alias the observability namespace for instrumentation sites.
namespace obx = ::rdfcube::obs;

namespace {

constexpr std::size_t kDeadlineStride = 4096;

// Adds the difference between `after` and `before` to the global
// rdfcube_masking_* counters. Callers snapshot the (possibly accumulating,
// caller-owned) stats struct on entry so repeated runs never double-count.
void FlushMaskingCounters(const CubeMaskingStats& before,
                          const CubeMaskingStats& after) {
  static obs::Counter& checked =
      obs::DefaultCounter("rdfcube_masking_cube_pairs_checked_total",
                          "Lattice cube pairs tested for comparability");
  static obs::Counter& comparable =
      obs::DefaultCounter("rdfcube_masking_cube_pairs_comparable_total",
                          "Cube pairs whose signatures were comparable");
  static obs::Counter& pruned =
      obs::DefaultCounter("rdfcube_masking_cube_pairs_pruned_total",
                          "Cube pairs discarded by signature masking");
  static obs::Counter& compared =
      obs::DefaultCounter("rdfcube_masking_obs_pairs_compared_total",
                          "Observation pairs actually evaluated");
  static obs::Counter& emitted =
      obs::DefaultCounter("rdfcube_masking_relationships_emitted_total",
                          "Relationships handed to the sink");
  const std::size_t d_checked = after.cube_pairs_checked -
                                before.cube_pairs_checked;
  const std::size_t d_comparable = after.cube_pairs_comparable -
                                   before.cube_pairs_comparable;
  checked.Increment(d_checked);
  comparable.Increment(d_comparable);
  if (d_checked > d_comparable) pruned.Increment(d_checked - d_comparable);
  compared.Increment(after.observation_pairs_compared -
                     before.observation_pairs_compared);
  emitted.Increment(after.relationships_emitted -
                    before.relationships_emitted);
}

// Shared state of one run.
struct Run {
  Run(const qb::ObservationSet& obs_in, const Lattice& lattice_in,
      const CubeMaskingOptions& options_in, RelationshipSink* sink_in,
      CubeMaskingStats* stats_in, const CubeChildrenIndex* children_in)
      : obs_(obs_in),
        lattice(lattice_in),
        options(options_in),
        sink(sink_in),
        stats(stats_in),
        children(children_in) {}

  const qb::ObservationSet& obs_;
  const Lattice& lattice;
  const CubeMaskingOptions& options;
  RelationshipSink* sink;
  CubeMaskingStats* stats;
  const CubeChildrenIndex* children;
  std::size_t since_deadline_check = 0;

  std::size_t num_dims() const { return obs_.space().num_dimensions(); }

  RDFCUBE_HOT Status CheckDeadline() {
    if (++since_deadline_check >= kDeadlineStride) {
      since_deadline_check = 0;
      if (options.deadline.Expired()) {
        return Status::TimedOut("cubeMasking exceeded its deadline");
      }
    }
    return Status::OK();
  }

  // checkFullCont of Algorithm 4 (dimension part only; the measure gate is
  // applied by callers since complementarity must not use it).
  RDFCUBE_HOT bool DimsContain(qb::ObsId a, qb::ObsId b) const {
    const qb::CubeSpace& space = obs_.space();
    for (qb::DimId d = 0; d < num_dims(); ++d) {
      if (!space.code_list(d).IsAncestorOrSelf(obs_.ValueOrRoot(a, d),
                                               obs_.ValueOrRoot(b, d))) {
        return false;
      }
    }
    return true;
  }

  // Number of dimensions where a's value contains b's, with optional mask.
  RDFCUBE_HOT std::size_t CountContainingDims(qb::ObsId a, qb::ObsId b,
                                              uint64_t* mask) const {
    const qb::CubeSpace& space = obs_.space();
    std::size_t count = 0;
    for (qb::DimId d = 0; d < num_dims(); ++d) {
      if (space.code_list(d).IsAncestorOrSelf(obs_.ValueOrRoot(a, d),
                                              obs_.ValueOrRoot(b, d))) {
        ++count;
        if (mask != nullptr) *mask |= (uint64_t{1} << d);
      }
    }
    return count;
  }

  RDFCUBE_HOT bool ValuesEqual(qb::ObsId a, qb::ObsId b) const {
    for (qb::DimId d = 0; d < num_dims(); ++d) {
      if (obs_.ValueOrRoot(a, d) != obs_.ValueOrRoot(b, d)) return false;
    }
    return true;
  }

  // Visits every ordered cube pair (j, k) with outer cube j in
  // [begin_cube, end_cube) where j's signature dominates k's (all dims when
  // `all_required`, any dim otherwise). With a pre-fetched children index,
  // iterates its lists directly instead of scanning.
  template <typename Fn>
  RDFCUBE_HOT Status ForComparableCubePairs(bool all_required, CubeId begin_cube,
                                            CubeId end_cube, Fn&& fn) {
    const std::size_t c = lattice.num_cubes();
    if (children != nullptr) {
      for (CubeId j = begin_cube; j < end_cube; ++j) {
        const std::vector<CubeId>& list = all_required
                                              ? children->all_dominated(j)
                                              : children->any_dominated(j);
        for (CubeId k : list) {
          if (stats != nullptr) ++stats->cube_pairs_comparable;
          RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
          RDFCUBE_RETURN_IF_ERROR(fn(j, k));
        }
      }
      return Status::OK();
    }
    for (CubeId j = begin_cube; j < end_cube; ++j) {
      const CubeSignature& sj = lattice.signature(j);
      for (CubeId k = 0; k < c; ++k) {
        if (stats != nullptr) ++stats->cube_pairs_checked;
        RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
        const CubeSignature& sk = lattice.signature(k);
        const bool comparable =
            all_required ? sj.DominatesAll(sk) : sj.DominatesAny(sk);
        if (!comparable) continue;
        if (stats != nullptr) ++stats->cube_pairs_comparable;
        RDFCUBE_RETURN_IF_ERROR(fn(j, k));
      }
    }
    return Status::OK();
  }

  // --- Per-type passes (prefetch_children == false) --------------------------
  // Each relationship type re-iterates the lattice and the observation pairs
  // independently, as in a literal reading of Algorithm 4 run once per type.

  RDFCUBE_HOT Status FullPass() {
    return ForComparableCubePairs(
        /*all_required=*/true, 0, static_cast<CubeId>(lattice.num_cubes()),
        [&](CubeId j, CubeId k) {
          for (qb::ObsId a : lattice.members(j)) {
            for (qb::ObsId b : lattice.members(k)) {
              if (a == b) continue;
              RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
              if (stats != nullptr) ++stats->observation_pairs_compared;
              if (obs_.SharesMeasure(a, b) && DimsContain(a, b)) {
                if (stats != nullptr) ++stats->relationships_emitted;
                sink->OnFullContainment(a, b);
              }
            }
          }
          return Status::OK();
        });
  }

  RDFCUBE_HOT Status PartialPass() {
    const std::size_t kd = num_dims();
    const bool want_mask = options.selector.partial_dimension_map;
    return ForComparableCubePairs(
        /*all_required=*/false, 0, static_cast<CubeId>(lattice.num_cubes()),
        [&](CubeId j, CubeId k) {
          for (qb::ObsId a : lattice.members(j)) {
            for (qb::ObsId b : lattice.members(k)) {
              if (a == b) continue;
              RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
              if (stats != nullptr) ++stats->observation_pairs_compared;
              if (!obs_.SharesMeasure(a, b)) continue;
              uint64_t mask = 0;
              const std::size_t count =
                  CountContainingDims(a, b, want_mask ? &mask : nullptr);
              if (count > 0 && count < kd) {
                if (stats != nullptr) ++stats->relationships_emitted;
                sink->OnPartialContainment(
                    a, b,
                    static_cast<double>(count) / static_cast<double>(kd),
                    mask);
              }
            }
          }
          return Status::OK();
        });
  }

  // Complementarity requires mutual full dimensional containment, which
  // forces identical level signatures: only within-cube pairs qualify.
  RDFCUBE_HOT Status ComplPass() {
    for (CubeId c = 0; c < lattice.num_cubes(); ++c) {
      const auto& ms = lattice.members(c);
      for (std::size_t x = 0; x < ms.size(); ++x) {
        for (std::size_t y = x + 1; y < ms.size(); ++y) {
          RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
          if (stats != nullptr) ++stats->observation_pairs_compared;
          if (ValuesEqual(ms[x], ms[y])) {
            if (stats != nullptr) ++stats->relationships_emitted;
            sink->OnComplementarity(std::min(ms[x], ms[y]),
                                    std::max(ms[x], ms[y]));
          }
        }
      }
    }
    return Status::OK();
  }

  // --- Fused pass (prefetch_children == true) ---------------------------------
  // The Fig. 5(g) optimization: one lattice iteration is unavoidable for one
  // of the relationship types; with the per-cube comparable lists (children)
  // held in memory, that same iteration serves the other two types as well,
  // so every observation pair is evaluated exactly once for all selected
  // relationship types.
  RDFCUBE_HOT Status FusedPass(CubeId begin_cube, CubeId end_cube) {
    const RelationshipSelector& sel = options.selector;
    const std::size_t kd = num_dims();
    const bool want_mask = sel.partial_dimension_map;
    const bool need_counts = sel.partial_containment;
    return ForComparableCubePairs(
        /*all_required=*/!sel.partial_containment, begin_cube, end_cube,
        [&](CubeId j, CubeId k) {
          const bool same_cube = j == k;
          const bool all_dom =
              !sel.partial_containment ||
              lattice.signature(j).DominatesAll(lattice.signature(k));
          for (qb::ObsId a : lattice.members(j)) {
            for (qb::ObsId b : lattice.members(k)) {
              if (a == b) continue;
              RDFCUBE_RETURN_IF_ERROR(CheckDeadline());
              if (stats != nullptr) ++stats->observation_pairs_compared;
              const bool shares = obs_.SharesMeasure(a, b);
              if (shares && need_counts) {
                uint64_t mask = 0;
                const std::size_t count =
                    CountContainingDims(a, b, want_mask ? &mask : nullptr);
                if (count == kd) {
                  if (sel.full_containment) {
                    if (stats != nullptr) ++stats->relationships_emitted;
                    sink->OnFullContainment(a, b);
                  }
                } else if (count > 0 && sel.partial_containment) {
                  if (stats != nullptr) ++stats->relationships_emitted;
                  sink->OnPartialContainment(
                      a, b,
                      static_cast<double>(count) / static_cast<double>(kd),
                      mask);
                }
              } else if (shares && sel.full_containment && all_dom) {
                if (DimsContain(a, b)) {
                  if (stats != nullptr) ++stats->relationships_emitted;
                  sink->OnFullContainment(a, b);
                }
              }
              if (sel.complementarity && same_cube && a < b &&
                  ValuesEqual(a, b)) {
                if (stats != nullptr) ++stats->relationships_emitted;
                sink->OnComplementarity(a, b);
              }
            }
          }
          return Status::OK();
        });
  }
};

}  // namespace

Status RunCubeMasking(const qb::ObservationSet& obs, const Lattice& lattice,
                      const CubeMaskingOptions& options, RelationshipSink* sink,
                      CubeMaskingStats* stats, const CubeChildrenIndex* children) {
  CubeMaskingStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const CubeMaskingStats before = *stats;
  Run run(obs, lattice, options, sink, stats, children);
  stats->num_cubes = lattice.num_cubes();
  const RelationshipSelector& sel = options.selector;
  const int selected = (sel.full_containment ? 1 : 0) +
                       (sel.partial_containment ? 1 : 0) +
                       (sel.complementarity ? 1 : 0);
  Status status = Status::OK();
  if (options.prefetch_children && selected > 1) {
    obx::TraceSpan span("masking/fused_pass");
    status = run.FusedPass(0, static_cast<CubeId>(lattice.num_cubes()));
  } else {
    if (status.ok() && sel.partial_containment) {
      obx::TraceSpan span("masking/partial_pass");
      status = run.PartialPass();
    }
    if (status.ok() && sel.full_containment) {
      obx::TraceSpan span("masking/full_pass");
      status = run.FullPass();
    }
    if (status.ok() && sel.complementarity) {
      obx::TraceSpan span("masking/compl_pass");
      status = run.ComplPass();
    }
  }
  FlushMaskingCounters(before, *stats);  // flush even on timeout
  return status;
}

Status RunCubeMasking(const qb::ObservationSet& obs,
                      const CubeMaskingOptions& options, RelationshipSink* sink,
                      CubeMaskingStats* stats) {
  std::unique_ptr<const Lattice> lattice;
  {
    obx::TraceSpan span("masking/lattice_build");
    lattice = std::make_unique<const Lattice>(obs);
  }
  return RunCubeMasking(obs, *lattice, options, sink, stats);
}

Status RunCubeMaskingOuterRange(const qb::ObservationSet& obs,
                                const Lattice& lattice,
                                const CubeMaskingOptions& options,
                                CubeId begin_cube, CubeId end_cube,
                                RelationshipSink* sink, CubeMaskingStats* stats,
                                const CubeChildrenIndex* children) {
  if (end_cube > lattice.num_cubes() || begin_cube > end_cube) {
    return Status::OutOfRange("cube range outside the lattice");
  }
  CubeMaskingStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const CubeMaskingStats before = *stats;
  Run run(obs, lattice, options, sink, stats, children);
  stats->num_cubes = lattice.num_cubes();
  obx::TraceSpan span("masking/outer_range");
  const Status status = run.FusedPass(begin_cube, end_cube);
  FlushMaskingCounters(before, *stats);
  return status;
}

}  // namespace core
}  // namespace rdfcube
