// The cubeMasking method (paper §3.3, Algorithm 4): prune observation
// comparisons through the level lattice, keeping 100% recall.

#ifndef RDFCUBE_CORE_CUBE_MASKING_H_
#define RDFCUBE_CORE_CUBE_MASKING_H_

#include "core/lattice.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// \brief Options for the cubeMasking run.
struct CubeMaskingOptions {
  RelationshipSelector selector;
  Deadline deadline;
  /// The Fig. 5(g) optimization ("storing for each cube the full set of its
  /// children in memory ... an unavoidable iteration for one of the
  /// relationship types can be taken advantage of for the other two"):
  /// when more than one relationship type is selected, a single fused
  /// lattice iteration evaluates every observation pair once for all
  /// selected types, instead of one independent lattice+pair scan per type.
  /// With a single selected type the flag has no effect.
  bool prefetch_children = true;
};

/// \brief Per-run statistics (feeds Fig. 5(f): cube-to-observation ratio).
///
/// Also flushed into the global metrics registry at the end of every run
/// (rdfcube_masking_* counters), so long-lived processes accumulate across
/// runs without threading a stats pointer through.
struct CubeMaskingStats {
  std::size_t num_cubes = 0;
  std::size_t cube_pairs_checked = 0;
  std::size_t cube_pairs_comparable = 0;
  std::size_t observation_pairs_compared = 0;
  /// Relationships handed to the sink (all selected types combined).
  std::size_t relationships_emitted = 0;
};

/// \brief Runs cubeMasking over a pre-built lattice.
///
/// Relationship semantics match RunBaseline exactly (the method is lossless);
/// only the enumeration order of emitted relationships differs.
///
/// `children` is the optional pre-fetched comparable-cube index (Fig. 5(g)):
/// when provided, every pass enumerates its lists instead of scanning all
/// lattice pairs; when null and `options.prefetch_children` holds, the run
/// fuses the selected relationship types into one lattice iteration.
[[nodiscard]] Status RunCubeMasking(const qb::ObservationSet& obs, const Lattice& lattice,
                      const CubeMaskingOptions& options, RelationshipSink* sink,
                      CubeMaskingStats* stats = nullptr,
                      const CubeChildrenIndex* children = nullptr);

/// Convenience overload building the lattice internally (the paper's
/// linear-time step i+ii).
[[nodiscard]] Status RunCubeMasking(const qb::ObservationSet& obs,
                      const CubeMaskingOptions& options, RelationshipSink* sink,
                      CubeMaskingStats* stats = nullptr);

/// \brief Runs the fused cubeMasking pass restricted to outer cubes in
/// `[begin_cube, end_cube)`.
///
/// This is the resumable substrate used by core/checkpoint.h: the fused pass
/// partitions the work by outer cube, so a run interrupted after finishing
/// outer cube `c` continues with `begin_cube = c + 1` and the concatenated
/// emissions equal an uninterrupted run's. Always uses the fused single
/// lattice iteration regardless of `options.prefetch_children` (the fused
/// pass is equivalent to the per-type passes for every selector combination;
/// only enumeration order differs). Fails with OutOfRange when the range
/// does not fit the lattice.
[[nodiscard]] Status RunCubeMaskingOuterRange(const qb::ObservationSet& obs,
                                const Lattice& lattice,
                                const CubeMaskingOptions& options,
                                CubeId begin_cube, CubeId end_cube,
                                RelationshipSink* sink,
                                CubeMaskingStats* stats = nullptr,
                                const CubeChildrenIndex* children = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_CUBE_MASKING_H_
