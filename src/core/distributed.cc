#include "core/distributed.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <unordered_set>

#include "core/cube_masking.h"
#include "core/lattice.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"
#include "util/fault.h"

namespace rdfcube {
namespace core {

namespace obx = ::rdfcube::obs;

namespace {

// Flushes the recovery-related deltas of a run into the global registry when
// the run ends (RAII so timeouts and fault-driven early returns still count).
class DistributedCounterFlusher {
 public:
  explicit DistributedCounterFlusher(DistributedStats* stats)
      : stats_(stats), before_(*stats) {}
  ~DistributedCounterFlusher() {
    static obs::Counter& crashes =
        obs::DefaultCounter("rdfcube_distributed_worker_crashes_total",
                            "Injected worker crashes observed");
    static obs::Counter& retries = obs::DefaultCounter(
        "rdfcube_distributed_task_retries_total", "Task retries after crashes");
    static obs::Counter& reassigns =
        obs::DefaultCounter("rdfcube_distributed_reassignments_total",
                            "Tasks moved to a surviving worker");
    static obs::Counter& lost = obs::DefaultCounter(
        "rdfcube_distributed_workers_lost_total", "Workers declared dead");
    static obs::Counter& dropped =
        obs::DefaultCounter("rdfcube_distributed_messages_dropped_total",
                            "Messages lost and detected via ack timeout");
    static obs::Counter& replayed = obs::DefaultCounter(
        "rdfcube_distributed_messages_replayed_total", "Message resends");
    static obs::Counter& duplicates =
        obs::DefaultCounter("rdfcube_distributed_messages_duplicate_total",
                            "Duplicate deliveries discarded by dedup");
    crashes.Increment(stats_->worker_crashes - before_.worker_crashes);
    retries.Increment(stats_->task_retries - before_.task_retries);
    reassigns.Increment(stats_->reassignments - before_.reassignments);
    lost.Increment(stats_->workers_lost - before_.workers_lost);
    dropped.Increment(stats_->dropped_messages - before_.dropped_messages);
    replayed.Increment(stats_->replayed_messages - before_.replayed_messages);
    duplicates.Increment(stats_->duplicate_messages -
                         before_.duplicate_messages);
  }

 private:
  DistributedStats* stats_;
  DistributedStats before_;
};

constexpr std::size_t kDeadlineStride = 4096;

// Evaluates one ordered cross-partition observation pair under the fused
// semantics (mirrors cube_masking.cc's FusedPass body).
void EvaluatePair(const qb::ObservationSet& obs,
                  const RelationshipSelector& sel, qb::ObsId a, qb::ObsId b,
                  bool same_signature, RelationshipSink* sink) {
  const qb::CubeSpace& space = obs.space();
  const std::size_t kd = space.num_dimensions();
  const bool shares = obs.SharesMeasure(a, b);
  if (shares && (sel.full_containment || sel.partial_containment)) {
    uint64_t mask = 0;
    std::size_t count = 0;
    for (qb::DimId d = 0; d < kd; ++d) {
      if (space.code_list(d).IsAncestorOrSelf(obs.ValueOrRoot(a, d),
                                              obs.ValueOrRoot(b, d))) {
        ++count;
        if (sel.partial_dimension_map) mask |= (uint64_t{1} << d);
      }
    }
    if (count == kd) {
      if (sel.full_containment) sink->OnFullContainment(a, b);
    } else if (count > 0 && sel.partial_containment) {
      sink->OnPartialContainment(
          a, b, static_cast<double>(count) / static_cast<double>(kd), mask);
    }
  }
  if (sel.complementarity && same_signature && a < b) {
    bool equal = true;
    for (qb::DimId d = 0; d < kd; ++d) {
      if (obs.ValueOrRoot(a, d) != obs.ValueOrRoot(b, d)) {
        equal = false;
        break;
      }
    }
    if (equal) sink->OnComplementarity(a, b);
  }
}

// Commits a successful attempt's buffered output into the real sink, in
// emission order (so a recovered run streams the exact failure-free
// sequence).
void Replay(const CollectingSink& buffer, RelationshipSink* sink) {
  for (const auto& [a, b] : buffer.full()) sink->OnFullContainment(a, b);
  for (const auto& p : buffer.partial()) {
    sink->OnPartialContainment(p.a, p.b, p.degree, p.dim_mask);
  }
  for (const auto& [a, b] : buffer.complementary()) {
    sink->OnComplementarity(a, b);
  }
}

// Cluster-membership and recovery bookkeeping of one run: which workers are
// alive, retry/backoff policy, and message delivery with drop/replay and
// duplicate dedup.
class Recovery {
 public:
  Recovery(const DistributedOptions& options, DistributedStats* stats,
           std::size_t workers)
      : options_(options),
        stats_(stats),
        alive_(workers, true),
        survivors_(workers) {}

  // Runs `body` (which emits into a fresh buffer) as a task of worker
  // `*worker`. An injected crash discards the attempt's buffer and retries
  // with capped exponential backoff; past the retry budget the worker is
  // declared dead and the task reassigned to a survivor (updating
  // `*worker`). On success the buffer is committed to `sink`.
  Status Execute(std::size_t* worker, RelationshipSink* sink,
                 const std::function<Status(RelationshipSink*)>& body) {
    std::size_t attempts = 0;
    while (true) {
      if (!alive_[*worker]) {
        // The assigned worker died in an earlier task; detected when this
        // task is dispatched.
        RDFCUBE_RETURN_IF_ERROR(Reassign(worker));
        attempts = 0;
      }
      CollectingSink buffer;
      Status st = body(&buffer);
      if (FaultTriggered(kFaultWorkerCrash)) {
        // The attempt's partial output dies with the worker process.
        if (stats_ != nullptr) ++stats_->worker_crashes;
        ++attempts;
        AccountBackoff(attempts);
        if (attempts > options_.max_retries_per_task) {
          KillWorker(*worker);
          RDFCUBE_RETURN_IF_ERROR(Reassign(worker));
          attempts = 0;
        } else if (stats_ != nullptr) {
          ++stats_->task_retries;
        }
        continue;
      }
      if (!st.ok()) return st;  // real failure (e.g. deadline): not retried
      Replay(buffer, sink);
      return Status::OK();
    }
  }

  // One message delivery: injected drops are detected (ack timeout in a
  // real deployment) and resent until the budget runs out; a duplicated
  // delivery arrives with an already-seen sequence number and is discarded.
  Status Deliver() {
    std::size_t sends = 1;
    while (FaultTriggered(kFaultMessageDrop)) {
      if (stats_ != nullptr) ++stats_->dropped_messages;
      if (sends > options_.max_message_resends) {
        return Status::ResourceExhausted(
            "distributed message exceeded its resend budget");
      }
      ++sends;
      if (stats_ != nullptr) ++stats_->replayed_messages;
    }
    if (FaultTriggered(kFaultMessageDuplicate)) {
      if (stats_ != nullptr) ++stats_->duplicate_messages;
    }
    return Status::OK();
  }

 private:
  Status Reassign(std::size_t* worker) {
    if (survivors_ == 0) {
      return Status::Internal("all workers lost; nothing left to reassign to");
    }
    std::size_t w = *worker;
    do {
      w = (w + 1) % alive_.size();
    } while (!alive_[w]);
    *worker = w;
    if (stats_ != nullptr) ++stats_->reassignments;
    return Status::OK();
  }

  void KillWorker(std::size_t w) {
    if (!alive_[w]) return;
    alive_[w] = false;
    --survivors_;
    if (stats_ != nullptr) ++stats_->workers_lost;
  }

  void AccountBackoff(std::size_t attempt) {
    if (stats_ == nullptr) return;
    const double wait =
        options_.backoff_initial_ms * std::pow(2.0, static_cast<double>(attempt - 1));
    stats_->simulated_backoff_ms += std::min(wait, options_.backoff_cap_ms);
  }

  const DistributedOptions& options_;
  DistributedStats* stats_;
  std::vector<bool> alive_;
  std::size_t survivors_;
};

}  // namespace

Status RunDistributedMasking(const qb::ObservationSet& obs,
                             const DistributedOptions& options,
                             RelationshipSink* sink,
                             DistributedStats* stats) {
  DistributedStats fallback_stats;
  if (stats == nullptr) stats = &fallback_stats;
  DistributedCounterFlusher flusher(stats);
  const std::size_t workers =
      options.num_workers == 0 ? 1 : options.num_workers;
  const RelationshipSelector& sel = options.selector;

  // --- Partition (round-robin) and build worker-local lattices. -------------
  std::vector<Lattice> local(workers);
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    local[i % workers].AddObservation(obs, i);
  }
  if (stats != nullptr) {
    stats->num_workers = workers;
    for (const Lattice& lattice : local) stats->local_cubes += lattice.num_cubes();
  }

  Recovery recovery(options, stats, workers);
  // owner[p]: the worker currently hosting partition p's computation
  // (diverges from p after reassignments).
  std::vector<std::size_t> owner(workers);
  std::iota(owner.begin(), owner.end(), 0);

  // --- Local phase: each partition relates its own observations. ------------
  obx::TraceSpan local_span("distributed/local_phase");
  for (std::size_t p = 0; p < workers; ++p) {
    CubeMaskingStats mstats;
    RDFCUBE_RETURN_IF_ERROR(recovery.Execute(
        &owner[p], sink, [&](RelationshipSink* out) {
          mstats = CubeMaskingStats();  // attempt-local; survivors commit
          CubeMaskingOptions masking;
          masking.selector = sel;
          masking.deadline = options.deadline;
          return RunCubeMasking(obs, local[p], masking, out, &mstats);
        }));
    if (stats != nullptr) stats->local_pairs += mstats.observation_pairs_compared;
  }

  local_span.End();

  // --- Cross phase: signature exchange, then candidate-cube shipping. -------
  obx::TraceSpan cross_span("distributed/cross_phase");
  for (std::size_t u = 0; u < workers; ++u) {
    for (std::size_t v = u + 1; v < workers; ++v) {
      // Signature exchange, one message per direction.
      for (int direction = 0; direction < 2; ++direction) {
        if (stats != nullptr) ++stats->signature_messages;
        RDFCUBE_RETURN_IF_ERROR(recovery.Deliver());
      }
      // The pair evaluation runs on partition u's current owner; v's
      // candidate cubes ship there.
      std::size_t attempt_cross_pairs = 0;
      std::size_t attempt_shipped = 0;
      RDFCUBE_RETURN_IF_ERROR(recovery.Execute(
          &owner[u], sink, [&](RelationshipSink* out) {
            attempt_cross_pairs = 0;
            attempt_shipped = 0;
            std::size_t since_check = 0;
            // Which of v's cubes must ship to u (any comparability in
            // either direction makes the pair a candidate).
            std::unordered_set<CubeId> shipped_cubes;
            for (CubeId cu = 0; cu < local[u].num_cubes(); ++cu) {
              const CubeSignature& su = local[u].signature(cu);
              for (CubeId cv = 0; cv < local[v].num_cubes(); ++cv) {
                const CubeSignature& sv = local[v].signature(cv);
                const bool forward = sel.partial_containment
                                         ? su.DominatesAny(sv)
                                         : su.DominatesAll(sv);
                const bool backward = sel.partial_containment
                                          ? sv.DominatesAny(su)
                                          : sv.DominatesAll(su);
                if (!forward && !backward) continue;
                if (shipped_cubes.insert(cv).second) {
                  attempt_shipped += local[v].members(cv).size();
                  RDFCUBE_RETURN_IF_ERROR(recovery.Deliver());  // shipment
                }
                const bool same_signature = su == sv;
                for (qb::ObsId a : local[u].members(cu)) {
                  for (qb::ObsId b : local[v].members(cv)) {
                    if (++since_check >= kDeadlineStride) {
                      since_check = 0;
                      if (options.deadline.Expired()) {
                        return Status::TimedOut(
                            "distributed masking exceeded its deadline");
                      }
                    }
                    attempt_cross_pairs += 2;
                    if (forward) {
                      EvaluatePair(obs, sel, a, b, same_signature, out);
                    }
                    if (backward) {
                      EvaluatePair(obs, sel, b, a, same_signature, out);
                    }
                  }
                }
              }
            }
            return Status::OK();
          }));
      if (stats != nullptr) {
        stats->cross_pairs += attempt_cross_pairs;
        stats->shipped_observations += attempt_shipped;
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
