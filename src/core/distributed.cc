#include "core/distributed.h"

#include <algorithm>
#include <unordered_set>

#include "core/cube_masking.h"
#include "core/lattice.h"

namespace rdfcube {
namespace core {

namespace {

// Evaluates one ordered cross-partition observation pair under the fused
// semantics (mirrors cube_masking.cc's FusedPass body).
void EvaluatePair(const qb::ObservationSet& obs,
                  const RelationshipSelector& sel, qb::ObsId a, qb::ObsId b,
                  bool same_signature, RelationshipSink* sink) {
  const qb::CubeSpace& space = obs.space();
  const std::size_t kd = space.num_dimensions();
  const bool shares = obs.SharesMeasure(a, b);
  if (shares && (sel.full_containment || sel.partial_containment)) {
    uint64_t mask = 0;
    std::size_t count = 0;
    for (qb::DimId d = 0; d < kd; ++d) {
      if (space.code_list(d).IsAncestorOrSelf(obs.ValueOrRoot(a, d),
                                              obs.ValueOrRoot(b, d))) {
        ++count;
        if (sel.partial_dimension_map) mask |= (uint64_t{1} << d);
      }
    }
    if (count == kd) {
      if (sel.full_containment) sink->OnFullContainment(a, b);
    } else if (count > 0 && sel.partial_containment) {
      sink->OnPartialContainment(
          a, b, static_cast<double>(count) / static_cast<double>(kd), mask);
    }
  }
  if (sel.complementarity && same_signature && a < b) {
    bool equal = true;
    for (qb::DimId d = 0; d < kd; ++d) {
      if (obs.ValueOrRoot(a, d) != obs.ValueOrRoot(b, d)) {
        equal = false;
        break;
      }
    }
    if (equal) sink->OnComplementarity(a, b);
  }
}

}  // namespace

Status RunDistributedMasking(const qb::ObservationSet& obs,
                             const DistributedOptions& options,
                             RelationshipSink* sink,
                             DistributedStats* stats) {
  const std::size_t workers =
      options.num_workers == 0 ? 1 : options.num_workers;
  const RelationshipSelector& sel = options.selector;

  // --- Partition (round-robin) and build worker-local lattices. -------------
  std::vector<Lattice> local(workers);
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    local[i % workers].AddObservation(obs, i);
  }
  if (stats != nullptr) {
    stats->num_workers = workers;
    for (const Lattice& lattice : local) stats->local_cubes += lattice.num_cubes();
  }

  // --- Local phase: each worker relates its own observations. --------------
  for (std::size_t w = 0; w < workers; ++w) {
    CubeMaskingOptions masking;
    masking.selector = sel;
    masking.deadline = options.deadline;
    CubeMaskingStats mstats;
    RDFCUBE_RETURN_IF_ERROR(
        RunCubeMasking(obs, local[w], masking, sink, &mstats));
    if (stats != nullptr) stats->local_pairs += mstats.observation_pairs_compared;
  }

  // --- Cross phase: signature exchange, then candidate-cube shipping. -------
  constexpr std::size_t kDeadlineStride = 4096;
  std::size_t since_check = 0;
  for (std::size_t u = 0; u < workers; ++u) {
    for (std::size_t v = u + 1; v < workers; ++v) {
      if (stats != nullptr) stats->signature_messages += 2;  // sigs both ways
      // Which of v's cubes must ship to u (any comparability in either
      // direction makes the pair a candidate).
      std::unordered_set<CubeId> shipped_cubes;
      for (CubeId cu = 0; cu < local[u].num_cubes(); ++cu) {
        const CubeSignature& su = local[u].signature(cu);
        for (CubeId cv = 0; cv < local[v].num_cubes(); ++cv) {
          const CubeSignature& sv = local[v].signature(cv);
          const bool forward = sel.partial_containment
                                   ? su.DominatesAny(sv)
                                   : su.DominatesAll(sv);
          const bool backward = sel.partial_containment
                                    ? sv.DominatesAny(su)
                                    : sv.DominatesAll(su);
          if (!forward && !backward) continue;
          if (stats != nullptr && shipped_cubes.insert(cv).second) {
            stats->shipped_observations += local[v].members(cv).size();
          }
          const bool same_signature = su == sv;
          for (qb::ObsId a : local[u].members(cu)) {
            for (qb::ObsId b : local[v].members(cv)) {
              if (++since_check >= kDeadlineStride) {
                since_check = 0;
                if (options.deadline.Expired()) {
                  return Status::TimedOut(
                      "distributed masking exceeded its deadline");
                }
              }
              if (stats != nullptr) stats->cross_pairs += 2;
              if (forward) {
                EvaluatePair(obs, sel, a, b, same_signature, sink);
              }
              if (backward) {
                EvaluatePair(obs, sel, b, a, same_signature, sink);
              }
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
