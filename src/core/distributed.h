// Distributed cubeMasking simulation (paper §6: "we intend to examine the
// performance of our algorithms in distributed and parallel contexts").
//
// Observations are partitioned across W workers. Each worker builds a local
// lattice and computes its local relationships independently; for
// cross-partition pairs, workers exchange only the members of *comparable*
// cubes (the lattice acts as the communication pruner: incomparable cubes
// never ship). The module runs in-process but models the message pattern and
// accounts for the data volume a real deployment would move.

#ifndef RDFCUBE_CORE_DISTRIBUTED_H_
#define RDFCUBE_CORE_DISTRIBUTED_H_

#include <cstdint>
#include <vector>

#include "core/relationship.h"
#include "qb/observation_set.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace rdfcube {
namespace core {

struct DistributedOptions {
  std::size_t num_workers = 4;
  RelationshipSelector selector;
  Deadline deadline;
};

/// \brief Communication / work accounting of a distributed run.
struct DistributedStats {
  std::size_t num_workers = 0;
  /// Total cubes across the worker-local lattices.
  std::size_t local_cubes = 0;
  /// Observation pairs evaluated locally (no communication).
  std::size_t local_pairs = 0;
  /// Observation pairs evaluated across partitions.
  std::size_t cross_pairs = 0;
  /// Observations shipped between workers (members of comparable cubes;
  /// the simulated network payload).
  std::size_t shipped_observations = 0;
  /// Signature-exchange messages (one per worker pair per direction).
  std::size_t signature_messages = 0;
  /// Fraction of all n^2 pairs that needed communication.
  double CrossFraction(std::size_t n) const {
    const double total = static_cast<double>(n) * (n - 1);
    return total == 0 ? 0.0 : static_cast<double>(cross_pairs) / total;
  }
};

/// \brief Runs the partitioned computation. Emits exactly the same
/// relationship sets as RunBaseline / RunCubeMasking (tested property);
/// round-robin partitioning by observation id.
Status RunDistributedMasking(const qb::ObservationSet& obs,
                             const DistributedOptions& options,
                             RelationshipSink* sink,
                             DistributedStats* stats = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_DISTRIBUTED_H_
