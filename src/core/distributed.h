// Distributed cubeMasking simulation (paper §6: "we intend to examine the
// performance of our algorithms in distributed and parallel contexts").
//
// Observations are partitioned across W workers. Each worker builds a local
// lattice and computes its local relationships independently; for
// cross-partition pairs, workers exchange only the members of *comparable*
// cubes (the lattice acts as the communication pruner: incomparable cubes
// never ship). The module runs in-process but models the message pattern and
// accounts for the data volume a real deployment would move.
//
// Fault tolerance: the run consults the util/fault.h injection points below.
// Injected worker crashes discard the failed task's buffered output and are
// retried with capped exponential backoff; a worker whose task keeps
// crashing past the retry budget is declared dead and its partition is
// reassigned to a surviving worker. Dropped messages are detected (ack
// timeout in a real deployment) and resent; duplicated deliveries are
// discarded by sequence-number dedup. The recovered run emits exactly the
// relationship sequence of a failure-free run (tested property).

#ifndef RDFCUBE_CORE_DISTRIBUTED_H_
#define RDFCUBE_CORE_DISTRIBUTED_H_

#include <cstdint>
#include <vector>

#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// Injection point names consulted by RunDistributedMasking (see
/// util/fault.h). One evaluation per task attempt / message delivery.
inline constexpr char kFaultWorkerCrash[] = "distributed.worker_crash";
inline constexpr char kFaultMessageDrop[] = "distributed.message_drop";
inline constexpr char kFaultMessageDuplicate[] = "distributed.message_dup";

/// \brief Worker count, retry budgets and backoff of a distributed run.
struct DistributedOptions {
  std::size_t num_workers = 4;
  RelationshipSelector selector;
  Deadline deadline;
  /// Crash-retry budget: attempts of one task on the same worker before the
  /// worker is declared dead and the task reassigned to a survivor.
  std::size_t max_retries_per_task = 3;
  /// Capped exponential backoff between retries. The in-process simulation
  /// accounts the wait in DistributedStats::simulated_backoff_ms instead of
  /// sleeping.
  double backoff_initial_ms = 1.0;
  double backoff_cap_ms = 64.0;
  /// Resend budget per message before the run gives up (guards against a
  /// drop probability of 1).
  std::size_t max_message_resends = 64;
};

/// \brief Communication / work / recovery accounting of a distributed run.
struct DistributedStats {
  std::size_t num_workers = 0;
  /// Total cubes across the worker-local lattices.
  std::size_t local_cubes = 0;
  /// Observation pairs evaluated locally (no communication).
  std::size_t local_pairs = 0;
  /// Observation pairs evaluated across partitions.
  std::size_t cross_pairs = 0;
  /// Observations shipped between workers (members of comparable cubes;
  /// the simulated network payload).
  std::size_t shipped_observations = 0;
  /// Signature-exchange messages (one per worker pair per direction).
  std::size_t signature_messages = 0;

  // --- Recovery accounting (injected faults + the responses to them) -------
  /// Injected crash events observed (each discards one task attempt).
  std::size_t worker_crashes = 0;
  /// Task re-executions on the same worker after a crash.
  std::size_t task_retries = 0;
  /// Partitions/tasks moved to a surviving worker after a worker death.
  std::size_t reassignments = 0;
  /// Workers declared dead over the run.
  std::size_t workers_lost = 0;
  /// Messages lost in flight (injected) and the resends replaying them.
  std::size_t dropped_messages = 0;
  std::size_t replayed_messages = 0;
  /// Duplicated deliveries discarded by the receiver's sequence dedup.
  std::size_t duplicate_messages = 0;
  /// Total capped-exponential backoff the retries would have waited.
  double simulated_backoff_ms = 0.0;

  /// Fraction of all n^2 pairs that needed communication.
  double CrossFraction(std::size_t n) const {
    const double total = static_cast<double>(n) * (n - 1);
    return total == 0 ? 0.0 : static_cast<double>(cross_pairs) / total;
  }
};

/// \brief Runs the partitioned computation. Emits exactly the same
/// relationship sets as RunBaseline / RunCubeMasking (tested property), with
/// or without injected faults; round-robin partitioning by observation id.
/// Fails with Internal when every worker has been lost, ResourceExhausted
/// when a message exceeds its resend budget, TimedOut past the deadline.
[[nodiscard]] Status RunDistributedMasking(const qb::ObservationSet& obs,
                             const DistributedOptions& options,
                             RelationshipSink* sink,
                             DistributedStats* stats = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_DISTRIBUTED_H_
