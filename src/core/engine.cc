#include "core/engine.h"

#include <memory>
#include <string>

#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "obs/trace.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

namespace obx = ::rdfcube::obs;

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBaseline:
      return "baseline";
    case Method::kClustering:
      return "clustering";
    case Method::kCubeMasking:
      return "cubeMasking";
    case Method::kHybrid:
      return "hybrid";
  }
  return "?";
}

Status ComputeRelationships(const qb::ObservationSet& obs,
                            const EngineOptions& options,
                            RelationshipSink* sink, EngineReport* report) {
  Stopwatch watch;
  // `deadline` wins; the deprecated timeout_seconds is honored only when no
  // Deadline was supplied.
  const Deadline deadline = options.deadline.HasLimit()
                                ? options.deadline
                                : (options.timeout_seconds > 0
                                       ? Deadline(options.timeout_seconds)
                                       : Deadline());
  Status status;
  switch (options.method) {
    case Method::kBaseline: {
      std::unique_ptr<const OccurrenceMatrix> om;
      {
        obx::TraceSpan span("engine/occurrence_matrix");
        om = std::make_unique<const OccurrenceMatrix>(obs);
      }
      BaselineOptions bo;
      bo.selector = options.selector;
      bo.deadline = deadline;
      obx::TraceSpan span("engine/baseline");
      status = RunBaseline(obs, *om, bo, sink);
      break;
    }
    case Method::kClustering: {
      std::unique_ptr<const OccurrenceMatrix> om;
      {
        obx::TraceSpan span("engine/occurrence_matrix");
        om = std::make_unique<const OccurrenceMatrix>(obs);
      }
      ClusteringMethodOptions co;
      co.selector = options.selector;
      co.deadline = deadline;
      co.algorithm = options.cluster_algorithm;
      co.sample_fraction = options.cluster_sample_fraction;
      co.seed = options.seed;
      {
        obx::TraceSpan span("engine/clustering");
        status = RunClusteringMethod(obs, *om, co, sink,
                                     report ? &report->cluster : nullptr);
      }
      break;
    }
    case Method::kCubeMasking: {
      CubeMaskingOptions mo;
      mo.selector = options.selector;
      mo.deadline = deadline;
      mo.prefetch_children = options.prefetch_children;
      {
        obx::TraceSpan span("engine/cube_masking");
        status = RunCubeMasking(obs, mo, sink,
                                report ? &report->masking : nullptr);
      }
      break;
    }
    case Method::kHybrid: {
      HybridOptions ho;
      ho.deadline = deadline;
      ho.cluster_algorithm = options.cluster_algorithm;
      ho.cluster_sample_fraction = options.cluster_sample_fraction;
      ho.seed = options.seed;
      ho.partial_dimension_map = options.selector.partial_dimension_map;
      ho.compute_partial = options.selector.partial_containment;
      HybridStats hstats;
      {
        obx::TraceSpan span("engine/hybrid");
        status = RunHybrid(obs, ho, sink, &hstats);
      }
      if (report != nullptr) {
        report->masking = hstats.masking;
        report->cluster = hstats.cluster;
      }
      break;
    }
  }
  if (report != nullptr) report->elapsed_seconds = watch.ElapsedSeconds();
  return status;
}

void FillRunReport(const EngineReport& report, obs::RunReport* out) {
  out->set_wall_seconds(report.elapsed_seconds);
  out->AddStat("masking.num_cubes",
               static_cast<double>(report.masking.num_cubes));
  out->AddStat("masking.cube_pairs_checked",
               static_cast<double>(report.masking.cube_pairs_checked));
  out->AddStat("masking.cube_pairs_comparable",
               static_cast<double>(report.masking.cube_pairs_comparable));
  out->AddStat("masking.observation_pairs_compared",
               static_cast<double>(report.masking.observation_pairs_compared));
  out->AddStat("masking.relationships_emitted",
               static_cast<double>(report.masking.relationships_emitted));
  out->AddStat("cluster.sample_size",
               static_cast<double>(report.cluster.sample_size));
  out->AddStat("cluster.num_clusters",
               static_cast<double>(report.cluster.num_clusters));
  out->AddStat("cluster.largest_cluster",
               static_cast<double>(report.cluster.largest_cluster));
}

}  // namespace core
}  // namespace rdfcube
