#include "core/engine.h"

#include "core/baseline.h"
#include "core/occurrence_matrix.h"

namespace rdfcube {
namespace core {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kBaseline:
      return "baseline";
    case Method::kClustering:
      return "clustering";
    case Method::kCubeMasking:
      return "cubeMasking";
    case Method::kHybrid:
      return "hybrid";
  }
  return "?";
}

Status ComputeRelationships(const qb::ObservationSet& obs,
                            const EngineOptions& options,
                            RelationshipSink* sink, EngineReport* report) {
  Stopwatch watch;
  // `deadline` wins; the deprecated timeout_seconds is honored only when no
  // Deadline was supplied.
  const Deadline deadline = options.deadline.HasLimit()
                                ? options.deadline
                                : (options.timeout_seconds > 0
                                       ? Deadline(options.timeout_seconds)
                                       : Deadline());
  Status status;
  switch (options.method) {
    case Method::kBaseline: {
      const OccurrenceMatrix om(obs);
      BaselineOptions bo;
      bo.selector = options.selector;
      bo.deadline = deadline;
      status = RunBaseline(obs, om, bo, sink);
      break;
    }
    case Method::kClustering: {
      const OccurrenceMatrix om(obs);
      ClusteringMethodOptions co;
      co.selector = options.selector;
      co.deadline = deadline;
      co.algorithm = options.cluster_algorithm;
      co.sample_fraction = options.cluster_sample_fraction;
      co.seed = options.seed;
      status = RunClusteringMethod(obs, om, co, sink,
                                   report ? &report->cluster : nullptr);
      break;
    }
    case Method::kCubeMasking: {
      CubeMaskingOptions mo;
      mo.selector = options.selector;
      mo.deadline = deadline;
      mo.prefetch_children = options.prefetch_children;
      status = RunCubeMasking(obs, mo, sink,
                              report ? &report->masking : nullptr);
      break;
    }
    case Method::kHybrid: {
      HybridOptions ho;
      ho.deadline = deadline;
      ho.cluster_algorithm = options.cluster_algorithm;
      ho.cluster_sample_fraction = options.cluster_sample_fraction;
      ho.seed = options.seed;
      ho.partial_dimension_map = options.selector.partial_dimension_map;
      ho.compute_partial = options.selector.partial_containment;
      HybridStats hstats;
      status = RunHybrid(obs, ho, sink, &hstats);
      if (report != nullptr) {
        report->masking = hstats.masking;
        report->cluster = hstats.cluster;
      }
      break;
    }
  }
  if (report != nullptr) report->elapsed_seconds = watch.ElapsedSeconds();
  return status;
}

}  // namespace core
}  // namespace rdfcube
