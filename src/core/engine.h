// Engine: one entry point over the three native computation methods.

#ifndef RDFCUBE_CORE_ENGINE_H_
#define RDFCUBE_CORE_ENGINE_H_

#include <string>

#include "core/clustering_method.h"
#include "core/cube_masking.h"
#include "core/hybrid.h"
#include "core/relationship.h"
#include "obs/report.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// The paper's three proposed methods plus the §6 hybrid. (The SPARQL- and
/// rule-based comparison approaches live in src/sparql and src/rules and are
/// invoked through their own engines; they are baselines *against* this
/// system, not part of it.)
enum class Method {
  kBaseline,
  kClustering,
  kCubeMasking,
  /// §6 hybrid: exact cubeMasking for full containment + complementarity,
  /// clustering approximation for partial containment. The selector's
  /// partial_containment flag controls whether the lossy stage runs.
  kHybrid,
};

const char* MethodName(Method method);

/// \brief Method selection and shared parameters for Engine::Run.
struct EngineOptions {
  Method method = Method::kCubeMasking;
  RelationshipSelector selector;
  /// Wall-clock limit for the run. The default-constructed Deadline never
  /// expires. This is the single deadline type used across the codebase
  /// (benches, SPARQL/rule engines, distributed/checkpointed runs).
  Deadline deadline;
  /// DEPRECATED: use `deadline`. Honored only when `deadline` carries no
  /// limit; <= 0 means unlimited. Kept so existing callers keep working.
  double timeout_seconds = -1.0;
  /// Clustering-specific knobs (ignored by other methods).
  ClusterAlgorithm cluster_algorithm = ClusterAlgorithm::kXMeans;
  double cluster_sample_fraction = 0.10;
  uint64_t seed = 42;
  /// cubeMasking-specific knob (Fig. 5(g)).
  bool prefetch_children = true;
};

/// \brief Post-run report.
struct EngineReport {
  double elapsed_seconds = 0.0;
  CubeMaskingStats masking;       // filled by kCubeMasking / kHybrid
  ClusteringMethodStats cluster;  // filled by kClustering / kHybrid
};

/// \brief Computes containment/complementarity relationships over `obs` with
/// the selected method, streaming results into `sink`.
[[nodiscard]] Status ComputeRelationships(const qb::ObservationSet& obs,
                            const EngineOptions& options,
                            RelationshipSink* sink,
                            EngineReport* report = nullptr);

/// \brief Flattens an EngineReport into an obs::RunReport (wall clock plus
/// per-method scalar stats). The dependency points core → obs so the
/// observability layer itself stays engine-agnostic.
void FillRunReport(const EngineReport& report, obs::RunReport* out);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_ENGINE_H_
