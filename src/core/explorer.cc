#include "core/explorer.h"

#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

CubeExplorer::CubeExplorer(const qb::ObservationSet* obs)
    : obs_(obs), lattice_(*obs), children_(lattice_) {
  dominators_.resize(lattice_.num_cubes());
  for (CubeId j = 0; j < lattice_.num_cubes(); ++j) {
    for (CubeId k : children_.all_dominated(j)) {
      dominators_[k].push_back(j);
    }
  }
}

bool CubeExplorer::DimsContain(qb::ObsId a, qb::ObsId b) const {
  const qb::CubeSpace& space = obs_->space();
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    if (!space.code_list(d).IsAncestorOrSelf(obs_->ValueOrRoot(a, d),
                                             obs_->ValueOrRoot(b, d))) {
      return false;
    }
  }
  return true;
}

std::size_t CubeExplorer::CountContainingDims(qb::ObsId a, qb::ObsId b) const {
  const qb::CubeSpace& space = obs_->space();
  std::size_t count = 0;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    if (space.code_list(d).IsAncestorOrSelf(obs_->ValueOrRoot(a, d),
                                            obs_->ValueOrRoot(b, d))) {
      ++count;
    }
  }
  return count;
}

std::vector<qb::ObsId> CubeExplorer::ContainedBy(qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  for (CubeId cube : children_.all_dominated(lattice_.cube_of(id))) {
    for (qb::ObsId other : lattice_.members(cube)) {
      if (other == id) continue;
      if (obs_->SharesMeasure(id, other) && DimsContain(id, other)) {
        out.push_back(other);
      }
    }
  }
  return out;
}

std::vector<qb::ObsId> CubeExplorer::Containers(qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  for (CubeId cube : dominators_[lattice_.cube_of(id)]) {
    for (qb::ObsId other : lattice_.members(cube)) {
      if (other == id) continue;
      if (obs_->SharesMeasure(id, other) && DimsContain(other, id)) {
        out.push_back(other);
      }
    }
  }
  return out;
}

std::vector<qb::ObsId> CubeExplorer::Complements(qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  const qb::CubeSpace& space = obs_->space();
  for (qb::ObsId other : lattice_.members(lattice_.cube_of(id))) {
    if (other == id) continue;
    bool equal = true;
    for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
      if (obs_->ValueOrRoot(id, d) != obs_->ValueOrRoot(other, d)) {
        equal = false;
        break;
      }
    }
    if (equal) out.push_back(other);
  }
  return out;
}

std::vector<CubeExplorer::PartialMatch> CubeExplorer::PartiallyContained(
    qb::ObsId id, double min_degree) const {
  std::vector<PartialMatch> out;
  const std::size_t kd = obs_->space().num_dimensions();
  const CubeId my_cube = lattice_.cube_of(id);
  for (CubeId cube : children_.any_dominated(my_cube)) {
    for (qb::ObsId other : lattice_.members(cube)) {
      if (other == id || !obs_->SharesMeasure(id, other)) continue;
      const std::size_t count = CountContainingDims(id, other);
      if (count == 0 || count == kd) continue;
      const double degree =
          static_cast<double>(count) / static_cast<double>(kd);
      if (degree >= min_degree) out.push_back({other, degree});
    }
  }
  return out;
}

}  // namespace core
}  // namespace rdfcube
