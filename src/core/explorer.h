// Online exploration API: point queries against one observation instead of
// batch pair enumeration (the paper's §1 motivation: "provide
// recommendations for online browsing ... navigate and explore remote
// cubes"). Built on the lattice + pre-fetched children index, so a query
// touches only observations in comparable cubes.

#ifndef RDFCUBE_CORE_EXPLORER_H_
#define RDFCUBE_CORE_EXPLORER_H_

#include <vector>

#include "core/lattice.h"
#include "core/relationship.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// \brief Per-observation relationship queries.
///
/// Construction builds the lattice and the comparable-cube index once
/// (O(n + #cubes^2)); each query then costs O(observations in comparable
/// cubes). The ObservationSet must outlive the explorer and not grow while
/// it is in use (use IncrementalEngine for evolving sets).
class CubeExplorer {
 public:
  explicit CubeExplorer(const qb::ObservationSet* obs);

  /// Observations that `id` fully contains (its drill-down targets).
  std::vector<qb::ObsId> ContainedBy(qb::ObsId id) const;

  /// Observations that fully contain `id` (its roll-up targets).
  std::vector<qb::ObsId> Containers(qb::ObsId id) const;

  /// Observations complementary to `id` (same padded coordinates).
  std::vector<qb::ObsId> Complements(qb::ObsId id) const;

  /// Observations partially contained by `id`, with degree >= min_degree.
  struct PartialMatch {
    qb::ObsId other;
    double degree;
  };
  std::vector<PartialMatch> PartiallyContained(qb::ObsId id,
                                               double min_degree = 0.0) const;

  const Lattice& lattice() const { return lattice_; }

 private:
  bool DimsContain(qb::ObsId a, qb::ObsId b) const;
  std::size_t CountContainingDims(qb::ObsId a, qb::ObsId b) const;

  const qb::ObservationSet* obs_;
  Lattice lattice_;
  CubeChildrenIndex children_;
  // Reverse adjacency: cubes that dominate cube c (for Containers()).
  std::vector<std::vector<CubeId>> dominators_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_EXPLORER_H_
