#include "core/hybrid.h"

#include "core/occurrence_matrix.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

Status RunHybrid(const qb::ObservationSet& obs, const HybridOptions& options,
                 RelationshipSink* sink, HybridStats* stats) {
  // Stage 1: exact full containment + complementarity via cubeMasking.
  {
    Stopwatch watch;
    CubeMaskingOptions masking;
    masking.selector.full_containment = true;
    masking.selector.complementarity = true;
    masking.selector.partial_containment = false;
    masking.deadline = options.deadline;
    RDFCUBE_RETURN_IF_ERROR(RunCubeMasking(
        obs, masking, sink, stats != nullptr ? &stats->masking : nullptr));
    if (stats != nullptr) stats->masking_seconds = watch.ElapsedSeconds();
  }
  if (!options.compute_partial) return Status::OK();

  // Stage 2: approximate partial containment via per-cluster baselines.
  {
    Stopwatch watch;
    const OccurrenceMatrix om(obs);
    ClusteringMethodOptions clustering;
    clustering.selector.full_containment = false;
    clustering.selector.complementarity = false;
    clustering.selector.partial_containment = true;
    clustering.selector.partial_dimension_map = options.partial_dimension_map;
    clustering.deadline = options.deadline;
    clustering.algorithm = options.cluster_algorithm;
    clustering.sample_fraction = options.cluster_sample_fraction;
    clustering.seed = options.seed;
    RDFCUBE_RETURN_IF_ERROR(RunClusteringMethod(
        obs, om, clustering, sink, stats != nullptr ? &stats->cluster : nullptr));
    if (stats != nullptr) stats->clustering_seconds = watch.ElapsedSeconds();
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
