// Hybrid method (paper §6: "hybrid probabilistic methods that take into
// advantage the positive points of the clustering and cubeMasking
// algorithms"): full containment and complementarity — where lattice pruning
// is strong — run through lossless cubeMasking, while partial containment —
// the expensive, weakly-prunable type — runs through the lossy clustering
// method. Exact where exactness is cheap, approximate where it is not.

#ifndef RDFCUBE_CORE_HYBRID_H_
#define RDFCUBE_CORE_HYBRID_H_

#include "core/clustering_method.h"
#include "core/cube_masking.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// \brief Thresholds steering the hybrid method choice per cube pair.
struct HybridOptions {
  Deadline deadline;
  /// Clustering configuration for the partial-containment stage.
  ClusterAlgorithm cluster_algorithm = ClusterAlgorithm::kXMeans;
  double cluster_sample_fraction = 0.10;
  uint64_t seed = 42;
  /// Request the per-dimension map on partial containments.
  bool partial_dimension_map = false;
  /// Skip the partial stage entirely (degenerates to exact cubeMasking on
  /// full + complementarity).
  bool compute_partial = true;
};

/// \brief Per-strategy dispatch counts of a hybrid run.
struct HybridStats {
  CubeMaskingStats masking;
  ClusteringMethodStats cluster;
  double masking_seconds = 0.0;
  double clustering_seconds = 0.0;
};

/// \brief Runs the hybrid: exact full containment + complementarity, then
/// approximate partial containment. Full/compl results are identical to the
/// baseline's; partial results are a subset (recall as in Fig. 5(d)).
[[nodiscard]] Status RunHybrid(const qb::ObservationSet& obs, const HybridOptions& options,
                 RelationshipSink* sink, HybridStats* stats = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_HYBRID_H_
