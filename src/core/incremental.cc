#include "core/incremental.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "base/hot.h"
#include "core/checkpoint.h"
#include "core/snapshot_io.h"
#include "hierarchy/code_list.h"
#include "obs/metrics.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

namespace {

obs::Counter& IncrementalAdds() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_incremental_adds_total", "Observations integrated");
  return c;
}

obs::Counter& IncrementalRetires() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_incremental_retires_total", "Observations retired");
  return c;
}

// Relationship-set growth per integrated observation (the paper-§6 delta).
obs::Histogram& DeltaRelationships() {
  static obs::Histogram& h = obs::DefaultHistogram(
      "rdfcube_incremental_delta_relationships",
      "Stored relationships added per OnObservationAdded",
      obs::ExponentialBuckets(1.0, 2.0, 14));  // 1 .. 8192
  return h;
}

Status CorruptSnapshot(const char* what) {
  return Status::ParseError(std::string("corrupt incremental snapshot: ") +
                            what);
}

}  // namespace

IncrementalEngine::IncrementalEngine(const qb::ObservationSet* obs,
                                     const RelationshipSelector& selector)
    : obs_(obs), selector_(selector) {}

Status IncrementalEngine::OnObservationAdded(qb::ObsId id) {
  if (id >= obs_->size()) {
    return Status::InvalidArgument("observation id not in the set");
  }
  if (id < live_.size() && live_[id]) {
    return Status::AlreadyExists("observation already integrated");
  }
  const std::size_t sets_before =
      full_.size() + partial_.size() + compl_.size();
  // Register in the lattice first so its cube exists.
  const CubeId my_cube = lattice_.AddObservation(*obs_, id);
  if (live_.size() <= id) live_.resize(id + 1, false);
  live_[id] = true;

  // Candidate partners: observations in cubes comparable to mine in either
  // direction (any-dominates covers the partial case, which subsumes the
  // full/compl candidates as well).
  const CubeSignature& mine = lattice_.signature(my_cube);
  for (CubeId c = 0; c < lattice_.num_cubes(); ++c) {
    const CubeSignature& other = lattice_.signature(c);
    const bool forward = selector_.partial_containment
                             ? mine.DominatesAny(other)
                             : mine.DominatesAll(other);
    const bool backward = selector_.partial_containment
                              ? other.DominatesAny(mine)
                              : other.DominatesAll(mine);
    if (!forward && !backward) continue;
    for (qb::ObsId partner : lattice_.members(c)) {
      if (partner == id || !live_[partner]) continue;
      Compare(id, partner);
    }
  }
  IncrementalAdds().Increment();
  DeltaRelationships().Observe(static_cast<double>(
      full_.size() + partial_.size() + compl_.size() - sets_before));
  return Status::OK();
}

Status IncrementalEngine::OnObservationRetired(qb::ObsId id) {
  if (id >= live_.size() || !live_[id]) {
    return Status::NotFound("observation is not live");
  }
  live_[id] = false;
  lattice_.RemoveObservation(id);
  auto it = partners_.find(id);
  if (it != partners_.end()) {
    for (qb::ObsId partner : it->second) {
      full_.erase(Key(id, partner));
      full_.erase(Key(partner, id));
      partial_.erase(Key(id, partner));
      partial_.erase(Key(partner, id));
      compl_.erase(Key(std::min(id, partner), std::max(id, partner)));
      // Drop the back-reference.
      auto pit = partners_.find(partner);
      if (pit != partners_.end()) {
        auto& v = pit->second;
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
      }
    }
    partners_.erase(it);
  }
  IncrementalRetires().Increment();
  return Status::OK();
}

double IncrementalEngine::PartialDegree(qb::ObsId a, qb::ObsId b) const {
  auto it = partial_.find(Key(a, b));
  return it == partial_.end() ? 0.0 : it->second;
}

void IncrementalEngine::Link(qb::ObsId a, qb::ObsId b) {
  partners_[a].push_back(b);
  partners_[b].push_back(a);
}

void IncrementalEngine::Compare(qb::ObsId a, qb::ObsId b) {
  const qb::CubeSpace& space = obs_->space();
  const std::size_t k = space.num_dimensions();
  std::size_t count_ab = 0, count_ba = 0;
  for (qb::DimId d = 0; d < k; ++d) {
    const hierarchy::CodeList& list = space.code_list(d);
    const hierarchy::CodeId va = obs_->ValueOrRoot(a, d);
    const hierarchy::CodeId vb = obs_->ValueOrRoot(b, d);
    if (list.IsAncestorOrSelf(va, vb)) ++count_ab;
    if (list.IsAncestorOrSelf(vb, va)) ++count_ba;
  }
  const bool shares = obs_->SharesMeasure(a, b);
  bool linked = false;
  auto link_once = [&] {
    if (!linked) {
      Link(a, b);
      linked = true;
    }
  };
  if (shares) {
    if (selector_.full_containment) {
      if (count_ab == k) {
        full_.insert(Key(a, b));
        link_once();
      }
      if (count_ba == k) {
        full_.insert(Key(b, a));
        link_once();
      }
    }
    if (selector_.partial_containment) {
      if (count_ab > 0 && count_ab < k) {
        partial_.emplace(Key(a, b),
                         static_cast<double>(count_ab) / static_cast<double>(k));
        link_once();
      }
      if (count_ba > 0 && count_ba < k) {
        partial_.emplace(Key(b, a),
                         static_cast<double>(count_ba) / static_cast<double>(k));
        link_once();
      }
    }
  }
  if (selector_.complementarity && count_ab == k && count_ba == k) {
    compl_.insert(Key(std::min(a, b), std::max(a, b)));
    link_once();
  }
}

void IncrementalEngine::Export(RelationshipSink* sink) const {
  // Unlimited deadline: the bounded overload cannot time out.
  (void)Export(sink, Deadline());
}

RDFCUBE_HOT Status IncrementalEngine::Export(RelationshipSink* sink,
                                             const Deadline& deadline) const {
  // Check the deadline once per batch, not per emission: the per-item work
  // is two shifts and a virtual call, so a clock read each time would
  // dominate.
  constexpr std::size_t kDeadlineStride = 4096;
  std::size_t since_check = 0;
  const auto expired = [&]() {
    if (++since_check < kDeadlineStride) return false;
    since_check = 0;
    return deadline.Expired();
  };
  // An already-expired deadline fails before any emission, regardless of
  // how little there is to export.
  if (deadline.Expired()) {
    return Status::TimedOut("deadline expired in export");
  }
  for (uint64_t key : full_) {
    if (expired()) return Status::TimedOut("deadline expired in export");
    sink->OnFullContainment(static_cast<qb::ObsId>(key >> 32),
                            static_cast<qb::ObsId>(key & 0xffffffffu));
  }
  for (const auto& [key, degree] : partial_) {
    if (expired()) return Status::TimedOut("deadline expired in export");
    sink->OnPartialContainment(static_cast<qb::ObsId>(key >> 32),
                               static_cast<qb::ObsId>(key & 0xffffffffu),
                               degree, 0);
  }
  for (uint64_t key : compl_) {
    if (expired()) return Status::TimedOut("deadline expired in export");
    sink->OnComplementarity(static_cast<qb::ObsId>(key >> 32),
                            static_cast<qb::ObsId>(key & 0xffffffffu));
  }
  return Status::OK();
}

RDFCUBE_HOT std::vector<qb::ObsId> IncrementalEngine::Containers(
    qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  auto it = partners_.find(id);
  if (it == partners_.end()) return out;
  out.reserve(it->second.size());
  for (qb::ObsId partner : it->second) {
    if (full_.count(Key(partner, id)) != 0) out.push_back(partner);
  }
  std::sort(out.begin(), out.end());
  return out;
}

RDFCUBE_HOT std::vector<qb::ObsId> IncrementalEngine::Contained(
    qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  auto it = partners_.find(id);
  if (it == partners_.end()) return out;
  out.reserve(it->second.size());
  for (qb::ObsId partner : it->second) {
    if (full_.count(Key(id, partner)) != 0) out.push_back(partner);
  }
  std::sort(out.begin(), out.end());
  return out;
}

RDFCUBE_HOT std::vector<qb::ObsId> IncrementalEngine::Complements(
    qb::ObsId id) const {
  std::vector<qb::ObsId> out;
  auto it = partners_.find(id);
  if (it == partners_.end()) return out;
  out.reserve(it->second.size());
  for (qb::ObsId partner : it->second) {
    if (compl_.count(Key(std::min(id, partner), std::max(id, partner))) != 0) {
      out.push_back(partner);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

RDFCUBE_HOT std::vector<IncrementalEngine::PartialMatch>
IncrementalEngine::PartiallyContained(qb::ObsId id, double min_degree) const {
  std::vector<PartialMatch> out;
  auto it = partners_.find(id);
  if (it == partners_.end()) return out;
  out.reserve(it->second.size());
  for (qb::ObsId partner : it->second) {
    auto pit = partial_.find(Key(id, partner));
    if (pit != partial_.end() && pit->second >= min_degree) {
      out.push_back({partner, pit->second});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PartialMatch& a, const PartialMatch& b) {
              return a.other < b.other;
            });
  return out;
}

std::string IncrementalEngine::SerializeState() const {
  using snapshot::PutDouble;
  using snapshot::PutU32;
  using snapshot::PutU64;
  std::string out;
  out.append(kIncrementalMagic, sizeof(kIncrementalMagic));
  PutU32(&out, SelectorBits(selector_));

  std::vector<qb::ObsId> live_ids;
  for (qb::ObsId id = 0; id < live_.size(); ++id) {
    if (live_[id]) live_ids.push_back(id);
  }
  PutU64(&out, live_ids.size());
  for (qb::ObsId id : live_ids) PutU32(&out, id);

  // Hash-set iteration order is unspecified: serialize sorted so the same
  // state always produces the same bytes (the determinism tests rely on it).
  std::vector<uint64_t> keys(full_.begin(), full_.end());
  std::sort(keys.begin(), keys.end());
  PutU64(&out, keys.size());
  for (uint64_t key : keys) PutU64(&out, key);

  std::vector<std::pair<uint64_t, double>> partials(partial_.begin(),
                                                    partial_.end());
  std::sort(partials.begin(), partials.end());
  PutU64(&out, partials.size());
  for (const auto& [key, degree] : partials) {
    PutU64(&out, key);
    PutDouble(&out, degree);
  }

  keys.assign(compl_.begin(), compl_.end());
  std::sort(keys.begin(), keys.end());
  PutU64(&out, keys.size());
  for (uint64_t key : keys) PutU64(&out, key);
  return out;
}

Status IncrementalEngine::RestoreState(const std::string& bytes) {
  if (!live_.empty() || !full_.empty() || !partial_.empty() ||
      !compl_.empty() || !partners_.empty()) {
    return Status::FailedPrecondition(
        "RestoreState requires a freshly-constructed engine");
  }
  if (bytes.size() < sizeof(kIncrementalMagic) ||
      std::memcmp(bytes.data(), kIncrementalMagic,
                  sizeof(kIncrementalMagic)) != 0) {
    return CorruptSnapshot("bad magic");
  }
  snapshot::ByteReader r(bytes);
  {
    // Advance past the 8-byte magic (already validated above).
    uint64_t magic_bytes;
    if (!r.GetU64(&magic_bytes)) return CorruptSnapshot("truncated header");
  }
  uint32_t selector_bits;
  if (!r.GetU32(&selector_bits)) return CorruptSnapshot("selector bits");
  if (selector_bits != SelectorBits(selector_)) {
    return Status::FailedPrecondition(
        "snapshot was taken with a different relationship selector");
  }

  uint64_t count;
  if (!r.GetU64(&count)) return CorruptSnapshot("live count");
  if (count > r.Remaining() / 4) {
    return CorruptSnapshot("live count out of range");
  }
  uint32_t prev_id = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t id;
    if (!r.GetU32(&id)) return CorruptSnapshot("live id");
    if (i > 0 && id <= prev_id) return CorruptSnapshot("live ids not ascending");
    prev_id = id;
    if (id >= obs_->size()) return CorruptSnapshot("live id out of range");
    lattice_.AddObservation(*obs_, id);
    if (live_.size() <= id) live_.resize(id + 1, false);
    live_[id] = true;
  }

  auto valid_pair = [&](uint64_t key, bool ordered) {
    const qb::ObsId a = static_cast<qb::ObsId>(key >> 32);
    const qb::ObsId b = static_cast<qb::ObsId>(key & 0xffffffffu);
    if (a >= live_.size() || b >= live_.size() || !live_[a] || !live_[b] ||
        a == b) {
      return false;
    }
    return !ordered || a < b;
  };

  if (!r.GetU64(&count)) return CorruptSnapshot("full count");
  if (count > r.Remaining() / 8) {
    return CorruptSnapshot("full count out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key;
    if (!r.GetU64(&key)) return CorruptSnapshot("full key");
    if (!valid_pair(key, /*ordered=*/false)) {
      return CorruptSnapshot("full key ids");
    }
    full_.insert(key);
  }

  if (!r.GetU64(&count)) return CorruptSnapshot("partial count");
  if (count > r.Remaining() / 16) {
    return CorruptSnapshot("partial count out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key;
    double degree;
    if (!r.GetU64(&key) || !r.GetDouble(&degree)) {
      return CorruptSnapshot("partial record");
    }
    if (!valid_pair(key, /*ordered=*/false)) {
      return CorruptSnapshot("partial key ids");
    }
    // Degrees live strictly inside (0, 1); the negated form also rejects NaN.
    if (!(degree > 0.0 && degree < 1.0)) {
      return CorruptSnapshot("partial degree");
    }
    partial_.emplace(key, degree);
  }

  if (!r.GetU64(&count)) return CorruptSnapshot("complementarity count");
  if (count > r.Remaining() / 8) {
    return CorruptSnapshot("complementarity count out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key;
    if (!r.GetU64(&key)) return CorruptSnapshot("complementarity key");
    if (!valid_pair(key, /*ordered=*/true)) {
      return CorruptSnapshot("complementarity key ids");
    }
    compl_.insert(key);
  }
  if (!r.AtEnd()) return CorruptSnapshot("trailing bytes");

  // Rebuild the partner index (needed for O(degree) retirement) from the
  // restored sets: one link per unordered pair, as Compare would have made.
  std::set<uint64_t> pairs;
  auto normalized = [](uint64_t key) {
    const qb::ObsId a = static_cast<qb::ObsId>(key >> 32);
    const qb::ObsId b = static_cast<qb::ObsId>(key & 0xffffffffu);
    return Key(std::min(a, b), std::max(a, b));
  };
  for (uint64_t key : full_) pairs.insert(normalized(key));
  for (const auto& [key, degree] : partial_) pairs.insert(normalized(key));
  for (uint64_t key : compl_) pairs.insert(normalized(key));
  for (uint64_t key : pairs) {
    Link(static_cast<qb::ObsId>(key >> 32),
         static_cast<qb::ObsId>(key & 0xffffffffu));
  }
  return Status::OK();
}

Status IncrementalEngine::SaveCheckpoint(const std::string& path) const {
  return AtomicWriteFile(SerializeState(), path);
}

Status IncrementalEngine::RestoreFromCheckpoint(const std::string& path) {
  RDFCUBE_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return RestoreState(bytes);
}

}  // namespace core
}  // namespace rdfcube
