#include "core/incremental.h"

#include <algorithm>

namespace rdfcube {
namespace core {

IncrementalEngine::IncrementalEngine(const qb::ObservationSet* obs,
                                     const RelationshipSelector& selector)
    : obs_(obs), selector_(selector) {}

Status IncrementalEngine::OnObservationAdded(qb::ObsId id) {
  if (id >= obs_->size()) {
    return Status::InvalidArgument("observation id not in the set");
  }
  if (id < live_.size() && live_[id]) {
    return Status::AlreadyExists("observation already integrated");
  }
  // Register in the lattice first so its cube exists.
  const CubeId my_cube = lattice_.AddObservation(*obs_, id);
  if (live_.size() <= id) live_.resize(id + 1, false);
  live_[id] = true;

  // Candidate partners: observations in cubes comparable to mine in either
  // direction (any-dominates covers the partial case, which subsumes the
  // full/compl candidates as well).
  const CubeSignature& mine = lattice_.signature(my_cube);
  for (CubeId c = 0; c < lattice_.num_cubes(); ++c) {
    const CubeSignature& other = lattice_.signature(c);
    const bool forward = selector_.partial_containment
                             ? mine.DominatesAny(other)
                             : mine.DominatesAll(other);
    const bool backward = selector_.partial_containment
                              ? other.DominatesAny(mine)
                              : other.DominatesAll(mine);
    if (!forward && !backward) continue;
    for (qb::ObsId partner : lattice_.members(c)) {
      if (partner == id || !live_[partner]) continue;
      Compare(id, partner);
    }
  }
  return Status::OK();
}

Status IncrementalEngine::OnObservationRetired(qb::ObsId id) {
  if (id >= live_.size() || !live_[id]) {
    return Status::NotFound("observation is not live");
  }
  live_[id] = false;
  lattice_.RemoveObservation(id);
  auto it = partners_.find(id);
  if (it != partners_.end()) {
    for (qb::ObsId partner : it->second) {
      full_.erase(Key(id, partner));
      full_.erase(Key(partner, id));
      partial_.erase(Key(id, partner));
      partial_.erase(Key(partner, id));
      compl_.erase(Key(std::min(id, partner), std::max(id, partner)));
      // Drop the back-reference.
      auto pit = partners_.find(partner);
      if (pit != partners_.end()) {
        auto& v = pit->second;
        v.erase(std::remove(v.begin(), v.end(), id), v.end());
      }
    }
    partners_.erase(it);
  }
  return Status::OK();
}

double IncrementalEngine::PartialDegree(qb::ObsId a, qb::ObsId b) const {
  auto it = partial_.find(Key(a, b));
  return it == partial_.end() ? 0.0 : it->second;
}

void IncrementalEngine::Link(qb::ObsId a, qb::ObsId b) {
  partners_[a].push_back(b);
  partners_[b].push_back(a);
}

void IncrementalEngine::Compare(qb::ObsId a, qb::ObsId b) {
  const qb::CubeSpace& space = obs_->space();
  const std::size_t k = space.num_dimensions();
  std::size_t count_ab = 0, count_ba = 0;
  for (qb::DimId d = 0; d < k; ++d) {
    const hierarchy::CodeList& list = space.code_list(d);
    const hierarchy::CodeId va = obs_->ValueOrRoot(a, d);
    const hierarchy::CodeId vb = obs_->ValueOrRoot(b, d);
    if (list.IsAncestorOrSelf(va, vb)) ++count_ab;
    if (list.IsAncestorOrSelf(vb, va)) ++count_ba;
  }
  const bool shares = obs_->SharesMeasure(a, b);
  bool linked = false;
  auto link_once = [&] {
    if (!linked) {
      Link(a, b);
      linked = true;
    }
  };
  if (shares) {
    if (selector_.full_containment) {
      if (count_ab == k) {
        full_.insert(Key(a, b));
        link_once();
      }
      if (count_ba == k) {
        full_.insert(Key(b, a));
        link_once();
      }
    }
    if (selector_.partial_containment) {
      if (count_ab > 0 && count_ab < k) {
        partial_.emplace(Key(a, b),
                         static_cast<double>(count_ab) / static_cast<double>(k));
        link_once();
      }
      if (count_ba > 0 && count_ba < k) {
        partial_.emplace(Key(b, a),
                         static_cast<double>(count_ba) / static_cast<double>(k));
        link_once();
      }
    }
  }
  if (selector_.complementarity && count_ab == k && count_ba == k) {
    compl_.insert(Key(std::min(a, b), std::max(a, b)));
    link_once();
  }
}

void IncrementalEngine::Export(RelationshipSink* sink) const {
  for (uint64_t key : full_) {
    sink->OnFullContainment(static_cast<qb::ObsId>(key >> 32),
                            static_cast<qb::ObsId>(key & 0xffffffffu));
  }
  for (const auto& [key, degree] : partial_) {
    sink->OnPartialContainment(static_cast<qb::ObsId>(key >> 32),
                               static_cast<qb::ObsId>(key & 0xffffffffu),
                               degree, 0);
  }
  for (uint64_t key : compl_) {
    sink->OnComplementarity(static_cast<qb::ObsId>(key >> 32),
                            static_cast<qb::ObsId>(key & 0xffffffffu));
  }
}

}  // namespace core
}  // namespace rdfcube
