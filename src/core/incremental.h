// Incremental maintenance of relationship sets (paper §6 lists incremental
// techniques as future work; implemented here): observations can be added or
// retired one at a time, and the stored S_F / S_P / S_C sets are updated by
// comparing only against lattice-comparable cubes.

#ifndef RDFCUBE_CORE_INCREMENTAL_H_
#define RDFCUBE_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lattice.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// Magic + version written at the head of every incremental-engine snapshot.
inline constexpr char kIncrementalMagic[8] = {'R', 'D', 'F', 'I',
                                              'N', 'C', 'R', '1'};

/// \brief Maintains materialized relationship sets under observation
/// insertions and retirements.
///
/// The engine references an ObservationSet that the caller appends to; after
/// each append, call OnObservationAdded(id). Retiring an observation removes
/// every stored relationship involving it (the ObservationSet itself is
/// append-only; retired ids are simply excluded from future comparisons).
///
/// Invariant (tested property): after any sequence of adds/retires, the
/// stored sets equal a from-scratch batch run over the live observations.
class IncrementalEngine {
 public:
  /// `obs` must outlive the engine. `selector` fixes which relationship
  /// types are maintained.
  IncrementalEngine(const qb::ObservationSet* obs,
                    const RelationshipSelector& selector);

  /// Integrates observation `id` (must already be in the set, not yet seen
  /// by the engine).
  [[nodiscard]] Status OnObservationAdded(qb::ObsId id);

  /// Retires `id`: removes all stored relationships that involve it.
  [[nodiscard]] Status OnObservationRetired(qb::ObsId id);

  // --- Queries ---------------------------------------------------------------
  bool HasFullContainment(qb::ObsId a, qb::ObsId b) const {
    return full_.count(Key(a, b)) != 0;
  }
  bool HasComplementarity(qb::ObsId a, qb::ObsId b) const {
    return compl_.count(Key(a < b ? a : b, a < b ? b : a)) != 0;
  }
  /// Degree of Cont_partial(a, b), or 0 when absent.
  double PartialDegree(qb::ObsId a, qb::ObsId b) const;

  /// \brief One partially-contained partner with its OCM degree.
  struct PartialMatch {
    qb::ObsId other;
    double degree;
  };

  // Point lookups over the materialized sets (the read-side API the
  // relationship snapshot serves): each costs O(partners of id) hash probes
  // against the stored S_F / S_P / S_C, no kernel work. Results are sorted
  // ascending for deterministic wire encoding. A dead or never-integrated id
  // yields an empty result.

  /// Live observations that fully contain `id` (its roll-up targets).
  std::vector<qb::ObsId> Containers(qb::ObsId id) const;

  /// Live observations `id` fully contains (its drill-down targets).
  std::vector<qb::ObsId> Contained(qb::ObsId id) const;

  /// Live observations complementary to `id`.
  std::vector<qb::ObsId> Complements(qb::ObsId id) const;

  /// Live observations partially contained by `id` with degree >= min_degree,
  /// sorted by id.
  std::vector<PartialMatch> PartiallyContained(qb::ObsId id,
                                               double min_degree = 0.0) const;

  std::size_t num_full() const { return full_.size(); }
  std::size_t num_partial() const { return partial_.size(); }
  std::size_t num_complementary() const { return compl_.size(); }

  /// Dumps the current sets into a sink (ordering unspecified).
  void Export(RelationshipSink* sink) const;

  /// Export bounded by a cooperative deadline (checked every few thousand
  /// emissions): TimedOut when it expires mid-dump, with the sink already
  /// holding a prefix of the sets.
  [[nodiscard]] Status Export(RelationshipSink* sink,
                              const Deadline& deadline) const;

  // --- Checkpointing ---------------------------------------------------------
  // A long add/retire stream can snapshot the engine periodically; a killed
  // process reconstructs the engine from the last snapshot and replays only
  // the updates that followed it (tested property: the resumed engine's sets
  // equal an uninterrupted engine's).

  /// Serializes the full engine state — selector, live observation ids, and
  /// the stored S_F / S_P / S_C sets — to a versioned byte string.
  std::string SerializeState() const;

  /// Restores state produced by SerializeState. The engine must be freshly
  /// constructed (no observations integrated) over an ObservationSet that
  /// still contains every live id; the lattice is rebuilt from the live ids.
  /// Fails with FailedPrecondition when the engine already has state or the
  /// snapshot's selector differs from this engine's, ParseError on
  /// corruption.
  [[nodiscard]] Status RestoreState(const std::string& bytes);

  /// Atomically writes SerializeState() to `path` (IOError on failure).
  [[nodiscard]] Status SaveCheckpoint(const std::string& path) const;

  /// Reads `path` and RestoreState()s it.
  [[nodiscard]] Status RestoreFromCheckpoint(const std::string& path);

 private:
  static uint64_t Key(qb::ObsId a, qb::ObsId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  // Pairwise evaluation of the new observation against one candidate.
  void Compare(qb::ObsId a, qb::ObsId b);
  void Link(qb::ObsId a, qb::ObsId b);

  const qb::ObservationSet* obs_;
  RelationshipSelector selector_;
  Lattice lattice_;
  std::vector<bool> live_;

  std::unordered_set<uint64_t> full_;
  std::unordered_map<uint64_t, double> partial_;
  std::unordered_set<uint64_t> compl_;
  // For O(degree) retirement: all partners an observation participates with.
  std::unordered_map<qb::ObsId, std::vector<qb::ObsId>> partners_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_INCREMENTAL_H_
