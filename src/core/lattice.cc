#include "core/lattice.h"

#include "qb/cube_space.h"
#include "qb/observation_set.h"

#include <algorithm>

namespace rdfcube {
namespace core {

std::string CubeSignature::ToString() const {
  std::string out;
  out.reserve(levels.size());
  for (uint8_t l : levels) {
    if (l < 10) {
      out.push_back(static_cast<char>('0' + l));
    } else {
      out.push_back('(');
      out += std::to_string(l);
      out.push_back(')');
    }
  }
  return out;
}

Lattice::Lattice(const qb::ObservationSet& obs) {
  cube_of_.reserve(obs.size());
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    AddObservation(obs, i);
  }
}

CubeId Lattice::AddObservation(const qb::ObservationSet& obs, qb::ObsId i) {
  const std::size_t k = obs.space().num_dimensions();
  CubeSignature sig;
  sig.levels.resize(k);
  for (qb::DimId d = 0; d < k; ++d) {
    sig.levels[d] = static_cast<uint8_t>(obs.LevelOf(i, d));
  }
  auto [it, inserted] =
      index_.emplace(sig, static_cast<CubeId>(signatures_.size()));
  if (inserted) {
    signatures_.push_back(std::move(sig));
    members_.emplace_back();
  }
  const CubeId cube = it->second;
  members_[cube].push_back(i);
  if (cube_of_.size() <= i) cube_of_.resize(i + 1, 0);
  cube_of_[i] = cube;
  return cube;
}

void Lattice::RemoveObservation(qb::ObsId i) {
  const CubeId cube = cube_of_[i];
  auto& v = members_[cube];
  v.erase(std::remove(v.begin(), v.end(), i), v.end());
}

CubeChildrenIndex::CubeChildrenIndex(const Lattice& lattice) {
  const std::size_t c = lattice.num_cubes();
  all_dom_.resize(c);
  any_dom_.resize(c);
  for (CubeId j = 0; j < c; ++j) {
    const CubeSignature& sj = lattice.signature(j);
    for (CubeId k = 0; k < c; ++k) {
      const CubeSignature& sk = lattice.signature(k);
      if (sj.DominatesAll(sk)) {
        all_dom_[j].push_back(k);
        any_dom_[j].push_back(k);
      } else if (sj.DominatesAny(sk)) {
        any_dom_[j].push_back(k);
      }
    }
  }
}

}  // namespace core
}  // namespace rdfcube
