// The multidimensional level lattice of §3.3 (Fig. 4): every observation maps
// to the cube identified by the vector of its dimension-value levels.

#ifndef RDFCUBE_CORE_LATTICE_H_
#define RDFCUBE_CORE_LATTICE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// Dense index of a cube (lattice node) present in the input.
using CubeId = uint32_t;

/// \brief A cube's level signature: levels_[d] = hierarchy level of the
/// observation's value for dimension d (root = 0).
struct CubeSignature {
  std::vector<uint8_t> levels;

  bool operator==(const CubeSignature& o) const { return levels == o.levels; }

  /// True iff this cube can contain `o` dimension-wise: every level <= the
  /// other's level. Necessary condition for full containment between any
  /// observations of the two cubes (an ancestor value always sits at a
  /// shallower-or-equal level).
  bool DominatesAll(const CubeSignature& o) const {
    for (std::size_t d = 0; d < levels.size(); ++d) {
      if (levels[d] > o.levels[d]) return false;
    }
    return true;
  }

  /// True iff at least one dimension has level <= the other's: necessary
  /// condition for partial containment ("at least one dimension inclusion").
  bool DominatesAny(const CubeSignature& o) const {
    for (std::size_t d = 0; d < levels.size(); ++d) {
      if (levels[d] <= o.levels[d]) return true;
    }
    return false;
  }

  std::string ToString() const;
};

/// \brief Hash functor over cube signatures (FNV-1a of the level vector).
struct CubeSignatureHash {
  std::size_t operator()(const CubeSignature& s) const {
    std::size_t h = 1469598103934665603ull;
    for (uint8_t l : s.levels) {
      h ^= l;
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// \brief The populated lattice: the distinct cubes present in the input and
/// the observations of each (Algorithm 4 steps i+ii).
///
/// Construction is a single pass over the observations — the linear step the
/// paper credits for cubeMasking's speed.
class Lattice {
 public:
  /// Empty lattice; populate with AddObservation (incremental use).
  Lattice() = default;

  /// Builds the lattice over every observation in `obs` in one pass.
  explicit Lattice(const qb::ObservationSet& obs);

  std::size_t num_cubes() const { return signatures_.size(); }
  const CubeSignature& signature(CubeId c) const { return signatures_[c]; }
  const std::vector<qb::ObsId>& members(CubeId c) const { return members_[c]; }

  /// Cube of a single observation.
  CubeId cube_of(qb::ObsId i) const { return cube_of_[i]; }

  /// Adds one observation (used by the incremental engine); returns its
  /// cube, creating the lattice node when new.
  CubeId AddObservation(const qb::ObservationSet& obs, qb::ObsId i);

  /// Removes an observation from its cube (the node stays, possibly empty).
  void RemoveObservation(qb::ObsId i);

 private:
  std::unordered_map<CubeSignature, CubeId, CubeSignatureHash> index_;
  std::vector<CubeSignature> signatures_;
  std::vector<std::vector<qb::ObsId>> members_;
  std::vector<CubeId> cube_of_;
};

/// \brief Pre-fetched per-cube comparable-cube lists (the paper's "children"
/// of a cube, §3.3 / Fig. 5(g)).
///
/// Building the index costs one O(#cubes^2) lattice iteration; once built it
/// lets every relationship pass enumerate exactly the comparable cube pairs
/// without re-scanning the full lattice — the paper's conditional
/// optimization ("by pre-fetching and storing all children of each cube in
/// memory"), whose build cost is amortized over the relationship types and
/// over repeated runs on the same lattice.
class CubeChildrenIndex {
 public:
  /// Builds both the all-dominated (full containment / complementarity) and
  /// any-dominated (partial containment) lists for every cube.
  explicit CubeChildrenIndex(const Lattice& lattice);

  /// Cubes whose every level is >= cube c's (candidates c can fully
  /// contain), including c itself.
  const std::vector<CubeId>& all_dominated(CubeId c) const {
    return all_dom_[c];
  }

  /// Cubes comparable to c on at least one dimension (partial candidates).
  const std::vector<CubeId>& any_dominated(CubeId c) const {
    return any_dom_[c];
  }

  std::size_t num_cubes() const { return all_dom_.size(); }

 private:
  std::vector<std::vector<CubeId>> all_dom_;
  std::vector<std::vector<CubeId>> any_dom_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_LATTICE_H_
