#include "core/occurrence_matrix.h"

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"
#include "util/string_util.h"

namespace rdfcube {
namespace core {

OccurrenceMatrix::OccurrenceMatrix(const qb::ObservationSet& obs) {
  const qb::CubeSpace& space = obs.space();
  dim_begin_.resize(space.num_dimensions());
  std::size_t col = 0;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    dim_begin_[d] = col;
    col += space.code_list(d).size();
  }
  num_columns_ = col;

  rows_.reserve(obs.size());
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    BitVector row(num_columns_);
    for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
      const hierarchy::CodeList& list = space.code_list(d);
      // Root-padding for absent dimensions, then bottom-up ancestor closure.
      const hierarchy::CodeId value = obs.ValueOrRoot(i, d);
      for (hierarchy::CodeId c : list.AncestorsOrSelf(value)) {
        row.Set(dim_begin_[d] + c);
      }
    }
    rows_.push_back(std::move(row));
  }
}

std::string OccurrenceMatrix::ToTable(const qb::ObservationSet& obs) const {
  const qb::CubeSpace& space = obs.space();
  std::string out;
  // Header: dimension group line, then code columns.
  out += "obs";
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    const hierarchy::CodeList& list = space.code_list(d);
    out += " |";
    out += " [";
    out += std::string(IriLocalName(space.dimension_iri(d)));
    out += "]";
    for (hierarchy::CodeId c = 0; c < list.size(); ++c) {
      out.push_back(' ');
      out += std::string(IriLocalName(list.name(c)));
    }
  }
  out.push_back('\n');
  for (qb::ObsId i = 0; i < rows_.size(); ++i) {
    out += std::string(IriLocalName(obs.obs(i).iri));
    for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
      out += " |";
      for (std::size_t c = dim_begin(d); c < dim_end(d); ++c) {
        out.push_back(' ');
        out.push_back(rows_[i].Test(c) ? '1' : '0');
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace core
}  // namespace rdfcube
