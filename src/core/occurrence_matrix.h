// The occurrence matrix OM of the paper (§3.1, Table 2): one bit-vector row
// per observation over the concatenated code-list feature space, with
// hierarchical closure (a value sets itself and all of its ancestors).

#ifndef RDFCUBE_CORE_OCCURRENCE_MATRIX_H_
#define RDFCUBE_CORE_OCCURRENCE_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "base/hot.h"
#include "qb/observation_set.h"
#include "util/bitvector.h"

namespace rdfcube {
namespace core {

/// \brief The |O| x |C| occurrence matrix.
///
/// Columns are grouped per dimension: dimension d occupies the half-open
/// column range [dim_begin(d), dim_end(d)), one column per code in its code
/// list (code id == offset within the range). Setting a value h_a^j sets the
/// columns of h_a^j and every ancestor up to the root; observations lacking
/// dimension d set only the root column (paper: "dimensions not appearing in
/// a schema are mapped to the top concept").
class OccurrenceMatrix {
 public:
  /// Encodes every observation of `obs`. The set must outlive the matrix.
  explicit OccurrenceMatrix(const qb::ObservationSet& obs);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return num_columns_; }
  std::size_t num_dimensions() const { return dim_begin_.size(); }

  const BitVector& row(qb::ObsId i) const { return rows_[i]; }
  const std::vector<BitVector>& rows() const { return rows_; }

  /// Column range of dimension d (the sub-matrix OM_d).
  std::size_t dim_begin(qb::DimId d) const { return dim_begin_[d]; }
  std::size_t dim_end(qb::DimId d) const {
    return d + 1 < dim_begin_.size() ? dim_begin_[d + 1] : num_columns_;
  }

  /// The paper's conditional function sf(o_a, o_b)|p_d: true iff o_a's value
  /// contains (is an ancestor-or-self of) o_b's value on dimension d.
  ///
  /// With hierarchical closure encoding, an ancestor's bit set is a *subset*
  /// of its descendant's (the descendant sets its own bit plus all ancestor
  /// bits), so the check is "row(b) AND row(a) == row(a)" on d's columns —
  /// matching the paper's Table 3(a), where CM_refArea[o21][o11] = 1 because
  /// Greece (o21) contains Athens (o11).
  RDFCUBE_HOT bool Contains(qb::ObsId a, qb::ObsId b, qb::DimId d) const {
    return rows_[b].CoversRange(rows_[a], dim_begin(d), dim_end(d));
  }

  /// Whole-row covering check: equivalent to Contains over every dimension
  /// (full dimensional containment in one pass).
  RDFCUBE_HOT bool ContainsAll(qb::ObsId a, qb::ObsId b) const {
    return rows_[b].Covers(rows_[a]);
  }

  /// Renders the matrix as an aligned text table with per-dimension column
  /// headers (Table 2 of the paper). Intended for small examples.
  std::string ToTable(const qb::ObservationSet& obs) const;

 private:
  std::size_t num_columns_ = 0;
  std::vector<std::size_t> dim_begin_;
  std::vector<BitVector> rows_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_OCCURRENCE_MATRIX_H_
