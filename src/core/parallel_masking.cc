#include "core/parallel_masking.h"

#include <memory>
#include <vector>

#include "obs/trace.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"
#include "util/thread_pool.h"

namespace rdfcube {
namespace core {

namespace obx = ::rdfcube::obs;

namespace {

// Worker body: the cube-pair passes of cubeMasking restricted to outer cubes
// j with j % stride == shard.
void ProcessShard(const qb::ObservationSet& obs, const Lattice& lattice,
                  const RelationshipSelector& sel, std::size_t shard,
                  std::size_t stride, CollectingSink* out) {
  const qb::CubeSpace& space = obs.space();
  const std::size_t kd = space.num_dimensions();
  const std::size_t c = lattice.num_cubes();

  auto count_dims = [&](qb::ObsId a, qb::ObsId b) {
    std::size_t count = 0;
    for (qb::DimId d = 0; d < kd; ++d) {
      if (space.code_list(d).IsAncestorOrSelf(obs.ValueOrRoot(a, d),
                                              obs.ValueOrRoot(b, d))) {
        ++count;
      }
    }
    return count;
  };

  for (CubeId j = shard; j < c; j += stride) {
    const CubeSignature& sj = lattice.signature(j);
    for (CubeId k = 0; k < c; ++k) {
      const CubeSignature& sk = lattice.signature(k);
      const bool all_dom = sj.DominatesAll(sk);
      const bool any_dom = sel.partial_containment && sj.DominatesAny(sk);
      if (!all_dom && !any_dom) continue;
      const bool same_cube = j == k;
      for (qb::ObsId a : lattice.members(j)) {
        for (qb::ObsId b : lattice.members(k)) {
          if (a == b) continue;
          const bool shares = obs.SharesMeasure(a, b);
          if (sel.partial_containment && shares) {
            const std::size_t count = count_dims(a, b);
            if (count == kd) {
              if (sel.full_containment) out->OnFullContainment(a, b);
            } else if (count > 0) {
              out->OnPartialContainment(
                  a, b, static_cast<double>(count) / static_cast<double>(kd),
                  0);
            }
          } else if (all_dom && shares && sel.full_containment) {
            if (count_dims(a, b) == kd) out->OnFullContainment(a, b);
          }
          // Complementarity: same-cube, value-equal, report once (a < b).
          if (sel.complementarity && same_cube && a < b) {
            bool equal = true;
            for (qb::DimId d = 0; d < kd; ++d) {
              if (obs.ValueOrRoot(a, d) != obs.ValueOrRoot(b, d)) {
                equal = false;
                break;
              }
            }
            if (equal) out->OnComplementarity(a, b);
          }
        }
      }
    }
  }
}

}  // namespace

Status RunCubeMaskingParallel(const qb::ObservationSet& obs,
                              const Lattice& lattice,
                              const ParallelMaskingOptions& options,
                              RelationshipSink* sink) {
  const std::size_t threads = options.num_threads == 0 ? 1 : options.num_threads;
  std::vector<std::unique_ptr<CollectingSink>> shards;
  shards.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    shards.push_back(std::make_unique<CollectingSink>());
  }
  {
    obx::TraceSpan span("parallel_masking/shards");
    ThreadPool pool(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      CollectingSink* out = shards[t].get();
      pool.Submit([&obs, &lattice, &options, t, threads, out] {
        obx::TraceSpan shard_span("parallel_masking/shard");
        ProcessShard(obs, lattice, options.selector, t, threads, out);
      });
    }
    pool.Wait();
  }
  obx::TraceSpan merge_span("parallel_masking/merge");
  for (const auto& shard : shards) {
    for (const auto& [a, b] : shard->full()) sink->OnFullContainment(a, b);
    for (const auto& p : shard->partial()) {
      sink->OnPartialContainment(p.a, p.b, p.degree, p.dim_mask);
    }
    for (const auto& [a, b] : shard->complementary()) {
      sink->OnComplementarity(a, b);
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
