// Parallel cubeMasking (paper §6 lists distributed/parallel execution as
// future work): shards the comparable-cube-pair work list over a thread pool.

#ifndef RDFCUBE_CORE_PARALLEL_MASKING_H_
#define RDFCUBE_CORE_PARALLEL_MASKING_H_

#include <cstddef>

#include "core/cube_masking.h"
#include "core/lattice.h"
#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"

namespace rdfcube {
namespace core {

/// \brief Selector and thread count for the parallel masking run.
struct ParallelMaskingOptions {
  RelationshipSelector selector;
  std::size_t num_threads = 4;
};

/// \brief Runs cubeMasking with the outer cube loop partitioned across
/// `num_threads` workers. Each worker collects into a private sink; results
/// are merged into `sink` afterwards, so `sink` needs no synchronization.
/// Emits exactly the same relationships as RunCubeMasking.
[[nodiscard]] Status RunCubeMaskingParallel(const qb::ObservationSet& obs,
                              const Lattice& lattice,
                              const ParallelMaskingOptions& options,
                              RelationshipSink* sink);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_PARALLEL_MASKING_H_
