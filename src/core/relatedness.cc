#include "core/relatedness.h"

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

#include <algorithm>
#include <bit>

namespace rdfcube {
namespace core {

double CodeSimilarity(const hierarchy::CodeList& list, hierarchy::CodeId a,
                      hierarchy::CodeId b) {
  if (a == b) return 1.0;
  // Deepest common ancestor: walk the deeper node up until it subsumes the
  // other; chains are short (hierarchy depth).
  hierarchy::CodeId x = a, y = b;
  while (!list.IsAncestorOrSelf(x, y)) x = list.parent(x);
  const uint32_t lca_level = list.level(x);
  const uint32_t deeper = std::max(list.level(a), list.level(b));
  if (deeper == 0) return 1.0;  // both at the root
  return static_cast<double>(lca_level) / static_cast<double>(deeper);
}

double ObservationSimilarity(const qb::ObservationSet& obs, qb::ObsId a,
                             qb::ObsId b) {
  const qb::CubeSpace& space = obs.space();
  const std::size_t k = space.num_dimensions();
  if (k == 0) return 1.0;
  double sum = 0.0;
  for (qb::DimId d = 0; d < k; ++d) {
    sum += CodeSimilarity(space.code_list(d), obs.ValueOrRoot(a, d),
                          obs.ValueOrRoot(b, d));
  }
  return sum / static_cast<double>(k);
}

RelatednessSink::RelatednessSink(const qb::ObservationSet* obs)
    : obs_(obs), num_datasets_(obs->num_datasets()) {
  full_.assign(num_datasets_ * num_datasets_, 0);
  partial_.assign(num_datasets_ * num_datasets_, 0);
  compl_.assign(num_datasets_ * num_datasets_, 0);
}

std::size_t RelatednessSink::PairIndex(qb::ObsId a, qb::ObsId b) const {
  qb::DatasetId da = obs_->obs(a).dataset;
  qb::DatasetId db = obs_->obs(b).dataset;
  if (da > db) std::swap(da, db);
  return da * num_datasets_ + db;
}

void RelatednessSink::OnFullContainment(qb::ObsId a, qb::ObsId b) {
  if (obs_->obs(a).dataset != obs_->obs(b).dataset) ++full_[PairIndex(a, b)];
}

void RelatednessSink::OnPartialContainment(qb::ObsId a, qb::ObsId b,
                                           double /*degree*/,
                                           uint64_t /*dim_mask*/) {
  if (obs_->obs(a).dataset != obs_->obs(b).dataset) {
    ++partial_[PairIndex(a, b)];
  }
}

void RelatednessSink::OnComplementarity(qb::ObsId a, qb::ObsId b) {
  if (obs_->obs(a).dataset != obs_->obs(b).dataset) ++compl_[PairIndex(a, b)];
}

namespace {

double MaskJaccard(uint64_t a, uint64_t b) {
  const int uni = std::popcount(a | b);
  if (uni == 0) return 1.0;
  return static_cast<double>(std::popcount(a & b)) / static_cast<double>(uni);
}

}  // namespace

std::vector<DatasetRelatedness> RelatednessSink::Compute() const {
  std::vector<DatasetRelatedness> out;
  for (qb::DatasetId a = 0; a < num_datasets_; ++a) {
    for (qb::DatasetId b = a + 1; b < num_datasets_; ++b) {
      DatasetRelatedness r;
      r.a = a;
      r.b = b;
      const qb::DatasetMeta& ma = obs_->dataset(a);
      const qb::DatasetMeta& mb = obs_->dataset(b);
      r.dimension_overlap = MaskJaccard(ma.dim_mask, mb.dim_mask);
      r.measure_overlap = MaskJaccard(ma.measure_mask, mb.measure_mask);
      const std::size_t idx = a * num_datasets_ + b;
      r.full_containments = full_[idx];
      r.partial_containments = partial_[idx];
      r.complementarities = compl_[idx];
      // Fraction of cross-dataset observation pairs that are related
      // (full/compl weighted over partial), blended with schema overlap.
      const double cross_pairs =
          static_cast<double>(ma.observations.size()) *
          static_cast<double>(mb.observations.size());
      double instance = 0.0;
      if (cross_pairs > 0) {
        instance = (static_cast<double>(r.full_containments) +
                    static_cast<double>(r.complementarities) +
                    0.25 * static_cast<double>(r.partial_containments)) /
                   cross_pairs;
        instance = std::min(1.0, instance);
      }
      r.score = 0.5 * (0.5 * r.dimension_overlap + 0.5 * r.measure_overlap) +
                0.5 * instance;
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace core
}  // namespace rdfcube
