// Source-level relatedness (paper §1: containment/complementarity knowledge
// lets the analyst "quantify the degree of relatedness between data
// sources") and the hierarchy-based similarity metric the paper attaches to
// containment pairs ("as well as assigning them a hierarchy-based similarity
// metric", §1).

#ifndef RDFCUBE_CORE_RELATEDNESS_H_
#define RDFCUBE_CORE_RELATEDNESS_H_

#include <cstdint>
#include <vector>

#include "core/relationship.h"
#include "hierarchy/code_list.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// \brief Hierarchy-based similarity of two codes within one code list:
/// depth(deepest common ancestor) / depth(deeper of the two), in [0, 1].
/// 1 when equal; 0 when they only meet at the root.
double CodeSimilarity(const hierarchy::CodeList& list, hierarchy::CodeId a,
                      hierarchy::CodeId b);

/// \brief Observation similarity: the mean CodeSimilarity across all global
/// dimensions (root-padded), the "hierarchy-based similarity metric" of §1.
double ObservationSimilarity(const qb::ObservationSet& obs, qb::ObsId a,
                             qb::ObsId b);

/// \brief Pairwise relatedness of two datasets.
struct DatasetRelatedness {
  qb::DatasetId a, b;
  /// Jaccard overlap of the schema dimension sets.
  double dimension_overlap = 0.0;
  /// Jaccard overlap of the measure sets.
  double measure_overlap = 0.0;
  /// Cross-dataset relationship counts (from a relationship run).
  std::size_t full_containments = 0;
  std::size_t partial_containments = 0;
  std::size_t complementarities = 0;
  /// Combined score in [0, 1]: schema overlap weighted with the fraction of
  /// observation pairs that are related.
  double score = 0.0;
};

/// \brief Sink that tallies cross-dataset relationships per dataset pair
/// (feed it to any computation method), then produces the relatedness
/// matrix.
class RelatednessSink : public RelationshipSink {
 public:
  explicit RelatednessSink(const qb::ObservationSet* obs);

  void OnFullContainment(qb::ObsId a, qb::ObsId b) override;
  void OnPartialContainment(qb::ObsId a, qb::ObsId b, double degree,
                            uint64_t dim_mask) override;
  void OnComplementarity(qb::ObsId a, qb::ObsId b) override;

  /// All dataset pairs (a < b) with schema overlaps and tallies filled in.
  std::vector<DatasetRelatedness> Compute() const;

 private:
  std::size_t PairIndex(qb::ObsId a, qb::ObsId b) const;

  const qb::ObservationSet* obs_;
  std::size_t num_datasets_;
  // Dense (num_datasets^2) tallies, indexed by unordered dataset pair.
  std::vector<std::size_t> full_, partial_, compl_;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_RELATEDNESS_H_
