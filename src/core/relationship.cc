#include "core/relationship.h"

#include <algorithm>

namespace rdfcube {
namespace core {

void CollectingSink::Canonicalize() {
  std::sort(full_.begin(), full_.end());
  std::sort(partial_.begin(), partial_.end(),
            [](const Partial& x, const Partial& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  std::sort(compl_.begin(), compl_.end());
}

}  // namespace core
}  // namespace rdfcube
