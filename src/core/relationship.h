// Relationship kinds and result sinks shared by all computation methods.

#ifndef RDFCUBE_CORE_RELATIONSHIP_H_
#define RDFCUBE_CORE_RELATIONSHIP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

using qb::ObsId;

/// \brief Which of the three relationship types to compute.
///
/// The paper evaluates each relationship separately (Fig. 5(a)-(c)) as well
/// as jointly; the selector lets benches reproduce the per-type runs and the
/// baseline skip work ("if only full containment or complementarity is to be
/// computed").
struct RelationshipSelector {
  bool full_containment = true;
  bool partial_containment = true;
  bool complementarity = true;

  /// Also report the per-dimension map of a partial containment (Algorithm 2
  /// map_P). More expensive: forces per-dimension iteration on partial pairs.
  bool partial_dimension_map = false;

  static RelationshipSelector All() { return {}; }
  static RelationshipSelector FullOnly() { return {true, false, false, false}; }
  static RelationshipSelector PartialOnly() {
    return {false, true, false, false};
  }
  static RelationshipSelector ComplOnly() { return {false, false, true, false}; }
};

/// \brief Receives relationships as they are discovered.
///
/// Result sets grow quadratically in adversarial inputs; sinks let callers
/// choose between materializing (CollectingSink), counting (CountingSink) or
/// custom streaming consumers without the algorithms caring.
class RelationshipSink {
 public:
  virtual ~RelationshipSink() = default;

  /// Cont_full(a, b): a fully contains b.
  virtual void OnFullContainment(ObsId a, ObsId b) = 0;

  /// Cont_partial(a, b) with the OCM degree in (0, 1): the fraction of
  /// dimensions exhibiting containment. `dim_mask` is the bitmask of those
  /// dimensions when the selector asked for the dimension map, 0 otherwise.
  virtual void OnPartialContainment(ObsId a, ObsId b, double degree,
                                    uint64_t dim_mask) = 0;

  /// Compl(a, b). Reported once per unordered pair with a < b (the relation
  /// is symmetric).
  virtual void OnComplementarity(ObsId a, ObsId b) = 0;
};

/// \brief Materializes all reported relationships (the S_F / S_P / S_C sets
/// of Algorithm 2).
class CollectingSink : public RelationshipSink {
 public:
  struct Partial {
    ObsId a, b;
    double degree;
    uint64_t dim_mask;
  };

  void OnFullContainment(ObsId a, ObsId b) override {
    full_.emplace_back(a, b);
  }
  void OnPartialContainment(ObsId a, ObsId b, double degree,
                            uint64_t dim_mask) override {
    partial_.push_back({a, b, degree, dim_mask});
  }
  void OnComplementarity(ObsId a, ObsId b) override {
    compl_.emplace_back(a, b);
  }

  const std::vector<std::pair<ObsId, ObsId>>& full() const { return full_; }
  const std::vector<Partial>& partial() const { return partial_; }
  const std::vector<std::pair<ObsId, ObsId>>& complementary() const {
    return compl_;
  }

  /// Sorts all three sets into canonical order for comparisons in tests.
  void Canonicalize();

 private:
  std::vector<std::pair<ObsId, ObsId>> full_;
  std::vector<Partial> partial_;
  std::vector<std::pair<ObsId, ObsId>> compl_;
};

/// \brief Counts relationships without storing them (benchmark mode).
class CountingSink : public RelationshipSink {
 public:
  void OnFullContainment(ObsId, ObsId) override { ++full_; }
  void OnPartialContainment(ObsId, ObsId, double, uint64_t) override {
    ++partial_;
  }
  void OnComplementarity(ObsId, ObsId) override { ++compl_; }

  std::size_t full() const { return full_; }
  std::size_t partial() const { return partial_; }
  std::size_t complementary() const { return compl_; }

 private:
  std::size_t full_ = 0;
  std::size_t partial_ = 0;
  std::size_t compl_ = 0;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_RELATIONSHIP_H_
