#include "core/relationship_rdf.h"

#include <string>
#include <unordered_map>

#include "qb/observation_set.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "util/string_util.h"

namespace rdfcube {
namespace core {

namespace {

bool LooksLikeIri(const std::string& s) {
  return s.find("://") != std::string::npos ||
         s.rfind("urn:", 0) == 0;
}

std::string ObsIri(const std::string& name) {
  return LooksLikeIri(name) ? name : "urn:rdfcube:obs:" + name;
}

}  // namespace

RdfMaterializingSink::RdfMaterializingSink(const qb::ObservationSet* obs,
                                           rdf::TripleStore* store)
    : obs_(obs), store_(store) {}

rdf::Term RdfMaterializingSink::ObsTerm(qb::ObsId id) const {
  return rdf::Term::Iri(ObsIri(obs_->obs(id).iri));
}

void RdfMaterializingSink::OnFullContainment(qb::ObsId a, qb::ObsId b) {
  store_->Insert(ObsTerm(a),
                 rdf::Term::Iri(std::string(relvocab::kFullyContains)),
                 ObsTerm(b));
  ++triples_written_;
}

void RdfMaterializingSink::OnPartialContainment(qb::ObsId a, qb::ObsId b,
                                                double degree,
                                                uint64_t /*dim_mask*/) {
  // Reified so the degree (the OCM value) is preserved.
  const rdf::Term node = rdf::Term::Iri(
      "urn:rdfcube:partial:" + std::to_string(partial_counter_++));
  store_->Insert(node,
                 rdf::Term::Iri(
                     "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                 rdf::Term::Iri(std::string(relvocab::kPartialContainment)));
  store_->Insert(node, rdf::Term::Iri(std::string(relvocab::kContainer)),
                 ObsTerm(a));
  store_->Insert(node, rdf::Term::Iri(std::string(relvocab::kContained)),
                 ObsTerm(b));
  store_->Insert(
      node, rdf::Term::Iri(std::string(relvocab::kContainmentDegree)),
      rdf::Term::TypedLiteral(std::to_string(degree),
                              "http://www.w3.org/2001/XMLSchema#double"));
  // Plus the direct (unquantified) link for cheap traversal.
  store_->Insert(ObsTerm(a),
                 rdf::Term::Iri(std::string(relvocab::kPartiallyContains)),
                 ObsTerm(b));
  triples_written_ += 5;
}

void RdfMaterializingSink::OnComplementarity(qb::ObsId a, qb::ObsId b) {
  const rdf::Term pred =
      rdf::Term::Iri(std::string(relvocab::kComplements));
  store_->Insert(ObsTerm(a), pred, ObsTerm(b));
  store_->Insert(ObsTerm(b), pred, ObsTerm(a));  // symmetric
  triples_written_ += 2;
}

Status LoadMaterializedRelationships(const rdf::TripleStore& store,
                                     const qb::ObservationSet& obs,
                                     RelationshipSink* sink,
                                     std::size_t* skipped) {
  const rdf::Dictionary& dict = store.dictionary();
  // Observation IRI -> ObsId.
  std::unordered_map<std::string, qb::ObsId> by_iri;
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    by_iri.emplace(ObsIri(obs.obs(i).iri), i);
  }
  std::size_t skip_count = 0;
  auto resolve = [&](rdf::TermId id, qb::ObsId* out) {
    auto it = by_iri.find(dict.Value(id));
    if (it == by_iri.end()) return false;
    *out = it->second;
    return true;
  };

  auto full_pred = dict.Find(
      rdf::Term::Iri(std::string(relvocab::kFullyContains)));
  if (full_pred.has_value()) {
    store.Match(rdf::kNoTerm, *full_pred, rdf::kNoTerm,
                [&](const rdf::Triple& t) {
                  qb::ObsId a, b;
                  if (resolve(t.s, &a) && resolve(t.o, &b)) {
                    sink->OnFullContainment(a, b);
                  } else {
                    ++skip_count;
                  }
                  return true;
                });
  }
  auto compl_pred =
      dict.Find(rdf::Term::Iri(std::string(relvocab::kComplements)));
  if (compl_pred.has_value()) {
    store.Match(rdf::kNoTerm, *compl_pred, rdf::kNoTerm,
                [&](const rdf::Triple& t) {
                  qb::ObsId a, b;
                  if (resolve(t.s, &a) && resolve(t.o, &b)) {
                    // Report once per unordered pair (the export wrote both
                    // directions).
                    if (a < b) sink->OnComplementarity(a, b);
                  } else {
                    ++skip_count;
                  }
                  return true;
                });
  }
  // Reified partial containments.
  auto type_pred = dict.Find(rdf::Term::Iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
  auto partial_cls = dict.Find(
      rdf::Term::Iri(std::string(relvocab::kPartialContainment)));
  auto container_pred =
      dict.Find(rdf::Term::Iri(std::string(relvocab::kContainer)));
  auto contained_pred =
      dict.Find(rdf::Term::Iri(std::string(relvocab::kContained)));
  auto degree_pred = dict.Find(
      rdf::Term::Iri(std::string(relvocab::kContainmentDegree)));
  if (type_pred.has_value() && partial_cls.has_value() &&
      container_pred.has_value() && contained_pred.has_value() &&
      degree_pred.has_value()) {
    for (rdf::TermId node : store.SubjectsOf(*type_pred, *partial_cls)) {
      const rdf::TermId container = store.ObjectOf(node, *container_pred);
      const rdf::TermId contained = store.ObjectOf(node, *contained_pred);
      const rdf::TermId degree_term = store.ObjectOf(node, *degree_pred);
      qb::ObsId a, b;
      if (container == rdf::kNoTerm || contained == rdf::kNoTerm ||
          degree_term == rdf::kNoTerm || !resolve(container, &a) ||
          !resolve(contained, &b)) {
        ++skip_count;
        continue;
      }
      // A malformed degree literal is skipped like any other bad record
      // (std::stod would throw and abort the whole load).
      Result<double> degree = ParseDouble(dict.Value(degree_term));
      if (!degree.ok() || !(*degree > 0.0 && *degree <= 1.0)) {
        ++skip_count;
        continue;
      }
      sink->OnPartialContainment(a, b, *degree, 0);
    }
  }
  if (skipped != nullptr) *skipped = skip_count;
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
