// Materializing computed relationships back into RDF.
//
// The paper (§1, §5 and its precursor [22]) motivates materialization: the
// derived relationships "help speed up online exploration" and are published
// with an RDF vocabulary extending QB. This module writes the S_F / S_P /
// S_C sets as triples using that vocabulary, and can reload them.

#ifndef RDFCUBE_CORE_RELATIONSHIP_RDF_H_
#define RDFCUBE_CORE_RELATIONSHIP_RDF_H_

#include <string_view>

#include "core/relationship.h"
#include "qb/observation_set.h"
#include "rdf/triple_store.h"
#include "base/status.h"

namespace rdfcube {
namespace core {

/// Vocabulary terms of the materialized relationships (namespace modeled on
/// the QB4CC extension sketched in the paper's workshop precursor [22]).
namespace relvocab {
inline constexpr std::string_view kNs = "http://rdfcube.org/qb4cc#";
inline constexpr std::string_view kFullyContains =
    "http://rdfcube.org/qb4cc#fullyContains";
inline constexpr std::string_view kPartiallyContains =
    "http://rdfcube.org/qb4cc#partiallyContains";
inline constexpr std::string_view kComplements =
    "http://rdfcube.org/qb4cc#complements";
inline constexpr std::string_view kContainmentDegree =
    "http://rdfcube.org/qb4cc#containmentDegree";
inline constexpr std::string_view kPartialContainment =
    "http://rdfcube.org/qb4cc#PartialContainment";
inline constexpr std::string_view kContainer =
    "http://rdfcube.org/qb4cc#container";
inline constexpr std::string_view kContained =
    "http://rdfcube.org/qb4cc#contained";
}  // namespace relvocab

/// \brief Sink that materializes relationships as RDF triples.
///
/// Full containment and complementarity become direct triples
/// (`<a> qb4cc:fullyContains <b>`, `<a> qb4cc:complements <b>` — emitted in
/// both directions since Compl is symmetric). Partial containments are
/// reified (a qb4cc:PartialContainment node carrying container, contained
/// and the degree) so the OCM value survives.
///
/// Observation IRIs come from the ObservationSet; non-IRI names are minted
/// under `urn:rdfcube:obs:` exactly as qb::ExportCorpusToRdf does, so the
/// two exports compose into one publishable graph.
class RdfMaterializingSink : public RelationshipSink {
 public:
  RdfMaterializingSink(const qb::ObservationSet* obs, rdf::TripleStore* store);

  void OnFullContainment(qb::ObsId a, qb::ObsId b) override;
  void OnPartialContainment(qb::ObsId a, qb::ObsId b, double degree,
                            uint64_t dim_mask) override;
  void OnComplementarity(qb::ObsId a, qb::ObsId b) override;

  std::size_t triples_written() const { return triples_written_; }

 private:
  rdf::Term ObsTerm(qb::ObsId id) const;

  const qb::ObservationSet* obs_;
  rdf::TripleStore* store_;
  std::size_t triples_written_ = 0;
  std::size_t partial_counter_ = 0;
};

/// \brief Reads materialized relationships back from a graph into a sink
/// (inverse of RdfMaterializingSink for round-trip pipelines). Observation
/// IRIs are resolved against `obs`; triples about unknown observations are
/// skipped and counted in `skipped`.
[[nodiscard]] Status LoadMaterializedRelationships(const rdf::TripleStore& store,
                                     const qb::ObservationSet& obs,
                                     RelationshipSink* sink,
                                     std::size_t* skipped = nullptr);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_RELATIONSHIP_RDF_H_
