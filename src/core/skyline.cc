#include "core/skyline.h"

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

namespace {

// True iff a contains b in every dimension, strictly in at least one.
bool StrictlyContainsAll(const qb::ObservationSet& obs, qb::ObsId a,
                         qb::ObsId b) {
  const qb::CubeSpace& space = obs.space();
  bool strict = false;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    const hierarchy::CodeId va = obs.ValueOrRoot(a, d);
    const hierarchy::CodeId vb = obs.ValueOrRoot(b, d);
    if (!space.code_list(d).IsAncestorOrSelf(va, vb)) return false;
    if (va != vb) strict = true;
  }
  return strict;
}

// Number of dimensions where a contains b; sets *strict when one is strict.
std::size_t ContainingDims(const qb::ObservationSet& obs, qb::ObsId a,
                           qb::ObsId b, bool* strict) {
  const qb::CubeSpace& space = obs.space();
  std::size_t count = 0;
  *strict = false;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    const hierarchy::CodeId va = obs.ValueOrRoot(a, d);
    const hierarchy::CodeId vb = obs.ValueOrRoot(b, d);
    if (space.code_list(d).IsAncestorOrSelf(va, vb)) {
      ++count;
      if (va != vb) *strict = true;
    }
  }
  return count;
}

}  // namespace

std::vector<qb::ObsId> ComputeSkyline(const qb::ObservationSet& obs,
                                      const Lattice& lattice,
                                      const SkylineOptions& options) {
  const std::size_t c = lattice.num_cubes();
  std::vector<bool> dominated(obs.size(), false);
  // A dominator must live in a cube whose signature dominates (<= levels);
  // enumerate ordered comparable cube pairs dominator -> dominated.
  for (CubeId j = 0; j < c; ++j) {
    const CubeSignature& sj = lattice.signature(j);
    for (CubeId k = 0; k < c; ++k) {
      if (!sj.DominatesAll(lattice.signature(k))) continue;
      for (qb::ObsId b : lattice.members(k)) {
        if (dominated[b]) continue;
        for (qb::ObsId a : lattice.members(j)) {
          if (a == b) continue;
          if (options.require_shared_measure && !obs.SharesMeasure(a, b)) {
            continue;
          }
          if (StrictlyContainsAll(obs, a, b)) {
            dominated[b] = true;
            break;
          }
        }
      }
    }
  }
  std::vector<qb::ObsId> skyline;
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    if (!dominated[i]) skyline.push_back(i);
  }
  return skyline;
}

std::vector<qb::ObsId> ComputeKDominantSkyline(const qb::ObservationSet& obs,
                                               std::size_t k,
                                               const SkylineOptions& options) {
  // k-dominance is not transitive (Chan et al.), so no lattice pruning by
  // full dominance applies; quadratic scan with early exit.
  std::vector<qb::ObsId> skyline;
  for (qb::ObsId b = 0; b < obs.size(); ++b) {
    bool k_dominated = false;
    for (qb::ObsId a = 0; a < obs.size() && !k_dominated; ++a) {
      if (a == b) continue;
      if (options.require_shared_measure && !obs.SharesMeasure(a, b)) continue;
      bool strict = false;
      if (ContainingDims(obs, a, b, &strict) >= k && strict) {
        k_dominated = true;
      }
    }
    if (!k_dominated) skyline.push_back(b);
  }
  return skyline;
}

}  // namespace core
}  // namespace rdfcube
