// Skyline and k-dominant skyline computation from containment (paper §1:
// "computation of containment between observations provides a means to
// directly access skyline, or k-dominant skyline points"; k-dominance per
// Chan et al. [6]).

#ifndef RDFCUBE_CORE_SKYLINE_H_
#define RDFCUBE_CORE_SKYLINE_H_

#include <vector>

#include "core/lattice.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// \brief Dominance relation knobs for the observation skyline.
struct SkylineOptions {
  /// Only observations sharing a measure can dominate each other (Def. 4's
  /// condition (3)); set false for purely dimensional skylines.
  bool require_shared_measure = true;
};

/// \brief The containment skyline: observations not strictly fully contained
/// by any other observation (the "top-level observations" of §5).
///
/// o_b is dominated when some o_a != o_b fully contains it with at least one
/// strictly deeper dimension (otherwise equal points would eliminate each
/// other). Uses the lattice to prune dominance checks.
std::vector<qb::ObsId> ComputeSkyline(const qb::ObservationSet& obs,
                                      const Lattice& lattice,
                                      const SkylineOptions& options = {});

/// \brief The k-dominant skyline: o_b is k-dominated when some o_a contains
/// its values in at least `k` dimensions, at least one strictly; points not
/// k-dominated form the k-dominant skyline. k == |P| degenerates to
/// ComputeSkyline.
std::vector<qb::ObsId> ComputeKDominantSkyline(
    const qb::ObservationSet& obs, std::size_t k,
    const SkylineOptions& options = {});

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_SKYLINE_H_
