#include "core/snapshot.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "base/hot.h"
#include "base/untrusted.h"
#include "core/checkpoint.h"
#include "core/snapshot_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/binary_io.h"
#include "util/fault.h"

namespace rdfcube {
namespace core {

namespace {

using snapshot::ByteReader;
using snapshot::PutU32;
using snapshot::PutU64;

Status Corrupt(const char* what) {
  return Status::ParseError(std::string("corrupt snapshot: ") + what);
}

// Inverse of SelectorBits (checkpoint.h).
RelationshipSelector SelectorFromBits(uint32_t bits) {
  RelationshipSelector s;
  s.full_containment = (bits & 1u) != 0;
  s.partial_containment = (bits & 2u) != 0;
  s.complementarity = (bits & 4u) != 0;
  s.partial_dimension_map = (bits & 8u) != 0;
  return s;
}

// Failure-path formatting lives off the hot path: RDFCUBE_COLD stops the
// hot-path gate's transitive fact propagation here (DESIGN.md §5g).
RDFCUBE_COLD Status PointLookupNotFound(qb::ObsId id) {
  return Status::NotFound("observation id " + std::to_string(id) +
                          " is not in the snapshot");
}

// Deadline gate shared by the point lookups: they are O(partners) probes, so
// expiry is only honored at entry rather than mid-probe.
RDFCUBE_HOT Status CheckPointQuery(qb::ObsId id, std::size_t num_obs,
                                   const Deadline& deadline) {
  if (deadline.Expired()) {
    return Status::TimedOut("deadline expired before lookup");
  }
  if (id >= num_obs) {
    return PointLookupNotFound(id);
  }
  static obs::Counter& lookups = obs::DefaultCounter(
      "rdfcube_core_snapshot_point_lookups_total",
      "Point lookups answered from a relationship snapshot");
  lookups.Increment();
  return Status::OK();
}

}  // namespace

Status RelationshipSnapshot::Integrate(qb::ObsId first, qb::ObsId limit,
                                       const Deadline& deadline) {
  for (qb::ObsId i = first; i < limit; ++i) {
    if (deadline.Expired()) {
      return Status::TimedOut("snapshot build deadline expired at observation " +
                              std::to_string(i));
    }
    if (FaultTriggered(kFaultSnapshotBuild)) {
      return Status::Internal("injected snapshot build failure at observation " +
                              std::to_string(i));
    }
    RDFCUBE_RETURN_IF_ERROR(engine_.OnObservationAdded(i));
  }
  static obs::Counter& integrated = obs::DefaultCounter(
      "rdfcube_core_snapshot_observations_total",
      "Observations integrated into relationship snapshots");
  integrated.Increment(limit - first);
  return Status::OK();
}

Result<RelationshipSnapshot::Ptr> RelationshipSnapshot::Build(
    qb::Corpus corpus, const BuildOptions& options) {
  obs::TraceSpan span("core/snapshot_build");
  if (corpus.space == nullptr || corpus.observations == nullptr) {
    return Status::InvalidArgument("snapshot build needs a complete corpus");
  }
  std::shared_ptr<RelationshipSnapshot> snap(new RelationshipSnapshot(
      std::move(corpus), options.selector, options.version));
  const qb::ObsId n = static_cast<qb::ObsId>(snap->num_observations());
  RDFCUBE_RETURN_IF_ERROR(snap->Integrate(0, n, options.deadline));
  snap->fingerprint_ = FingerprintObservations(snap->observations());
  static obs::Counter& builds = obs::DefaultCounter(
      "rdfcube_core_snapshot_builds_total",
      "Relationship snapshots built from scratch");
  builds.Increment();
  return Ptr(snap);
}

Result<RelationshipSnapshot::Ptr> RelationshipSnapshot::BuildIncremental(
    const RelationshipSnapshot& base, qb::Corpus corpus,
    const BuildOptions& options) {
  obs::TraceSpan span("core/snapshot_refresh");
  if (corpus.space == nullptr || corpus.observations == nullptr) {
    return Status::InvalidArgument("snapshot refresh needs a complete corpus");
  }
  const qb::ObsId base_n = static_cast<qb::ObsId>(base.num_observations());
  const qb::ObsId new_n = static_cast<qb::ObsId>(corpus.observations->size());
  if (new_n < base_n ||
      FingerprintObservationsPrefix(*corpus.observations, base_n) !=
          base.fingerprint()) {
    return Status::FailedPrecondition(
        "refreshed corpus does not extend the base snapshot's corpus");
  }
  std::shared_ptr<RelationshipSnapshot> snap(new RelationshipSnapshot(
      std::move(corpus), base.selector_, options.version));
  // Copy-on-write: the base's materialized sets seed the new engine; only
  // the appended observations pay kernel work.
  RDFCUBE_RETURN_IF_ERROR(
      snap->engine_.RestoreState(base.engine_.SerializeState()));
  RDFCUBE_RETURN_IF_ERROR(snap->Integrate(base_n, new_n, options.deadline));
  snap->fingerprint_ = FingerprintObservations(snap->observations());
  static obs::Counter& refreshes = obs::DefaultCounter(
      "rdfcube_core_snapshot_refreshes_total",
      "Relationship snapshots built incrementally from a base snapshot");
  refreshes.Increment();
  return Ptr(snap);
}

RDFCUBE_HOT Result<std::vector<qb::ObsId>> RelationshipSnapshot::Containers(
    qb::ObsId id, const Deadline& deadline) const {
  RDFCUBE_RETURN_IF_ERROR(CheckPointQuery(id, num_observations(), deadline));
  return engine_.Containers(id);
}

RDFCUBE_HOT Result<std::vector<qb::ObsId>> RelationshipSnapshot::Contained(
    qb::ObsId id, const Deadline& deadline) const {
  RDFCUBE_RETURN_IF_ERROR(CheckPointQuery(id, num_observations(), deadline));
  return engine_.Contained(id);
}

RDFCUBE_HOT Result<std::vector<qb::ObsId>> RelationshipSnapshot::Complements(
    qb::ObsId id, const Deadline& deadline) const {
  RDFCUBE_RETURN_IF_ERROR(CheckPointQuery(id, num_observations(), deadline));
  return engine_.Complements(id);
}

RDFCUBE_HOT Result<std::vector<IncrementalEngine::PartialMatch>>
RelationshipSnapshot::PartiallyContained(qb::ObsId id, double min_degree,
                                         const Deadline& deadline) const {
  RDFCUBE_RETURN_IF_ERROR(CheckPointQuery(id, num_observations(), deadline));
  return engine_.PartiallyContained(id, min_degree);
}

RDFCUBE_HOT Status RelationshipSnapshot::ScanAll(RelationshipSink* sink,
                                                 const Deadline& deadline) const {
  return engine_.Export(sink, deadline);
}

Status RelationshipSnapshot::SaveTo(const std::string& path) const {
  std::string out;
  out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU64(&out, version_);
  PutU64(&out, fingerprint_);
  PutU32(&out, SelectorBits(selector_));
  RDFCUBE_ASSIGN_OR_RETURN(std::string corpus_bytes,
                           qb::SerializeCorpus(corpus_));
  PutU64(&out, corpus_bytes.size());
  out += corpus_bytes;
  const std::string state = engine_.SerializeState();
  PutU64(&out, state.size());
  out += state;
  if (FaultTriggered(kFaultSnapshotSaveStage)) {
    // Model a crash mid-stage: a torn staging file appears beside the target
    // but the published path is never replaced (readers keep the old file).
    const std::string torn = path + ".tmp.injected";
    std::ofstream f(torn, std::ios::binary | std::ios::trunc);
    f.write(out.data(), static_cast<std::streamsize>(out.size() / 2));
    return Status::IOError("injected staging failure: " + torn);
  }
  return AtomicWriteFile(out, path);
}

RDFCUBE_TAINT_SOURCE Result<RelationshipSnapshot::Ptr>
RelationshipSnapshot::LoadFrom(const std::string& path) {
  std::string bytes;  // pre-initialized: gcc-12 maybe-uninitialized
  RDFCUBE_ASSIGN_OR_RETURN(bytes, ReadFileBytes(path));
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Corrupt("bad magic");
  }
  ByteReader r(bytes);
  {
    // Advance past the 8-byte magic (already validated above).
    uint64_t magic_bytes;
    if (!r.GetU64(&magic_bytes)) return Corrupt("truncated header");
  }
  uint64_t version, fingerprint;
  uint32_t selector_bits;
  if (!r.GetU64(&version)) return Corrupt("version");
  if (!r.GetU64(&fingerprint)) return Corrupt("fingerprint");
  if (!r.GetU32(&selector_bits)) return Corrupt("selector bits");
  if (selector_bits > 0xfu) return Corrupt("selector bits out of range");
  uint64_t len;
  std::string corpus_bytes, state_bytes;
  // Clamp each section length against the bytes actually present before
  // handing it to GetBytes: a forged 64-bit length must not be narrowed to
  // size_t (32-bit hosts) or charged against the allocator.
  if (!r.GetU64(&len) || len > r.Remaining() ||
      !r.GetBytes(static_cast<std::size_t>(len), &corpus_bytes)) {
    return Corrupt("corpus payload");
  }
  if (!r.GetU64(&len) || len > r.Remaining() ||
      !r.GetBytes(static_cast<std::size_t>(len), &state_bytes)) {
    return Corrupt("engine state payload");
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes");

  RDFCUBE_ASSIGN_OR_RETURN(qb::Corpus corpus,
                           qb::DeserializeCorpus(corpus_bytes));
  std::shared_ptr<RelationshipSnapshot> snap(new RelationshipSnapshot(
      std::move(corpus), SelectorFromBits(selector_bits), version));
  Status restored = snap->engine_.RestoreState(state_bytes);
  if (!restored.ok()) {
    // Any restore failure over a freshly-built engine means the file is
    // inconsistent with itself — surface it as corruption.
    return Status::ParseError("corrupt snapshot: " + restored.message());
  }
  if (FingerprintObservations(snap->observations()) != fingerprint) {
    return Corrupt("corpus fingerprint mismatch");
  }
  snap->fingerprint_ = fingerprint;
  static obs::Counter& loads = obs::DefaultCounter(
      "rdfcube_core_snapshot_loads_total",
      "Relationship snapshots loaded from disk");
  loads.Increment();
  return Ptr(snap);
}

}  // namespace core
}  // namespace rdfcube
