// Immutable read-side relationship snapshot (DESIGN.md §6).
//
// A RelationshipSnapshot owns a corpus together with its fully materialized
// S_F / S_P / S_C sets (an IncrementalEngine in its final state) and answers
// point lookups and bulk scans without any kernel work. Snapshots are
// immutable after Build(): a refreshed corpus produces a *new* snapshot
// (copy-on-write via BuildIncremental, which restores the base engine's
// state and integrates only the appended observations), and readers holding
// the old shared_ptr keep a consistent view for as long as they need it.
// This is the read side the relationship server publishes atomically.

#ifndef RDFCUBE_CORE_SNAPSHOT_H_
#define RDFCUBE_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "base/stopwatch.h"
#include "core/incremental.h"
#include "core/relationship.h"
#include "qb/corpus.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace core {

/// Injection point (util/fault.h) consulted once per observation integrated
/// during Build/BuildIncremental: a triggered fault aborts the build with
/// Internal, modelling a reload that crashes mid-construction.
inline constexpr char kFaultSnapshotBuild[] = "snapshot.build";

/// Injection point consulted inside SaveTo before the atomic rename: a
/// triggered fault leaves a torn *staging* file behind and fails with
/// IOError — the published path is never touched (crash-safe-swap test).
inline constexpr char kFaultSnapshotSaveStage[] = "snapshot.save.stage";

/// Magic + version written at the head of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'R', 'D', 'F', 'S',
                                           'N', 'A', 'P', '1'};

/// \brief Immutable corpus + materialized relationship sets, built once and
/// then shared read-only (the unit of publication for the server).
class RelationshipSnapshot {
 public:
  /// How snapshots are passed around: always shared, always const.
  using Ptr = std::shared_ptr<const RelationshipSnapshot>;

  /// \brief Inputs to Build/BuildIncremental beyond the corpus itself.
  struct BuildOptions {
    /// Which relationship types to materialize.
    RelationshipSelector selector = RelationshipSelector::All();
    /// Cooperative build deadline, checked between observation
    /// integrations; expiry fails the build with TimedOut.
    Deadline deadline;
    /// Monotonic publication version stamped on the snapshot (the server's
    /// reload counter; echoed in every response for staleness checks).
    uint64_t version = 0;
  };

  /// \brief Builds a snapshot from scratch: integrates every observation of
  /// `corpus` into a fresh engine. Fails with InvalidArgument on an empty
  /// corpus handle, TimedOut when the deadline expires mid-build, Internal
  /// when kFaultSnapshotBuild fires.
  static Result<Ptr> Build(qb::Corpus corpus, const BuildOptions& options);

  /// \brief Copy-on-write refresh: `corpus` must extend the base snapshot's
  /// corpus (same observations in [0, base.num_observations()), verified by
  /// prefix fingerprint — FailedPrecondition otherwise). The base engine
  /// state is restored over the new corpus and only the appended
  /// observations are integrated, so refresh cost is O(delta), not O(n²).
  /// The base snapshot is not modified. The selector is inherited from
  /// `base`; `options.selector` is ignored.
  static Result<Ptr> BuildIncremental(const RelationshipSnapshot& base,
                                      qb::Corpus corpus,
                                      const BuildOptions& options);

  /// Publication version stamped at build time.
  uint64_t version() const { return version_; }

  /// FingerprintObservations() of the snapped corpus; readers can assert
  /// that answers from one connection all came from the same data.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Relationship types this snapshot materialized.
  const RelationshipSelector& selector() const { return selector_; }

  /// The snapped observations (stable for the snapshot's lifetime).
  const qb::ObservationSet& observations() const {
    return *corpus_.observations;
  }

  /// Number of snapped observations (valid query ids are [0, this)).
  std::size_t num_observations() const { return corpus_.observations->size(); }

  std::size_t num_full() const { return engine_.num_full(); }
  std::size_t num_partial() const { return engine_.num_partial(); }
  std::size_t num_complementary() const { return engine_.num_complementary(); }

  // Point lookups. Each is O(partners of id) hash probes over the
  // materialized sets; ids are sorted ascending. NotFound when `id` is not a
  // snapped observation, TimedOut when `deadline` already expired on entry
  // (the probe itself is too cheap to interrupt).

  /// Observations that fully contain `id`.
  Result<std::vector<qb::ObsId>> Containers(qb::ObsId id,
                                            const Deadline& deadline) const;

  /// Observations `id` fully contains.
  Result<std::vector<qb::ObsId>> Contained(qb::ObsId id,
                                           const Deadline& deadline) const;

  /// Observations complementary to `id`.
  Result<std::vector<qb::ObsId>> Complements(qb::ObsId id,
                                             const Deadline& deadline) const;

  /// Observations partially contained by `id` with degree >= `min_degree`.
  Result<std::vector<IncrementalEngine::PartialMatch>> PartiallyContained(
      qb::ObsId id, double min_degree, const Deadline& deadline) const;

  /// Streams every materialized relationship into `sink`, checking
  /// `deadline` cooperatively (TimedOut mid-scan leaves the sink holding a
  /// prefix).
  [[nodiscard]] Status ScanAll(RelationshipSink* sink,
                               const Deadline& deadline) const;

  /// Atomically persists the snapshot (staged write + rename, reusing
  /// AtomicWriteFile): a crash mid-save can never tear the published file.
  /// IOError on filesystem failure or when kFaultSnapshotSaveStage fires.
  [[nodiscard]] Status SaveTo(const std::string& path) const;

  /// Loads a snapshot written by SaveTo. IOError when unreadable,
  /// ParseError on corruption (bad magic, truncation, or a corpus whose
  /// fingerprint does not match the recorded one).
  static Result<Ptr> LoadFrom(const std::string& path);

 private:
  RelationshipSnapshot(qb::Corpus corpus, const RelationshipSelector& selector,
                       uint64_t version)
      : corpus_(std::move(corpus)),
        selector_(selector),
        engine_(corpus_.observations.get(), selector) {
    version_ = version;
  }

  // Integrates observations [first, limit) under the deadline/fault rules.
  Status Integrate(qb::ObsId first, qb::ObsId limit, const Deadline& deadline);

  qb::Corpus corpus_;
  RelationshipSelector selector_;
  IncrementalEngine engine_;
  uint64_t version_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_SNAPSHOT_H_
