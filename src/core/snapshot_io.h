// rdfcube:internal — wire-format helpers, not part of the public API
// (excluded from the src/rdfcube/rdfcube.h umbrella; see tools/rdfcube_lint).
//
// Little-endian wire helpers shared by the core checkpoint snapshots
// (core/checkpoint.h, IncrementalEngine state). Mirrors the qb/binary_io
// idiom: fixed-width integers, length-prefixed payloads, a bounds-checked
// reader that fails (returns false) instead of reading past the end.

#ifndef RDFCUBE_CORE_SNAPSHOT_IO_H_
#define RDFCUBE_CORE_SNAPSHOT_IO_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace rdfcube {
namespace core {
namespace snapshot {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Bounds-checked cursor over a serialized snapshot.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(static_cast<unsigned char>(bytes_[pos_]));
    pos_ += 1;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  /// Copies the next `n` raw bytes into `*out`; false when fewer remain.
  bool GetBytes(std::size_t n, std::string* out) {
    if (n > Remaining()) return false;
    out->assign(bytes_, pos_, n);
    pos_ += n;
    return true;
  }

  /// Bytes left unread; used to sanity-check element counts before
  /// allocating (a corrupt count must not drive a huge reserve).
  std::size_t Remaining() const { return bytes_.size() - pos_; }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace snapshot
}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_SNAPSHOT_IO_H_
