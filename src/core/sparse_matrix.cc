#include "core/sparse_matrix.h"

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

#include <algorithm>

namespace rdfcube {
namespace core {

SparseOccurrenceMatrix::SparseOccurrenceMatrix(const qb::ObservationSet& obs) {
  const qb::CubeSpace& space = obs.space();
  dim_begin_.resize(space.num_dimensions());
  std::size_t col = 0;
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    dim_begin_[d] = col;
    col += space.code_list(d).size();
  }
  num_columns_ = col;

  row_offsets_.reserve(obs.size() + 1);
  row_offsets_.push_back(0);
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
      const hierarchy::CodeList& list = space.code_list(d);
      for (hierarchy::CodeId c : list.AncestorsOrSelf(obs.ValueOrRoot(i, d))) {
        columns_.push_back(static_cast<uint32_t>(dim_begin_[d] + c));
      }
    }
    // Sort this row's entries (chains are emitted leaf-to-root per
    // dimension, so the row is not globally sorted yet).
    std::sort(columns_.begin() + row_offsets_.back(), columns_.end());
    row_offsets_.push_back(static_cast<uint32_t>(columns_.size()));
  }
}

namespace {

// True iff every element of [a_lo, a_hi) appears in [b_lo, b_hi); both
// ranges sorted ascending.
bool SortedSubset(const uint32_t* a_lo, const uint32_t* a_hi,
                  const uint32_t* b_lo, const uint32_t* b_hi) {
  while (a_lo != a_hi) {
    while (b_lo != b_hi && *b_lo < *a_lo) ++b_lo;
    if (b_lo == b_hi || *b_lo != *a_lo) return false;
    ++a_lo;
    ++b_lo;
  }
  return true;
}

}  // namespace

bool SparseOccurrenceMatrix::Contains(qb::ObsId a, qb::ObsId b,
                                      qb::DimId d) const {
  const uint32_t lo = static_cast<uint32_t>(dim_begin_[d]);
  const uint32_t hi = static_cast<uint32_t>(
      d + 1 < dim_begin_.size() ? dim_begin_[d + 1] : num_columns_);
  auto row_range = [&](qb::ObsId r, const uint32_t** out_lo,
                       const uint32_t** out_hi) {
    const uint32_t* begin = columns_.data() + row_offsets_[r];
    const uint32_t* end = columns_.data() + row_offsets_[r + 1];
    *out_lo = std::lower_bound(begin, end, lo);
    *out_hi = std::lower_bound(begin, end, hi);
  };
  const uint32_t *a_lo, *a_hi, *b_lo, *b_hi;
  row_range(a, &a_lo, &a_hi);
  row_range(b, &b_lo, &b_hi);
  return SortedSubset(a_lo, a_hi, b_lo, b_hi);
}

bool SparseOccurrenceMatrix::ContainsAll(qb::ObsId a, qb::ObsId b) const {
  return SortedSubset(columns_.data() + row_offsets_[a],
                      columns_.data() + row_offsets_[a + 1],
                      columns_.data() + row_offsets_[b],
                      columns_.data() + row_offsets_[b + 1]);
}

Status RunBaselineSparse(const qb::ObservationSet& obs,
                         const SparseOccurrenceMatrix& om,
                         const SparseBaselineOptions& options,
                         RelationshipSink* sink) {
  const std::size_t n = om.num_rows();
  const std::size_t k = om.num_dimensions();
  const RelationshipSelector& sel = options.selector;
  constexpr std::size_t kDeadlineStride = 4096;
  std::size_t since_check = 0;
  for (qb::ObsId a = 0; a < n; ++a) {
    for (qb::ObsId b = a + 1; b < n; ++b) {
      if (++since_check >= kDeadlineStride) {
        since_check = 0;
        if (options.deadline.Expired()) {
          return Status::TimedOut("sparse baseline exceeded its deadline");
        }
      }
      const bool shares = obs.SharesMeasure(a, b);
      if (!sel.partial_containment) {
        const bool ab = om.ContainsAll(a, b);
        const bool ba = om.ContainsAll(b, a);
        if (sel.full_containment && shares) {
          if (ab) sink->OnFullContainment(a, b);
          if (ba) sink->OnFullContainment(b, a);
        }
        if (sel.complementarity && ab && ba) sink->OnComplementarity(a, b);
        continue;
      }
      std::size_t count_ab = 0, count_ba = 0;
      uint64_t mask_ab = 0, mask_ba = 0;
      for (qb::DimId d = 0; d < k; ++d) {
        if (om.Contains(a, b, d)) {
          ++count_ab;
          if (sel.partial_dimension_map) mask_ab |= (uint64_t{1} << d);
        }
        if (om.Contains(b, a, d)) {
          ++count_ba;
          if (sel.partial_dimension_map) mask_ba |= (uint64_t{1} << d);
        }
      }
      const bool full_ab = count_ab == k;
      const bool full_ba = count_ba == k;
      if (shares) {
        if (sel.full_containment) {
          if (full_ab) sink->OnFullContainment(a, b);
          if (full_ba) sink->OnFullContainment(b, a);
        }
        if (count_ab > 0 && !full_ab) {
          sink->OnPartialContainment(
              a, b, static_cast<double>(count_ab) / static_cast<double>(k),
              mask_ab);
        }
        if (count_ba > 0 && !full_ba) {
          sink->OnPartialContainment(
              b, a, static_cast<double>(count_ba) / static_cast<double>(k),
              mask_ba);
        }
      }
      if (sel.complementarity && full_ab && full_ba) {
        sink->OnComplementarity(a, b);
      }
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace rdfcube
