// Sparse occurrence matrix (paper §3.1: "for large k the matrix tends to
// become sparse, therefore a sparse matrix implementation would yield a
// significant decrease in the required space"; §6 lists space efficiency as
// future work).
//
// Each row stores only its set column indices (sorted); an observation sets
// one ancestor chain per dimension, so a row holds O(|P| * depth) entries
// out of |C| columns — thousands of columns, dozens of set bits.

#ifndef RDFCUBE_CORE_SPARSE_MATRIX_H_
#define RDFCUBE_CORE_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "core/relationship.h"
#include "qb/observation_set.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace core {

/// \brief Sparse equivalent of OccurrenceMatrix with the same containment
/// checks; drop-in for the baseline via RunBaselineSparse (baseline.h's
/// sibling below).
class SparseOccurrenceMatrix {
 public:
  explicit SparseOccurrenceMatrix(const qb::ObservationSet& obs);

  std::size_t num_rows() const { return row_offsets_.size() - 1; }
  std::size_t num_columns() const { return num_columns_; }
  std::size_t num_dimensions() const { return dim_begin_.size(); }

  /// Total set entries across all rows (for memory accounting).
  std::size_t num_entries() const { return columns_.size(); }

  /// Approximate heap bytes used by the matrix payload.
  std::size_t ApproximateBytes() const {
    return columns_.size() * sizeof(uint32_t) +
           row_offsets_.size() * sizeof(uint32_t);
  }

  /// sf(o_a, o_b)|p_d with the same semantics as OccurrenceMatrix::Contains:
  /// a's set columns within dimension d are a subset of b's.
  bool Contains(qb::ObsId a, qb::ObsId b, qb::DimId d) const;

  /// Whole-row subset check (full dimensional containment).
  bool ContainsAll(qb::ObsId a, qb::ObsId b) const;

 private:
  // Row ranges into columns_ (CSR layout). Row entries are sorted.
  std::vector<uint32_t> row_offsets_;
  std::vector<uint32_t> columns_;
  std::vector<std::size_t> dim_begin_;
  std::size_t num_columns_ = 0;
};

/// \brief The streaming baseline over the sparse matrix (identical output to
/// RunBaseline on the dense matrix; see tests). Exists to quantify the
/// paper's sparse-matrix remark — see bench_ablation_sparse.
struct SparseBaselineOptions {
  RelationshipSelector selector;
  Deadline deadline;
};

[[nodiscard]] Status RunBaselineSparse(const qb::ObservationSet& obs,
                         const SparseOccurrenceMatrix& om,
                         const SparseBaselineOptions& options,
                         RelationshipSink* sink);

}  // namespace core
}  // namespace rdfcube

#endif  // RDFCUBE_CORE_SPARSE_MATRIX_H_
