#include "datagen/perturb.h"

#include "util/random.h"
#include "util/string_util.h"

namespace rdfcube {
namespace datagen {

std::vector<std::string> PerturbUris(const std::vector<std::string>& uris,
                                     const PerturbOptions& options) {
  Rng rng(options.seed);
  std::vector<std::string> out;
  out.reserve(uris.size());
  for (const std::string& uri : uris) {
    std::string local(IriLocalName(uri));
    if (rng.Chance(options.lowercase_prob)) local = ToLowerAscii(local);
    if (rng.Chance(options.separator_swap_prob)) {
      for (char& c : local) {
        if (c == '-') {
          c = '_';
        } else if (c == '_') {
          c = '-';
        }
      }
    }
    if (rng.Chance(options.suffix_prob)) {
      local += "-v" + std::to_string(rng.Uniform(4) + 1);
    }
    out.push_back(options.new_namespace + local);
  }
  return out;
}

}  // namespace datagen
}  // namespace rdfcube
