// URI perturbation for alignment experiments: produces "remote-source"
// variants of code URIs (case changes, namespace swap, separator changes) so
// align::MatchUris has realistic interlinking work to do.

#ifndef RDFCUBE_DATAGEN_PERTURB_H_
#define RDFCUBE_DATAGEN_PERTURB_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rdfcube {
namespace datagen {

/// \brief Controls for the code-list perturbation generator.
struct PerturbOptions {
  /// Replacement namespace for the perturbed copies.
  std::string new_namespace = "http://other-source.example.com/code/";
  /// Probability of lower-casing the local name.
  double lowercase_prob = 0.5;
  /// Probability of swapping '-' and '_' separators.
  double separator_swap_prob = 0.3;
  /// Probability of appending a numeric suffix (simulates versioned codes).
  double suffix_prob = 0.1;
  uint64_t seed = 42;
};

/// Returns perturbed variants, parallel to `uris`.
std::vector<std::string> PerturbUris(const std::vector<std::string>& uris,
                                     const PerturbOptions& options = {});

}  // namespace datagen
}  // namespace rdfcube

#endif  // RDFCUBE_DATAGEN_PERTURB_H_
