#include "datagen/realworld.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "qb/corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace datagen {

namespace {

constexpr char kNs[] = "http://example.org/";

std::string Dim(const char* local) { return std::string(kNs) + "dim/" + local; }
std::string Meas(const char* local) {
  return std::string(kNs) + "measure/" + local;
}

// ---------------------------------------------------------------------------
// Code-list construction. Counts are tuned so the corpus carries ~2.3k
// distinct hierarchical values (paper: 2.6k) across 9 dimensions.
// ---------------------------------------------------------------------------

struct DimBuild {
  std::string iri;
  std::string root;
  // (code, parent) pairs in parent-first order.
  std::vector<std::pair<std::string, std::string>> codes;
};

void AddChildren(DimBuild* b, const std::string& parent,
                 const std::string& stem, std::size_t count,
                 std::vector<std::string>* out) {
  for (std::size_t i = 0; i < count; ++i) {
    std::string code = stem + std::to_string(i);
    b->codes.emplace_back(code, parent);
    if (out != nullptr) out->push_back(std::move(code));
  }
}

DimBuild BuildRefArea() {
  DimBuild b{Dim("refArea"), "World", {}};
  std::vector<std::string> continents, countries, regions;
  AddChildren(&b, "World", "Continent", 5, &continents);
  for (const std::string& continent : continents) {
    AddChildren(&b, continent, continent + "-Country", 12, &countries);
  }
  for (const std::string& country : countries) {
    AddChildren(&b, country, country + "-Region", 4, &regions);
  }
  for (const std::string& region : regions) {
    AddChildren(&b, region, region + "-City", 3, nullptr);
  }
  return b;  // 1 + 5 + 60 + 240 + 720 = 1026 codes, depth 4
}

DimBuild BuildRefPeriod() {
  DimBuild b{Dim("refPeriod"), "AllTime", {}};
  std::vector<std::string> decades, years, quarters;
  AddChildren(&b, "AllTime", "Decade", 3, &decades);
  for (const std::string& decade : decades) {
    AddChildren(&b, decade, decade + "-Y", 10, &years);
  }
  for (const std::string& year : years) {
    AddChildren(&b, year, year + "-Q", 4, &quarters);
  }
  for (const std::string& quarter : quarters) {
    AddChildren(&b, quarter, quarter + "-M", 3, nullptr);
  }
  return b;  // 1 + 3 + 30 + 120 + 360 = 514 codes, depth 4
}

DimBuild BuildSex() {
  DimBuild b{Dim("sex"), "Total", {}};
  b.codes.emplace_back("Female", "Total");
  b.codes.emplace_back("Male", "Total");
  return b;
}

DimBuild BuildUnit() {
  DimBuild b{Dim("unit"), "AnyUnit", {}};
  for (const char* u : {"Persons", "Thousand-Persons", "EUR", "Million-EUR",
                        "Percent", "Per-1000", "Index", "Households"}) {
    b.codes.emplace_back(u, "AnyUnit");
  }
  return b;
}

DimBuild BuildAge() {
  DimBuild b{Dim("age"), "TotalAge", {}};
  std::vector<std::string> bands;
  AddChildren(&b, "TotalAge", "AgeBand", 5, &bands);
  for (const std::string& band : bands) {
    AddChildren(&b, band, band + "-Group", 4, nullptr);
  }
  return b;  // 26 codes, depth 2
}

DimBuild BuildEconomicActivity() {
  DimBuild b{Dim("economicActivity"), "AllNace", {}};
  std::vector<std::string> sections;
  AddChildren(&b, "AllNace", "Section", 10, &sections);
  for (const std::string& section : sections) {
    AddChildren(&b, section, section + "-Div", 3, nullptr);
  }
  return b;  // 41 codes, depth 2
}

DimBuild BuildCitizenship() {
  DimBuild b{Dim("citizenship"), "AllCitizenships", {}};
  std::vector<std::string> groups;
  AddChildren(&b, "AllCitizenships", "CitGroup", 4, &groups);
  for (const std::string& group : groups) {
    AddChildren(&b, group, group + "-Cit", 12, nullptr);
  }
  return b;  // 53 codes, depth 2
}

DimBuild BuildEducation() {
  DimBuild b{Dim("education"), "AllIsced", {}};
  AddChildren(&b, "AllIsced", "Isced", 8, nullptr);
  return b;
}

DimBuild BuildHouseholdSize() {
  DimBuild b{Dim("householdSize"), "AnySize", {}};
  AddChildren(&b, "AnySize", "Size", 6, nullptr);
  return b;
}

std::vector<DimBuild> AllDimBuilds() {
  return {BuildRefArea(),       BuildRefPeriod(),   BuildSex(),
          BuildUnit(),          BuildAge(),         BuildEconomicActivity(),
          BuildCitizenship(),   BuildEducation(),   BuildHouseholdSize()};
}

}  // namespace

const std::vector<DatasetSpec>& RealWorldSpecs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"D1",
       {Dim("refArea"), Dim("refPeriod"), Dim("sex"), Dim("unit"), Dim("age"),
        Dim("citizenship")},
       Meas("population"),
       58000},
      {"D2",
       {Dim("refArea"), Dim("refPeriod"), Dim("unit"), Dim("householdSize")},
       Meas("members"),
       4200},
      {"D3",
       {Dim("refArea"), Dim("refPeriod"), Dim("sex"), Dim("unit"), Dim("age"),
        Dim("education")},
       Meas("population"),
       6700},
      {"D4",
       {Dim("refArea"), Dim("refPeriod"), Dim("unit")},
       Meas("births"),
       15000},
      {"D5",
       {Dim("refArea"), Dim("refPeriod"), Dim("sex"), Dim("unit"), Dim("age"),
        Dim("citizenship")},
       Meas("deaths"),
       68000},
      {"D6",
       {Dim("refArea"), Dim("refPeriod"), Dim("unit")},
       Meas("gdp"),
       73000},
      {"D7",
       {Dim("refArea"), Dim("refPeriod"), Dim("economicActivity")},
       Meas("compensation"),
       21600},
  };
  return kSpecs;
}

Result<qb::Corpus> GenerateRealWorldCorpus(const RealWorldOptions& options) {
  qb::CorpusBuilder builder;

  // Dimensions + code lists. Track codes per dimension for sampling.
  std::vector<DimBuild> dims = AllDimBuilds();
  std::vector<std::vector<std::string>> codes_of_dim(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    RDFCUBE_RETURN_IF_ERROR(builder.AddDimension(dims[d].iri, dims[d].root));
    codes_of_dim[d].push_back(dims[d].root);
    for (const auto& [code, parent] : dims[d].codes) {
      RDFCUBE_RETURN_IF_ERROR(builder.AddCode(dims[d].iri, code, parent));
      codes_of_dim[d].push_back(code);
    }
  }
  std::unordered_map<std::string, std::size_t> dim_index;
  for (std::size_t d = 0; d < dims.size(); ++d) dim_index[dims[d].iri] = d;

  // Measures.
  std::unordered_set<std::string> seen_measures;
  for (const DatasetSpec& spec : RealWorldSpecs()) {
    if (seen_measures.insert(spec.measure).second) {
      RDFCUBE_RETURN_IF_ERROR(builder.AddMeasure(spec.measure));
    }
  }

  // Parent lookup for roll-up derivation: code -> parent (per dimension).
  std::vector<std::unordered_map<std::string, std::string>> parent_of(
      dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    for (const auto& [code, parent] : dims[d].codes) {
      parent_of[d].emplace(code, parent);
    }
  }

  // Datasets + observations. Real statistical exports are heavy with
  // aggregates and cross-source coordinate reuse, which is where containment
  // and complementarity come from. Each observation is generated as either:
  //   * a roll-up of an earlier one (some dimension values replaced by
  //     ancestors)  -> full/partial containment chains,
  //   * a mirror of another dataset's coordinates on the shared dimensions
  //     -> complementarity candidates, or
  //   * a fresh random point, leaf-biased across hierarchy levels.
  Rng rng(options.seed);
  // Coordinates generated so far, per dataset, as (dim IRI -> code) maps.
  using Coord = std::vector<std::pair<std::string, std::string>>;
  std::vector<std::vector<Coord>> history(RealWorldSpecs().size());

  for (std::size_t s = 0; s < RealWorldSpecs().size(); ++s) {
    const DatasetSpec& spec = RealWorldSpecs()[s];
    RDFCUBE_RETURN_IF_ERROR(
        builder.AddDataset(spec.name, spec.dimensions, {spec.measure}));
    const std::size_t target = static_cast<std::size_t>(
        std::ceil(static_cast<double>(spec.observations_at_scale1) *
                  options.scale));
    std::unordered_set<std::string> used_keys;
    std::size_t made = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = target * 40 + 200;
    while (made < target && attempts < max_attempts) {
      ++attempts;
      Coord values;
      const double mode = rng.NextDouble();
      if (mode < 0.25 && !history[s].empty()) {
        // Roll-up of an earlier observation from this dataset.
        values = history[s][rng.Uniform(history[s].size())];
        for (auto& [dim_iri, code] : values) {
          const std::size_t d = dim_index[dim_iri];
          // Walk up 1-2 levels with probability 1/2 per dimension.
          if (!rng.Chance(0.5)) continue;
          for (int up = 0; up < 2; ++up) {
            auto it = parent_of[d].find(code);
            if (it == parent_of[d].end()) break;  // reached the root
            code = it->second;
            if (rng.Chance(0.5)) break;
          }
        }
      } else if (mode < 0.40 && s > 0) {
        // Mirror another dataset's coordinates on the shared dimensions.
        const std::size_t other = rng.Uniform(s);
        if (history[other].empty()) continue;
        const Coord& src = history[other][rng.Uniform(history[other].size())];
        for (const std::string& dim_iri : spec.dimensions) {
          bool copied = false;
          for (const auto& [src_dim, src_code] : src) {
            if (src_dim == dim_iri) {
              values.emplace_back(dim_iri, src_code);
              copied = true;
              break;
            }
          }
          if (!copied) {
            // Dimension not in the source: leave at the root (omitted).
          }
        }
      } else {
        // Fresh leaf-biased point.
        for (const std::string& dim_iri : spec.dimensions) {
          const auto& codes = codes_of_dim[dim_index[dim_iri]];
          std::size_t idx;
          if (rng.Chance(options.leaf_bias)) {
            idx = codes.size() / 2 +
                  static_cast<std::size_t>(
                      rng.Uniform(codes.size() - codes.size() / 2));
          } else {
            idx = static_cast<std::size_t>(rng.Uniform(codes.size()));
          }
          values.emplace_back(dim_iri, codes[idx]);
        }
      }
      std::string key;
      for (const auto& [dim_iri, code] : values) {
        key += code;
        key.push_back('|');
      }
      if (!used_keys.insert(key).second) continue;  // IC-12: distinct keys
      const double measured = 10.0 + rng.NextDouble() * 1.0e6;
      RDFCUBE_RETURN_IF_ERROR(builder.AddObservation(
          spec.name, spec.name + "/obs/" + std::to_string(made), values,
          {{spec.measure, measured}}));
      history[s].push_back(std::move(values));
      ++made;
    }
    if (made < target) {
      return Status::Internal("generator could not reach " +
                              std::to_string(target) +
                              " distinct keys for dataset " + spec.name);
    }
  }
  return std::move(builder).Build();
}

Result<qb::Corpus> GenerateRealWorldPrefix(std::size_t total_observations,
                                           uint64_t seed) {
  std::size_t total_at_scale1 = 0;
  for (const DatasetSpec& spec : RealWorldSpecs()) {
    total_at_scale1 += spec.observations_at_scale1;
  }
  RealWorldOptions options;
  options.scale = static_cast<double>(total_observations) /
                  static_cast<double>(total_at_scale1);
  options.seed = seed;
  return GenerateRealWorldCorpus(options);
}

}  // namespace datagen
}  // namespace rdfcube
