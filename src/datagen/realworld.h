// Deterministic generator reproducing the statistical shape of the paper's
// seven real-world datasets (Table 4): same per-dataset schemas, observation
// counts, shared dimensions/code lists and measures. Stands in for the
// Eurostat / linked-statistics.gr / World Bank downloads (see DESIGN.md,
// "Substitutions").

#ifndef RDFCUBE_DATAGEN_REALWORLD_H_
#define RDFCUBE_DATAGEN_REALWORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qb/corpus.h"
#include "base/result.h"

namespace rdfcube {
namespace datagen {

/// \brief Static description of one of the seven datasets (one Table 4 row).
struct DatasetSpec {
  std::string name;
  std::vector<std::string> dimensions;  // dimension IRIs (ex: namespace)
  std::string measure;                  // measure IRI
  std::size_t observations_at_scale1;   // the Table 4 count (58k, 4.2k, ...)
};

/// The seven Table 4 rows (D1..D7; 246.5k observations at scale 1).
const std::vector<DatasetSpec>& RealWorldSpecs();

/// \brief Scaling and skew knobs for the real-world corpus generator.
struct RealWorldOptions {
  /// Scales every dataset's observation count (0.01 -> ~2.5k total).
  double scale = 1.0;
  uint64_t seed = 42;
  /// Skew of value-depth selection: higher favours leaf-level codes, as real
  /// statistical data does (most observations are city/month level with some
  /// aggregate rows).
  double leaf_bias = 0.6;
};

/// \brief Generates the corpus: 9 shared dimensions with hierarchical code
/// lists (~2.3k codes), 6 measures, 7 datasets. Observations get distinct
/// dimension keys within each dataset (QB IC-12), values drawn across all
/// hierarchy levels so containment and complementarity relationships arise
/// naturally.
[[nodiscard]] Result<qb::Corpus> GenerateRealWorldCorpus(const RealWorldOptions& options = {});

/// \brief Generates only the first `limit` observations-worth of the corpus
/// (proportionally across datasets); used for the paper's 2k..250k input
/// sweeps.
[[nodiscard]] Result<qb::Corpus> GenerateRealWorldPrefix(std::size_t total_observations,
                                           uint64_t seed = 42);

}  // namespace datagen
}  // namespace rdfcube

#endif  // RDFCUBE_DATAGEN_REALWORLD_H_
