#include "datagen/synthetic.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "qb/corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace datagen {

namespace {

constexpr char kNs[] = "http://example.org/synthetic/";

// Codes of one synthetic dimension, grouped by level. level_codes[l] holds
// the names of all codes at level l (level 0 = the root).
struct SynthDim {
  std::string iri;
  std::vector<std::vector<std::string>> level_codes;
};

// Builds a complete fanout^depth tree for dimension `d`.
SynthDim BuildDim(std::size_t d, std::size_t fanout, std::size_t depth,
                  qb::CorpusBuilder* builder, Status* status) {
  SynthDim dim;
  dim.iri = std::string(kNs) + "dim" + std::to_string(d);
  const std::string root = "d" + std::to_string(d) + "-ALL";
  *status = builder->AddDimension(dim.iri, root);
  if (!status->ok()) return dim;
  dim.level_codes.push_back({root});
  for (std::size_t level = 1; level <= depth; ++level) {
    std::vector<std::string> codes;
    for (const std::string& parent : dim.level_codes[level - 1]) {
      for (std::size_t f = 0; f < fanout; ++f) {
        std::string code = parent + "." + std::to_string(f);
        *status = builder->AddCode(dim.iri, code, parent);
        if (!status->ok()) return dim;
        codes.push_back(std::move(code));
      }
    }
    dim.level_codes.push_back(std::move(codes));
  }
  return dim;
}

}  // namespace

std::size_t ProjectedCubeCount(const SyntheticOptions& options) {
  const double possible =
      std::pow(static_cast<double>(options.hierarchy_depth + 1),
               static_cast<double>(options.num_dimensions));
  double target = options.cube_factor *
                  std::pow(static_cast<double>(options.num_observations),
                           options.cube_exponent);
  if (target > possible) target = possible;
  if (target < 1.0) target = 1.0;
  return static_cast<std::size_t>(target);
}

Result<qb::Corpus> GenerateSyntheticCorpus(const SyntheticOptions& options) {
  if (options.num_dimensions == 0 || options.num_datasets == 0) {
    return Status::InvalidArgument("synthetic: need >= 1 dimension/dataset");
  }
  qb::CorpusBuilder builder;
  Status status;
  std::vector<SynthDim> dims;
  std::vector<std::string> dim_iris;
  for (std::size_t d = 0; d < options.num_dimensions; ++d) {
    dims.push_back(BuildDim(d, options.hierarchy_fanout,
                            options.hierarchy_depth, &builder, &status));
    RDFCUBE_RETURN_IF_ERROR(status);
    dim_iris.push_back(dims.back().iri);
  }

  // One shared measure (gives cross-dataset measure overlap) plus one
  // distinct measure per dataset (gives complementarity opportunities).
  const std::string shared_measure = std::string(kNs) + "measure/shared";
  RDFCUBE_RETURN_IF_ERROR(builder.AddMeasure(shared_measure));
  std::vector<std::string> own_measures;
  for (std::size_t ds = 0; ds < options.num_datasets; ++ds) {
    own_measures.push_back(std::string(kNs) + "measure/m" + std::to_string(ds));
    RDFCUBE_RETURN_IF_ERROR(builder.AddMeasure(own_measures.back()));
  }
  std::vector<std::string> dataset_names;
  for (std::size_t ds = 0; ds < options.num_datasets; ++ds) {
    dataset_names.push_back("S" + std::to_string(ds + 1));
    RDFCUBE_RETURN_IF_ERROR(builder.AddDataset(
        dataset_names.back(), dim_iris,
        {shared_measure, own_measures[ds]}));
  }

  // Choose the populated level signatures (cubes). A signature is only
  // eligible when its value space is large enough to hold an even share of
  // the observations with distinct keys per dataset (IC-12); e.g. the
  // all-roots signature has exactly one possible key and cannot absorb an
  // even share.
  Rng rng(options.seed);
  const std::size_t num_cubes = ProjectedCubeCount(options);
  const double per_cube_load =
      static_cast<double>(options.num_observations) /
      (static_cast<double>(num_cubes) *
       static_cast<double>(options.num_datasets));
  std::unordered_set<std::string> signature_keys;
  std::vector<std::vector<std::size_t>> signatures;
  std::size_t guard = 0;
  while (signatures.size() < num_cubes && guard < num_cubes * 1000 + 10000) {
    ++guard;
    std::vector<std::size_t> sig(options.num_dimensions);
    std::string key;
    double capacity = 1.0;
    for (std::size_t d = 0; d < options.num_dimensions; ++d) {
      sig[d] = static_cast<std::size_t>(
          rng.Uniform(options.hierarchy_depth + 1));
      capacity *= static_cast<double>(dims[d].level_codes[sig[d]].size());
      key += std::to_string(sig[d]);
      key.push_back(',');
    }
    if (capacity < 4.0 * per_cube_load + 4.0) continue;
    if (signature_keys.insert(key).second) signatures.push_back(std::move(sig));
  }
  if (signatures.empty()) {
    return Status::InvalidArgument(
        "synthetic: hierarchy too small for the requested size");
  }

  // Populate the cubes evenly; the dataset rotates so every dataset holds a
  // share of every cube. Keys must stay unique per dataset (IC-12).
  std::vector<std::unordered_set<std::string>> used_keys(options.num_datasets);
  std::size_t made = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = options.num_observations * 20 + 1000;
  while (made < options.num_observations && attempts < max_attempts) {
    ++attempts;
    const std::size_t cube = made % signatures.size();
    const std::size_t ds = (made / signatures.size()) % options.num_datasets;
    std::vector<std::pair<std::string, std::string>> values;
    std::string key;
    for (std::size_t d = 0; d < options.num_dimensions; ++d) {
      const auto& codes = dims[d].level_codes[signatures[cube][d]];
      const std::string& code =
          codes[static_cast<std::size_t>(rng.Uniform(codes.size()))];
      values.emplace_back(dim_iris[d], code);
      key += code;
      key.push_back('|');
    }
    if (!used_keys[ds].insert(key).second) continue;
    RDFCUBE_RETURN_IF_ERROR(builder.AddObservation(
        dataset_names[ds], dataset_names[ds] + "/obs/" + std::to_string(made),
        values,
        {{shared_measure, rng.NextDouble() * 1000.0},
         {own_measures[ds], rng.NextDouble() * 1000.0}}));
    ++made;
  }
  if (made < options.num_observations) {
    return Status::Internal(
        "synthetic generator could not reach the requested size (space too "
        "small for distinct keys)");
  }
  return std::move(builder).Build();
}

}  // namespace datagen
}  // namespace rdfcube
