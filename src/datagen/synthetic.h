// Synthetic scalability corpus (paper §4.2): fixed dimensions, observations
// generated to follow the projected lattice-node distribution of the
// real-world data (Fig. 5(f)) with lattice nodes populated evenly.

#ifndef RDFCUBE_DATAGEN_SYNTHETIC_H_
#define RDFCUBE_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "qb/corpus.h"
#include "base/result.h"

namespace rdfcube {
namespace datagen {

/// \brief Size/shape parameters of the synthetic corpus generator.
struct SyntheticOptions {
  std::size_t num_observations = 100000;
  /// Number of dimensions (each gets a fanout^depth hierarchy).
  std::size_t num_dimensions = 4;
  std::size_t hierarchy_fanout = 6;
  std::size_t hierarchy_depth = 3;
  /// Number of populated lattice nodes grows as cube_factor * n^cube_exponent
  /// (sublinear, so cubes-per-observation falls as n grows, matching
  /// Fig. 5(f)). Clamped to the number of possible level signatures.
  double cube_exponent = 0.55;
  double cube_factor = 2.0;
  /// Number of datasets the observations are spread over (all share one
  /// measure plus a per-dataset one, giving measure overlap).
  std::size_t num_datasets = 4;
  uint64_t seed = 42;
};

/// \brief Generates the corpus: picks the target number of level signatures,
/// then populates them evenly ("we populated the lattice nodes evenly"),
/// drawing concrete code values uniformly within each signature's levels.
[[nodiscard]] Result<qb::Corpus> GenerateSyntheticCorpus(const SyntheticOptions& options = {});

/// Number of lattice signatures the generator will populate for a given
/// size (exposed for the Fig. 5(f) bench).
std::size_t ProjectedCubeCount(const SyntheticOptions& options);

}  // namespace datagen
}  // namespace rdfcube

#endif  // RDFCUBE_DATAGEN_SYNTHETIC_H_
