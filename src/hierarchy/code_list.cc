#include "hierarchy/code_list.h"

namespace rdfcube {
namespace hierarchy {

CodeList::CodeList(std::string root_name) {
  names_.push_back(std::move(root_name));
  parents_.push_back(kNoCode);
  children_.emplace_back();
  by_name_.emplace(names_[0], 0);
}

Result<CodeId> CodeList::Add(const std::string& name, CodeId parent) {
  if (parent >= names_.size()) {
    return Status::InvalidArgument("parent code id out of range");
  }
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (parents_[it->second] != parent) {
      return Status::InvalidArgument("code '" + name +
                                     "' re-added with a different parent");
    }
    return it->second;
  }
  const CodeId id = static_cast<CodeId>(names_.size());
  names_.push_back(name);
  parents_.push_back(parent);
  children_.emplace_back();
  children_[parent].push_back(id);
  by_name_.emplace(name, id);
  finalized_ = false;
  return id;
}

std::optional<CodeId> CodeList::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Status CodeList::Finalize() {
  const std::size_t n = names_.size();
  levels_.assign(n, 0);
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  max_level_ = 0;

  // Iterative DFS from the root assigning Euler-tour intervals. Since Add()
  // only accepts existing parents, the structure is guaranteed acyclic and
  // single-rooted; the visit count check below is a defensive invariant.
  uint32_t clock = 0;
  std::size_t visited = 0;
  // Stack of (node, next-child-index).
  std::vector<std::pair<CodeId, std::size_t>> stack;
  stack.emplace_back(0, 0);
  tin_[0] = clock++;
  ++visited;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < children_[node].size()) {
      const CodeId child = children_[node][next++];
      levels_[child] = levels_[node] + 1;
      if (levels_[child] > max_level_) max_level_ = levels_[child];
      tin_[child] = clock++;
      ++visited;
      stack.emplace_back(child, 0);
    } else {
      tout_[node] = clock++;
      stack.pop_back();
    }
  }
  if (visited != n) {
    return Status::Internal("code list hierarchy is not a single tree");
  }
  finalized_ = true;
  return Status::OK();
}

std::vector<CodeId> CodeList::AncestorsOrSelf(CodeId c) const {
  std::vector<CodeId> chain;
  for (CodeId cur = c; cur != kNoCode; cur = parents_[cur]) {
    chain.push_back(cur);
  }
  return chain;
}

}  // namespace hierarchy
}  // namespace rdfcube
