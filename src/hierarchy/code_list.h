// Hierarchical code lists (paper Def. 2): each dimension draws its values
// from a coded list with a tree hierarchy rooted at an ALL concept.

#ifndef RDFCUBE_HIERARCHY_CODE_LIST_H_
#define RDFCUBE_HIERARCHY_CODE_LIST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace rdfcube {
namespace hierarchy {

/// Dense identifier of a code within one CodeList.
using CodeId = uint32_t;

/// Sentinel for "no code".
inline constexpr CodeId kNoCode = UINT32_MAX;

/// \brief One dimension's hierarchical code list.
///
/// Codes are added with an optional parent, then Finalize() validates the
/// structure (single root, no cycles) and computes for every code:
///  * its level (root = 0),
///  * Euler-tour interval labels, making IsAncestorOrSelf an O(1) interval
///    test — this is the `levels` hash table plus `hierarchy.isParent` of the
///    paper's Algorithm 4, with the constant-time check the paper requires.
///
/// Ancestry is reflexive (`c ≻ c`), matching Def. 2.
class CodeList {
 public:
  /// Creates a code list whose root concept carries the given name
  /// (typically an "ALL" IRI). The root has level 0 and id 0.
  explicit CodeList(std::string root_name);

  /// Adds a code under `parent` (defaults to the root). Returns the new id,
  /// or the existing id if `name` was already added (the parent must then
  /// match, else InvalidArgument).
  [[nodiscard]] Result<CodeId> Add(const std::string& name, CodeId parent = 0);

  /// Looks up a code by name.
  std::optional<CodeId> Find(const std::string& name) const;

  /// Finishes construction: computes levels and interval labels.
  /// Must be called before the query methods below. Idempotent; adding more
  /// codes after Finalize() requires calling it again.
  [[nodiscard]] Status Finalize();

  /// True iff `a` is an ancestor of `b` or a == b (the paper's `a ≻ b`).
  /// Precondition: Finalize() succeeded.
  bool IsAncestorOrSelf(CodeId a, CodeId b) const {
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  /// True iff `a` is a strict ancestor of `b`.
  bool IsStrictAncestor(CodeId a, CodeId b) const {
    return a != b && IsAncestorOrSelf(a, b);
  }

  CodeId root() const { return 0; }
  const std::string& name(CodeId c) const { return names_[c]; }
  CodeId parent(CodeId c) const { return parents_[c]; }

  /// Depth of `c`; the root is level 0. Precondition: finalized.
  uint32_t level(CodeId c) const { return levels_[c]; }

  /// Deepest level present. Precondition: finalized.
  uint32_t max_level() const { return max_level_; }

  std::size_t size() const { return names_.size(); }
  bool finalized() const { return finalized_; }

  /// Chain of ancestors from `c` up to and including the root (c first).
  std::vector<CodeId> AncestorsOrSelf(CodeId c) const;

  /// Direct children of `c`. Precondition: finalized.
  const std::vector<CodeId>& children(CodeId c) const { return children_[c]; }

 private:
  std::vector<std::string> names_;
  std::vector<CodeId> parents_;           // parents_[0] == kNoCode
  std::vector<std::vector<CodeId>> children_;
  std::unordered_map<std::string, CodeId> by_name_;

  bool finalized_ = false;
  std::vector<uint32_t> levels_;
  std::vector<uint32_t> tin_, tout_;  // Euler-tour interval labels
  uint32_t max_level_ = 0;
};

}  // namespace hierarchy
}  // namespace rdfcube

#endif  // RDFCUBE_HIERARCHY_CODE_LIST_H_
