#include "hierarchy/skos_loader.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/vocab.h"

namespace rdfcube {
namespace hierarchy {

using rdf::Term;
using rdf::TermId;
using rdf::kNoTerm;

Result<CodeList> LoadCodeListFromSkos(const rdf::TripleStore& store,
                                      const std::string& scheme_iri) {
  const rdf::Dictionary& dict = store.dictionary();
  auto scheme = dict.Find(Term::Iri(scheme_iri));
  if (!scheme.has_value()) {
    return Status::NotFound("concept scheme not in graph: " + scheme_iri);
  }
  auto in_scheme = dict.Find(Term::Iri(std::string(rdf::vocab::kSkosInScheme)));
  if (!in_scheme.has_value()) {
    return Status::NotFound("graph has no skos:inScheme triples");
  }
  const std::vector<TermId> members = store.SubjectsOf(*in_scheme, *scheme);
  if (members.empty()) {
    return Status::NotFound("concept scheme has no members: " + scheme_iri);
  }
  std::unordered_set<TermId> member_set(members.begin(), members.end());

  // Resolve each member's broader parent (must be unique and in-scheme).
  auto broader_opt = dict.Find(Term::Iri(std::string(rdf::vocab::kSkosBroader)));
  std::unordered_map<TermId, TermId> parent_of;  // member -> parent (or absent)
  std::vector<TermId> tops;
  for (TermId m : members) {
    TermId parent = kNoTerm;
    if (broader_opt.has_value()) {
      const std::vector<TermId> parents = store.ObjectsOf(m, *broader_opt);
      if (parents.size() > 1) {
        return Status::ParseError("concept has multiple skos:broader parents: " +
                                  dict.Value(m));
      }
      if (parents.size() == 1) {
        if (!member_set.count(parents[0])) {
          return Status::ParseError("skos:broader target outside scheme: " +
                                    dict.Value(parents[0]));
        }
        parent = parents[0];
      }
    }
    if (parent == kNoTerm) {
      tops.push_back(m);
    } else {
      parent_of.emplace(m, parent);
    }
  }
  if (tops.empty()) {
    return Status::ParseError("concept scheme has no top concept (cycle?): " +
                              scheme_iri);
  }

  // Choose or synthesize the root.
  const bool single_top = tops.size() == 1;
  CodeList list(single_top ? dict.Value(tops[0]) : scheme_iri + "/ALL");

  // Topological insertion: repeatedly add members whose parent is placed.
  std::unordered_map<TermId, CodeId> placed;
  if (single_top) {
    placed.emplace(tops[0], list.root());
  } else {
    for (TermId t : tops) {
      RDFCUBE_ASSIGN_OR_RETURN(CodeId id,
                               list.Add(dict.Value(t), list.root()));
      placed.emplace(t, id);
    }
  }
  std::vector<TermId> pending;
  for (const auto& [child, parent] : parent_of) {
    (void)parent;
    pending.push_back(child);
  }
  while (!pending.empty()) {
    std::vector<TermId> next;
    bool progressed = false;
    for (TermId m : pending) {
      auto it = placed.find(parent_of.at(m));
      if (it == placed.end()) {
        next.push_back(m);
        continue;
      }
      RDFCUBE_ASSIGN_OR_RETURN(CodeId id,
                               list.Add(dict.Value(m), it->second));
      placed.emplace(m, id);
      progressed = true;
    }
    if (!progressed) {
      return Status::ParseError("skos:broader cycle detected in scheme: " +
                                scheme_iri);
    }
    pending.swap(next);
  }
  RDFCUBE_RETURN_IF_ERROR(list.Finalize());
  return list;
}

}  // namespace hierarchy
}  // namespace rdfcube
