// Builds CodeLists from SKOS concept schemes in an RDF graph.

#ifndef RDFCUBE_HIERARCHY_SKOS_LOADER_H_
#define RDFCUBE_HIERARCHY_SKOS_LOADER_H_

#include <string>

#include "hierarchy/code_list.h"
#include "rdf/triple_store.h"
#include "base/result.h"

namespace rdfcube {
namespace hierarchy {

/// \brief Extracts the concept scheme `scheme_iri` from `store` as a CodeList.
///
/// Members are subjects of `skos:inScheme <scheme>`; parent links come from
/// `skos:broader` (child -> parent). If the scheme has exactly one top
/// concept (a member with no in-scheme broader), that concept becomes the
/// root (the paper's c_jroot, e.g. a "Total"/"World" code); otherwise a
/// synthetic root named `<scheme_iri>/ALL` is created above the top concepts.
///
/// Fails with ParseError on broader-cycles, multi-parent concepts, or broader
/// targets outside the scheme; the returned list is finalized.
[[nodiscard]] Result<CodeList> LoadCodeListFromSkos(const rdf::TripleStore& store,
                                      const std::string& scheme_iri);

}  // namespace hierarchy
}  // namespace rdfcube

#endif  // RDFCUBE_HIERARCHY_SKOS_LOADER_H_
