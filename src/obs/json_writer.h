// rdfcube:internal — shared JSON-emission helpers for the obs module.
// Hand-rolled on purpose: the repo has no JSON dependency and the obs layer
// depends on nothing above src/base.

#ifndef RDFCUBE_OBS_JSON_WRITER_H_
#define RDFCUBE_OBS_JSON_WRITER_H_

#include <cstdio>
#include <string>

namespace rdfcube {
namespace obs {

/// Appends `value` to `*out` as a JSON number (shortest %g form that still
/// round-trips timing-resolution values).
inline void AppendJsonDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out->append(buf);
}

/// Appends `s` to `*out` as a quoted, escaped JSON string.
inline void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace obs
}  // namespace rdfcube

#endif  // RDFCUBE_OBS_JSON_WRITER_H_
