#include "obs/log.h"

#include <cstdio>
#include <string>

#include "obs/json_writer.h"

namespace rdfcube {
namespace obs {

namespace {

// Terminal sink: the one place in src/ that may touch stderr directly.
class StderrSink final : public LogSink {
 public:
  void Write(const std::string& line) override {
    // The logging subsystem's default sink is the sole sanctioned stderr
    // writer; everything else routes through it.
    std::fputs(line.c_str(), stderr);  // lint:allow(no-raw-stderr)
  }
};

LogSink& DefaultStderrSink() {
  static StderrSink sink;
  return sink;
}

// True when a field value reads unambiguously without quotes in text mode.
bool BareToken(const std::string& value) {
  if (value.empty()) return false;
  for (char c : value) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == ':' || c == '+' || c == '-' || c == '/';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

LogField Field(std::string key, std::string value) {
  return LogField{std::move(key), std::move(value)};
}

LogField Field(std::string key, const char* value) {
  return LogField{std::move(key), std::string(value)};
}

LogField Field(std::string key, uint64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}

LogField Field(std::string key, int64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}

LogField Field(std::string key, double value) {
  std::string text;
  AppendJsonDouble(&text, value);
  return LogField{std::move(key), std::move(text)};
}

Logger& Logger::Global() {
  static Logger logger;
  return logger;
}

void Logger::SetSink(LogSink* sink) {
  MutexLock lock(&mu_);
  sink_ = sink;
}

void Logger::SetMinLevel(LogLevel level) {
  min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() const {
  return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
}

void Logger::SetJsonLines(bool json_lines) {
  MutexLock lock(&mu_);
  json_lines_ = json_lines;
}

void Logger::SetRateLimit(uint64_t max_lines_per_second) {
  MutexLock lock(&mu_);
  rate_limit_ = max_lines_per_second;
}

void Logger::SetIncludeUptime(bool include_uptime) {
  MutexLock lock(&mu_);
  include_uptime_ = include_uptime;
}

void Logger::Log(LogLevel level, std::string_view module,
                 std::string_view message,
                 const std::vector<LogField>& fields) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  const double now = clock_.ElapsedSeconds();
  // Copy-then-release (callback-under-lock, DESIGN.md §5i): format and
  // snapshot the sink under mu_, but invoke the virtual Write outside it,
  // so a slow or re-entrant sink can never stall or deadlock concurrent
  // loggers. Consequence: two racing Log calls may interleave their Write
  // calls — sinks own their thread-safety (see the LogSink contract).
  std::string summary_line, line;
  LogSink* sink = nullptr;
  {
    MutexLock lock(&mu_);
    const uint64_t window = static_cast<uint64_t>(now);
    if (window != window_index_) {
      if (window_suppressed_ > 0) {
        summary_line =
            FormatLine(LogLevel::kWarn, "obs", "rate limit engaged",
                       {Field("suppressed_lines", window_suppressed_)}, now);
      }
      window_index_ = window;
      window_emitted_ = 0;
      window_suppressed_ = 0;
    }
    if (rate_limit_ > 0 && window_emitted_ >= rate_limit_) {
      ++window_suppressed_;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ++window_emitted_;
    line = FormatLine(level, module, message, fields, now);
    sink = sink_ != nullptr ? sink_ : &DefaultStderrSink();
  }
  if (!summary_line.empty()) {
    sink->Write(summary_line);
    emitted_.fetch_add(1, std::memory_order_relaxed);
  }
  sink->Write(line);
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

std::string Logger::FormatLine(LogLevel level, std::string_view module,
                               std::string_view message,
                               const std::vector<LogField>& fields,
                               double uptime_seconds) {
  std::string line;
  line.reserve(64 + message.size());
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", uptime_seconds);
  if (json_lines_) {
    // Reserved top-level keys: ts, level, module, msg. Field keys are
    // flattened alongside them; callers must not reuse the reserved names.
    line.push_back('{');
    if (include_uptime_) {
      line.append("\"ts\":");
      line.append(uptime);
      line.push_back(',');
    }
    line.append("\"level\":\"");
    line.append(LogLevelName(level));
    line.append("\",\"module\":");
    AppendJsonString(&line, std::string(module));
    line.append(",\"msg\":");
    AppendJsonString(&line, std::string(message));
    for (const LogField& field : fields) {
      line.push_back(',');
      AppendJsonString(&line, field.key);
      line.push_back(':');
      AppendJsonString(&line, field.value);
    }
    line.append("}\n");
  } else {
    if (include_uptime_) {
      line.append("ts=");
      line.append(uptime);
      line.push_back(' ');
    }
    line.append("level=");
    line.append(LogLevelName(level));
    line.append(" module=");
    line.append(module);
    line.append(" msg=");
    AppendJsonString(&line, std::string(message));
    for (const LogField& field : fields) {
      line.push_back(' ');
      line.append(field.key);
      line.push_back('=');
      if (BareToken(field.value)) {
        line.append(field.value);
      } else {
        AppendJsonString(&line, field.value);
      }
    }
    line.push_back('\n');
  }
  return line;
}

uint64_t Logger::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

uint64_t Logger::emitted() const {
  return emitted_.load(std::memory_order_relaxed);
}

void LogDebug(std::string_view module, std::string_view message,
              const std::vector<LogField>& fields) {
  Logger::Global().Log(LogLevel::kDebug, module, message, fields);
}

void LogInfo(std::string_view module, std::string_view message,
             const std::vector<LogField>& fields) {
  Logger::Global().Log(LogLevel::kInfo, module, message, fields);
}

void LogWarn(std::string_view module, std::string_view message,
             const std::vector<LogField>& fields) {
  Logger::Global().Log(LogLevel::kWarn, module, message, fields);
}

void LogError(std::string_view module, std::string_view message,
              const std::vector<LogField>& fields) {
  Logger::Global().Log(LogLevel::kError, module, message, fields);
}

}  // namespace obs
}  // namespace rdfcube
