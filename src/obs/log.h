// Structured, leveled, rate-limited logging (DESIGN.md §5d).
//
// Every diagnostic line the library or the daemons emit goes through a
// Logger: raw fprintf(stderr, ...) in src/ and tools/rdfcube_serverd is
// forbidden by the `no-raw-stderr` lint check. A Logger formats one line per
// event — either `key=value` text or a JSON object per line — through an
// injectable LogSink (stderr by default), so tests capture exact output and
// daemons can switch to machine-readable logs with a flag. A per-second
// rate limit bounds log volume under error storms; suppressed lines are
// counted and summarized when the window rolls over.

#ifndef RDFCUBE_OBS_LOG_H_
#define RDFCUBE_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/stopwatch.h"
#include "base/thread_annotations.h"

namespace rdfcube {
namespace obs {

/// \brief Severity of a log line, ordered: Debug < Info < Warn < Error.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lower-case level name ("debug", "info", "warn", "error").
[[nodiscard]] const char* LogLevelName(LogLevel level);

/// \brief One pre-stringified key=value attachment on a log line.
///
/// Build with the Field() overloads so numeric formatting is uniform.
struct LogField {
  std::string key;
  std::string value;
};

/// String field.
[[nodiscard]] LogField Field(std::string key, std::string value);
/// C-string field.
[[nodiscard]] LogField Field(std::string key, const char* value);
/// Unsigned integer field.
[[nodiscard]] LogField Field(std::string key, uint64_t value);
/// Signed integer field.
[[nodiscard]] LogField Field(std::string key, int64_t value);
/// Double field (formatted %.12g, same as the JSON exports).
[[nodiscard]] LogField Field(std::string key, double value);

/// \brief Destination for formatted log lines (newline included).
///
/// The owning Logger formats under its mutex but calls Write() with no lock
/// held (callback-under-lock, DESIGN.md §5i): a virtual sink must never run
/// under mu_, or a slow/re-entrant implementation could stall or deadlock
/// every concurrent logger. Consequently Write() may be invoked from several
/// threads at once — implementations own their thread-safety. The default
/// stderr sink relies on stdio's per-call locking; single-threaded test
/// sinks need nothing.
class LogSink {
 public:
  virtual ~LogSink() = default;

  /// Consumes one fully formatted line (terminated with '\n').
  virtual void Write(const std::string& line) = 0;
};

/// \brief Thread-safe structured logger.
///
/// Global() is the process-wide instance every src/ and daemon call site
/// uses; tests construct their own Logger and inject a capturing LogSink.
class Logger {
 public:
  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// The process-wide logger used by LogInfo()/LogError()/... helpers.
  static Logger& Global();

  /// Redirects output; nullptr restores the default stderr sink. The sink
  /// must outlive the logger (or the next SetSink call).
  void SetSink(LogSink* sink);

  /// Drops lines below `level` before formatting. Default: Info.
  void SetMinLevel(LogLevel level);

  /// Current minimum level.
  [[nodiscard]] LogLevel min_level() const;

  /// Switches between `key=value` text lines (false, default) and one JSON
  /// object per line (true).
  void SetJsonLines(bool json_lines);

  /// Caps emitted lines per one-second window; excess lines are dropped and
  /// counted, with a summary line when the window rolls. 0 = unlimited.
  /// Default: 256.
  void SetRateLimit(uint64_t max_lines_per_second);

  /// Includes an `ts=<seconds-since-logger-construction>` field on every
  /// line (default true). Tests turn this off for exact-match assertions.
  void SetIncludeUptime(bool include_uptime);

  /// Formats and emits one line if `level` passes the minimum level and the
  /// rate limit admits it.
  void Log(LogLevel level, std::string_view module, std::string_view message,
           const std::vector<LogField>& fields = {});

  /// Lines dropped by the rate limit since construction.
  [[nodiscard]] uint64_t dropped() const;

  /// Lines actually written to the sink since construction.
  [[nodiscard]] uint64_t emitted() const;

 private:
  /// Formats one line (text or JSON per json_lines_). Reads the format
  /// settings under mu_; the caller writes the result to the sink *after*
  /// releasing the lock.
  std::string FormatLine(LogLevel level, std::string_view module,
                         std::string_view message,
                         const std::vector<LogField>& fields,
                         double uptime_seconds) RDFCUBE_REQUIRES(mu_);

  Stopwatch clock_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> emitted_{0};

  mutable Mutex mu_;
  LogSink* sink_ RDFCUBE_GUARDED_BY(mu_) = nullptr;  // nullptr = stderr
  bool json_lines_ RDFCUBE_GUARDED_BY(mu_) = false;
  bool include_uptime_ RDFCUBE_GUARDED_BY(mu_) = true;
  uint64_t rate_limit_ RDFCUBE_GUARDED_BY(mu_) = 256;
  uint64_t window_index_ RDFCUBE_GUARDED_BY(mu_) = 0;
  uint64_t window_emitted_ RDFCUBE_GUARDED_BY(mu_) = 0;
  uint64_t window_suppressed_ RDFCUBE_GUARDED_BY(mu_) = 0;
};

/// Global().Log(kDebug, ...) shorthand.
void LogDebug(std::string_view module, std::string_view message,
              const std::vector<LogField>& fields = {});
/// Global().Log(kInfo, ...) shorthand.
void LogInfo(std::string_view module, std::string_view message,
             const std::vector<LogField>& fields = {});
/// Global().Log(kWarn, ...) shorthand.
void LogWarn(std::string_view module, std::string_view message,
             const std::vector<LogField>& fields = {});
/// Global().Log(kError, ...) shorthand.
void LogError(std::string_view module, std::string_view message,
              const std::vector<LogField>& fields = {});

}  // namespace obs
}  // namespace rdfcube

#endif  // RDFCUBE_OBS_LOG_H_
