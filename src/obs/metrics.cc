#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/json_writer.h"
#include "obs/log.h"

namespace rdfcube {
namespace obs {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = (c >= '0' && c <= '9');
    if (i == 0 ? !(alpha || c == '_') : !(alpha || digit || c == '_')) {
      return false;
    }
  }
  return true;
}

bool ValidHistogramBounds(const std::vector<double>& bounds) {
  if (bounds.empty()) return false;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i])) return false;
    if (i > 0 && bounds[i] <= bounds[i - 1]) return false;
  }
  return true;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  const std::size_t idx =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                                value) -
                               bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  double old_sum;
  uint64_t new_bits;
  do {
    std::memcpy(&old_sum, &old_bits, sizeof(old_sum));
    const double new_sum = old_sum + value;
    std::memcpy(&new_bits, &new_sum, sizeof(new_bits));
  } while (!sum_bits_.compare_exchange_weak(old_bits, new_bits,
                                            std::memory_order_relaxed));
}

double Histogram::sum() const {
  const uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  double sum;
  std::memcpy(&sum, &bits, sizeof(sum));
  return sum;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Result<Counter*> MetricsRegistry::GetCounter(const std::string& name,
                                             const std::string& help) {
  if (!ValidMetricName(name)) {
    return Status::InvalidArgument("bad metric name: " + name);
  }
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != Kind::kCounter) {
      return Status::AlreadyExists("metric registered with another kind: " +
                                   name);
    }
    return it->second.counter.get();
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.help = help;
  entry.counter = std::unique_ptr<Counter>(new Counter());
  Counter* out = entry.counter.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Result<Gauge*> MetricsRegistry::GetGauge(const std::string& name,
                                         const std::string& help) {
  if (!ValidMetricName(name)) {
    return Status::InvalidArgument("bad metric name: " + name);
  }
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != Kind::kGauge) {
      return Status::AlreadyExists("metric registered with another kind: " +
                                   name);
    }
    return it->second.gauge.get();
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.help = help;
  entry.gauge = std::unique_ptr<Gauge>(new Gauge());
  Gauge* out = entry.gauge.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

Result<Histogram*> MetricsRegistry::GetHistogram(const std::string& name,
                                                 const std::string& help,
                                                 std::vector<double> bounds) {
  if (!ValidMetricName(name)) {
    return Status::InvalidArgument("bad metric name: " + name);
  }
  MutexLock lock(&mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != Kind::kHistogram) {
      return Status::AlreadyExists("metric registered with another kind: " +
                                   name);
    }
    return it->second.histogram.get();  // first registration's bounds win
  }
  if (!ValidHistogramBounds(bounds)) {
    return Status::InvalidArgument(
        "histogram bounds must be non-empty, finite, strictly ascending: " +
        name);
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.help = help;
  entry.histogram =
      std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  Histogram* out = entry.histogram.get();
  metrics_.emplace(name, std::move(entry));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  for (const auto& [name, entry] : metrics_) {  // std::map: sorted by name
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.help, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.help, entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        HistogramSample sample;
        sample.name = name;
        sample.help = entry.help;
        sample.bounds = entry.histogram->bounds();
        sample.buckets = entry.histogram->bucket_counts();
        sample.count = entry.histogram->count();
        sample.sum = entry.histogram->sum();
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->Reset(); break;
      case Kind::kGauge: entry.gauge->Reset(); break;
      case Kind::kHistogram: entry.histogram->Reset(); break;
    }
  }
}

namespace {

[[noreturn]] void MetricAbort(const char* what, const std::string& name) {
  LogError("obs", what, {Field("metric", name)});
  std::abort();
}

}  // namespace

Counter& DefaultCounter(const std::string& name, const std::string& help) {
  Result<Counter*> result = MetricsRegistry::Global().GetCounter(name, help);
  if (!result.ok()) MetricAbort("counter registration failed", name);
  return **result;
}

Gauge& DefaultGauge(const std::string& name, const std::string& help) {
  Result<Gauge*> result = MetricsRegistry::Global().GetGauge(name, help);
  if (!result.ok()) MetricAbort("gauge registration failed", name);
  return **result;
}

Histogram& DefaultHistogram(const std::string& name, const std::string& help,
                            std::vector<double> bounds) {
  Result<Histogram*> result =
      MetricsRegistry::Global().GetHistogram(name, help, std::move(bounds));
  if (!result.ok()) MetricAbort("histogram registration failed", name);
  return **result;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count > 0 ? count : 0));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, snapshot.counters[i].name);
    out.push_back(':');
    out.append(std::to_string(snapshot.counters[i].value));
  }
  out.append("},\"gauges\":{");
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, snapshot.gauges[i].name);
    out.push_back(':');
    out.append(std::to_string(snapshot.gauges[i].value));
  }
  out.append("},\"histograms\":{");
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, h.name);
    out.append(":{\"count\":");
    out.append(std::to_string(h.count));
    out.append(",\"sum\":");
    AppendJsonDouble(&out, h.sum);
    out.append(",\"bounds\":[");
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) out.push_back(',');
      AppendJsonDouble(&out, h.bounds[j]);
    }
    out.append("],\"buckets\":[");
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) out.push_back(',');
      out.append(std::to_string(h.buckets[j]));
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

namespace {

// Escapes HELP text per the Prometheus text exposition format: backslash
// and newline only (double quotes are legal in HELP text).
std::string EscapePrometheusHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Escapes a label value per the exposition format: backslash, newline, and
// double quote. Today the only label is the numeric `le`, which never needs
// escaping — routed through anyway so future labels can't regress.
std::string EscapePrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '"': out.append("\\\""); break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    out.append("# HELP " + c.name + " " + EscapePrometheusHelp(c.help) + "\n");
    out.append("# TYPE " + c.name + " counter\n");
    out.append(c.name + " " + std::to_string(c.value) + "\n");
  }
  for (const GaugeSample& g : snapshot.gauges) {
    out.append("# HELP " + g.name + " " + EscapePrometheusHelp(g.help) + "\n");
    out.append("# TYPE " + g.name + " gauge\n");
    out.append(g.name + " " + std::to_string(g.value) + "\n");
  }
  for (const HistogramSample& h : snapshot.histograms) {
    out.append("# HELP " + h.name + " " + EscapePrometheusHelp(h.help) + "\n");
    out.append("# TYPE " + h.name + " histogram\n");
    uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      std::string le;
      AppendJsonDouble(&le, h.bounds[i]);
      out.append(h.name + "_bucket{le=\"" + EscapePrometheusLabelValue(le) +
                 "\"} " + std::to_string(cumulative) + "\n");
    }
    cumulative += h.buckets.empty() ? 0 : h.buckets.back();
    out.append(h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
               "\n");
    std::string sum;
    AppendJsonDouble(&sum, h.sum);
    out.append(h.name + "_sum " + sum + "\n");
    out.append(h.name + "_count " + std::to_string(h.count) + "\n");
  }
  return out;
}

}  // namespace obs
}  // namespace rdfcube
