// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path updates (Counter::Increment, Gauge::Set, Histogram::Observe) are
// single relaxed atomic operations — safe to call from any thread, never
// allocating, never locking. Registration (MetricsRegistry::GetCounter etc.)
// takes a mutex and is meant for cold paths; instrumentation sites cache the
// returned pointer in a function-local static.
//
// Metrics are always compiled in (no macro gating): an un-incremented counter
// costs one registry entry, an incremented one costs one relaxed atomic add.
// Naming scheme: rdfcube_<module>_<name>_<unit> (see DESIGN.md §Observability).

#ifndef RDFCUBE_OBS_METRICS_H_
#define RDFCUBE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace rdfcube {
namespace obs {

/// \brief Monotonically increasing event count (lock-free).
class Counter {
 public:
  /// Adds `delta` (default 1). Relaxed atomic; callable from any thread.
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current total.
  [[nodiscard]] uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Zeroes the counter (tests / bench harness resets).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed level (queue depth, workers alive, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Decrement(int64_t delta = 1) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }

  /// Current level.
  [[nodiscard]] int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Zeroes the gauge.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram of double-valued observations.
///
/// Buckets are defined by strictly ascending upper bounds; an implicit
/// overflow bucket (+Inf) catches everything above the last bound. Observe()
/// is lock-free: one atomic add on the bucket, one on the count, and a CAS
/// loop accumulating the sum (portable double accumulation without
/// std::atomic<double>::fetch_add).
class Histogram {
 public:
  /// Records one observation.
  void Observe(double value);

  /// Number of observations recorded.
  [[nodiscard]] uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all observed values.
  [[nodiscard]] double sum() const;

  /// Ascending upper bounds (excluding the implicit +Inf bucket).
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; size == bounds().size() + 1, the
  /// last entry being the +Inf overflow bucket.
  [[nodiscard]] std::vector<uint64_t> bucket_counts() const;

  /// Zeroes all buckets, the count, and the sum.
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  // bit pattern of a double
};

/// \brief Point-in-time copy of one counter.
struct CounterSample {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

/// \brief Point-in-time copy of one gauge.
struct GaugeSample {
  std::string name;
  std::string help;
  int64_t value = 0;
};

/// \brief Point-in-time copy of one histogram.
struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> bounds;     ///< ascending upper bounds (no +Inf)
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0.0;
};

/// \brief Consistent-enough snapshot of every registered metric, sorted by
/// name within each kind. ("Consistent-enough": each metric is read
/// atomically, but the snapshot is not a global atomic cut.)
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// \brief Process-wide registry mapping names to metric instances.
///
/// Returned pointers stay valid for the process lifetime (metrics are never
/// unregistered; Reset zeroes values but keeps registrations).
class MetricsRegistry {
 public:
  /// The process-wide registry used by all rdfcube instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, registering it on first use.
  /// AlreadyExists if the name is taken by a different metric kind;
  /// InvalidArgument if the name is not [A-Za-z_][A-Za-z0-9_]*.
  [[nodiscard]] Result<Counter*> GetCounter(const std::string& name,
                                            const std::string& help);

  /// Counterpart of GetCounter for gauges.
  [[nodiscard]] Result<Gauge*> GetGauge(const std::string& name,
                                        const std::string& help);

  /// Counterpart of GetCounter for histograms. `bounds` must be non-empty,
  /// finite, and strictly ascending (InvalidArgument otherwise). On
  /// re-registration the first call's bounds win; later `bounds` are ignored.
  [[nodiscard]] Result<Histogram*> GetHistogram(const std::string& name,
                                                const std::string& help,
                                                std::vector<double> bounds);

  /// Copies every registered metric's current value.
  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive). Used by the
  /// bench harness so BENCH_*.json only reflects the run at hand.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> metrics_ RDFCUBE_GUARDED_BY(mu_);
};

/// Registers (on first use) and returns the named counter in the global
/// registry. Aborts on kind collision or malformed name — instrumentation
/// sites are code, not input, so a failure is a programming error. Cache the
/// reference in a function-local static at the call site.
[[nodiscard]] Counter& DefaultCounter(const std::string& name,
                                      const std::string& help);

/// Gauge counterpart of DefaultCounter.
[[nodiscard]] Gauge& DefaultGauge(const std::string& name,
                                  const std::string& help);

/// Histogram counterpart of DefaultCounter.
[[nodiscard]] Histogram& DefaultHistogram(const std::string& name,
                                          const std::string& help,
                                          std::vector<double> bounds);

/// `count` bucket bounds starting at `start`, each `factor` times the last
/// (Prometheus-style exponential buckets). start > 0, factor > 1, count >= 1.
[[nodiscard]] std::vector<double> ExponentialBuckets(double start,
                                                     double factor, int count);

/// Serializes a snapshot as a JSON object:
/// {"counters":{name:value,...},"gauges":{...},
///  "histograms":{name:{"count":..,"sum":..,"bounds":[..],"buckets":[..]}}}.
[[nodiscard]] std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Serializes a snapshot in the Prometheus text exposition format (one
/// "# HELP"/"# TYPE" pair per metric, cumulative "le" buckets for
/// histograms).
[[nodiscard]] std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace rdfcube

#endif  // RDFCUBE_OBS_METRICS_H_
