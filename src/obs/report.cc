#include "obs/report.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace rdfcube {
namespace obs {

void RunReport::AddMeta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

void RunReport::AddStat(const std::string& key, double value) {
  stats_.emplace_back(key, value);
}

void RunReport::CaptureMetrics() {
  metrics_ = MetricsRegistry::Global().Snapshot();
}

void RunReport::CapturePhases(uint64_t root_span_id) {
  const std::vector<SpanEvent> events = TraceCollector::Global().Snapshot();
  span_rollup_ = RollupSpans(events);
  if (root_span_id == 0) {
    phases_ = span_rollup_;
    return;
  }
  std::vector<SpanEvent> children;
  const SpanEvent* root = nullptr;
  for (const SpanEvent& e : events) {
    if (e.span_id == root_span_id) root = &e;
    if (e.parent_id == root_span_id) children.push_back(e);
  }
  phases_ = RollupSpans(children);
  if (root != nullptr) {
    wall_seconds_ = static_cast<double>(root->duration_us) * 1e-6;
    SpanRollup harness;
    harness.name = "(harness)";
    harness.count = 1;
    harness.total_seconds = static_cast<double>(root->self_us) * 1e-6;
    harness.self_seconds = harness.total_seconds;
    phases_.push_back(harness);
  }
}

namespace {

void AppendRollups(std::string* out, const std::vector<SpanRollup>& rollups) {
  out->push_back('[');
  for (std::size_t i = 0; i < rollups.size(); ++i) {
    const SpanRollup& r = rollups[i];
    if (i > 0) out->push_back(',');
    out->append("{\"name\":");
    AppendJsonString(out, r.name);
    out->append(",\"count\":");
    out->append(std::to_string(r.count));
    out->append(",\"total_seconds\":");
    AppendJsonDouble(out, r.total_seconds);
    out->append(",\"self_seconds\":");
    AppendJsonDouble(out, r.self_seconds);
    out->push_back('}');
  }
  out->push_back(']');
}

}  // namespace

std::string RunReport::ToJson() const {
  std::string out = "{\"name\":";
  AppendJsonString(&out, name_);
  out.append(",\"schema_version\":1,\"wall_seconds\":");
  AppendJsonDouble(&out, wall_seconds_);
  out.append(",\"meta\":{");
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, meta_[i].first);
    out.push_back(':');
    AppendJsonString(&out, meta_[i].second);
  }
  out.append("},\"stats\":{");
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, stats_[i].first);
    out.push_back(':');
    AppendJsonDouble(&out, stats_[i].second);
  }
  out.append("},\"phases\":");
  AppendRollups(&out, phases_);
  out.append(",\"span_rollup\":");
  AppendRollups(&out, span_rollup_);
  out.append(",\"metrics\":");
  out.append(MetricsToJson(metrics_));
  out.push_back('}');
  return out;
}

std::string RunReport::ToText() const {
  std::string out = "run report: " + name_ + "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  wall clock: %.6f s\n", wall_seconds_);
  out.append(line);
  for (const auto& [key, value] : meta_) {
    out.append("  meta " + key + ": " + value + "\n");
  }
  for (const auto& [key, value] : stats_) {
    std::snprintf(line, sizeof(line), "  stat %s: %g\n", key.c_str(), value);
    out.append(line);
  }
  if (!phases_.empty()) {
    out.append("  phases:\n");
    for (const SpanRollup& r : phases_) {
      std::snprintf(line, sizeof(line),
                    "    %-40s  count %6llu  total %10.6f s  self %10.6f s\n",
                    r.name.c_str(), static_cast<unsigned long long>(r.count),
                    r.total_seconds, r.self_seconds);
      out.append(line);
    }
  }
  std::size_t nonzero_counters = 0;
  for (const CounterSample& c : metrics_.counters) {
    if (c.value != 0) ++nonzero_counters;
  }
  if (nonzero_counters > 0) {
    out.append("  counters:\n");
    for (const CounterSample& c : metrics_.counters) {
      if (c.value == 0) continue;
      std::snprintf(line, sizeof(line), "    %-52s %llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out.append(line);
    }
  }
  for (const HistogramSample& h : metrics_.histograms) {
    if (h.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "  histogram %s: count %llu, mean %g\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  h.sum / static_cast<double>(h.count));
    out.append(line);
  }
  return out;
}

Status WriteRunReportJson(const RunReport& report, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open run report file: " + path);
  }
  const std::string json = report.ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write on run report file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace rdfcube
