// RunReport: one serializable record per run, merging scalar stats, run
// metadata, span roll-ups (phase timings), and a metrics snapshot.
//
// The bench harness writes one of these as BENCH_<name>.json (schema in
// EXPERIMENTS.md); the CLI `stats --report` prints one for an engine run.
// The record is engine-agnostic — core::FillRunReport (core/engine.h)
// flattens an EngineReport into it, keeping the obs module dependency-free.

#ifndef RDFCUBE_OBS_REPORT_H_
#define RDFCUBE_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "base/status.h"

namespace rdfcube {
namespace obs {

/// \brief Serializable record of one run (bench binary, CLI invocation, ...).
class RunReport {
 public:
  /// `name` identifies the run, e.g. "fig5a_complementarity".
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  /// Adds a metadata key/value pair (generator, git rev, mode flags...).
  void AddMeta(const std::string& key, const std::string& value);

  /// Adds a named scalar statistic (counts, ratios, seconds).
  void AddStat(const std::string& key, double value);

  /// Sets the end-to-end wall clock the phases are measured against.
  void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }
  [[nodiscard]] double wall_seconds() const { return wall_seconds_; }

  /// Snapshots the global MetricsRegistry into this report.
  void CaptureMetrics();

  /// Captures span roll-ups from the global TraceCollector.
  ///
  /// With `root_span_id` == 0 every retained span is rolled up into
  /// phases(). With a root id, phases() partitions that root span's wall
  /// clock: the rollup covers only the root's *direct* children plus a
  /// synthetic "(harness)" entry holding the root's self time, so phase
  /// totals sum to the root's duration exactly; the full all-span rollup is
  /// kept separately in span_rollup(). When the root event itself is found,
  /// wall_seconds is set from its duration.
  void CapturePhases(uint64_t root_span_id = 0);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& meta()
      const {
    return meta_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& stats()
      const {
    return stats_;
  }
  /// Top-level phase timings (see CapturePhases).
  [[nodiscard]] const std::vector<SpanRollup>& phases() const {
    return phases_;
  }
  /// Roll-up of every retained span, all depths.
  [[nodiscard]] const std::vector<SpanRollup>& span_rollup() const {
    return span_rollup_;
  }
  [[nodiscard]] const MetricsSnapshot& metrics() const { return metrics_; }

  /// Serializes the report as one JSON object (schema in EXPERIMENTS.md).
  [[nodiscard]] std::string ToJson() const;

  /// Multi-line human-readable rendering (CLI `stats --report`).
  [[nodiscard]] std::string ToText() const;

 private:
  std::string name_;
  double wall_seconds_ = 0.0;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, double>> stats_;
  std::vector<SpanRollup> phases_;
  std::vector<SpanRollup> span_rollup_;
  MetricsSnapshot metrics_;
};

/// Writes `report.ToJson()` to `path` (IOError on failure).
[[nodiscard]] Status WriteRunReportJson(const RunReport& report,
                                        const std::string& path);

}  // namespace obs
}  // namespace rdfcube

#endif  // RDFCUBE_OBS_REPORT_H_
