#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/json_writer.h"

namespace rdfcube {
namespace obs {

/// Per-thread span state. The owning thread is the only writer; the ring is
/// additionally read by Snapshot()/Clear() from other threads, so it sits
/// behind a per-thread mutex that is uncontended in steady state. Lock order:
/// TraceCollector::registry_mu_ is always acquired before `mu` (Enable /
/// Clear / Snapshot walk the registry then lock each thread); the span-end
/// hot path takes `mu` alone, never the registry lock.
struct TraceCollector::ThreadTrace {
  Mutex mu;
  std::vector<SpanEvent> ring RDFCUBE_GUARDED_BY(mu);  // bounded by capacity
  std::size_t capacity RDFCUBE_GUARDED_BY(mu) = 0;
  // Overwrite cursor once the ring is full.
  std::size_t next RDFCUBE_GUARDED_BY(mu) = 0;
  uint64_t dropped RDFCUBE_GUARDED_BY(mu) = 0;

  // Open-span stack and collector-local thread number; touched only by the
  // owning thread (thread confinement, not a lock, is the discipline here).
  struct Frame {
    uint64_t span_id;
    uint64_t child_us;
  };
  std::vector<Frame> stack;
  uint32_t index = 0;
};

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector::ThreadTrace* TraceCollector::GetThreadTrace() {
  thread_local ThreadTrace* cached = nullptr;
  if (cached != nullptr) return cached;
  auto trace = std::make_shared<ThreadTrace>();
  {
    MutexLock lock(&registry_mu_);
    trace->index = static_cast<uint32_t>(threads_.size());
    // The new trace is not yet published, but its guarded fields still get
    // written under its own lock so the annotation holds without exemptions
    // (uncontended: nobody else can reach `trace` yet). Registry lock first,
    // thread lock second — the global acquisition order.
    {
      MutexLock tlock(&trace->mu);
      trace->capacity = ring_capacity_;
    }
    threads_.push_back(trace);
  }
  // The registry's shared_ptr keeps the state alive past thread exit, so the
  // raw cached pointer is safe for the lifetime of the process.
  static thread_local std::shared_ptr<ThreadTrace> owner;
  owner = trace;
  cached = trace.get();
  return cached;
}

void TraceCollector::Enable(std::size_t ring_capacity) {
  MutexLock lock(&registry_mu_);
  ring_capacity_ = ring_capacity;
  for (const auto& t : threads_) {
    MutexLock tlock(&t->mu);
    t->ring.clear();
    t->capacity = ring_capacity;
    t->next = 0;
    t->dropped = 0;
  }
  epoch_.Restart();
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceCollector::Clear() {
  MutexLock lock(&registry_mu_);
  for (const auto& t : threads_) {
    MutexLock tlock(&t->mu);
    t->ring.clear();
    t->next = 0;
    t->dropped = 0;
  }
}

std::vector<SpanEvent> TraceCollector::Snapshot() const {
  std::vector<SpanEvent> events;
  {
    MutexLock lock(&registry_mu_);
    for (const auto& t : threads_) {
      MutexLock tlock(&t->mu);
      events.insert(events.end(), t->ring.begin(), t->ring.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  return events;
}

uint64_t TraceCollector::dropped() const {
  uint64_t total = 0;
  MutexLock lock(&registry_mu_);
  for (const auto& t : threads_) {
    MutexLock tlock(&t->mu);
    total += t->dropped;
  }
  return total;
}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(epoch_.ElapsedMicros());
}

std::string TraceCollector::ChromeTraceJson() const {
  const std::vector<SpanEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, e.name);
    out.append(",\"cat\":\"rdfcube\",\"ph\":\"X\",\"pid\":1,\"tid\":");
    out.append(std::to_string(e.thread_index));
    out.append(",\"ts\":");
    out.append(std::to_string(e.start_us));
    out.append(",\"dur\":");
    out.append(std::to_string(e.duration_us));
    out.append(",\"args\":{\"span_id\":");
    out.append(std::to_string(e.span_id));
    out.append(",\"parent_id\":");
    out.append(std::to_string(e.parent_id));
    out.append("}}");
  }
  out.append("]}");
  return out;
}

TraceSpan::TraceSpan(std::string_view name) {
  TraceCollector& collector = TraceCollector::Global();
  if (!collector.enabled()) return;  // fast path: one relaxed load
  TraceCollector::ThreadTrace* t = collector.GetThreadTrace();
  span_id_ = collector.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  start_us_ = collector.NowMicros();
  name_.assign(name.data(), name.size());
  t->stack.push_back({span_id_, 0});
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (span_id_ == 0) return;
  TraceCollector& collector = TraceCollector::Global();
  TraceCollector::ThreadTrace* t = collector.GetThreadTrace();
  const uint64_t duration_us = static_cast<uint64_t>(watch_.ElapsedMicros());

  SpanEvent event;
  event.name = std::move(name_);
  event.span_id = span_id_;
  event.thread_index = t->index;
  event.start_us = start_us_;
  event.duration_us = duration_us;
  // RAII guarantees the top frame is ours.
  const uint64_t child_us = t->stack.back().child_us;
  t->stack.pop_back();
  event.self_us = duration_us >= child_us ? duration_us - child_us : 0;
  event.depth = static_cast<uint32_t>(t->stack.size());
  if (!t->stack.empty()) {
    event.parent_id = t->stack.back().span_id;
    t->stack.back().child_us += duration_us;
  }

  {
    MutexLock lock(&t->mu);
    if (t->ring.size() < t->capacity) {
      t->ring.push_back(std::move(event));
    } else if (t->capacity > 0) {
      t->ring[t->next] = std::move(event);
      t->next = (t->next + 1) % t->capacity;
      ++t->dropped;
    } else {
      ++t->dropped;
    }
  }
  span_id_ = 0;  // destructor becomes a no-op after an explicit End()
}

std::vector<SpanRollup> RollupSpans(const std::vector<SpanEvent>& events) {
  std::map<std::string, SpanRollup> by_name;
  for (const SpanEvent& e : events) {
    SpanRollup& r = by_name[e.name];
    r.name = e.name;
    ++r.count;
    r.total_seconds += static_cast<double>(e.duration_us) * 1e-6;
    r.self_seconds += static_cast<double>(e.self_us) * 1e-6;
  }
  std::vector<SpanRollup> rollups;
  rollups.reserve(by_name.size());
  for (auto& [name, rollup] : by_name) {
    (void)name;
    rollups.push_back(std::move(rollup));
  }
  std::sort(rollups.begin(), rollups.end(),
            [](const SpanRollup& a, const SpanRollup& b) {
              return a.total_seconds != b.total_seconds
                         ? a.total_seconds > b.total_seconds
                         : a.name < b.name;
            });
  return rollups;
}

}  // namespace obs
}  // namespace rdfcube
