// Phase-scoped tracing: RAII TraceSpan + per-thread ring-buffer collector.
//
// Usage at an instrumentation site:
//
//   {
//     obs::TraceSpan span("masking/fused_pass");
//     ... work ...
//   }  // span records itself on destruction
//
// When the global TraceCollector is disabled (the default) a span costs one
// relaxed atomic load plus one clock read (the clock always runs so
// TraceSpan::ElapsedSeconds() works as a drop-in Stopwatch). When enabled,
// span begin/end touch only thread-local state guarded by a per-thread,
// effectively uncontended mutex; completed spans land in a bounded ring per
// thread (oldest overwritten, drop count kept).
//
// Parent/child nesting is tracked per thread via a span stack; a parent's
// self time is its duration minus its direct children's durations, so for
// any span the direct-child totals plus its self time equal its duration
// exactly. The collector can dump everything as Chrome trace-event JSON
// (load into chrome://tracing or https://ui.perfetto.dev).

#ifndef RDFCUBE_OBS_TRACE_H_
#define RDFCUBE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/stopwatch.h"
#include "base/thread_annotations.h"

namespace rdfcube {
namespace obs {

/// \brief One completed span as recorded by the collector.
struct SpanEvent {
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root (no parent on this thread)
  uint32_t thread_index = 0;  ///< collector-local thread number
  uint32_t depth = 0;         ///< nesting depth on its thread (root = 0)
  uint64_t start_us = 0;      ///< relative to TraceCollector::Enable()
  uint64_t duration_us = 0;
  uint64_t self_us = 0;  ///< duration minus direct children's durations
};

/// \brief Per-name aggregate over a set of SpanEvents.
struct SpanRollup {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double self_seconds = 0.0;
};

/// \brief Process-wide span collector. Disabled by default.
class TraceCollector {
 public:
  /// The process-wide collector used by all TraceSpans.
  static TraceCollector& Global();

  TraceCollector() = default;
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Clears prior data, restarts the epoch clock, and starts recording.
  /// `ring_capacity` bounds the retained spans *per thread*.
  void Enable(std::size_t ring_capacity = 1 << 14);

  /// Stops recording (retained spans stay readable).
  void Disable();

  /// True while spans are being recorded.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops all retained spans (keeps the enabled state and epoch).
  void Clear();

  /// Copies every retained span across threads, ordered by start time.
  [[nodiscard]] std::vector<SpanEvent> Snapshot() const;

  /// Spans lost to ring overwrites since Enable().
  [[nodiscard]] uint64_t dropped() const;

  /// Microseconds since Enable() on the epoch clock.
  [[nodiscard]] uint64_t NowMicros() const;

  /// Serializes retained spans as a Chrome trace-event JSON document
  /// ("X" complete events; ts/dur in microseconds).
  [[nodiscard]] std::string ChromeTraceJson() const;

 private:
  friend class TraceSpan;
  struct ThreadTrace;

  ThreadTrace* GetThreadTrace();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};

  // Lock order (DESIGN.md §5e): registry_mu_ strictly before any
  // ThreadTrace::mu — never the reverse.
  mutable Mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadTrace>> threads_
      RDFCUBE_GUARDED_BY(registry_mu_);
  std::size_t ring_capacity_ RDFCUBE_GUARDED_BY(registry_mu_) = 1 << 14;
  // Restarted by Enable() while holding registry_mu_; read lock-free from
  // NowMicros() on span hot paths (monotonic clock reads race benignly).
  Stopwatch epoch_;
};

/// \brief RAII phase scope; records a SpanEvent on destruction when the
/// global collector is enabled. Also usable as a plain timer via
/// ElapsedSeconds() (the clock runs regardless of collection).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  /// Records the span now instead of at scope exit (the destructor then
  /// becomes a no-op). For phases that end before their enclosing scope.
  void End();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Seconds since construction (live; works even when not sampled).
  [[nodiscard]] double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }

  /// This span's id, or 0 when the span is not being recorded.
  [[nodiscard]] uint64_t id() const { return span_id_; }

 private:
  Stopwatch watch_;  // the span clock (satellite: Stopwatch stays the clock)
  uint64_t span_id_ = 0;  // 0 = not sampled
  uint64_t start_us_ = 0;
  std::string name_;
};

/// Aggregates `events` by span name (counts, total and self seconds),
/// sorted by descending total.
[[nodiscard]] std::vector<SpanRollup> RollupSpans(
    const std::vector<SpanEvent>& events);

}  // namespace obs
}  // namespace rdfcube

#endif  // RDFCUBE_OBS_TRACE_H_
