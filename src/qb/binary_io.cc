#include "qb/binary_io.h"

#include "hierarchy/code_list.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/untrusted.h"
#include "util/safe_math.h"

namespace rdfcube {
namespace qb {

namespace {

// Schema limits for untrusted count fields (the taint gate, DESIGN.md §5h):
// dimension/measure counts must fit the 64-bit presence masks, and
// element-count fields are additionally clamped against the bytes actually
// present so a forged count cannot drive a huge loop over a tiny payload.
constexpr uint32_t kMaxDimensions = 64;
constexpr uint32_t kMaxMeasures = 64;
// Smallest possible encodings: dataset = empty iri (4) + two masks (16);
// observation = empty iri (4) + dataset id (4) + dim count (4) + value
// count (4).
constexpr uint64_t kMinDatasetRecordBytes = 20;
constexpr uint64_t kMinObservationRecordBytes = 16;

// --- Little-endian primitives ------------------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(bytes_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

  std::size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

Status Corrupt(const char* what) {
  return Status::ParseError(std::string("corrupt corpus file: ") + what);
}

// Mutated bytes can slip past the structural checks and only be rejected by
// the corpus builders (duplicate IRI, inconsistent schema, ...). Those are
// still parse failures from the caller's point of view: rewrap so the
// deserializer's contract is "ParseError or a valid corpus".
Status AsParseError(const Status& st) {
  if (st.ok() || st.IsParseError()) return st;
  return Status::ParseError("corrupt corpus file: " + st.message());
}

}  // namespace

Result<std::string> SerializeCorpus(const Corpus& corpus) {
  if (corpus.space == nullptr || corpus.observations == nullptr) {
    return Status::InvalidArgument("corpus is not built");
  }
  const CubeSpace& space = *corpus.space;
  const ObservationSet& observations = *corpus.observations;
  std::string out;
  out.append(kBinaryMagic, sizeof(kBinaryMagic));

  // Dimensions with their code lists (parent-indexed, parents first since
  // ids are assigned in insertion order).
  PutU32(&out, static_cast<uint32_t>(space.num_dimensions()));
  for (DimId d = 0; d < space.num_dimensions(); ++d) {
    PutString(&out, space.dimension_iri(d));
    const hierarchy::CodeList& list = space.code_list(d);
    PutU32(&out, static_cast<uint32_t>(list.size()));
    for (hierarchy::CodeId c = 0; c < list.size(); ++c) {
      PutString(&out, list.name(c));
      PutU32(&out, c == list.root() ? 0xffffffffu : list.parent(c));
    }
  }
  // Measures.
  PutU32(&out, static_cast<uint32_t>(space.num_measures()));
  for (MeasureId m = 0; m < space.num_measures(); ++m) {
    PutString(&out, space.measure_iri(m));
  }
  // Datasets.
  PutU32(&out, static_cast<uint32_t>(observations.num_datasets()));
  for (DatasetId ds = 0; ds < observations.num_datasets(); ++ds) {
    const DatasetMeta& meta = observations.dataset(ds);
    PutString(&out, meta.iri);
    PutU64(&out, meta.dim_mask);
    PutU64(&out, meta.measure_mask);
  }
  // Observations.
  PutU32(&out, static_cast<uint32_t>(observations.size()));
  for (ObsId i = 0; i < observations.size(); ++i) {
    const Observation& o = observations.obs(i);
    PutString(&out, o.iri);
    PutU32(&out, o.dataset);
    // Present dimension values only.
    uint32_t present = 0;
    for (hierarchy::CodeId c : o.dims) {
      if (c != hierarchy::kNoCode) ++present;
    }
    PutU32(&out, present);
    for (DimId d = 0; d < o.dims.size(); ++d) {
      if (o.dims[d] == hierarchy::kNoCode) continue;
      PutU32(&out, d);
      PutU32(&out, o.dims[d]);
    }
    PutU32(&out, static_cast<uint32_t>(o.values.size()));
    for (const auto& [m, value] : o.values) {
      PutU32(&out, m);
      PutDouble(&out, value);
    }
  }
  return out;
}

RDFCUBE_TAINT_SOURCE Result<Corpus> DeserializeCorpus(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kBinaryMagic) ||
      std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return Corrupt("bad magic");
  }
  Reader r(bytes);
  {
    // Advance past the 8-byte magic (already validated above).
    uint64_t magic_bytes;
    if (!r.GetU64(&magic_bytes)) return Corrupt("truncated header");
  }

  Corpus corpus;
  corpus.space = std::make_unique<CubeSpace>();

  uint32_t num_dims;
  if (!r.GetU32(&num_dims)) return Corrupt("dimension count");
  if (num_dims > kMaxDimensions) return Corrupt("dimension count out of range");
  for (uint32_t d = 0; d < num_dims; ++d) {
    std::string iri;
    if (!r.GetString(&iri)) return Corrupt("dimension iri");
    uint32_t num_codes;
    if (!r.GetU32(&num_codes)) return Corrupt("code count");
    if (num_codes == 0) return Corrupt("empty code list");
    std::string root_name;
    if (!r.GetString(&root_name)) return Corrupt("root name");
    uint32_t root_parent;
    if (!r.GetU32(&root_parent)) return Corrupt("root parent");
    if (root_parent != 0xffffffffu) return Corrupt("first code must be root");
    hierarchy::CodeList list(root_name);
    for (uint32_t c = 1; c < num_codes; ++c) {
      std::string name;
      uint32_t parent;
      if (!r.GetString(&name) || !r.GetU32(&parent)) return Corrupt("code");
      if (parent >= c) return Corrupt("code parent out of range");
      auto added = list.Add(name, parent);
      if (!added.ok() || *added != c) return Corrupt("duplicate code name");
    }
    RDFCUBE_RETURN_IF_ERROR(AsParseError(list.Finalize()));
    RDFCUBE_RETURN_IF_ERROR(
        AsParseError(corpus.space->AddDimension(iri, std::move(list)).status()));
  }

  uint32_t num_measures;
  if (!r.GetU32(&num_measures)) return Corrupt("measure count");
  if (num_measures > kMaxMeasures) return Corrupt("measure count out of range");
  for (uint32_t m = 0; m < num_measures; ++m) {
    std::string iri;
    if (!r.GetString(&iri)) return Corrupt("measure iri");
    RDFCUBE_RETURN_IF_ERROR(AsParseError(corpus.space->AddMeasure(iri).status()));
  }

  corpus.observations = std::make_unique<ObservationSet>(corpus.space.get());
  uint32_t num_datasets;
  if (!r.GetU32(&num_datasets)) return Corrupt("dataset count");
  // Overflow-checked feasibility clamp: num_datasets records need at least
  // num_datasets * kMinDatasetRecordBytes bytes, so a forged count either
  // overflows the multiply or exceeds what the payload can hold.
  const auto dataset_bytes =
      util::CheckedMul<uint64_t>(num_datasets, kMinDatasetRecordBytes);
  if (!dataset_bytes.ok() || *dataset_bytes > r.Remaining()) {
    return Corrupt("dataset count out of range");
  }
  for (uint32_t ds = 0; ds < num_datasets; ++ds) {
    std::string iri;
    uint64_t dim_mask, measure_mask;
    if (!r.GetString(&iri) || !r.GetU64(&dim_mask) ||
        !r.GetU64(&measure_mask)) {
      return Corrupt("dataset");
    }
    std::vector<DimId> dims;
    for (DimId d = 0; d < num_dims; ++d) {
      if (dim_mask & (uint64_t{1} << d)) dims.push_back(d);
    }
    if (dim_mask >> num_dims) return Corrupt("dataset dim mask");
    std::vector<MeasureId> measures;
    for (MeasureId m = 0; m < num_measures; ++m) {
      if (measure_mask & (uint64_t{1} << m)) measures.push_back(m);
    }
    if (num_measures < 64 && (measure_mask >> num_measures)) {
      return Corrupt("dataset measure mask");
    }
    RDFCUBE_RETURN_IF_ERROR(
        AsParseError(corpus.observations->AddDataset(iri, dims, measures).status()));
  }

  uint32_t num_obs;
  if (!r.GetU32(&num_obs)) return Corrupt("observation count");
  const auto obs_bytes =
      util::CheckedMul<uint64_t>(num_obs, kMinObservationRecordBytes);
  if (!obs_bytes.ok() || *obs_bytes > r.Remaining()) {
    return Corrupt("observation count out of range");
  }
  for (uint32_t i = 0; i < num_obs; ++i) {
    std::string iri;
    uint32_t dataset, present;
    if (!r.GetString(&iri) || !r.GetU32(&dataset) || !r.GetU32(&present)) {
      return Corrupt("observation header");
    }
    if (dataset >= num_datasets) return Corrupt("observation dataset id");
    if (present > num_dims) return Corrupt("observation dim count");
    std::vector<std::pair<DimId, hierarchy::CodeId>> dims;
    for (uint32_t p = 0; p < present; ++p) {
      uint32_t d, code;
      if (!r.GetU32(&d) || !r.GetU32(&code)) return Corrupt("dim value");
      if (d >= num_dims) return Corrupt("dim id");
      if (code >= corpus.space->code_list(d).size()) {
        return Corrupt("code id");
      }
      dims.emplace_back(d, code);
    }
    uint32_t num_values;
    if (!r.GetU32(&num_values)) return Corrupt("value count");
    if (num_values > num_measures) return Corrupt("value count range");
    std::vector<std::pair<MeasureId, double>> values;
    for (uint32_t v = 0; v < num_values; ++v) {
      uint32_t m;
      double value;
      if (!r.GetU32(&m) || !r.GetDouble(&value)) return Corrupt("value");
      if (m >= num_measures) return Corrupt("measure id");
      values.emplace_back(m, value);
    }
    RDFCUBE_RETURN_IF_ERROR(
        AsParseError(corpus.observations->AddObservation(dataset, iri, dims, values)
                         .status()));
  }
  if (!r.AtEnd()) return Corrupt("trailing bytes");
  return corpus;
}

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  RDFCUBE_ASSIGN_OR_RETURN(std::string bytes, SerializeCorpus(corpus));
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError("cannot write corpus: path is a directory: " +
                           path);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Corpus> LoadCorpusBinary(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return Status::IOError("cannot read corpus: path is a directory: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in && !in.eof()) return Status::IOError("read failed: " + path);
  // A zero-byte or otherwise mangled file lands in DeserializeCorpus's magic
  // check and comes back as ParseError, never a crash.
  return DeserializeCorpus(buf.str());
}

}  // namespace qb
}  // namespace rdfcube
