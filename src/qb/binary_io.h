// Compact binary serialization of a Corpus.
//
// The paper's pipeline assumes data conversion is "amortized over time
// (esp., if data collection from 'favorite' sources is recurring)" (§3.1
// footnote discussion): once aligned and encoded, a corpus should reload in
// milliseconds instead of re-parsing RDF. This module writes the encoded
// form (schema space + observations) to a versioned little-endian binary
// file and reads it back.

#ifndef RDFCUBE_QB_BINARY_IO_H_
#define RDFCUBE_QB_BINARY_IO_H_

#include <string>

#include "qb/corpus.h"
#include "base/result.h"

namespace rdfcube {
namespace qb {

/// Magic + version written at the head of every file.
inline constexpr char kBinaryMagic[8] = {'R', 'D', 'F', 'C',
                                         'U', 'B', 'E', '1'};

/// Serializes `corpus` to `out` (an in-memory byte string; see the file
/// overloads below for disk I/O).
[[nodiscard]] Result<std::string> SerializeCorpus(const Corpus& corpus);

/// Parses a byte string produced by SerializeCorpus. Fails with ParseError
/// on bad magic, truncation, or out-of-range indices (every index is
/// validated — a corrupt file can not produce an inconsistent corpus).
[[nodiscard]] Result<Corpus> DeserializeCorpus(const std::string& bytes);

/// Writes the corpus to `path`. IOError when the path is a directory or
/// cannot be opened/written.
[[nodiscard]] Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Reads a corpus from `path`. IOError when the path is missing, a
/// directory, or unreadable; ParseError when the bytes are corrupt (a
/// zero-byte file is "bad magic"). Never crashes on hostile input.
[[nodiscard]] Result<Corpus> LoadCorpusBinary(const std::string& path);

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_BINARY_IO_H_
