#include "qb/corpus.h"

#include "hierarchy/code_list.h"

namespace rdfcube {
namespace qb {

Status CorpusBuilder::AddDimension(const std::string& dim_iri,
                                   const std::string& root_code) {
  if (code_lists_.count(dim_iri)) {
    return Status::AlreadyExists("dimension already declared: " + dim_iri);
  }
  dim_order_.push_back(dim_iri);
  code_lists_.emplace(dim_iri, hierarchy::CodeList(root_code));
  return Status::OK();
}

Status CorpusBuilder::AddCode(const std::string& dim_iri,
                              const std::string& code,
                              const std::string& parent) {
  auto it = code_lists_.find(dim_iri);
  if (it == code_lists_.end()) {
    return Status::NotFound("unknown dimension: " + dim_iri);
  }
  auto parent_id = it->second.Find(parent);
  if (!parent_id.has_value()) {
    return Status::NotFound("unknown parent code '" + parent +
                            "' in dimension " + dim_iri);
  }
  Result<hierarchy::CodeId> added = it->second.Add(code, *parent_id);
  return added.ok() ? Status::OK() : added.status();
}

Status CorpusBuilder::AddMeasure(const std::string& measure_iri) {
  for (const std::string& m : measure_order_) {
    if (m == measure_iri) {
      return Status::AlreadyExists("measure already declared: " + measure_iri);
    }
  }
  measure_order_.push_back(measure_iri);
  return Status::OK();
}

Status CorpusBuilder::AddDataset(const std::string& dataset_iri,
                                 const std::vector<std::string>& dims,
                                 const std::vector<std::string>& measures) {
  for (const std::string& d : dims) {
    if (!code_lists_.count(d)) {
      return Status::NotFound("dataset references unknown dimension: " + d);
    }
  }
  for (const std::string& m : measures) {
    bool found = false;
    for (const std::string& known : measure_order_) {
      if (known == m) {
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("dataset references unknown measure: " + m);
  }
  datasets_.push_back(PendingDataset{dataset_iri, dims, measures});
  return Status::OK();
}

Status CorpusBuilder::AddObservation(
    const std::string& dataset_iri, const std::string& obs_iri,
    const std::vector<std::pair<std::string, std::string>>& dim_values,
    const std::vector<std::pair<std::string, double>>& measure_values) {
  observations_.push_back(
      PendingObservation{dataset_iri, obs_iri, dim_values, measure_values});
  return Status::OK();
}

Result<Corpus> CorpusBuilder::Build() && {
  Corpus corpus;
  corpus.space = std::make_unique<CubeSpace>();

  std::unordered_map<std::string, DimId> dim_ids;
  for (const std::string& dim : dim_order_) {
    hierarchy::CodeList& list = code_lists_.at(dim);
    RDFCUBE_RETURN_IF_ERROR(list.Finalize());
    RDFCUBE_ASSIGN_OR_RETURN(DimId id,
                             corpus.space->AddDimension(dim, std::move(list)));
    dim_ids.emplace(dim, id);
  }
  std::unordered_map<std::string, MeasureId> measure_ids;
  for (const std::string& m : measure_order_) {
    RDFCUBE_ASSIGN_OR_RETURN(MeasureId id, corpus.space->AddMeasure(m));
    measure_ids.emplace(m, id);
  }

  corpus.observations = std::make_unique<ObservationSet>(corpus.space.get());
  std::unordered_map<std::string, DatasetId> dataset_ids;
  for (const PendingDataset& ds : datasets_) {
    std::vector<DimId> dims;
    for (const std::string& d : ds.dims) dims.push_back(dim_ids.at(d));
    std::vector<MeasureId> measures;
    for (const std::string& m : ds.measures) {
      measures.push_back(measure_ids.at(m));
    }
    RDFCUBE_ASSIGN_OR_RETURN(
        DatasetId id, corpus.observations->AddDataset(ds.iri, dims, measures));
    if (!dataset_ids.emplace(ds.iri, id).second) {
      return Status::AlreadyExists("duplicate dataset: " + ds.iri);
    }
  }

  for (const PendingObservation& po : observations_) {
    auto ds_it = dataset_ids.find(po.dataset);
    if (ds_it == dataset_ids.end()) {
      return Status::NotFound("observation " + po.iri +
                              " references unknown dataset: " + po.dataset);
    }
    std::vector<std::pair<DimId, hierarchy::CodeId>> dims;
    for (const auto& [dim_iri, code_name] : po.dims) {
      auto dim_it = dim_ids.find(dim_iri);
      if (dim_it == dim_ids.end()) {
        return Status::NotFound("observation " + po.iri +
                                " references unknown dimension: " + dim_iri);
      }
      const hierarchy::CodeList& list = corpus.space->code_list(dim_it->second);
      auto code = list.Find(code_name);
      if (!code.has_value()) {
        return Status::NotFound("observation " + po.iri + " uses unknown code '" +
                                code_name + "' for dimension " + dim_iri);
      }
      dims.emplace_back(dim_it->second, *code);
    }
    std::vector<std::pair<MeasureId, double>> measures;
    for (const auto& [measure_iri, value] : po.measures) {
      auto m_it = measure_ids.find(measure_iri);
      if (m_it == measure_ids.end()) {
        return Status::NotFound("observation " + po.iri +
                                " references unknown measure: " + measure_iri);
      }
      measures.emplace_back(m_it->second, value);
    }
    RDFCUBE_RETURN_IF_ERROR(
        corpus.observations
            ->AddObservation(ds_it->second, po.iri, dims, measures)
            .status());
  }
  return corpus;
}

}  // namespace qb
}  // namespace rdfcube
