// Corpus: an owned (CubeSpace, ObservationSet) pair plus a string-keyed
// builder for assembling one programmatically.

#ifndef RDFCUBE_QB_CORPUS_H_
#define RDFCUBE_QB_CORPUS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/result.h"
#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace qb {

/// \brief Owns a schema space and the observations encoded over it.
///
/// Movable; the internal unique_ptrs keep the CubeSpace address stable for
/// the ObservationSet's back-pointer.
struct Corpus {
  std::unique_ptr<CubeSpace> space;
  std::unique_ptr<ObservationSet> observations;
};

/// \brief String-keyed builder for a Corpus.
///
/// Example:
/// \code
///   CorpusBuilder b;
///   b.AddDimension("ex:refArea", "World");
///   b.AddCode("ex:refArea", "Europe", "World");
///   b.AddCode("ex:refArea", "Greece", "Europe");
///   b.AddMeasure("ex:population");
///   b.AddDataset("D1", {"ex:refArea"}, {"ex:population"});
///   b.AddObservation("D1", "o1", {{"ex:refArea", "Greece"}},
///                    {{"ex:population", 10.7e6}});
///   Result<Corpus> corpus = std::move(b).Build();
/// \endcode
///
/// All Add* methods record data; name resolution errors surface immediately,
/// hierarchy finalization errors at Build().
class CorpusBuilder {
 public:
  /// Declares a dimension whose code-list root is `root_code` (the `ALL`
  /// concept of the paper, e.g. "World" or "Total").
  [[nodiscard]] Status AddDimension(const std::string& dim_iri,
                      const std::string& root_code);

  /// Adds `code` under `parent` in the dimension's code list. The parent must
  /// already exist. Re-adding an existing code with the same parent is a
  /// no-op.
  [[nodiscard]] Status AddCode(const std::string& dim_iri, const std::string& code,
                 const std::string& parent);

  /// Declares a measure property.
  [[nodiscard]] Status AddMeasure(const std::string& measure_iri);

  /// Declares a dataset with its schema.
  [[nodiscard]] Status AddDataset(const std::string& dataset_iri,
                    const std::vector<std::string>& dims,
                    const std::vector<std::string>& measures);

  /// Records an observation. Dimension values are code names; missing schema
  /// dimensions are root-padded at Build time.
  [[nodiscard]] Status AddObservation(
      const std::string& dataset_iri, const std::string& obs_iri,
      const std::vector<std::pair<std::string, std::string>>& dim_values,
      const std::vector<std::pair<std::string, double>>& measure_values);

  /// Assembles the Corpus: finalizes code lists, registers schemas, encodes
  /// observations. Consumes the builder.
  [[nodiscard]] Result<Corpus> Build() &&;

 private:
  struct PendingObservation {
    std::string dataset;
    std::string iri;
    std::vector<std::pair<std::string, std::string>> dims;
    std::vector<std::pair<std::string, double>> measures;
  };
  struct PendingDataset {
    std::string iri;
    std::vector<std::string> dims;
    std::vector<std::string> measures;
  };

  std::vector<std::string> dim_order_;
  std::unordered_map<std::string, hierarchy::CodeList> code_lists_;
  std::vector<std::string> measure_order_;
  std::vector<PendingDataset> datasets_;
  std::vector<PendingObservation> observations_;
};

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_CORPUS_H_
