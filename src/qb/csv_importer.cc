#include "qb/csv_importer.h"

#include <cstdlib>

namespace rdfcube {
namespace qb {

Status ImportCsvDataset(const CsvTable& table, const CsvDatasetSpec& spec,
                        CorpusBuilder* builder) {
  if (spec.columns.size() > table.header.size()) {
    return Status::InvalidArgument(
        "column spec is longer than the CSV header");
  }
  // Resolve column property IRIs (default: header text).
  std::vector<std::string> props(spec.columns.size());
  std::vector<std::string> dims, measures;
  for (std::size_t c = 0; c < spec.columns.size(); ++c) {
    props[c] = spec.columns[c].property_iri.empty()
                   ? table.header[c]
                   : spec.columns[c].property_iri;
    switch (spec.columns[c].role) {
      case CsvColumnSpec::Role::kDimension:
        dims.push_back(props[c]);
        break;
      case CsvColumnSpec::Role::kMeasure:
        measures.push_back(props[c]);
        break;
      case CsvColumnSpec::Role::kIgnore:
        break;
    }
  }
  RDFCUBE_RETURN_IF_ERROR(builder->AddDataset(spec.dataset_iri, dims, measures));

  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    std::vector<std::pair<std::string, std::string>> dim_values;
    std::vector<std::pair<std::string, double>> measure_values;
    for (std::size_t c = 0; c < spec.columns.size(); ++c) {
      const std::string& cell = row[c];
      switch (spec.columns[c].role) {
        case CsvColumnSpec::Role::kDimension:
          if (!cell.empty()) dim_values.emplace_back(props[c], cell);
          break;
        case CsvColumnSpec::Role::kMeasure: {
          if (cell.empty()) break;
          char* end = nullptr;
          const double value = std::strtod(cell.c_str(), &end);
          if (end != cell.c_str() + cell.size()) {
            return Status::ParseError("row " + std::to_string(r + 1) +
                                      ": non-numeric measure value '" + cell +
                                      "'");
          }
          measure_values.emplace_back(props[c], value);
          break;
        }
        case CsvColumnSpec::Role::kIgnore:
          break;
      }
    }
    RDFCUBE_RETURN_IF_ERROR(builder->AddObservation(
        spec.dataset_iri,
        spec.dataset_iri + "/obs/" + std::to_string(r + 1), dim_values,
        measure_values));
  }
  return Status::OK();
}

}  // namespace qb
}  // namespace rdfcube
