// CSV -> Corpus import, following the paper's conversion approach (§4):
// "we converted CSV column headers to dimension URIs, and rows to
// observations, by automatically matching cell values to existing code list
// terms based on their IDs".

#ifndef RDFCUBE_QB_CSV_IMPORTER_H_
#define RDFCUBE_QB_CSV_IMPORTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "qb/corpus.h"
#include "util/csv.h"
#include "base/result.h"

namespace rdfcube {
namespace qb {

/// \brief Declares how one CSV column maps into the cube.
struct CsvColumnSpec {
  enum class Role { kDimension, kMeasure, kIgnore };
  Role role = Role::kIgnore;
  /// Property IRI for the dimension/measure; defaults to the header text.
  std::string property_iri;
};

/// \brief One CSV source file plus its column mapping.
struct CsvDatasetSpec {
  std::string dataset_iri;
  /// Per-column roles, parallel to the CSV header. Columns beyond this
  /// vector are ignored.
  std::vector<CsvColumnSpec> columns;
};

/// \brief Imports CSV tables into an existing CorpusBuilder.
///
/// Dimension cell values must already exist in the dimension's code list
/// (matching "existing code list terms based on their IDs"); unknown values
/// produce a ParseError naming the row. Measure cells must parse as doubles;
/// empty measure cells are skipped. Dimensions must be declared on the
/// builder before import.
[[nodiscard]] Status ImportCsvDataset(const CsvTable& table, const CsvDatasetSpec& spec,
                        CorpusBuilder* builder);

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_CSV_IMPORTER_H_
