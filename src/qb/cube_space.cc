#include "qb/cube_space.h"

#include "hierarchy/code_list.h"

namespace rdfcube {
namespace qb {

Result<DimId> CubeSpace::AddDimension(const std::string& iri,
                                      hierarchy::CodeList code_list) {
  if (dims_by_iri_.count(iri)) {
    return Status::AlreadyExists("dimension already registered: " + iri);
  }
  if (!code_list.finalized()) {
    return Status::FailedPrecondition(
        "code list for dimension must be finalized: " + iri);
  }
  const DimId id = static_cast<DimId>(dim_iris_.size());
  dim_iris_.push_back(iri);
  code_lists_.push_back(std::move(code_list));
  dims_by_iri_.emplace(iri, id);
  return id;
}

Result<MeasureId> CubeSpace::AddMeasure(const std::string& iri) {
  if (measures_by_iri_.count(iri)) {
    return Status::AlreadyExists("measure already registered: " + iri);
  }
  if (measure_iris_.size() >= 64) {
    return Status::ResourceExhausted("at most 64 measures are supported");
  }
  const MeasureId id = static_cast<MeasureId>(measure_iris_.size());
  measure_iris_.push_back(iri);
  measures_by_iri_.emplace(iri, id);
  return id;
}

std::optional<DimId> CubeSpace::FindDimension(const std::string& iri) const {
  auto it = dims_by_iri_.find(iri);
  if (it == dims_by_iri_.end()) return std::nullopt;
  return it->second;
}

std::optional<MeasureId> CubeSpace::FindMeasure(const std::string& iri) const {
  auto it = measures_by_iri_.find(iri);
  if (it == measures_by_iri_.end()) return std::nullopt;
  return it->second;
}

}  // namespace qb
}  // namespace rdfcube
