// CubeSpace: the reconciled multidimensional schema bus shared by all input
// datasets — the global dimension set P, measure set M (paper Def. 1), and
// one hierarchical code list per dimension (Def. 2).

#ifndef RDFCUBE_QB_CUBE_SPACE_H_
#define RDFCUBE_QB_CUBE_SPACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "hierarchy/code_list.h"
#include "base/result.h"

namespace rdfcube {
namespace qb {

/// Dense index of a dimension property in the global dimension set P.
using DimId = uint32_t;
/// Dense index of a measure property in the global measure set M.
using MeasureId = uint32_t;

/// \brief The global schema space: dimensions with their code lists, and
/// measures.
///
/// After the (out-of-scope per the paper, simulated in src/align) dimension
/// alignment step, every dataset's dimension and measure properties resolve
/// into this one space; observations then carry dense per-dimension code ids.
///
/// At most 64 measures are supported (observation measure sets are bitmasks;
/// the paper's corpus has 6).
class CubeSpace {
 public:
  /// Registers a dimension with its finalized code list. Fails if the IRI is
  /// already registered or the list is not finalized.
  [[nodiscard]] Result<DimId> AddDimension(const std::string& iri,
                             hierarchy::CodeList code_list);

  /// Registers a measure property. Fails if already registered or if the
  /// 64-measure limit would be exceeded.
  [[nodiscard]] Result<MeasureId> AddMeasure(const std::string& iri);

  std::optional<DimId> FindDimension(const std::string& iri) const;
  std::optional<MeasureId> FindMeasure(const std::string& iri) const;

  std::size_t num_dimensions() const { return dim_iris_.size(); }
  std::size_t num_measures() const { return measure_iris_.size(); }

  const std::string& dimension_iri(DimId d) const { return dim_iris_[d]; }
  const std::string& measure_iri(MeasureId m) const { return measure_iris_[m]; }

  const hierarchy::CodeList& code_list(DimId d) const { return code_lists_[d]; }
  hierarchy::CodeList& mutable_code_list(DimId d) { return code_lists_[d]; }

 private:
  std::vector<std::string> dim_iris_;
  std::vector<hierarchy::CodeList> code_lists_;
  std::unordered_map<std::string, DimId> dims_by_iri_;
  std::vector<std::string> measure_iris_;
  std::unordered_map<std::string, MeasureId> measures_by_iri_;
};

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_CUBE_SPACE_H_
