#include "qb/exporter.h"

#include <cctype>
#include <string>
#include <vector>

#include "hierarchy/code_list.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "util/string_util.h"

namespace rdfcube {
namespace qb {

namespace {

using rdf::Term;
namespace vocab = rdf::vocab;

bool LooksLikeIri(const std::string& s) {
  return s.find("://") != std::string::npos || StartsWith(s, "urn:");
}

// Mints an IRI for a code name when it is not already one.
std::string CodeIri(const std::string& dim_iri, const std::string& code_name) {
  if (LooksLikeIri(code_name)) return code_name;
  std::string local;
  for (char c : code_name) {
    local.push_back(
        (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_')
            ? c
            : '_');
  }
  return dim_iri + "/code/" + local;
}

std::string DimIri(const std::string& name) {
  return LooksLikeIri(name) ? name : "urn:rdfcube:dim:" + name;
}

std::string MeasureIri(const std::string& name) {
  return LooksLikeIri(name) ? name : "urn:rdfcube:measure:" + name;
}

std::string DatasetIri(const std::string& name) {
  return LooksLikeIri(name) ? name : "urn:rdfcube:dataset:" + name;
}

std::string ObsIri(const std::string& name) {
  return LooksLikeIri(name) ? name : "urn:rdfcube:obs:" + name;
}

}  // namespace

Status ExportCorpusToRdf(const Corpus& corpus, rdf::TripleStore* store) {
  if (corpus.space == nullptr || corpus.observations == nullptr) {
    return Status::InvalidArgument("corpus is not built");
  }
  const CubeSpace& space = *corpus.space;
  const ObservationSet& obs_set = *corpus.observations;

  const Term rdf_type = Term::Iri(std::string(vocab::kRdfType));
  const Term skos_concept = Term::Iri(std::string(vocab::kSkosConcept));
  const Term skos_scheme_cls = Term::Iri(std::string(vocab::kSkosConceptScheme));
  const Term skos_in_scheme = Term::Iri(std::string(vocab::kSkosInScheme));
  const Term skos_broader = Term::Iri(std::string(vocab::kSkosBroader));
  const Term qb_code_list = Term::Iri(std::string(vocab::kQbCodeList));
  const Term qb_dim_prop_cls = Term::Iri(std::string(vocab::kQbDimensionProperty));
  const Term qb_measure_prop_cls =
      Term::Iri(std::string(vocab::kQbMeasureProperty));
  const Term qb_dsd_cls = Term::Iri(std::string(vocab::kQbDsd));
  const Term qb_component = Term::Iri(std::string(vocab::kQbComponent));
  const Term qb_dimension = Term::Iri(std::string(vocab::kQbDimension));
  const Term qb_measure = Term::Iri(std::string(vocab::kQbMeasure));
  const Term qb_dataset_cls = Term::Iri(std::string(vocab::kQbDataSet));
  const Term qb_structure = Term::Iri(std::string(vocab::kQbStructure));
  const Term qb_observation_cls = Term::Iri(std::string(vocab::kQbObservation));
  const Term qb_dataset_prop = Term::Iri(std::string(vocab::kQbDataSetProp));

  // --- Code lists as SKOS schemes. -----------------------------------------
  for (DimId d = 0; d < space.num_dimensions(); ++d) {
    const std::string dim_iri = DimIri(space.dimension_iri(d));
    const hierarchy::CodeList& list = space.code_list(d);
    const Term scheme = Term::Iri(dim_iri + "/scheme");
    store->Insert(scheme, rdf_type, skos_scheme_cls);
    store->Insert(Term::Iri(dim_iri), rdf_type, qb_dim_prop_cls);
    store->Insert(Term::Iri(dim_iri), qb_code_list, scheme);
    for (hierarchy::CodeId c = 0; c < list.size(); ++c) {
      const Term code = Term::Iri(CodeIri(dim_iri, list.name(c)));
      store->Insert(code, rdf_type, skos_concept);
      store->Insert(code, skos_in_scheme, scheme);
      if (c != list.root()) {
        const Term parent = Term::Iri(CodeIri(dim_iri, list.name(list.parent(c))));
        store->Insert(code, skos_broader, parent);
      }
    }
  }
  for (MeasureId m = 0; m < space.num_measures(); ++m) {
    store->Insert(Term::Iri(MeasureIri(space.measure_iri(m))), rdf_type,
                  qb_measure_prop_cls);
  }

  // --- Datasets with DSDs. ---------------------------------------------------
  for (DatasetId ds = 0; ds < obs_set.num_datasets(); ++ds) {
    const DatasetMeta& meta = obs_set.dataset(ds);
    const std::string ds_iri = DatasetIri(meta.iri);
    const Term dataset = Term::Iri(ds_iri);
    const Term dsd = Term::Iri(ds_iri + "/dsd");
    store->Insert(dataset, rdf_type, qb_dataset_cls);
    store->Insert(dataset, qb_structure, dsd);
    store->Insert(dsd, rdf_type, qb_dsd_cls);
    int comp_no = 0;
    for (DimId d = 0; d < space.num_dimensions(); ++d) {
      if ((meta.dim_mask & (uint64_t{1} << d)) == 0) continue;
      const Term comp = Term::Iri(ds_iri + "/component/" +
                                  std::to_string(comp_no++));
      store->Insert(dsd, qb_component, comp);
      store->Insert(comp, qb_dimension,
                    Term::Iri(DimIri(space.dimension_iri(d))));
    }
    for (MeasureId m = 0; m < space.num_measures(); ++m) {
      if ((meta.measure_mask & (uint64_t{1} << m)) == 0) continue;
      const Term comp = Term::Iri(ds_iri + "/component/" +
                                  std::to_string(comp_no++));
      store->Insert(dsd, qb_component, comp);
      store->Insert(comp, qb_measure,
                    Term::Iri(MeasureIri(space.measure_iri(m))));
    }
  }

  // --- Observations. ----------------------------------------------------------
  for (ObsId i = 0; i < obs_set.size(); ++i) {
    const Observation& o = obs_set.obs(i);
    const Term obs_term = Term::Iri(ObsIri(o.iri));
    store->Insert(obs_term, rdf_type, qb_observation_cls);
    store->Insert(obs_term, qb_dataset_prop,
                  Term::Iri(DatasetIri(obs_set.dataset(o.dataset).iri)));
    for (DimId d = 0; d < space.num_dimensions(); ++d) {
      if (o.dims[d] == hierarchy::kNoCode) continue;
      const std::string dim_iri = DimIri(space.dimension_iri(d));
      store->Insert(
          obs_term, Term::Iri(dim_iri),
          Term::Iri(CodeIri(dim_iri, space.code_list(d).name(o.dims[d]))));
    }
    for (const auto& [m, value] : o.values) {
      store->Insert(obs_term, Term::Iri(MeasureIri(space.measure_iri(m))),
                    Term::TypedLiteral(std::to_string(value),
                                       std::string(vocab::kXsdDecimal)));
    }
  }
  return Status::OK();
}

}  // namespace qb
}  // namespace rdfcube
