// Serializes a Corpus back to RDF (QB + SKOS), the inverse of LoadCorpusFromRdf.

#ifndef RDFCUBE_QB_EXPORTER_H_
#define RDFCUBE_QB_EXPORTER_H_

#include "qb/corpus.h"
#include "rdf/triple_store.h"
#include "base/status.h"

namespace rdfcube {
namespace qb {

/// \brief Emits the full corpus as RDF triples into `store`:
///  * one SKOS concept scheme per dimension (`<dim>/scheme`) with
///    skos:inScheme members and skos:broader links,
///  * one qb:DataStructureDefinition per dataset with component nodes,
///  * qb:DataSet resources, and
///  * qb:Observation resources with dimension/measure values.
///
/// Code names that are not IRIs (builder corpora may use plain labels like
/// "Athens") are minted under `<dim>/code/`. Round-trips through
/// LoadCorpusFromRdf: the reloaded corpus yields identical relationship sets.
[[nodiscard]] Status ExportCorpusToRdf(const Corpus& corpus, rdf::TripleStore* store);

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_EXPORTER_H_
