#include "qb/loader.h"

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hierarchy/skos_loader.h"
#include "rdf/vocab.h"

namespace rdfcube {
namespace qb {

namespace {

using rdf::Term;
using rdf::TermId;
using rdf::kNoTerm;
namespace vocab = rdf::vocab;

// Resolved ids of the vocabulary terms we navigate with; kNoTerm when the
// term does not occur in the graph at all.
struct VocabIds {
  TermId rdf_type, qb_dataset_cls, qb_dataset_prop, qb_structure, qb_component;
  TermId qb_dimension, qb_measure, qb_attribute, qb_code_list, qb_observation;

  explicit VocabIds(const rdf::Dictionary& dict) {
    auto find = [&dict](std::string_view iri) {
      auto id = dict.Find(Term::Iri(std::string(iri)));
      return id.has_value() ? *id : kNoTerm;
    };
    rdf_type = find(vocab::kRdfType);
    qb_dataset_cls = find(vocab::kQbDataSet);
    qb_dataset_prop = find(vocab::kQbDataSetProp);
    qb_structure = find(vocab::kQbStructure);
    qb_component = find(vocab::kQbComponent);
    qb_dimension = find(vocab::kQbDimension);
    qb_measure = find(vocab::kQbMeasure);
    qb_attribute = find(vocab::kQbAttribute);
    qb_code_list = find(vocab::kQbCodeList);
    qb_observation = find(vocab::kQbObservation);
  }
};

// Schema of one dataset as term ids.
struct DsdInfo {
  std::vector<TermId> dimensions;  // includes attributes when configured
  std::vector<TermId> measures;
};

Result<DsdInfo> ReadDsd(const rdf::TripleStore& store, const VocabIds& ids,
                        TermId dsd, const LoaderOptions& options) {
  DsdInfo info;
  if (ids.qb_component == kNoTerm) {
    return Status::ParseError("graph has no qb:component triples");
  }
  const std::vector<TermId> components = store.ObjectsOf(dsd, ids.qb_component);
  if (components.empty()) {
    return Status::ParseError("DSD has no components: " +
                              store.dictionary().Get(dsd).ToString());
  }
  for (TermId comp : components) {
    bool recognized = false;
    if (ids.qb_dimension != kNoTerm) {
      for (TermId d : store.ObjectsOf(comp, ids.qb_dimension)) {
        info.dimensions.push_back(d);
        recognized = true;
      }
    }
    if (ids.qb_measure != kNoTerm) {
      for (TermId m : store.ObjectsOf(comp, ids.qb_measure)) {
        info.measures.push_back(m);
        recognized = true;
      }
    }
    if (ids.qb_attribute != kNoTerm) {
      for (TermId a : store.ObjectsOf(comp, ids.qb_attribute)) {
        if (options.attributes_as_dimensions) info.dimensions.push_back(a);
        recognized = true;
      }
    }
    if (!recognized) {
      return Status::ParseError(
          "component specifies no qb:dimension/measure/attribute");
    }
  }
  return info;
}

bool ParseDouble(const std::string& text, double* out) {
  // Statistical exports sometimes format integers with thousands separators
  // (Listing 1 of the paper: "82,350,000"^^xmls:integer); strip them.
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (c == ',') continue;
    cleaned.push_back(c);
  }
  if (cleaned.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(cleaned.c_str(), &end);
  return end == cleaned.c_str() + cleaned.size();
}

}  // namespace

Result<Corpus> LoadCorpusFromRdf(const rdf::TripleStore& store,
                                 const LoaderOptions& options) {
  const rdf::Dictionary& dict = store.dictionary();
  const VocabIds ids(dict);
  CorpusBuilder builder;

  if (ids.rdf_type == kNoTerm || ids.qb_dataset_cls == kNoTerm) {
    return Status::NotFound("graph contains no qb:DataSet resources");
  }
  const std::vector<TermId> datasets =
      store.SubjectsOf(ids.rdf_type, ids.qb_dataset_cls);
  if (datasets.empty()) {
    return Status::NotFound("graph contains no qb:DataSet resources");
  }

  // ---- Pass 1: schemas. Collect the global dimension/measure sets. --------
  std::map<TermId, DsdInfo> schema_of;  // dataset -> schema
  std::set<TermId> all_dims, all_measures;
  std::unordered_map<TermId, TermId> code_list_of_dim;
  for (TermId ds : datasets) {
    if (ids.qb_structure == kNoTerm) {
      return Status::ParseError("dataset lacks qb:structure: " +
                                dict.Get(ds).ToString());
    }
    const TermId dsd = store.ObjectOf(ds, ids.qb_structure);
    if (dsd == kNoTerm) {
      return Status::ParseError("dataset lacks qb:structure: " +
                                dict.Get(ds).ToString());
    }
    RDFCUBE_ASSIGN_OR_RETURN(DsdInfo info, ReadDsd(store, ids, dsd, options));
    for (TermId d : info.dimensions) {
      all_dims.insert(d);
      if (ids.qb_code_list != kNoTerm) {
        const TermId scheme = store.ObjectOf(d, ids.qb_code_list);
        if (scheme != kNoTerm) code_list_of_dim.emplace(d, scheme);
      }
    }
    for (TermId m : info.measures) all_measures.insert(m);
    schema_of.emplace(ds, std::move(info));
  }

  // ---- Pass 2: code lists. -------------------------------------------------
  // Dimensions with qb:codeList load their SKOS scheme; the rest get a flat
  // list synthesized from observed values (pass 3 adds the values).
  std::set<TermId> flat_dims;
  for (TermId d : all_dims) {
    const std::string& dim_iri = dict.Value(d);
    auto it = code_list_of_dim.find(d);
    if (it == code_list_of_dim.end()) {
      if (!options.synthesize_flat_code_lists) {
        return Status::ParseError("dimension has no qb:codeList: " + dim_iri);
      }
      flat_dims.insert(d);
      RDFCUBE_RETURN_IF_ERROR(builder.AddDimension(dim_iri, dim_iri + "/ALL"));
      continue;
    }
    RDFCUBE_ASSIGN_OR_RETURN(
        hierarchy::CodeList list,
        hierarchy::LoadCodeListFromSkos(store, dict.Value(it->second)));
    // Re-register through the builder: root first, then children in BFS
    // order so parents always precede children.
    RDFCUBE_RETURN_IF_ERROR(builder.AddDimension(dim_iri, list.name(0)));
    std::vector<hierarchy::CodeId> queue = {list.root()};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      for (hierarchy::CodeId child : list.children(queue[qi])) {
        RDFCUBE_RETURN_IF_ERROR(
            builder.AddCode(dim_iri, list.name(child), list.name(queue[qi])));
        queue.push_back(child);
      }
    }
  }
  for (TermId m : all_measures) {
    RDFCUBE_RETURN_IF_ERROR(builder.AddMeasure(dict.Value(m)));
  }

  // ---- Pass 3: observations. -----------------------------------------------
  if (ids.qb_observation == kNoTerm) {
    return Status::NotFound("graph contains no qb:Observation resources");
  }
  if (ids.qb_dataset_prop == kNoTerm &&
      !store.SubjectsOf(ids.rdf_type, ids.qb_observation).empty()) {
    return Status::ParseError(
        "observations present but no qb:dataSet links exist");
  }

  // Register datasets with the builder.
  for (TermId ds : datasets) {
    const DsdInfo& info = schema_of.at(ds);
    std::vector<std::string> dim_iris, measure_iris;
    for (TermId d : info.dimensions) dim_iris.push_back(dict.Value(d));
    for (TermId m : info.measures) measure_iris.push_back(dict.Value(m));
    RDFCUBE_RETURN_IF_ERROR(
        builder.AddDataset(dict.Value(ds), dim_iris, measure_iris));
  }

  // Collect flat-dimension values first so codes exist before encoding.
  const std::vector<TermId> observations =
      store.SubjectsOf(ids.rdf_type, ids.qb_observation);
  if (!flat_dims.empty()) {
    for (TermId obs : observations) {
      for (TermId d : flat_dims) {
        const TermId v = store.ObjectOf(obs, d);
        if (v == kNoTerm) continue;
        const std::string& dim_iri = dict.Value(d);
        RDFCUBE_RETURN_IF_ERROR(
            builder.AddCode(dim_iri, dict.Value(v), dim_iri + "/ALL"));
      }
    }
  }

  // Index measure/dimension term ids for fast classification.
  std::unordered_set<TermId> dim_set(all_dims.begin(), all_dims.end());
  std::unordered_set<TermId> measure_set(all_measures.begin(),
                                         all_measures.end());

  for (TermId obs : observations) {
    const TermId ds = store.ObjectOf(obs, ids.qb_dataset_prop);
    if (ds == kNoTerm) {
      return Status::ParseError("observation lacks qb:dataSet: " +
                                dict.Get(obs).ToString());
    }
    if (!schema_of.count(ds)) {
      return Status::ParseError("observation references undeclared dataset: " +
                                dict.Get(ds).ToString());
    }
    std::vector<std::pair<std::string, std::string>> dim_values;
    std::vector<std::pair<std::string, double>> measure_values;
    Status row_error;
    store.Match(obs, kNoTerm, kNoTerm, [&](const rdf::Triple& t) {
      if (dim_set.count(t.p)) {
        dim_values.emplace_back(dict.Value(t.p), dict.Value(t.o));
      } else if (measure_set.count(t.p)) {
        double value = 0.0;
        if (!ParseDouble(dict.Value(t.o), &value)) {
          row_error = Status::ParseError(
              "non-numeric measure value on " + dict.Get(obs).ToString() +
              ": " + dict.Get(t.o).ToString());
          return false;
        }
        measure_values.emplace_back(dict.Value(t.p), value);
      }
      return true;
    });
    RDFCUBE_RETURN_IF_ERROR(row_error);
    RDFCUBE_RETURN_IF_ERROR(
        builder.AddObservation(dict.Value(ds), dict.Value(obs),
                               dim_values, measure_values));
  }

  return std::move(builder).Build();
}

}  // namespace qb
}  // namespace rdfcube
