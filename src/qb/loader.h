// Loads a Corpus from an RDF graph using the W3C Data Cube vocabulary.

#ifndef RDFCUBE_QB_LOADER_H_
#define RDFCUBE_QB_LOADER_H_

#include "qb/corpus.h"
#include "rdf/triple_store.h"
#include "base/result.h"

namespace rdfcube {
namespace qb {

/// \brief Options controlling RDF -> Corpus extraction.
struct LoaderOptions {
  /// When a dimension property has no qb:codeList, build a flat code list
  /// from the values observed in the data (root `<dim>/ALL` + one child per
  /// value). When false, such dimensions are an error.
  bool synthesize_flat_code_lists = true;

  /// Treat qb:AttributeProperty components (e.g. sdmx-attr:unitMeasure) as
  /// dimensions, as the paper's corpus does with `unit` (Table 4 lists unit
  /// among the dimensions).
  bool attributes_as_dimensions = true;
};

/// \brief Extracts every qb:DataSet (with its DSD, code lists and
/// observations) from `store` into one Corpus over a shared CubeSpace.
///
/// Expected graph shape (Listing 1 of the paper):
///  * `<ds> a qb:DataSet ; qb:structure <dsd>.`
///  * `<dsd> a qb:DataStructureDefinition ; qb:component [...]` where each
///    component node carries qb:dimension / qb:measure / qb:attribute.
///  * dimension properties may carry `qb:codeList <scheme>`; schemes are SKOS
///    concept schemes with skos:inScheme members and skos:broader links.
///  * `<obs> a qb:Observation ; qb:dataSet <ds> ; <dim> <code> ;
///    <measure> "v"^^xsd:...`.
///
/// Fails with ParseError/NotFound on structurally broken cubes (observation
/// without dataset, unknown code value, non-numeric measure, missing DSD).
[[nodiscard]] Result<Corpus> LoadCorpusFromRdf(const rdf::TripleStore& store,
                                 const LoaderOptions& options = {});

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_LOADER_H_
