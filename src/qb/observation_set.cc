#include "qb/observation_set.h"

#include "hierarchy/code_list.h"

#include <algorithm>

namespace rdfcube {
namespace qb {

Result<DatasetId> ObservationSet::AddDataset(
    const std::string& iri, const std::vector<DimId>& dims,
    const std::vector<MeasureId>& measures) {
  if (space_->num_dimensions() > 64) {
    return Status::ResourceExhausted("at most 64 global dimensions supported");
  }
  DatasetMeta meta;
  meta.iri = iri;
  for (DimId d : dims) {
    if (d >= space_->num_dimensions()) {
      return Status::InvalidArgument("unknown dimension id in dataset schema");
    }
    meta.dim_mask |= (uint64_t{1} << d);
  }
  for (MeasureId m : measures) {
    if (m >= space_->num_measures()) {
      return Status::InvalidArgument("unknown measure id in dataset schema");
    }
    meta.measure_mask |= (uint64_t{1} << m);
  }
  const DatasetId id = static_cast<DatasetId>(datasets_.size());
  datasets_.push_back(std::move(meta));
  return id;
}

Result<ObsId> ObservationSet::AddObservation(
    DatasetId dataset, const std::string& iri,
    const std::vector<std::pair<DimId, hierarchy::CodeId>>& dims,
    const std::vector<std::pair<MeasureId, double>>& measures) {
  if (dataset >= datasets_.size()) {
    return Status::InvalidArgument("unknown dataset id");
  }
  DatasetMeta& meta = datasets_[dataset];
  Observation o;
  o.iri = iri;
  o.dataset = dataset;
  o.dims.assign(space_->num_dimensions(), hierarchy::kNoCode);
  for (const auto& [d, code] : dims) {
    if (d >= space_->num_dimensions()) {
      return Status::InvalidArgument("unknown dimension id on observation " +
                                     iri);
    }
    if ((meta.dim_mask & (uint64_t{1} << d)) == 0) {
      return Status::InvalidArgument("dimension " + space_->dimension_iri(d) +
                                     " not in schema of dataset " + meta.iri);
    }
    if (code >= space_->code_list(d).size()) {
      return Status::InvalidArgument("code id out of range for dimension " +
                                     space_->dimension_iri(d));
    }
    o.dims[d] = code;
  }
  for (const auto& [m, value] : measures) {
    if (m >= space_->num_measures()) {
      return Status::InvalidArgument("unknown measure id on observation " + iri);
    }
    if ((meta.measure_mask & (uint64_t{1} << m)) == 0) {
      return Status::InvalidArgument("measure " + space_->measure_iri(m) +
                                     " not in schema of dataset " + meta.iri);
    }
    if (o.measure_mask & (uint64_t{1} << m)) {
      return Status::InvalidArgument("duplicate measure on observation " + iri);
    }
    o.measure_mask |= (uint64_t{1} << m);
    o.values.emplace_back(m, value);
  }
  std::sort(o.values.begin(), o.values.end());
  const ObsId id = static_cast<ObsId>(observations_.size());
  observations_.push_back(std::move(o));
  meta.observations.push_back(id);
  return id;
}

}  // namespace qb
}  // namespace rdfcube
