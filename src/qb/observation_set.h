// ObservationSet: all observations from all input datasets, dictionary- and
// code-encoded over a CubeSpace. This is the set O of the paper's problem
// statement.

#ifndef RDFCUBE_QB_OBSERVATION_SET_H_
#define RDFCUBE_QB_OBSERVATION_SET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hierarchy/code_list.h"
#include "qb/cube_space.h"
#include "base/result.h"

namespace rdfcube {
namespace qb {

/// Global dense index of an observation across all datasets.
using ObsId = uint32_t;
/// Dense index of a dataset.
using DatasetId = uint32_t;

/// \brief One observation, fully encoded.
struct Observation {
  /// IRI of the observation resource (diagnostics / serialization).
  std::string iri;
  /// Owning dataset.
  DatasetId dataset = 0;
  /// Per-global-dimension code value; kNoCode means the dimension is absent
  /// from the observation's schema, which the paper interprets as the code
  /// list root (`ALL` — no specialization; §3.1).
  std::vector<hierarchy::CodeId> dims;
  /// Bitmask over MeasureId of the measures this observation instantiates.
  uint64_t measure_mask = 0;
  /// Measured values, parallel to the set bits of measure_mask (sorted by
  /// MeasureId).
  std::vector<std::pair<MeasureId, double>> values;
};

/// \brief Metadata of one source dataset (paper Def. 1: D_i = (O_i, S_i)).
struct DatasetMeta {
  std::string iri;
  /// Dimensions declared in the dataset's schema S_i (as a bitmask over
  /// DimId; the corpus has at most 64 global dimensions).
  uint64_t dim_mask = 0;
  /// Measures declared in S_i.
  uint64_t measure_mask = 0;
  /// Observations belonging to this dataset.
  std::vector<ObsId> observations;
};

/// \brief The encoded multi-dataset observation collection.
class ObservationSet {
 public:
  /// The set does not own the space; the space must outlive it.
  explicit ObservationSet(const CubeSpace* space) : space_(space) {}

  const CubeSpace& space() const { return *space_; }

  /// Registers a dataset with its schema (dimension and measure sets).
  [[nodiscard]] Result<DatasetId> AddDataset(const std::string& iri,
                               const std::vector<DimId>& dims,
                               const std::vector<MeasureId>& measures);

  /// Adds an observation to `dataset`. Every dimension key must belong to
  /// the dataset schema; schema dimensions absent from `dims` are encoded as
  /// the code-list root. Measures must belong to the dataset schema.
  [[nodiscard]] Result<ObsId> AddObservation(
      DatasetId dataset, const std::string& iri,
      const std::vector<std::pair<DimId, hierarchy::CodeId>>& dims,
      const std::vector<std::pair<MeasureId, double>>& measures);

  std::size_t size() const { return observations_.size(); }
  std::size_t num_datasets() const { return datasets_.size(); }

  const Observation& obs(ObsId i) const { return observations_[i]; }
  const DatasetMeta& dataset(DatasetId d) const { return datasets_[d]; }

  /// The value of dimension `d` for observation `i`, mapping an absent
  /// dimension to the root (paper §3.1 padding). This is the h_i^j accessor
  /// every algorithm uses.
  hierarchy::CodeId ValueOrRoot(ObsId i, DimId d) const {
    const hierarchy::CodeId c = observations_[i].dims[d];
    return c == hierarchy::kNoCode ? space_->code_list(d).root() : c;
  }

  /// Level of ValueOrRoot(i, d) in the dimension hierarchy.
  uint32_t LevelOf(ObsId i, DimId d) const {
    return space_->code_list(d).level(ValueOrRoot(i, d));
  }

  /// True iff observations i and j share at least one measure (Def. 4
  /// condition (3)).
  bool SharesMeasure(ObsId i, ObsId j) const {
    return (observations_[i].measure_mask & observations_[j].measure_mask) != 0;
  }

 private:
  const CubeSpace* space_;
  std::vector<DatasetMeta> datasets_;
  std::vector<Observation> observations_;
};

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_OBSERVATION_SET_H_
