#include "qb/slice.h"

#include <unordered_map>

#include "hierarchy/code_list.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"

namespace rdfcube {
namespace qb {

namespace {

using rdf::Term;
using rdf::TermId;
using rdf::kNoTerm;
namespace vocab = rdf::vocab;

}  // namespace

Result<std::vector<Slice>> LoadSlicesFromRdf(const rdf::TripleStore& store,
                                             const Corpus& corpus) {
  const rdf::Dictionary& dict = store.dictionary();
  std::vector<Slice> slices;
  auto type = dict.Find(Term::Iri(std::string(vocab::kRdfType)));
  auto slice_cls = dict.Find(Term::Iri(std::string(vocab::kQbSlice)));
  if (!type.has_value() || !slice_cls.has_value()) return slices;
  auto obs_prop = dict.Find(Term::Iri(std::string(vocab::kQbObservationProp)));

  // Observation IRI -> ObsId.
  const ObservationSet& obs_set = *corpus.observations;
  std::unordered_map<std::string, ObsId> obs_by_iri;
  for (ObsId i = 0; i < obs_set.size(); ++i) {
    obs_by_iri.emplace(obs_set.obs(i).iri, i);
  }
  // Dimension IRI -> DimId.
  const CubeSpace& space = *corpus.space;

  for (TermId node : store.SubjectsOf(*type, *slice_cls)) {
    Slice slice;
    slice.iri = dict.Value(node);
    Status error;
    store.Match(node, kNoTerm, kNoTerm, [&](const rdf::Triple& t) {
      const std::string& pred = dict.Value(t.p);
      if (obs_prop.has_value() && t.p == *obs_prop) {
        auto it = obs_by_iri.find(dict.Value(t.o));
        if (it == obs_by_iri.end()) {
          error = Status::ParseError("slice " + slice.iri +
                                     " references unknown observation " +
                                     dict.Value(t.o));
          return false;
        }
        slice.observations.push_back(it->second);
        return true;
      }
      auto dim = space.FindDimension(pred);
      if (dim.has_value()) {
        const hierarchy::CodeList& list = space.code_list(*dim);
        auto code = list.Find(dict.Value(t.o));
        if (!code.has_value()) {
          error = Status::ParseError("slice " + slice.iri +
                                     " fixes unknown code " +
                                     dict.Value(t.o));
          return false;
        }
        slice.fixed.emplace_back(*dim, *code);
      }
      return true;
    });
    RDFCUBE_RETURN_IF_ERROR(error);
    slices.push_back(std::move(slice));
  }
  return slices;
}

std::vector<SliceViolation> ValidateSlices(const std::vector<Slice>& slices,
                                           const Corpus& corpus) {
  std::vector<SliceViolation> violations;
  const ObservationSet& observations = *corpus.observations;
  for (const Slice& slice : slices) {
    for (ObsId member : slice.observations) {
      for (const auto& [dim, code] : slice.fixed) {
        if (observations.ValueOrRoot(member, dim) != code) {
          violations.push_back(
              {slice.iri, observations.obs(member).iri, dim});
        }
      }
    }
  }
  return violations;
}

bool SliceContains(const Slice& a, const Slice& b, const Corpus& corpus) {
  const CubeSpace& space = *corpus.space;
  // Gather fixed values per dimension (root when free).
  auto value_of = [&](const Slice& s, DimId d) {
    for (const auto& [dim, code] : s.fixed) {
      if (dim == d) return code;
    }
    return space.code_list(d).root();
  };
  for (DimId d = 0; d < space.num_dimensions(); ++d) {
    if (!space.code_list(d).IsAncestorOrSelf(value_of(a, d), value_of(b, d))) {
      return false;
    }
  }
  return true;
}

}  // namespace qb
}  // namespace rdfcube
