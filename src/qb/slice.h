// qb:Slice support: a slice fixes a subset of dimension values and groups
// the observations that share them ("parts of datasets", paper §1/§2).
// Slice-level containment gives a coarser, cheaper navigation granularity
// than observation pairs.

#ifndef RDFCUBE_QB_SLICE_H_
#define RDFCUBE_QB_SLICE_H_

#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "hierarchy/code_list.h"
#include "qb/corpus.h"
#include "rdf/triple_store.h"

namespace rdfcube {
namespace qb {

/// \brief One slice: fixed dimension values plus member observations.
struct Slice {
  std::string iri;
  /// Fixed (dimension, value) pairs; dimensions not listed are free.
  std::vector<std::pair<DimId, hierarchy::CodeId>> fixed;
  /// Member observations (resolved to ObsIds of the corpus).
  std::vector<ObsId> observations;
};

/// \brief Extracts every `qb:Slice` from `store` against an already-loaded
/// corpus: fixed values come from the slice node's dimension-property
/// triples, members from `qb:observation` links.
///
/// Fails with ParseError when a slice references an observation absent from
/// the corpus or fixes an unknown dimension/code.
[[nodiscard]] Result<std::vector<Slice>> LoadSlicesFromRdf(const rdf::TripleStore& store,
                                             const Corpus& corpus);

/// \brief One consistency finding: a member observation whose value on a
/// fixed dimension differs from the slice's fixed value (QB IC-18 analogue).
struct SliceViolation {
  std::string slice_iri;
  std::string observation_iri;
  DimId dimension;
};

/// Checks every member of every slice against the fixed values.
std::vector<SliceViolation> ValidateSlices(const std::vector<Slice>& slices,
                                           const Corpus& corpus);

/// True iff slice `a` dimensionally contains slice `b`: on every dimension,
/// a's fixed value (root when free) is an ancestor-or-self of b's. The
/// slice-level analogue of Cont_full, usable as a coarse pre-filter.
bool SliceContains(const Slice& a, const Slice& b, const Corpus& corpus);

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_SLICE_H_
