#include "qb/validate.h"

#include "hierarchy/code_list.h"

#include <unordered_map>
#include <unordered_set>

namespace rdfcube {
namespace qb {

namespace {

// Hash of an observation's full dimension-value vector (root-padded).
std::size_t KeyHash(const ObservationSet& observations, ObsId i) {
  std::size_t h = 1469598103934665603ull;
  for (DimId d = 0; d < observations.space().num_dimensions(); ++d) {
    h ^= observations.ValueOrRoot(i, d);
    h *= 1099511628211ull;
  }
  return h;
}

bool SameKey(const ObservationSet& observations, ObsId a, ObsId b) {
  for (DimId d = 0; d < observations.space().num_dimensions(); ++d) {
    if (observations.ValueOrRoot(a, d) != observations.ValueOrRoot(b, d)) return false;
  }
  return true;
}

}  // namespace

ValidationReport ValidateCorpus(const Corpus& corpus) {
  ValidationReport report;
  const ObservationSet& observations = *corpus.observations;
  const CubeSpace& space = *corpus.space;

  for (DatasetId ds = 0; ds < observations.num_datasets(); ++ds) {
    const DatasetMeta& meta = observations.dataset(ds);
    if (meta.observations.empty()) {
      report.issues.push_back(
          {ValidationIssue::Kind::kEmptyDataset, meta.iri});
      continue;
    }
    // IC-12 analogue: no two observations of one dataset may share all
    // dimension values.
    std::unordered_map<std::size_t, std::vector<ObsId>> buckets;
    for (ObsId i : meta.observations) {
      auto& bucket = buckets[KeyHash(observations, i)];
      for (ObsId j : bucket) {
        if (SameKey(observations, i, j)) {
          report.issues.push_back({ValidationIssue::Kind::kDuplicateKey,
                                   meta.iri + ": " + observations.obs(i).iri + " vs " +
                                       observations.obs(j).iri});
          break;
        }
      }
      bucket.push_back(i);
    }
    // Observations without any measure.
    for (ObsId i : meta.observations) {
      if (observations.obs(i).measure_mask == 0) {
        report.issues.push_back(
            {ValidationIssue::Kind::kNoMeasure, observations.obs(i).iri});
      }
    }
    // Schema dimensions never instantiated below root.
    for (DimId d = 0; d < space.num_dimensions(); ++d) {
      if ((meta.dim_mask & (uint64_t{1} << d)) == 0) continue;
      bool used = false;
      for (ObsId i : meta.observations) {
        const hierarchy::CodeId c = observations.obs(i).dims[d];
        if (c != hierarchy::kNoCode && c != space.code_list(d).root()) {
          used = true;
          break;
        }
      }
      if (!used) {
        report.issues.push_back({ValidationIssue::Kind::kUnusedDimension,
                                 meta.iri + ": " + space.dimension_iri(d)});
      }
    }
  }
  return report;
}

std::string FormatReport(const ValidationReport& report) {
  if (report.ok()) return "corpus OK\n";
  std::string out;
  for (const ValidationIssue& issue : report.issues) {
    switch (issue.kind) {
      case ValidationIssue::Kind::kDuplicateKey:
        out += "duplicate-key: ";
        break;
      case ValidationIssue::Kind::kEmptyDataset:
        out += "empty-dataset: ";
        break;
      case ValidationIssue::Kind::kNoMeasure:
        out += "no-measure: ";
        break;
      case ValidationIssue::Kind::kUnusedDimension:
        out += "unused-dimension: ";
        break;
    }
    out += issue.detail;
    out.push_back('\n');
  }
  return out;
}

}  // namespace qb
}  // namespace rdfcube
