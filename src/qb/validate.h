// Well-formedness checks over a built Corpus, modeled on the normative
// integrity constraints of the W3C Data Cube recommendation (IC-1, IC-11,
// IC-12 analogues) restricted to the parts this system relies on.

#ifndef RDFCUBE_QB_VALIDATE_H_
#define RDFCUBE_QB_VALIDATE_H_

#include <string>
#include <vector>

#include "qb/corpus.h"

namespace rdfcube {
namespace qb {

/// \brief One validation finding.
struct ValidationIssue {
  enum class Kind {
    kDuplicateKey,        // two observations in one dataset share all
                          // dimension values (QB IC-12)
    kEmptyDataset,        // dataset declares no observations
    kNoMeasure,           // observation carries no measure value
    kUnusedDimension,     // dataset schema dimension never instantiated by
                          // any of its observations (always root)
  };
  Kind kind;
  std::string detail;
};

/// \brief Result of ValidateCorpus.
struct ValidationReport {
  std::vector<ValidationIssue> issues;
  bool ok() const { return issues.empty(); }
};

/// Runs all checks; never fails hard — structural errors are caught earlier
/// by the builder/loader, these are data-quality findings.
ValidationReport ValidateCorpus(const Corpus& corpus);

/// Human-readable rendering of a report.
std::string FormatReport(const ValidationReport& report);

}  // namespace qb
}  // namespace rdfcube

#endif  // RDFCUBE_QB_VALIDATE_H_
