// Dictionary encoding: Term <-> dense integer TermId.

#ifndef RDFCUBE_RDF_DICTIONARY_H_
#define RDFCUBE_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace rdfcube {
namespace rdf {

/// Dense identifier of a term within one Dictionary. Ids start at 0 and are
/// assigned in first-seen order, so they double as stable array indexes.
using TermId = uint32_t;

/// Sentinel "no term" id (used for wildcards in triple patterns).
inline constexpr TermId kNoTerm = UINT32_MAX;

/// \brief Bidirectional Term <-> TermId mapping.
///
/// All triples in a TripleStore are dictionary-encoded; the algorithms in
/// src/core operate purely on ids, which keeps the occurrence matrix and
/// hierarchy structures integer-indexed (RocksDB-style: keep the hot path on
/// integers, strings only at the edges).
class Dictionary {
 public:
  /// Returns the id of `term`, interning it if previously unseen.
  TermId Intern(const Term& term);

  /// Looks up an existing term; returns std::nullopt if not interned.
  std::optional<TermId> Find(const Term& term) const;

  /// Returns the term with the given id. Precondition: id < size().
  const Term& Get(TermId id) const { return terms_[id]; }

  /// Returns the lexical form of the term with the given id: shorthand for
  /// Get(id).value(). Term::value() is a plain accessor — every interned
  /// Term has a lexical form, there is nothing to check — which is why the
  /// checked-value suppression lives here instead of at every call site.
  /// Precondition: id < size().
  const std::string& Value(TermId id) const {
    return Get(id).value();  // lint:allow(checked-value): Term accessor
  }

  std::size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<Term, TermId, TermHash> ids_;
  std::vector<Term> terms_;
};

}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_DICTIONARY_H_
