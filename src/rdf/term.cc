#include "rdf/term.h"

namespace rdfcube {
namespace rdf {

namespace {

// Escapes backslash, quote, and control characters per N-Triples rules.
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
}

}  // namespace

std::string Term::ToString() const {
  std::string out;
  switch (kind_) {
    case TermKind::kIri:
      out.push_back('<');
      out += value_;
      out.push_back('>');
      break;
    case TermKind::kBlank:
      out += "_:";
      out += value_;
      break;
    case TermKind::kLiteral:
      out.push_back('"');
      AppendEscaped(value_, &out);
      out.push_back('"');
      if (!lang_.empty()) {
        out.push_back('@');
        out += lang_;
      } else if (!datatype_.empty()) {
        out += "^^<";
        out += datatype_;
        out.push_back('>');
      }
      break;
  }
  return out;
}

}  // namespace rdf
}  // namespace rdfcube
