// RDF terms: IRIs, literals, and blank nodes.

#ifndef RDFCUBE_RDF_TERM_H_
#define RDFCUBE_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace rdfcube {
namespace rdf {

/// \brief The kind of an RDF term.
enum class TermKind : unsigned char {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// \brief One RDF term.
///
/// Literals carry an optional datatype IRI and language tag (mutually
/// exclusive per RDF 1.1; plain literals have neither). IRIs and blank nodes
/// store only their lexical value (blank label without the "_:" prefix).
class Term {
 public:
  Term() : kind_(TermKind::kIri) {}

  /// Creates an IRI term.
  static Term Iri(std::string value) {
    Term t;
    t.kind_ = TermKind::kIri;
    t.value_ = std::move(value);
    return t;
  }

  /// Creates a plain literal (no datatype, no language).
  static Term Literal(std::string value) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.value_ = std::move(value);
    return t;
  }

  /// Creates a typed literal, e.g. "42"^^xsd:integer.
  static Term TypedLiteral(std::string value, std::string datatype_iri) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.value_ = std::move(value);
    t.datatype_ = std::move(datatype_iri);
    return t;
  }

  /// Creates a language-tagged literal, e.g. "Athens"@en.
  static Term LangLiteral(std::string value, std::string lang) {
    Term t;
    t.kind_ = TermKind::kLiteral;
    t.value_ = std::move(value);
    t.lang_ = std::move(lang);
    return t;
  }

  /// Creates a blank node with the given label (no "_:" prefix).
  static Term Blank(std::string label) {
    Term t;
    t.kind_ = TermKind::kBlank;
    t.value_ = std::move(label);
    return t;
  }

  TermKind kind() const { return kind_; }
  bool IsIri() const { return kind_ == TermKind::kIri; }
  bool IsLiteral() const { return kind_ == TermKind::kLiteral; }
  bool IsBlank() const { return kind_ == TermKind::kBlank; }

  /// Lexical value: IRI string, literal lexical form, or blank label.
  const std::string& value() const { return value_; }

  /// Datatype IRI for typed literals; empty otherwise.
  const std::string& datatype() const { return datatype_; }

  /// Language tag for language literals; empty otherwise.
  const std::string& lang() const { return lang_; }

  bool operator==(const Term& o) const {
    return kind_ == o.kind_ && value_ == o.value_ && datatype_ == o.datatype_ &&
           lang_ == o.lang_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  /// Deterministic ordering (kind, value, datatype, lang) for sorted indexes.
  bool operator<(const Term& o) const {
    if (kind_ != o.kind_) return kind_ < o.kind_;
    if (value_ != o.value_) return value_ < o.value_;
    if (datatype_ != o.datatype_) return datatype_ < o.datatype_;
    return lang_ < o.lang_;
  }

  /// N-Triples style rendering: <iri>, "lit"^^<dt>, "lit"@lang, _:label.
  std::string ToString() const;

 private:
  TermKind kind_;
  std::string value_;
  std::string datatype_;
  std::string lang_;
};

/// Hash over all term components, usable with std::unordered_map.
struct TermHash {
  std::size_t operator()(const Term& t) const {
    std::size_t h = std::hash<std::string>()(t.value());
    h = h * 31 + static_cast<std::size_t>(t.kind());
    h = h * 31 + std::hash<std::string>()(t.datatype());
    h = h * 31 + std::hash<std::string>()(t.lang());
    return h;
  }
};

}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_TERM_H_
