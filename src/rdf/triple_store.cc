#include "rdf/triple_store.h"

#include <algorithm>
#include <utility>

namespace rdfcube {
namespace rdf {

namespace {

// Key extraction per permutation: returns (a, b, c) in index order.
struct SpoKey {
  static Triple Reorder(const Triple& t) { return t; }
};
struct PosKey {
  static Triple Reorder(const Triple& t) { return Triple{t.p, t.o, t.s}; }
};
struct OspKey {
  static Triple Reorder(const Triple& t) { return Triple{t.o, t.s, t.p}; }
};

bool LessSpo(const Triple& x, const Triple& y) {
  if (x.s != y.s) return x.s < y.s;
  if (x.p != y.p) return x.p < y.p;
  return x.o < y.o;
}
bool LessPos(const Triple& x, const Triple& y) {
  if (x.p != y.p) return x.p < y.p;
  if (x.o != y.o) return x.o < y.o;
  return x.s < y.s;
}
bool LessOsp(const Triple& x, const Triple& y) {
  if (x.o != y.o) return x.o < y.o;
  if (x.s != y.s) return x.s < y.s;
  return x.p < y.p;
}

// Scans the sorted run of `index` whose first (and optionally second / third)
// components equal the bound values; wildcard components are kNoTerm.
// `get1/get2/get3` project a triple onto the index's component order.
template <typename Less, typename Get1, typename Get2, typename Get3>
void ScanIndex(const std::vector<Triple>& index, TermId k1, TermId k2,
               TermId k3, Less less, Get1 get1, Get2 get2, Get3 get3,
               const std::function<bool(const Triple&)>& fn) {
  (void)less;
  // Binary search the start of the k1 run.
  auto lo = std::partition_point(index.begin(), index.end(),
                                 [&](const Triple& t) { return get1(t) < k1; });
  for (auto it = lo; it != index.end() && get1(*it) == k1; ++it) {
    if (k2 != kNoTerm && get2(*it) != k2) {
      if (get2(*it) > k2) break;  // sorted: run for k2 is over
      continue;
    }
    if (k3 != kNoTerm && get3(*it) != k3) continue;
    if (!fn(*it)) return;
  }
}

}  // namespace

TripleStore::TripleStore(const TripleStore& other) { *this = other; }

TripleStore& TripleStore::operator=(const TripleStore& other) {
  if (this == &other) return *this;
  // Snapshot the source's lazy-index state under its own lock (a concurrent
  // const Match() on `other` may be mid-rebuild), then install it under
  // ours. Two sequential critical sections, so no two-lock ordering to get
  // wrong and self-assignment aside, no deadlock is possible.
  bool valid;
  std::vector<Triple> spo, pos, osp;
  {
    MutexLock lock(&other.index_mu_);
    valid = other.indexes_valid_;
    spo = other.spo_;
    pos = other.pos_;
    osp = other.osp_;
  }
  dict_ = other.dict_;
  triples_ = other.triples_;
  seen_ = other.seen_;
  {
    MutexLock lock(&index_mu_);
    indexes_valid_ = valid;
    spo_ = std::move(spo);
    pos_ = std::move(pos);
    osp_ = std::move(osp);
  }
  return *this;
}

TripleStore::TripleStore(TripleStore&& other) noexcept {
  *this = std::move(other);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) return *this;
  bool valid;
  std::vector<Triple> spo, pos, osp;
  {
    MutexLock lock(&other.index_mu_);
    valid = other.indexes_valid_;
    spo = std::move(other.spo_);
    pos = std::move(other.pos_);
    osp = std::move(other.osp_);
    other.indexes_valid_ = false;
  }
  dict_ = std::move(other.dict_);
  triples_ = std::move(other.triples_);
  seen_ = std::move(other.seen_);
  {
    MutexLock lock(&index_mu_);
    indexes_valid_ = valid;
    spo_ = std::move(spo);
    pos_ = std::move(pos);
    osp_ = std::move(osp);
  }
  return *this;
}

bool TripleStore::Insert(const Term& s, const Term& p, const Term& o) {
  return InsertEncoded(
      Triple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

bool TripleStore::InsertEncoded(const Triple& t) {
  auto [it, inserted] = seen_.emplace(t, true);
  (void)it;
  if (!inserted) return false;
  triples_.push_back(t);
  // Mutation requires external synchronization, but the invalidation still
  // takes the index lock: it is a cold path, and it keeps every write to the
  // guarded lazy-index state under its capability.
  MutexLock lock(&index_mu_);
  indexes_valid_ = false;
  return true;
}

void TripleStore::EnsureIndexes() const {
  // Serializes the lazy rebuild so concurrent const readers are safe: the
  // first Match after a mutation builds under the lock, later ones see
  // indexes_valid_ and read the vectors happens-after the build.
  MutexLock lock(&index_mu_);
  if (indexes_valid_) return;
  spo_ = triples_;
  std::sort(spo_.begin(), spo_.end(), LessSpo);
  pos_ = triples_;
  std::sort(pos_.begin(), pos_.end(), LessPos);
  osp_ = triples_;
  std::sort(osp_.begin(), osp_.end(), LessOsp);
  indexes_valid_ = true;
}

void TripleStore::Match(TermId s, TermId p, TermId o,
                        const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexes();
  const auto get_s = [](const Triple& t) { return t.s; };
  const auto get_p = [](const Triple& t) { return t.p; };
  const auto get_o = [](const Triple& t) { return t.o; };
  if (s != kNoTerm) {
    ScanIndex(spo_, s, p, o, LessSpo, get_s, get_p, get_o, fn);
    return;
  }
  if (p != kNoTerm) {
    ScanIndex(pos_, p, o, s, LessPos, get_p, get_o, get_s, fn);
    return;
  }
  if (o != kNoTerm) {
    ScanIndex(osp_, o, s, p, LessOsp, get_o, get_s, get_p, fn);
    return;
  }
  // Fully unbound: scan everything.
  for (const Triple& t : spo_) {
    if (!fn(t)) return;
  }
}

std::vector<Triple> TripleStore::MatchAll(TermId s, TermId p, TermId o) const {
  std::vector<Triple> out;
  Match(s, p, o, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

TermId TripleStore::ObjectOf(TermId s, TermId p) const {
  TermId result = kNoTerm;
  Match(s, p, kNoTerm, [&](const Triple& t) {
    result = t.o;
    return false;
  });
  return result;
}

std::vector<TermId> TripleStore::ObjectsOf(TermId s, TermId p) const {
  std::vector<TermId> out;
  Match(s, p, kNoTerm, [&](const Triple& t) {
    out.push_back(t.o);
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::SubjectsOf(TermId p, TermId o) const {
  std::vector<TermId> out;
  Match(kNoTerm, p, o, [&](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  return out;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  return seen_.find(Triple{s, p, o}) != seen_.end();
}

}  // namespace rdf
}  // namespace rdfcube
