// In-memory dictionary-encoded triple store with SPO/POS/OSP indexes.

#ifndef RDFCUBE_RDF_TRIPLE_STORE_H_
#define RDFCUBE_RDF_TRIPLE_STORE_H_

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "base/thread_annotations.h"

namespace rdfcube {
namespace rdf {

/// \brief One dictionary-encoded triple.
struct Triple {
  TermId s;
  TermId p;
  TermId o;

  bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
};

/// \brief In-memory triple store.
///
/// Triples are appended to a log; three sorted permutation indexes (SPO, POS,
/// OSP) are built lazily on first pattern access after a mutation, then reused
/// (the workload is load-once / query-many, as in the paper's batch setting).
/// Pattern matching picks the index with the longest bound prefix and binary-
/// searches the matching run.
///
/// Thread-safety: const accessors (Match and friends) may run concurrently;
/// the lazy index rebuild is internally synchronized. Mutation (Insert)
/// requires external synchronization against all other access.
class TripleStore {
 public:
  TripleStore() = default;

  // Copyable and movable despite the index mutex: the guard protects
  // per-instance state, so the destination simply gets a fresh one. The
  // source's lazy-index state is read under its own index_mu_, so copying
  // from a store whose indexes a concurrent const Match() is rebuilding is
  // safe (mutating the source concurrently remains a caller error, as for
  // any copy). Implemented in the .cc — the locking discipline lives with
  // EnsureIndexes().
  TripleStore(const TripleStore& other);
  TripleStore& operator=(const TripleStore& other);
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// Interns the terms and inserts the triple. Duplicate triples are ignored
  /// (RDF graphs are sets). Returns true if the triple was new.
  bool Insert(const Term& s, const Term& p, const Term& o);

  /// Inserts a pre-encoded triple (terms must come from dictionary()).
  bool InsertEncoded(const Triple& t);

  /// Number of distinct triples.
  std::size_t size() const { return triples_.size(); }

  const Dictionary& dictionary() const { return dict_; }
  Dictionary& dictionary() { return dict_; }

  /// Calls `fn` for every triple matching the pattern; kNoTerm components are
  /// wildcards. Returning false from `fn` stops iteration early.
  // no_thread_safety_analysis: the scan reads the index vectors lock-free
  // after EnsureIndexes() (see the index_mu_ comment below); holding the
  // rebuild lock for the whole scan would serialize all readers.
  void Match(TermId s, TermId p, TermId o,
             const std::function<bool(const Triple&)>& fn) const
      RDFCUBE_NO_THREAD_SAFETY_ANALYSIS;

  /// Convenience: all matches collected into a vector.
  std::vector<Triple> MatchAll(TermId s, TermId p, TermId o) const;

  /// Convenience: the object of the first (s, p, *) match, or kNoTerm.
  TermId ObjectOf(TermId s, TermId p) const;

  /// Convenience: all objects of (s, p, *) matches.
  std::vector<TermId> ObjectsOf(TermId s, TermId p) const;

  /// Convenience: all subjects of (*, p, o) matches.
  std::vector<TermId> SubjectsOf(TermId p, TermId o) const;

  /// True iff the fully-ground triple is present.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// All triples in insertion order (for serialization).
  const std::vector<Triple>& triples() const { return triples_; }

 private:
  enum class IndexKind { kSpo, kPos, kOsp };

  void EnsureIndexes() const RDFCUBE_EXCLUDES(index_mu_);

  Dictionary dict_;
  std::vector<Triple> triples_;
  // Hashes of inserted triples for duplicate suppression.
  struct TripleHash {
    std::size_t operator()(const Triple& t) const {
      std::size_t h = t.s;
      h = h * 1000003 + t.p;
      h = h * 1000003 + t.o;
      return h;
    }
  };
  std::unordered_map<Triple, bool, TripleHash> seen_;

  // Lazily maintained sorted permutations. mutable: rebuilt from const Match.
  // index_mu_ serializes the rebuild so concurrent const readers never race
  // on it (mutation still requires external synchronization, as usual).
  // Writes happen only inside EnsureIndexes() and the copy/move special
  // members, all under the lock; steady-state reads in Match() are lock-free
  // by the external-synchronization contract (no writer can exist then) and
  // are marked no_thread_safety_analysis rather than silently unguarded.
  mutable Mutex index_mu_;
  mutable bool indexes_valid_ RDFCUBE_GUARDED_BY(index_mu_) = false;
  mutable std::vector<Triple> spo_ RDFCUBE_GUARDED_BY(index_mu_);
  mutable std::vector<Triple> pos_ RDFCUBE_GUARDED_BY(index_mu_);
  mutable std::vector<Triple> osp_ RDFCUBE_GUARDED_BY(index_mu_);
};

}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_TRIPLE_STORE_H_
