#include "rdf/turtle_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "rdf/vocab.h"
#include "base/result.h"
#include "base/untrusted.h"

namespace rdfcube {
namespace rdf {

namespace {

// Hard cap on any single accumulated term (IRI, local name, literal value).
// Real vocabulary terms are a few hundred bytes; a malicious document must
// not grow an unbounded std::string one byte at a time (taint gate,
// DESIGN.md §5h).
constexpr std::size_t kMaxTermBytes = std::size_t{1} << 20;

// Recursive-descent parser over the raw text. Keeps a prefix map and a base
// IRI; produces triples directly into the store.
class Parser {
 public:
  Parser(std::string_view text, TripleStore* store)
      : text_(text), store_(store) {}

  Status Run() {
    while (true) {
      SkipWs();
      if (AtEnd()) return Status::OK();
      if (Peek() == '@' || PeekKeyword("PREFIX") || PeekKeyword("BASE")) {
        RDFCUBE_RETURN_IF_ERROR(ParseDirective());
        continue;
      }
      RDFCUBE_RETURN_IF_ERROR(ParseTriplesBlock());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Advance() { return text_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    if (pos_ + kw.size() > text_.size()) return false;
    for (std::size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    return true;
  }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
        continue;
      }
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      return;
    }
  }

  Status ErrorHere(std::string_view msg) const {
    return Status::ParseError("turtle line " + std::to_string(line_) + ": " +
                              std::string(msg));
  }

  Status Expect(char c) {
    SkipWs();
    if (AtEnd() || Peek() != c) {
      return ErrorHere(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseDirective() {
    const bool at_form = Peek() == '@';
    if (at_form) ++pos_;
    if (PeekKeyword("PREFIX")) {
      pos_ += 6;
      SkipWs();
      // prefix name up to ':'
      std::string prefix;
      while (!AtEnd() && Peek() != ':') prefix.push_back(Advance());
      RDFCUBE_RETURN_IF_ERROR(Expect(':'));
      SkipWs();
      RDFCUBE_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      prefixes_[prefix] = iri;
      if (at_form) RDFCUBE_RETURN_IF_ERROR(Expect('.'));
      return Status::OK();
    }
    if (PeekKeyword("BASE")) {
      pos_ += 4;
      SkipWs();
      RDFCUBE_ASSIGN_OR_RETURN(base_, ParseIriRef());
      if (at_form) RDFCUBE_RETURN_IF_ERROR(Expect('.'));
      return Status::OK();
    }
    return ErrorHere("unknown directive");
  }

  // subject predicateObjectList '.'
  Status ParseTriplesBlock() {
    RDFCUBE_ASSIGN_OR_RETURN(Term subject, ParseSubject());
    while (true) {
      SkipWs();
      RDFCUBE_ASSIGN_OR_RETURN(Term predicate, ParsePredicate());
      while (true) {
        RDFCUBE_ASSIGN_OR_RETURN(Term object, ParseObject());
        store_->Insert(subject, predicate, object);
        SkipWs();
        if (!AtEnd() && Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (!AtEnd() && Peek() == ';') {
        ++pos_;
        SkipWs();
        // Tolerate trailing ';' before '.'
        if (!AtEnd() && Peek() == '.') break;
        continue;
      }
      break;
    }
    return Expect('.');
  }

  Result<Term> ParseSubject() {
    SkipWs();
    if (AtEnd()) return ErrorHere("expected subject");
    const char c = Peek();
    if (c == '<') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    if (c == '_') return ParseBlank();
    if (c == '[') return ParseAnonBlank();
    return ParsePrefixedName();
  }

  Result<Term> ParsePredicate() {
    SkipWs();
    if (AtEnd()) return ErrorHere("expected predicate");
    const char c = Peek();
    if (c == 'a') {
      // 'a' keyword only when followed by whitespace.
      if (pos_ + 1 < text_.size() &&
          std::isspace(static_cast<unsigned char>(text_[pos_ + 1]))) {
        ++pos_;
        return Term::Iri(std::string(vocab::kRdfType));
      }
    }
    if (c == '<') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    return ParsePrefixedName();
  }

  Result<Term> ParseObject() {
    SkipWs();
    if (AtEnd()) return ErrorHere("expected object");
    const char c = Peek();
    if (c == '<') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    if (c == '"' || c == '\'') return ParseStringLiteral();
    if (c == '_') return ParseBlank();
    if (c == '[') return ParseAnonBlank();
    if (c == '(') return ErrorHere("RDF collections are not supported");
    if (c == '+' || c == '-' || c == '.' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumericLiteral();
    }
    if (PeekKeyword("TRUE") &&
        !IsNameChar(pos_ + 4 < text_.size() ? text_[pos_ + 4] : ' ')) {
      pos_ += 4;
      return Term::TypedLiteral("true",
                                "http://www.w3.org/2001/XMLSchema#boolean");
    }
    if (PeekKeyword("FALSE") &&
        !IsNameChar(pos_ + 5 < text_.size() ? text_[pos_ + 5] : ' ')) {
      pos_ += 5;
      return Term::TypedLiteral("false",
                                "http://www.w3.org/2001/XMLSchema#boolean");
    }
    return ParsePrefixedName();
  }

  Result<std::string> ParseIriRef() {
    SkipWs();
    if (AtEnd() || Peek() != '<') return ErrorHere("expected '<'");
    ++pos_;
    std::string iri;
    while (!AtEnd() && Peek() != '>') {
      if (Peek() == '\n') return ErrorHere("newline inside IRI");
      if (iri.size() >= kMaxTermBytes) return ErrorHere("IRI too long");
      iri.push_back(Advance());
    }
    if (AtEnd()) return ErrorHere("unterminated IRI");
    ++pos_;  // '>'
    if (!base_.empty() && iri.find("://") == std::string::npos) {
      iri = base_ + iri;
    }
    return iri;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == '%';
  }

  Result<Term> ParsePrefixedName() {
    std::string prefix;
    while (!AtEnd() && Peek() != ':' && IsNameChar(Peek())) {
      prefix.push_back(Advance());
    }
    if (AtEnd() || Peek() != ':') {
      return ErrorHere("expected prefixed name (missing ':' after '" + prefix +
                       "')");
    }
    ++pos_;
    std::string local;
    while (!AtEnd() && IsNameChar(Peek())) {
      // A '.' followed by whitespace/EOF terminates the statement, not the
      // local name (Turtle's PN_LOCAL cannot end in '.').
      if (Peek() == '.') {
        const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : ' ';
        if (!IsNameChar(next) || next == '.') break;
      }
      if (local.size() >= kMaxTermBytes) {
        return ErrorHere("local name too long");
      }
      local.push_back(Advance());
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return ErrorHere("undefined prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  Result<Term> ParseBlank() {
    // "_:" label
    if (pos_ + 1 >= text_.size() || text_[pos_] != '_' ||
        text_[pos_ + 1] != ':') {
      return ErrorHere("expected blank node");
    }
    pos_ += 2;
    std::string label;
    while (!AtEnd() && IsNameChar(Peek())) label.push_back(Advance());
    if (label.empty()) return ErrorHere("empty blank node label");
    return Term::Blank(std::move(label));
  }

  Result<Term> ParseAnonBlank() {
    ++pos_;  // '['
    SkipWs();
    if (AtEnd() || Peek() != ']') {
      return ErrorHere("blank node property lists are not supported");
    }
    ++pos_;
    return Term::Blank("anon" + std::to_string(anon_counter_++));
  }

  Result<Term> ParseStringLiteral() {
    const char quote = Advance();
    // Check for long quotes (""" / ''') — treat as unsupported for clarity.
    if (pos_ + 1 < text_.size() && text_[pos_] == quote &&
        text_[pos_ + 1] == quote) {
      return ErrorHere("long (triple-quoted) literals are not supported");
    }
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) return ErrorHere("dangling escape in literal");
        const char esc = Advance();
        switch (esc) {
          case 'n':
            value.push_back('\n');
            break;
          case 'r':
            value.push_back('\r');
            break;
          case 't':
            value.push_back('\t');
            break;
          case '"':
          case '\'':
          case '\\':
            value.push_back(esc);
            break;
          default:
            return ErrorHere(std::string("unsupported escape '\\") + esc + "'");
        }
        continue;
      }
      if (c == '\n') ++line_;
      if (value.size() >= kMaxTermBytes) {
        return ErrorHere("string literal too long");
      }
      value.push_back(c);
    }
    if (AtEnd()) return ErrorHere("unterminated string literal");
    ++pos_;  // closing quote
    // Optional @lang or ^^datatype.
    if (!AtEnd() && Peek() == '@') {
      ++pos_;
      std::string lang;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        lang.push_back(Advance());
      }
      if (lang.empty()) return ErrorHere("empty language tag");
      return Term::LangLiteral(std::move(value), std::move(lang));
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      SkipWs();
      if (!AtEnd() && Peek() == '<') {
        RDFCUBE_ASSIGN_OR_RETURN(std::string dt, ParseIriRef());
        return Term::TypedLiteral(std::move(value), std::move(dt));
      }
      RDFCUBE_ASSIGN_OR_RETURN(Term dt_term, ParsePrefixedName());
      return Term::TypedLiteral(std::move(value), dt_term.value());
    }
    return Term::Literal(std::move(value));
  }

  Result<Term> ParseNumericLiteral() {
    std::string num;
    bool is_decimal = false;
    bool is_double = false;
    if (Peek() == '+' || Peek() == '-') num.push_back(Advance());
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        num.push_back(Advance());
        continue;
      }
      if (c == '.') {
        // '.' is the statement terminator unless followed by a digit.
        const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : ' ';
        if (!std::isdigit(static_cast<unsigned char>(next))) break;
        is_decimal = true;
        num.push_back(Advance());
        continue;
      }
      if (c == 'e' || c == 'E') {
        is_double = true;
        num.push_back(Advance());
        if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
          num.push_back(Advance());
        }
        continue;
      }
      break;
    }
    if (num.empty() || num == "+" || num == "-") {
      return ErrorHere("malformed numeric literal");
    }
    std::string dt(is_double ? "http://www.w3.org/2001/XMLSchema#double"
                   : is_decimal
                       ? "http://www.w3.org/2001/XMLSchema#decimal"
                       : "http://www.w3.org/2001/XMLSchema#integer");
    return Term::TypedLiteral(std::move(num), std::move(dt));
  }

  std::string_view text_;
  TripleStore* store_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t anon_counter_ = 0;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

RDFCUBE_TAINT_SOURCE Status ParseTurtle(std::string_view text,
                                        TripleStore* store) {
  Parser parser(text, store);
  return parser.Run();
}

Status ParseTurtleFile(const std::string& path, TripleStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTurtle(buf.str(), store);
}

}  // namespace rdf
}  // namespace rdfcube
