// Turtle parser (W3C Turtle subset sufficient for QB / SKOS data).

#ifndef RDFCUBE_RDF_TURTLE_PARSER_H_
#define RDFCUBE_RDF_TURTLE_PARSER_H_

#include <string_view>

#include "rdf/triple_store.h"
#include "base/status.h"

namespace rdfcube {
namespace rdf {

/// \brief Parses Turtle text into a TripleStore.
///
/// Supported syntax:
///  * `@prefix` / `@base` directives (and SPARQL-style `PREFIX` / `BASE`),
///  * IRIs in angle brackets, prefixed names, and the `a` keyword,
///  * predicate lists (`;`) and object lists (`,`),
///  * string literals with `\"` escapes, `^^` datatypes, `@lang` tags,
///  * numeric shorthand literals (integer / decimal / double),
///  * boolean shorthand literals (`true` / `false`),
///  * blank node labels (`_:b1`) and anonymous nodes `[]` (without property
///    lists),
///  * `#` comments.
///
/// Unsupported (rejected with Status::ParseError): collections `( ... )` and
/// nested blank-node property lists `[ p o ]` — the paper's datasets do not
/// use them.
///
/// Errors carry a line number. Parsing stops at the first error; triples
/// already parsed remain in `store`.
[[nodiscard]] Status ParseTurtle(std::string_view text, TripleStore* store);

/// Reads a file from disk and parses it with ParseTurtle.
[[nodiscard]] Status ParseTurtleFile(const std::string& path, TripleStore* store);

}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_TURTLE_PARSER_H_
