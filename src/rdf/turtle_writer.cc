#include "rdf/turtle_writer.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "util/string_util.h"

namespace rdfcube {
namespace rdf {

std::string WriteNTriples(const TripleStore& store) {
  std::string out;
  const Dictionary& dict = store.dictionary();
  for (const Triple& t : store.triples()) {
    out += dict.Get(t.s).ToString();
    out.push_back(' ');
    out += dict.Get(t.p).ToString();
    out.push_back(' ');
    out += dict.Get(t.o).ToString();
    out += " .\n";
  }
  return out;
}

namespace {

// Renders a term in Turtle syntax, compressing IRIs with the prefix table.
std::string RenderTerm(
    const Term& t,
    const std::vector<std::pair<std::string, std::string>>& prefixes) {
  if (t.IsIri()) {
    for (const auto& [prefix, ns] : prefixes) {
      if (StartsWith(t.value(), ns)) {
        const std::string_view local(t.value().data() + ns.size(),
                                     t.value().size() - ns.size());
        // Only compress when the local part is a simple name.
        bool simple = !local.empty();
        for (char c : local) {
          if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '-')) {
            simple = false;
            break;
          }
        }
        if (simple) return prefix + ":" + std::string(local);
      }
    }
  }
  return t.ToString();
}

}  // namespace

std::string WriteTurtle(
    const TripleStore& store,
    const std::vector<std::pair<std::string, std::string>>& prefixes) {
  std::string out;
  for (const auto& [prefix, ns] : prefixes) {
    out += "@prefix " + prefix + ": <" + ns + "> .\n";
  }
  out.push_back('\n');

  // Group triples by subject, preserving first-seen subject order.
  const Dictionary& dict = store.dictionary();
  std::vector<TermId> subject_order;
  std::map<TermId, std::vector<Triple>> by_subject;
  for (const Triple& t : store.triples()) {
    auto [it, inserted] = by_subject.try_emplace(t.s);
    if (inserted) subject_order.push_back(t.s);
    it->second.push_back(t);
  }
  for (TermId s : subject_order) {
    const auto& ts = by_subject[s];
    out += RenderTerm(dict.Get(s), prefixes);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      out += (i == 0) ? " " : " ;\n    ";
      out += RenderTerm(dict.Get(ts[i].p), prefixes);
      out.push_back(' ');
      out += RenderTerm(dict.Get(ts[i].o), prefixes);
    }
    out += " .\n";
  }
  return out;
}

}  // namespace rdf
}  // namespace rdfcube
