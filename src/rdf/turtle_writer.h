// Serializers: N-Triples (canonical) and Turtle (prefix-compressed).

#ifndef RDFCUBE_RDF_TURTLE_WRITER_H_
#define RDFCUBE_RDF_TURTLE_WRITER_H_

#include <string>
#include <utility>
#include <vector>

#include "rdf/triple_store.h"

namespace rdfcube {
namespace rdf {

/// Serializes the whole store as N-Triples, one triple per line, in
/// insertion order. Round-trips through ParseTurtle.
std::string WriteNTriples(const TripleStore& store);

/// Serializes the store as Turtle, emitting @prefix directives for the given
/// (prefix, namespace) pairs and grouping triples by subject with ';'
/// predicate lists. Round-trips through ParseTurtle.
std::string WriteTurtle(
    const TripleStore& store,
    const std::vector<std::pair<std::string, std::string>>& prefixes);

}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_TURTLE_WRITER_H_
