// Well-known vocabulary IRIs: RDF, RDFS, XSD, SKOS, the W3C Data Cube (QB)
// vocabulary, and SDMX attribute terms used by the paper's datasets.

#ifndef RDFCUBE_RDF_VOCAB_H_
#define RDFCUBE_RDF_VOCAB_H_

#include <string_view>

namespace rdfcube {
namespace rdf {
namespace vocab {

// --- Namespaces -------------------------------------------------------------
inline constexpr std::string_view kRdfNs =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfsNs = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr std::string_view kXsdNs = "http://www.w3.org/2001/XMLSchema#";
inline constexpr std::string_view kSkosNs = "http://www.w3.org/2004/02/skos/core#";
inline constexpr std::string_view kQbNs = "http://purl.org/linked-data/cube#";
inline constexpr std::string_view kSdmxAttrNs =
    "http://purl.org/linked-data/sdmx/2009/attribute#";

// --- RDF / RDFS / XSD -------------------------------------------------------
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";

// --- SKOS (code lists / hierarchies) ----------------------------------------
inline constexpr std::string_view kSkosConcept =
    "http://www.w3.org/2004/02/skos/core#Concept";
inline constexpr std::string_view kSkosConceptScheme =
    "http://www.w3.org/2004/02/skos/core#ConceptScheme";
inline constexpr std::string_view kSkosInScheme =
    "http://www.w3.org/2004/02/skos/core#inScheme";
inline constexpr std::string_view kSkosBroader =
    "http://www.w3.org/2004/02/skos/core#broader";
inline constexpr std::string_view kSkosBroaderTransitive =
    "http://www.w3.org/2004/02/skos/core#broaderTransitive";
inline constexpr std::string_view kSkosNarrower =
    "http://www.w3.org/2004/02/skos/core#narrower";
inline constexpr std::string_view kSkosHasTopConcept =
    "http://www.w3.org/2004/02/skos/core#hasTopConcept";
inline constexpr std::string_view kSkosTopConceptOf =
    "http://www.w3.org/2004/02/skos/core#topConceptOf";

// --- Data Cube vocabulary (QB) ----------------------------------------------
inline constexpr std::string_view kQbObservation =
    "http://purl.org/linked-data/cube#Observation";
inline constexpr std::string_view kQbDataSet =
    "http://purl.org/linked-data/cube#DataSet";
inline constexpr std::string_view kQbDataSetProp =
    "http://purl.org/linked-data/cube#dataSet";
inline constexpr std::string_view kQbStructure =
    "http://purl.org/linked-data/cube#structure";
inline constexpr std::string_view kQbDsd =
    "http://purl.org/linked-data/cube#DataStructureDefinition";
inline constexpr std::string_view kQbComponent =
    "http://purl.org/linked-data/cube#component";
inline constexpr std::string_view kQbComponentSpec =
    "http://purl.org/linked-data/cube#ComponentSpecification";
inline constexpr std::string_view kQbDimension =
    "http://purl.org/linked-data/cube#dimension";
inline constexpr std::string_view kQbMeasure =
    "http://purl.org/linked-data/cube#measure";
inline constexpr std::string_view kQbAttribute =
    "http://purl.org/linked-data/cube#attribute";
inline constexpr std::string_view kQbDimensionProperty =
    "http://purl.org/linked-data/cube#DimensionProperty";
inline constexpr std::string_view kQbMeasureProperty =
    "http://purl.org/linked-data/cube#MeasureProperty";
inline constexpr std::string_view kQbAttributeProperty =
    "http://purl.org/linked-data/cube#AttributeProperty";
inline constexpr std::string_view kQbCodeList =
    "http://purl.org/linked-data/cube#codeList";
inline constexpr std::string_view kQbSlice =
    "http://purl.org/linked-data/cube#Slice";
inline constexpr std::string_view kQbSliceProp =
    "http://purl.org/linked-data/cube#slice";
inline constexpr std::string_view kQbObservationProp =
    "http://purl.org/linked-data/cube#observation";
inline constexpr std::string_view kQbSliceStructure =
    "http://purl.org/linked-data/cube#sliceStructure";
inline constexpr std::string_view kQbSliceKey =
    "http://purl.org/linked-data/cube#SliceKey";
inline constexpr std::string_view kQbComponentProperty =
    "http://purl.org/linked-data/cube#componentProperty";

// --- SDMX -------------------------------------------------------------------
inline constexpr std::string_view kSdmxUnitMeasure =
    "http://purl.org/linked-data/sdmx/2009/attribute#unitMeasure";

}  // namespace vocab
}  // namespace rdf
}  // namespace rdfcube

#endif  // RDFCUBE_RDF_VOCAB_H_
