// Umbrella header: the full public API of the rdfcube library.
//
// Quick tour (see examples/quickstart.cpp for runnable code):
//   1. Build or load a corpus:
//        qb::CorpusBuilder / qb::LoadCorpusFromRdf / qb::ImportCsvDataset /
//        datagen::GenerateRealWorldCorpus.
//   2. Compute relationships:
//        core::ComputeRelationships(obs, options, &sink)  — baseline,
//        clustering, or cubeMasking (the paper's three methods).
//   3. Consume results through a core::RelationshipSink.
//   4. Extras: core::ComputeSkyline, core::IncrementalEngine,
//      core::RunCubeMaskingParallel, sparql::/rules:: comparison engines.

#ifndef RDFCUBE_RDFCUBE_H_
#define RDFCUBE_RDFCUBE_H_

// Every public header under src/ must appear here (tools/rdfcube_lint
// enforces it); internal-only headers opt out with an "rdfcube:internal"
// marker comment near their top.
#include "align/matcher.h"                 // IWYU pragma: export
#include "base/blocking.h"                 // IWYU pragma: export
#include "base/hot.h"                      // IWYU pragma: export
#include "base/result.h"                   // IWYU pragma: export
#include "base/status.h"                   // IWYU pragma: export
#include "base/stopwatch.h"                // IWYU pragma: export
#include "base/thread_annotations.h"       // IWYU pragma: export
#include "base/untrusted.h"                // IWYU pragma: export
#include "cluster/agglomerative.h"         // IWYU pragma: export
#include "cluster/canopy.h"                // IWYU pragma: export
#include "cluster/kmeans.h"                // IWYU pragma: export
#include "cluster/metric.h"                // IWYU pragma: export
#include "cluster/xmeans.h"                // IWYU pragma: export
#include "core/aggregate.h"                // IWYU pragma: export
#include "core/baseline.h"                 // IWYU pragma: export
#include "core/checkpoint.h"               // IWYU pragma: export
#include "core/containment_matrix.h"       // IWYU pragma: export
#include "core/cube_masking.h"             // IWYU pragma: export
#include "core/distributed.h"              // IWYU pragma: export
#include "core/explorer.h"                 // IWYU pragma: export
#include "core/hybrid.h"                   // IWYU pragma: export
#include "core/clustering_method.h"        // IWYU pragma: export
#include "core/engine.h"                   // IWYU pragma: export
#include "core/incremental.h"              // IWYU pragma: export
#include "core/lattice.h"                  // IWYU pragma: export
#include "core/occurrence_matrix.h"        // IWYU pragma: export
#include "core/parallel_masking.h"         // IWYU pragma: export
#include "core/relatedness.h"              // IWYU pragma: export
#include "core/relationship.h"             // IWYU pragma: export
#include "core/relationship_rdf.h"         // IWYU pragma: export
#include "core/sparse_matrix.h"            // IWYU pragma: export
#include "core/skyline.h"                  // IWYU pragma: export
#include "core/snapshot.h"                 // IWYU pragma: export
#include "datagen/perturb.h"               // IWYU pragma: export
#include "datagen/realworld.h"             // IWYU pragma: export
#include "datagen/synthetic.h"             // IWYU pragma: export
#include "hierarchy/code_list.h"           // IWYU pragma: export
#include "hierarchy/skos_loader.h"         // IWYU pragma: export
#include "obs/log.h"                       // IWYU pragma: export
#include "obs/metrics.h"                   // IWYU pragma: export
#include "obs/report.h"                    // IWYU pragma: export
#include "obs/trace.h"                     // IWYU pragma: export
#include "qb/binary_io.h"                  // IWYU pragma: export
#include "qb/corpus.h"                     // IWYU pragma: export
#include "qb/csv_importer.h"               // IWYU pragma: export
#include "qb/cube_space.h"                 // IWYU pragma: export
#include "qb/exporter.h"                   // IWYU pragma: export
#include "qb/loader.h"                     // IWYU pragma: export
#include "qb/observation_set.h"            // IWYU pragma: export
#include "qb/slice.h"                      // IWYU pragma: export
#include "qb/validate.h"                   // IWYU pragma: export
#include "rdf/dictionary.h"                // IWYU pragma: export
#include "rdf/term.h"                      // IWYU pragma: export
#include "rdf/triple_store.h"              // IWYU pragma: export
#include "rdf/turtle_parser.h"             // IWYU pragma: export
#include "rdf/turtle_writer.h"             // IWYU pragma: export
#include "rdf/vocab.h"                     // IWYU pragma: export
#include "rules/engine.h"                  // IWYU pragma: export
#include "rules/paper_rules.h"             // IWYU pragma: export
#include "rules/rule.h"                    // IWYU pragma: export
#include "server/admission.h"              // IWYU pragma: export
#include "server/client.h"                 // IWYU pragma: export
#include "server/protocol.h"               // IWYU pragma: export
#include "server/server.h"                 // IWYU pragma: export
#include "server/slowlog.h"                // IWYU pragma: export
#include "server/snapshot_store.h"         // IWYU pragma: export
#include "sparql/ast.h"                    // IWYU pragma: export
#include "sparql/engine.h"                 // IWYU pragma: export
#include "sparql/paper_queries.h"          // IWYU pragma: export
#include "sparql/parser.h"                 // IWYU pragma: export
#include "util/bitvector.h"                // IWYU pragma: export
#include "util/csv.h"                      // IWYU pragma: export
#include "util/fault.h"                    // IWYU pragma: export
#include "util/random.h"                   // IWYU pragma: export
#include "util/result.h"                   // IWYU pragma: export
#include "util/safe_math.h"                // IWYU pragma: export
#include "util/status.h"                   // IWYU pragma: export
#include "util/stopwatch.h"                // IWYU pragma: export
#include "util/string_util.h"              // IWYU pragma: export
#include "util/thread_annotations.h"       // IWYU pragma: export
#include "util/thread_pool.h"              // IWYU pragma: export

#endif  // RDFCUBE_RDFCUBE_H_
