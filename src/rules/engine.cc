#include "rules/engine.h"

#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"

namespace rdfcube {
namespace rules {

namespace {

obs::Counter& DeadlineExpired() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_rules_deadline_expired_total",
      "Forward-chaining runs aborted by deadline expiry");
  return c;
}

using rdf::TermId;
using rdf::kNoTerm;

// Deepest NAF (negation) nesting EvalGroup will follow; rule bodies written
// by hand nest one or two levels, so 64 only cuts pathological inputs.
constexpr std::size_t kMaxNafDepth = 64;

class Matcher {
 public:
  Matcher(rdf::TripleStore* store, const ChainOptions& options)
      : store_(store), options_(options) {}

  bool timed_out() const { return timed_out_; }

  // Evaluates `group` and calls `emit` for each solution (over current env).
  // Returns false if enumeration was cut (timeout or emit said stop). The
  // callback is type-erased so recursive NAF nesting doesn't blow up
  // template instantiation. `depth` counts negation nesting; kMaxNafDepth
  // cuts adversarially deep rule bodies before they overflow the stack
  // (the unbounded-recursion gate requires the bound to be explicit).
  bool EvalGroup(const RuleGroup& group, std::size_t pi, std::size_t depth,
                 const std::function<bool()>& emit) {
    if (timed_out_ || depth > kMaxNafDepth) return false;
    if (pi == group.patterns.size()) {
      for (const NotEqual& ne : group.not_equals) {
        const TermId a = Get(ne.lhs);
        const TermId b = Get(ne.rhs);
        if (a != kNoTerm && b != kNoTerm && a == b) return true;
      }
      for (const RuleGroup& neg : group.negations) {
        bool exists = false;
        EvalGroup(neg, 0, depth + 1, [&exists] {
          exists = true;
          return false;
        });
        if (timed_out_) return false;
        if (exists) return true;  // NAF: a witness kills this solution
      }
      return emit();
    }
    const RulePattern& pattern = group.patterns[pi];
    bool absent = false;
    const TermId s = Resolve(pattern.s, &absent);
    const TermId p = Resolve(pattern.p, &absent);
    const TermId o = Resolve(pattern.o, &absent);
    if (absent) return true;

    bool keep_going = true;
    store_->Match(s, p, o, [&](const rdf::Triple& t) {
      if (Expired()) {
        keep_going = false;
        return false;
      }
      std::vector<std::string> bound;
      bool ok = true;
      if (pattern.s.is_var && s == kNoTerm) ok = Bind(pattern.s.var, t.s, &bound);
      if (ok && pattern.p.is_var && p == kNoTerm) {
        ok = Bind(pattern.p.var, t.p, &bound);
      }
      if (ok && pattern.o.is_var && o == kNoTerm) {
        ok = Bind(pattern.o.var, t.o, &bound);
      }
      if (ok) keep_going = EvalGroup(group, pi + 1, depth, emit);
      for (const std::string& var : bound) env_.erase(var);
      return keep_going;
    });
    return keep_going;
  }

  // Instantiates the head pattern under the current environment. Constants
  // are interned: head predicates/objects (derived vocabulary) may be new to
  // the store.
  bool InstantiateHead(const RulePattern& head, rdf::Triple* out) {
    const TermId s = ResolveInterning(head.s);
    const TermId p = ResolveInterning(head.p);
    const TermId o = ResolveInterning(head.o);
    if (s == kNoTerm || p == kNoTerm || o == kNoTerm) return false;
    *out = rdf::Triple{s, p, o};
    return true;
  }

 private:
  TermId Get(const std::string& var) const {
    auto it = env_.find(var);
    return it == env_.end() ? kNoTerm : it->second;
  }

  bool Bind(const std::string& var, TermId value,
            std::vector<std::string>* log) {
    auto [it, inserted] = env_.emplace(var, value);
    if (!inserted) return it->second == value;
    log->push_back(var);
    return true;
  }

  TermId Resolve(const RTerm& t, bool* absent) const {
    if (t.is_var) return Get(t.var);
    auto id = store_->dictionary().Find(t.term);
    if (!id.has_value()) {
      *absent = true;
      return kNoTerm;
    }
    return *id;
  }

  // Head constants may be new to the store (derived predicates): intern them.
  TermId ResolveInterning(const RTerm& t) {
    if (t.is_var) return Get(t.var);
    return store_->dictionary().Intern(t.term);
  }

  bool Expired() {
    if (++steps_ % 2048 == 0 && options_.deadline.Expired()) timed_out_ = true;
    return timed_out_;
  }

  rdf::TripleStore* store_;
  const ChainOptions& options_;
  std::unordered_map<std::string, TermId> env_;
  std::size_t steps_ = 0;
  bool timed_out_ = false;
};

}  // namespace

Result<ChainStats> RunForwardChaining(const std::vector<Rule>& rules,
                                      rdf::TripleStore* store,
                                      const ChainOptions& options) {
  obs::TraceSpan span("rules/forward_chain");
  static obs::Counter& firings = obs::DefaultCounter(
      "rdfcube_rules_rule_firings_total",
      "Fresh triples derived by forward chaining");
  ChainStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.rounds;
    if (options.deadline.Expired()) {
      DeadlineExpired().Increment();
      return Status::TimedOut("forward chaining timed out");
    }
    for (const Rule& rule : rules) {
      Matcher matcher(store, options);
      // Collect derivations first; inserting mid-enumeration would
      // invalidate the store's lazily built indexes.
      std::vector<rdf::Triple> derived;
      bool exhausted = false;
      matcher.EvalGroup(rule.body, 0, /*depth=*/0, [&]() -> bool {
        rdf::Triple t{};
        if (matcher.InstantiateHead(rule.head, &t)) {
          derived.push_back(t);
          if (options.max_derived != 0 &&
              stats.derived + derived.size() > options.max_derived) {
            exhausted = true;
            return false;
          }
        }
        return true;
      });
      if (matcher.timed_out()) {
        DeadlineExpired().Increment();
        return Status::TimedOut("forward chaining timed out in rule " +
                                rule.name);
      }
      if (exhausted) {
        return Status::ResourceExhausted(
            "forward chaining exceeded max_derived in rule " + rule.name);
      }
      for (const rdf::Triple& t : derived) {
        if (store->InsertEncoded(t)) {
          ++stats.derived;
          firings.Increment();
          changed = true;
        }
      }
    }
  }
  return stats;
}

}  // namespace rules
}  // namespace rdfcube
