// Naive fixpoint evaluation of forward rules over a TripleStore.

#ifndef RDFCUBE_RULES_ENGINE_H_
#define RDFCUBE_RULES_ENGINE_H_

#include <cstddef>
#include <vector>

#include "rdf/triple_store.h"
#include "rules/rule.h"
#include "base/result.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace rules {

/// \brief Limits for a forward-chaining run.
struct ChainOptions {
  Deadline deadline;
  /// Abort with ResourceExhausted beyond this many derived triples
  /// (models the paper's o/m outcomes); 0 = unlimited.
  std::size_t max_derived = 0;
};

/// \brief Work accounting of a forward-chaining run.
struct ChainStats {
  std::size_t rounds = 0;
  std::size_t derived = 0;
};

/// \brief Runs the rules to fixpoint over `store`, inserting derived triples
/// into the same store (so rules chain, e.g. the broaderTransitive closure).
///
/// Evaluation is deliberately the generic, naive strategy — every rule is
/// re-evaluated each round until no rule derives a new triple — because the
/// point of this module is to reproduce the scaling behaviour of a generic
/// reasoner (§4.1: rule methods "either hit the time-out limits or consume
/// all memory resources").
[[nodiscard]] Result<ChainStats> RunForwardChaining(const std::vector<Rule>& rules,
                                      rdf::TripleStore* store,
                                      const ChainOptions& options = {});

}  // namespace rules
}  // namespace rdfcube

#endif  // RDFCUBE_RULES_ENGINE_H_
