#include "rules/paper_rules.h"

#include "rdf/vocab.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace rules {

namespace {

namespace vocab = rdf::vocab;

RulePattern P(RTerm s, RTerm p, RTerm o) {
  return RulePattern{std::move(s), std::move(p), std::move(o)};
}

RTerm V(const char* name) { return RTerm::Var(name); }
RTerm I(std::string_view iri) { return RTerm::Iri(std::string(iri)); }

}  // namespace

std::vector<Rule> PaperRules() {
  std::vector<Rule> rules;

  // --- Closure: broader => broaderTransitive; transitivity. ----------------
  {
    Rule r;
    r.name = "broader-base";
    r.body.patterns.push_back(
        P(V("x"), I(vocab::kSkosBroader), V("y")));
    r.head = P(V("x"), I(vocab::kSkosBroaderTransitive), V("y"));
    rules.push_back(std::move(r));
  }
  {
    Rule r;
    r.name = "broader-transitive";
    r.body.patterns.push_back(
        P(V("x"), I(vocab::kSkosBroaderTransitive), V("y")));
    r.body.patterns.push_back(
        P(V("y"), I(vocab::kSkosBroaderTransitive), V("z")));
    r.head = P(V("x"), I(vocab::kSkosBroaderTransitive), V("z"));
    rules.push_back(std::move(r));
  }

  // --- Partial containment: ∃ shared dimension with ancestor value. --------
  {
    Rule r;
    r.name = "partial-containment";
    r.body.patterns.push_back(P(V("o1"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.patterns.push_back(P(V("o2"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.patterns.push_back(P(V("o1"), V("d"), V("v1")));
    r.body.patterns.push_back(P(V("o2"), V("d"), V("v2")));
    // skos:broader points child -> parent: v1 is an ancestor of v2.
    r.body.patterns.push_back(
        P(V("v2"), I(vocab::kSkosBroaderTransitive), V("v1")));
    r.body.not_equals.push_back({"o1", "o2"});
    r.head = P(V("o1"), I(kPartialContainmentIri), V("o2"));
    rules.push_back(std::move(r));
  }

  // --- Full containment: ∃ strict + ∀ ancestor-or-equal (nested NAF). ------
  {
    Rule r;
    r.name = "full-containment";
    r.body.patterns.push_back(P(V("o1"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.patterns.push_back(P(V("o2"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.patterns.push_back(P(V("o1"), V("da"), V("va")));
    r.body.patterns.push_back(P(V("o2"), V("da"), V("vb")));
    r.body.patterns.push_back(
        P(V("vb"), I(vocab::kSkosBroaderTransitive), V("va")));
    r.body.not_equals.push_back({"o1", "o2"});
    // NOT (some shared dimension d where v1 does not contain v2):
    RuleGroup violation;
    violation.patterns.push_back(P(V("d"), I(vocab::kRdfType),
                                   I(vocab::kQbDimensionProperty)));
    violation.patterns.push_back(P(V("o1"), V("d"), V("v1")));
    violation.patterns.push_back(P(V("o2"), V("d"), V("v2")));
    violation.not_equals.push_back({"v1", "v2"});
    RuleGroup contains;
    contains.patterns.push_back(
        P(V("v2"), I(vocab::kSkosBroaderTransitive), V("v1")));
    violation.negations.push_back(std::move(contains));
    r.body.negations.push_back(std::move(violation));
    r.head = P(V("o1"), I(kFullContainmentIri), V("o2"));
    rules.push_back(std::move(r));
  }

  // --- Complementarity: no shared dimension with differing values. ---------
  {
    Rule r;
    r.name = "complementarity";
    r.body.patterns.push_back(P(V("o1"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.patterns.push_back(P(V("o2"), I(vocab::kRdfType),
                                I(vocab::kQbObservation)));
    r.body.not_equals.push_back({"o1", "o2"});
    RuleGroup differing;
    differing.patterns.push_back(P(V("d"), I(vocab::kRdfType),
                                   I(vocab::kQbDimensionProperty)));
    differing.patterns.push_back(P(V("o1"), V("d"), V("v1")));
    differing.patterns.push_back(P(V("o2"), V("d"), V("v2")));
    differing.not_equals.push_back({"v1", "v2"});
    r.body.negations.push_back(std::move(differing));
    r.head = P(V("o1"), I(kComplementarityIri), V("o2"));
    rules.push_back(std::move(r));
  }
  return rules;
}

Result<RuleRunResult> RunRuleBasedMethod(rdf::TripleStore* store,
                                         const Deadline& deadline,
                                         std::size_t max_derived) {
  ChainOptions options;
  options.deadline = deadline;
  options.max_derived = max_derived;
  Stopwatch watch;
  RuleRunResult result;
  auto stats = RunForwardChaining(PaperRules(), store, options);
  result.elapsed_seconds = watch.ElapsedSeconds();
  if (!stats.ok()) {
    if (stats.status().IsTimedOut()) {
      result.timed_out = true;
      return result;
    }
    if (stats.status().IsResourceExhausted()) {
      result.out_of_memory = true;
      return result;
    }
    return stats.status();
  }
  result.stats = *stats;

  const rdf::Dictionary& dict = store->dictionary();
  auto extract = [&](const char* predicate,
                     std::vector<std::pair<std::string, std::string>>* out) {
    auto pred = dict.Find(rdf::Term::Iri(predicate));
    if (!pred.has_value()) return;
    store->Match(rdf::kNoTerm, *pred, rdf::kNoTerm,
                 [&](const rdf::Triple& t) {
                   out->emplace_back(dict.Value(t.s),
                                     dict.Value(t.o));
                   return true;
                 });
  };
  extract(kFullContainmentIri, &result.full);
  extract(kPartialContainmentIri, &result.partial);
  extract(kComplementarityIri, &result.complementary);
  return result;
}

}  // namespace rules
}  // namespace rdfcube
