// The paper's three forward-chaining rules (§4, "Rule-based") plus the
// skos:broaderTransitive closure rules they depend on, and a driver that
// runs them over an RDF corpus export.

#ifndef RDFCUBE_RULES_PAPER_RULES_H_
#define RDFCUBE_RULES_PAPER_RULES_H_

#include <string>
#include <utility>
#include <vector>

#include "rdf/triple_store.h"
#include "rules/engine.h"
#include "rules/rule.h"
#include "base/result.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace rules {

/// Derived-predicate IRIs asserted by the rules.
inline constexpr const char kFullContainmentIri[] =
    "urn:rdfcube:derived:fullContainment";
inline constexpr const char kPartialContainmentIri[] =
    "urn:rdfcube:derived:partialContainment";
inline constexpr const char kComplementarityIri[] =
    "urn:rdfcube:derived:complementarity";

/// \brief The rule set:
///  * broader -> broaderTransitive, and its transitivity (the closure the
///    paper notes makes the search space explode),
///  * partial containment: some shared dimension with an ancestor value,
///  * full containment: existential + universal (via nested NAF groups),
///  * complementarity: no shared dimension with differing values.
/// Like the SPARQL variant, the schema conditions are relaxed and the inner
/// groups range over qb:DimensionProperty predicates.
std::vector<Rule> PaperRules();

/// \brief Outcome of a rule-based relationship computation.
struct RuleRunResult {
  std::vector<std::pair<std::string, std::string>> full;
  std::vector<std::pair<std::string, std::string>> partial;
  std::vector<std::pair<std::string, std::string>> complementary;
  double elapsed_seconds = 0.0;
  bool timed_out = false;
  bool out_of_memory = false;
  ChainStats stats;
};

/// Runs PaperRules() to fixpoint on a copy-free in-place basis (derived
/// triples are inserted into `store`) and extracts the derived pairs.
[[nodiscard]] Result<RuleRunResult> RunRuleBasedMethod(rdf::TripleStore* store,
                                         const Deadline& deadline,
                                         std::size_t max_derived = 0);

}  // namespace rules
}  // namespace rdfcube

#endif  // RDFCUBE_RULES_PAPER_RULES_H_
