// Generic forward-chaining rule engine in the style of the Jena generic rule
// reasoner, with negation-as-failure groups to emulate the universal
// quantification the paper's rules need (§4, "Rule-based").

#ifndef RDFCUBE_RULES_RULE_H_
#define RDFCUBE_RULES_RULE_H_

#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfcube {
namespace rules {

/// \brief A rule term: variable or constant.
struct RTerm {
  bool is_var = false;
  std::string var;   // without '?'
  rdf::Term term;    // valid when !is_var

  static RTerm Var(std::string name) {
    RTerm t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static RTerm Iri(std::string iri) {
    RTerm t;
    t.term = rdf::Term::Iri(std::move(iri));
    return t;
  }
};

/// \brief Triple pattern in a rule body or head.
struct RulePattern {
  RTerm s, p, o;
};

/// \brief notEqual(x, y) builtin (the only one the paper's rules need).
struct NotEqual {
  std::string lhs, rhs;
};

/// \brief A conjunctive group with recursive negation:
/// matches when all patterns match, all notEqual builtins hold, and none of
/// the negated subgroups has a solution (negation as failure).
struct RuleGroup {
  std::vector<RulePattern> patterns;
  std::vector<NotEqual> not_equals;
  std::vector<RuleGroup> negations;
};

/// \brief body => head.
struct Rule {
  std::string name;
  RuleGroup body;
  RulePattern head;
};

}  // namespace rules
}  // namespace rdfcube

#endif  // RDFCUBE_RULES_RULE_H_
