#include "server/admission.h"

#include <utility>

#include "base/blocking.h"
#include "obs/metrics.h"

namespace rdfcube {
namespace server {

Admission AdmissionQueue::TryPush(std::function<void()> job) {
  static obs::Counter& admitted = obs::DefaultCounter(
      "rdfcube_server_admitted_total", "Requests admitted to the queue");
  static obs::Counter& shed = obs::DefaultCounter(
      "rdfcube_server_shed_total", "Requests shed at admission (queue full)");
  static obs::Gauge& depth = obs::DefaultGauge(
      "rdfcube_server_queue_depth", "Jobs currently in the admission queue");
  {
    MutexLock lock(&mu_);
    if (closed_) return Admission::kClosed;
    if (jobs_.size() >= capacity_) {
      shed.Increment();
      return Admission::kShed;
    }
    jobs_.push_back(std::move(job));
    depth.Set(static_cast<int64_t>(jobs_.size()));
  }
  admitted.Increment();
  ready_.notify_one();
  return Admission::kAdmitted;
}

RDFCUBE_BLOCKING std::optional<std::function<void()>> AdmissionQueue::Pop(
    const Deadline& deadline) {
  static obs::Gauge& depth = obs::DefaultGauge(
      "rdfcube_server_queue_depth", "Jobs currently in the admission queue");
  MutexLock lock(&mu_);
  while (jobs_.empty() && !closed_) {
    if (!lock.WaitWithDeadline(ready_, deadline)) break;
  }
  // Decide on the queue, not on how the wait ended: a notification can race
  // the timeout, and a closed queue still drains what was admitted.
  if (jobs_.empty()) return std::nullopt;
  std::function<void()> job = std::move(jobs_.front());
  jobs_.pop_front();
  depth.Set(static_cast<int64_t>(jobs_.size()));
  return job;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t AdmissionQueue::Depth() const {
  MutexLock lock(&mu_);
  return jobs_.size();
}

bool AdmissionQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

}  // namespace server
}  // namespace rdfcube
