// Bounded admission queue with load shedding (DESIGN.md §6).
//
// The reactor thread pushes ready requests; worker threads pop them. The
// queue is the server's only buffer: when it is full the push is refused
// (kShed) and the caller answers the client with retry-after instead of
// queueing unboundedly — overload degrades throughput, never memory.

#ifndef RDFCUBE_SERVER_ADMISSION_H_
#define RDFCUBE_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>

#include "base/stopwatch.h"
#include "base/thread_annotations.h"

namespace rdfcube {
namespace server {

/// \brief Outcome of AdmissionQueue::TryPush.
enum class Admission {
  /// The job is queued and a worker will run it.
  kAdmitted,
  /// The queue is at capacity — shed the request (client should retry).
  kShed,
  /// The queue is closed (server draining) — no further admissions.
  kClosed,
};

/// \brief Fixed-capacity multi-producer/multi-consumer job queue.
///
/// Close() stops admissions immediately but lets poppers drain what was
/// already admitted (every admitted job is either popped or still queued —
/// none are dropped; asserted by tests/race_stress_test.cc).
class AdmissionQueue {
 public:
  /// `capacity` jobs may be queued at once; 0 is clamped to 1.
  explicit AdmissionQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `job` unless the queue is full or closed. Never blocks.
  Admission TryPush(std::function<void()> job);

  /// Pops the next job, waiting until one arrives, the queue closes empty,
  /// or `deadline` expires (the latter two return nullopt).
  std::optional<std::function<void()>> Pop(const Deadline& deadline);

  /// Stops admissions; wakes every waiting popper. Idempotent.
  void Close();

  /// Jobs currently queued (diagnostics; racy by nature).
  std::size_t Depth() const;

  /// True once Close() ran.
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::condition_variable ready_ RDFCUBE_CONDVAR_PAIRED_WITH(mu_);
  std::deque<std::function<void()>> jobs_ RDFCUBE_GUARDED_BY(mu_);
  bool closed_ RDFCUBE_GUARDED_BY(mu_) = false;
};

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_ADMISSION_H_
