#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace server {

Client::Client(const ClientOptions& options)
    : options_(options),
      rng_(options.jitter_seed),
      next_request_id_((options.jitter_seed << 32) | 1u) {}

void Client::Disconnect() { conn_.Close(); }

Status Client::EnsureConnected() {
  if (conn_.valid()) return Status::OK();
  RDFCUBE_ASSIGN_OR_RETURN(
      conn_, ConnectTo(options_.host, options_.port,
                       Deadline(options_.connect_timeout_seconds)));
  return Status::OK();
}

Result<Response> Client::RoundTrip(const Request& req) {
  RDFCUBE_RETURN_IF_ERROR(EnsureConnected());
  const Deadline deadline(options_.request_timeout_seconds);
  Status st = WriteFrame(conn_.get(), EncodeRequest(req), deadline);
  if (!st.ok()) {
    Disconnect();
    return st;
  }
  std::string payload;
  st = ReadFrame(conn_.get(), &payload, options_.max_frame_bytes, deadline);
  if (!st.ok()) {
    Disconnect();
    return st;
  }
  Result<Response> resp = DecodeResponse(payload);
  if (!resp.ok()) Disconnect();
  return resp;
}

Result<Response> Client::Call(const Request& req) {
  static obs::Counter& retries_counter = obs::DefaultCounter(
      "rdfcube_server_client_retries_total",
      "Client-side retries (shed or transport failure)");
  Request to_send = req;
  if (to_send.deadline_ms == 0) {
    to_send.deadline_ms =
        static_cast<uint32_t>(options_.request_timeout_seconds * 1000.0);
  }
  if (to_send.request_id == 0) to_send.request_id = next_request_id_++;
  uint32_t backoff_ms = options_.initial_backoff_ms;
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Full jitter on the exponential window, floored at the server's
      // retry-after hint when one was given.
      const uint32_t window = std::max(backoff_ms, 1u);
      const uint32_t sleep_ms =
          1 + static_cast<uint32_t>(rng_.Uniform(window));
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.max_backoff_ms);
      retries_counter.Increment();
    }
    Result<Response> resp = RoundTrip(to_send);
    if (!resp.ok()) {
      last = resp.status();
      if (last.IsParseError()) return last;  // garbage stream: do not retry
      continue;  // reconnect + retry transport failures
    }
    if (resp.value().code == RespCode::kShed) {
      ++sheds_seen_;
      backoff_ms = std::max(backoff_ms, resp.value().retry_after_ms);
      last = Status::ResourceExhausted("server shed the request");
      continue;
    }
    // A response carrying a different id belongs to another request: the
    // stream is desynced. (0 = "not echoed": the server answered before it
    // could decode the request, e.g. an oversize frame or drain race.)
    if (resp.value().request_id != 0 &&
        resp.value().request_id != to_send.request_id) {
      Disconnect();
      return Status::ParseError("response id mismatch");
    }
    return resp;
  }
  if (last.ok()) last = Status::ResourceExhausted("retries exhausted");
  return last;
}

Status Client::CodeToStatus(const Response& resp) {
  switch (resp.code) {
    case RespCode::kOk:
      return Status::OK();
    case RespCode::kShed:
      return Status::ResourceExhausted(resp.error);
    case RespCode::kDeadlineExceeded:
      return Status::TimedOut(resp.error);
    case RespCode::kNotFound:
      return Status::NotFound(resp.error);
    case RespCode::kBadRequest:
      return Status::InvalidArgument(resp.error);
    case RespCode::kShuttingDown:
      return Status::FailedPrecondition(resp.error);
    case RespCode::kInternal:
      break;
  }
  return Status::Internal(resp.error);
}

Result<std::vector<qb::ObsId>> Client::Containers(qb::ObsId id) {
  Request req;
  req.op = Op::kContainers;
  req.target = id;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.ids);
}

Result<std::vector<qb::ObsId>> Client::Contained(qb::ObsId id) {
  Request req;
  req.op = Op::kContained;
  req.target = id;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.ids);
}

Result<std::vector<qb::ObsId>> Client::Complements(qb::ObsId id) {
  Request req;
  req.op = Op::kComplements;
  req.target = id;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.ids);
}

Result<std::vector<std::pair<qb::ObsId, double>>> Client::Partial(
    qb::ObsId id, double min_degree) {
  Request req;
  req.op = Op::kPartial;
  req.target = id;
  req.min_degree = min_degree;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  if (resp.ids.size() != resp.degrees.size()) {
    return Status::ParseError("mismatched partial response arrays");
  }
  std::vector<std::pair<qb::ObsId, double>> out;
  out.reserve(resp.ids.size());
  for (std::size_t i = 0; i < resp.ids.size(); ++i) {
    out.emplace_back(resp.ids[i], resp.degrees[i]);
  }
  return out;
}

Result<std::vector<ScanRecord>> Client::Scan(uint32_t limit) {
  Request req;
  req.op = Op::kScan;
  req.limit = limit;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.records);
}

Result<std::vector<uint64_t>> Client::Stats() {
  Request req;
  req.op = Op::kStats;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  if (resp.stats.size() < kStatsNumFields) {
    return Status::ParseError("short stats response");
  }
  return std::move(resp.stats);
}

Result<uint64_t> Client::Ping() {
  Request req;
  req.op = Op::kPing;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return resp.snapshot_version;
}

Result<std::string> Client::Metrics() {
  Request req;
  req.op = Op::kMetrics;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.text);
}

Result<std::string> Client::Slowlog() {
  Request req;
  req.op = Op::kSlowlog;
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.text);
}

Result<std::string> Client::TraceDump(uint32_t window_ms) {
  Request req;
  req.op = Op::kTraceDump;
  req.limit = window_ms;
  // The server sleeps for the capture window before answering: give the
  // round trip (and the server-side deadline) room beyond the window.
  req.deadline_ms = window_ms + static_cast<uint32_t>(
                                    options_.request_timeout_seconds * 1000.0);
  RDFCUBE_ASSIGN_OR_RETURN(Response resp, Call(req));
  RDFCUBE_RETURN_IF_ERROR(CodeToStatus(resp));
  return std::move(resp.text);
}

}  // namespace server
}  // namespace rdfcube
