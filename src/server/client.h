// Client library for the relationship server: one connection, blocking
// request/response calls, and retry with exponential backoff + jitter.
//
// Call() reconnects lazily, honors the server's kShed retry-after hint
// (backing off at least that long), and retries transport errors up to
// max_retries with exponentially growing, jittered sleeps. Server-side
// failure codes that retrying cannot fix (kNotFound, kBadRequest,
// kDeadlineExceeded, kInternal) are returned to the caller immediately.

#ifndef RDFCUBE_SERVER_CLIENT_H_
#define RDFCUBE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "qb/observation_set.h"
#include "server/protocol.h"
#include "server/socket_io.h"
#include "util/random.h"

namespace rdfcube {
namespace server {

/// \brief Client tuning knobs.
struct ClientOptions {
  /// Server address (IPv4 literal; the server listens on loopback).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Budget for one TCP connect.
  double connect_timeout_seconds = 2.0;
  /// Budget for one request/response round trip (also sent to the server
  /// as the request deadline when the request asks for none).
  double request_timeout_seconds = 2.0;
  /// Transport-level retries (shed / IO error / reconnect) before giving up.
  int max_retries = 5;
  /// First backoff sleep; doubles per retry up to `max_backoff_ms`.
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 1000;
  /// Seed for backoff jitter (deterministic tests).
  uint64_t jitter_seed = 1;
  /// Frame-size ceiling accepted from the server.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// \brief Blocking client; NOT thread-safe (one instance per thread).
class Client {
 public:
  explicit Client(const ClientOptions& options);

  /// Sends `req` and awaits the response, retrying shed/transport failures
  /// with backoff. The returned Response can still carry a non-retryable
  /// error code; use the typed wrappers to map codes to Status. Fails with
  /// ResourceExhausted when retries are exhausted on shed, or the
  /// underlying transport error otherwise.
  [[nodiscard]] Result<Response> Call(const Request& req);

  /// Observations fully containing `id`.
  [[nodiscard]] Result<std::vector<qb::ObsId>> Containers(qb::ObsId id);

  /// Observations fully contained by `id`.
  [[nodiscard]] Result<std::vector<qb::ObsId>> Contained(qb::ObsId id);

  /// Observations complementary to `id`.
  [[nodiscard]] Result<std::vector<qb::ObsId>> Complements(qb::ObsId id);

  /// Partial containments of `id` as (other, degree) pairs.
  [[nodiscard]] Result<std::vector<std::pair<qb::ObsId, double>>> Partial(
      qb::ObsId id, double min_degree);

  /// Bulk scan (up to `limit` records, 0 = server cap).
  [[nodiscard]] Result<std::vector<ScanRecord>> Scan(uint32_t limit);

  /// Server stats vector (StatsField order).
  [[nodiscard]] Result<std::vector<uint64_t>> Stats();

  /// Liveness probe; returns the server's snapshot version.
  [[nodiscard]] Result<uint64_t> Ping();

  /// Full Prometheus text exposition of the server's metrics registry.
  [[nodiscard]] Result<std::string> Metrics();

  /// JSON dump of the server's slowlog ring (slowest recent requests).
  [[nodiscard]] Result<std::string> Slowlog();

  /// Chrome-trace JSON for an on-demand capture of `window_ms` milliseconds
  /// (0 = server default). The call blocks for the capture window.
  [[nodiscard]] Result<std::string> TraceDump(uint32_t window_ms);

  /// Times a shed response was honored with backoff (diagnostics/tests).
  uint64_t sheds_seen() const { return sheds_seen_; }

  /// Drops the connection (next Call reconnects).
  void Disconnect();

 private:
  Status EnsureConnected();
  // One send/receive over the current connection (no retry logic).
  Result<Response> RoundTrip(const Request& req);
  // Maps a non-OK response code to a Status (OK for kOk).
  static Status CodeToStatus(const Response& resp);

  ClientOptions options_;
  Fd conn_;
  Rng rng_;
  uint64_t sheds_seen_ = 0;
  // Correlation ids stamped on requests that arrive with request_id == 0;
  // seeded from jitter_seed so concurrent clients emit distinct streams.
  uint64_t next_request_id_ = 0;
};

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_CLIENT_H_
