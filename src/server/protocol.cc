#include "server/protocol.h"

#include <cmath>

#include "base/untrusted.h"
#include "core/snapshot_io.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace server {

namespace {

using core::snapshot::ByteReader;
using core::snapshot::PutDouble;
using core::snapshot::PutU32;
using core::snapshot::PutU64;
using core::snapshot::PutU8;

Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed frame: ") + what);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kContainers: return "containers";
    case Op::kContained: return "contained";
    case Op::kComplements: return "complements";
    case Op::kPartial: return "partial";
    case Op::kScan: return "scan";
    case Op::kStats: return "stats";
    case Op::kMetrics: return "metrics";
    case Op::kSlowlog: return "slowlog";
    case Op::kTraceDump: return "tracedump";
  }
  return "unknown";
}

std::string EncodeRequest(const Request& req) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(req.op));
  PutU32(&out, req.target);
  PutU32(&out, req.deadline_ms);
  PutDouble(&out, req.min_degree);
  PutU32(&out, req.limit);
  PutU64(&out, req.request_id);
  return out;
}

RDFCUBE_TAINT_SOURCE Result<Request> DecodeRequest(const std::string& payload) {
  ByteReader r(payload);
  uint8_t version, op;
  if (!r.GetU8(&version)) return Malformed("empty request");
  if (version != kProtocolVersion) return Malformed("unknown version");
  Request req;
  if (!r.GetU8(&op)) return Malformed("missing op");
  if (op < static_cast<uint8_t>(Op::kPing) ||
      op > static_cast<uint8_t>(Op::kTraceDump)) {
    return Malformed("unknown op");
  }
  req.op = static_cast<Op>(op);
  if (!r.GetU32(&req.target)) return Malformed("missing target");
  if (!r.GetU32(&req.deadline_ms)) return Malformed("missing deadline");
  if (!r.GetDouble(&req.min_degree)) return Malformed("missing min degree");
  if (!(req.min_degree >= 0.0 && req.min_degree <= 1.0)) {
    // The negated form also rejects NaN.
    return Malformed("min degree out of range");
  }
  if (!r.GetU32(&req.limit)) return Malformed("missing limit");
  if (!r.GetU64(&req.request_id)) return Malformed("missing request id");
  if (!r.AtEnd()) return Malformed("trailing bytes");
  return req;
}

std::string EncodeResponse(const Response& resp) {
  std::string out;
  PutU8(&out, kProtocolVersion);
  PutU8(&out, static_cast<uint8_t>(resp.code));
  PutU32(&out, resp.retry_after_ms);
  PutU64(&out, resp.snapshot_version);
  PutU32(&out, static_cast<uint32_t>(resp.error.size()));
  out += resp.error;
  PutU32(&out, static_cast<uint32_t>(resp.ids.size()));
  for (qb::ObsId id : resp.ids) PutU32(&out, id);
  PutU32(&out, static_cast<uint32_t>(resp.degrees.size()));
  for (double d : resp.degrees) PutDouble(&out, d);
  PutU32(&out, static_cast<uint32_t>(resp.records.size()));
  for (const ScanRecord& rec : resp.records) {
    PutU8(&out, rec.kind);
    PutU32(&out, rec.a);
    PutU32(&out, rec.b);
    PutDouble(&out, rec.degree);
  }
  PutU32(&out, static_cast<uint32_t>(resp.stats.size()));
  for (uint64_t s : resp.stats) PutU64(&out, s);
  PutU32(&out, static_cast<uint32_t>(resp.text.size()));
  out += resp.text;
  PutU64(&out, resp.request_id);
  return out;
}

RDFCUBE_TAINT_SOURCE Result<Response> DecodeResponse(
    const std::string& payload) {
  ByteReader r(payload);
  uint8_t version, code;
  if (!r.GetU8(&version)) return Malformed("empty response");
  if (version != kProtocolVersion) return Malformed("unknown version");
  Response resp;
  if (!r.GetU8(&code)) return Malformed("missing code");
  if (code > static_cast<uint8_t>(RespCode::kInternal)) {
    return Malformed("unknown code");
  }
  resp.code = static_cast<RespCode>(code);
  if (!r.GetU32(&resp.retry_after_ms)) return Malformed("missing retry-after");
  if (!r.GetU64(&resp.snapshot_version)) {
    return Malformed("missing snapshot version");
  }
  uint32_t count;
  if (!r.GetU32(&count)) return Malformed("missing error length");
  if (!r.GetBytes(count, &resp.error)) return Malformed("truncated error");
  if (!r.GetU32(&count)) return Malformed("missing id count");
  if (count > r.Remaining() / 4) return Malformed("id count out of range");
  resp.ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id;
    if (!r.GetU32(&id)) return Malformed("truncated ids");
    resp.ids.push_back(id);
  }
  if (!r.GetU32(&count)) return Malformed("missing degree count");
  if (count > r.Remaining() / 8) return Malformed("degree count out of range");
  resp.degrees.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double d;
    if (!r.GetDouble(&d)) return Malformed("truncated degrees");
    if (std::isnan(d)) return Malformed("degree is NaN");
    resp.degrees.push_back(d);
  }
  if (!r.GetU32(&count)) return Malformed("missing record count");
  if (count > r.Remaining() / 17) return Malformed("record count out of range");
  resp.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScanRecord rec;
    if (!r.GetU8(&rec.kind) || !r.GetU32(&rec.a) || !r.GetU32(&rec.b) ||
        !r.GetDouble(&rec.degree)) {
      return Malformed("truncated record");
    }
    if (rec.kind != 'F' && rec.kind != 'P' && rec.kind != 'C') {
      return Malformed("unknown record kind");
    }
    if (std::isnan(rec.degree)) return Malformed("record degree is NaN");
    resp.records.push_back(rec);
  }
  if (!r.GetU32(&count)) return Malformed("missing stats count");
  if (count > r.Remaining() / 8) return Malformed("stats count out of range");
  resp.stats.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t s;
    if (!r.GetU64(&s)) return Malformed("truncated stats");
    resp.stats.push_back(s);
  }
  if (!r.GetU32(&count)) return Malformed("missing text length");
  if (!r.GetBytes(count, &resp.text)) return Malformed("truncated text");
  if (!r.GetU64(&resp.request_id)) return Malformed("missing request id");
  if (!r.AtEnd()) return Malformed("trailing bytes");
  return resp;
}

}  // namespace server
}  // namespace rdfcube
