// Wire protocol of the relationship server (DESIGN.md §6).
//
// Dependency-free length-prefixed binary framing: every message is a u32
// little-endian payload length followed by the payload, whose first byte is
// the protocol version. Requests and responses share the framing; the
// payload encodings below reuse the core/snapshot_io wire idiom (fixed-width
// little-endian integers, length-prefixed vectors, bounds-checked reads).
// Decoders must survive arbitrary bytes: every failure is a ParseError, never
// a crash (fuzzed in tests/server_test.cc).

#ifndef RDFCUBE_SERVER_PROTOCOL_H_
#define RDFCUBE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace server {

/// Protocol version stamped as the first payload byte of every message.
inline constexpr uint8_t kProtocolVersion = 1;

/// Hard ceiling on a frame payload; a length prefix above the configured
/// limit (default this) is a protocol error, not an allocation.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;

/// \brief Request operations.
enum class Op : uint8_t {
  /// Liveness probe; echoes the server's current snapshot version.
  kPing = 1,
  /// Observations fully containing `target`.
  kContainers = 2,
  /// Observations fully contained by `target`.
  kContained = 3,
  /// Observations complementary to `target`.
  kComplements = 4,
  /// Observations partially contained by `target` (degree >= min_degree).
  kPartial = 5,
  /// Bulk scan of every materialized relationship.
  kScan = 6,
  /// Server statistics (snapshot sizes, admission counters).
  kStats = 7,
  /// Full Prometheus text exposition of the metrics registry
  /// (Response::text). Cold; may bypass admission (DESIGN.md §6).
  kMetrics = 8,
  /// JSON dump of the bounded ring of slowest recent requests
  /// (Response::text). Cold; may bypass admission.
  kSlowlog = 9,
  /// Chrome-trace JSON for an on-demand capture window of
  /// `Request::limit` milliseconds (Response::text). Always admitted:
  /// the capture occupies a worker for the window.
  kTraceDump = 10,
};

/// Lower-case wire-op name ("ping", "containers", ..., "tracedump") used in
/// per-op metric names and the slowlog dump; "unknown" for invalid values.
[[nodiscard]] const char* OpName(Op op);

/// \brief Response status codes (the wire-level triage of a request).
enum class RespCode : uint8_t {
  kOk = 0,
  /// Admission queue full: retry after `retry_after_ms` (load shedding).
  kShed = 1,
  /// The request's deadline expired before or during evaluation.
  kDeadlineExceeded = 2,
  /// The target observation is not in the snapshot.
  kNotFound = 3,
  /// Malformed or out-of-policy request (bad op, oversize frame...).
  kBadRequest = 4,
  /// Server is draining; the connection will close after this response.
  kShuttingDown = 5,
  /// Unexpected server-side failure.
  kInternal = 6,
};

/// \brief One client request.
struct Request {
  Op op = Op::kPing;
  /// Observation id for the point-lookup ops (ignored by ping/scan/stats).
  qb::ObsId target = 0;
  /// Client deadline in milliseconds from admission; 0 means "server
  /// default". The server clamps it to its configured maximum.
  uint32_t deadline_ms = 0;
  /// Minimum partial-containment degree (kPartial only).
  double min_degree = 0.0;
  /// Cap on returned records for kScan; capture window in milliseconds for
  /// kTraceDump (0 = server default in both cases).
  uint32_t limit = 0;
  /// Client-chosen correlation id, echoed back in Response::request_id and
  /// recorded in the slowlog. 0 means "unassigned" (the client fills it in).
  uint64_t request_id = 0;
};

/// \brief One relationship record of a kScan response.
struct ScanRecord {
  /// 'F' full containment, 'P' partial, 'C' complementarity.
  uint8_t kind = 0;
  qb::ObsId a = 0;
  qb::ObsId b = 0;
  /// Degree for 'P' records, 0 otherwise.
  double degree = 0.0;
};

/// \brief One server response.
struct Response {
  RespCode code = RespCode::kOk;
  /// Backoff hint for kShed, milliseconds.
  uint32_t retry_after_ms = 0;
  /// Version of the snapshot that answered (staleness/consistency checks;
  /// 0 when no snapshot was consulted).
  uint64_t snapshot_version = 0;
  /// Human-readable detail for non-OK codes.
  std::string error;
  /// Point-lookup results (Containers/Contained/Complements/Partial).
  std::vector<qb::ObsId> ids;
  /// Parallel to `ids` for kPartial: the containment degrees.
  std::vector<double> degrees;
  /// kScan results.
  std::vector<ScanRecord> records;
  /// kStats / kPing payload: counter values keyed by StatsFields order.
  std::vector<uint64_t> stats;
  /// Text payload of the observability ops: Prometheus exposition for
  /// kMetrics, JSON for kSlowlog/kTraceDump. Empty for the other ops.
  std::string text;
  /// Echo of Request::request_id; 0 on paths that answer before decoding a
  /// request (oversize frame, drain-before-read, undecodable payload).
  uint64_t request_id = 0;
};

/// Order of Response::stats entries in a kStats response.
enum StatsField : std::size_t {
  kStatsObservations = 0,
  kStatsFull = 1,
  kStatsPartial = 2,
  kStatsComplementary = 3,
  kStatsRequests = 4,
  kStatsShed = 5,
  kStatsDeadlineExpired = 6,
  kStatsReloads = 7,
  kStatsReloadFailures = 8,
  kStatsNumFields = 9,
};

/// Serializes `req` into a frame payload (version byte included, length
/// prefix excluded — WriteFrame adds it).
std::string EncodeRequest(const Request& req);

/// Parses a frame payload into a Request. ParseError on any malformation.
[[nodiscard]] Result<Request> DecodeRequest(const std::string& payload);

/// Serializes `resp` into a frame payload.
std::string EncodeResponse(const Response& resp);

/// Parses a frame payload into a Response. ParseError on any malformation.
[[nodiscard]] Result<Response> DecodeResponse(const std::string& payload);

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_PROTOCOL_H_
