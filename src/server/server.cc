#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "base/hot.h"
#include "core/relationship.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/observation_set.h"

namespace rdfcube {
namespace server {

namespace {

// Collects scan records up to a cap (the overflow is dropped, not an
// error: bulk consumers page via repeated scans in practice).
class ScanSink : public core::RelationshipSink {
 public:
  ScanSink(std::vector<ScanRecord>* out, std::size_t cap)
      : out_(out), cap_(cap) {}

  void OnFullContainment(core::ObsId a, core::ObsId b) override {
    Add({'F', a, b, 0.0});
  }
  void OnPartialContainment(core::ObsId a, core::ObsId b, double degree,
                            uint64_t /*dim_mask*/) override {
    Add({'P', a, b, degree});
  }
  void OnComplementarity(core::ObsId a, core::ObsId b) override {
    Add({'C', a, b, 0.0});
  }

  bool truncated() const { return truncated_; }

 private:
  void Add(const ScanRecord& rec) {
    if (out_->size() >= cap_) {
      truncated_ = true;
      return;
    }
    out_->push_back(rec);
  }

  std::vector<ScanRecord>* out_;
  std::size_t cap_;
  bool truncated_ = false;
};

// Per-op RED instruments, indexed by wire op - 1. Names and help strings
// live in this table (not at the registration call) so the set stays
// greppable in one place; all follow rdfcube_server_<op>_<what>_<unit>.
struct OpTelemetry {
  obs::Counter* requests = nullptr;
  obs::Histogram* latency = nullptr;
};

struct OpMetricSpec {
  const char* requests_name;
  const char* requests_help;
  const char* latency_name;
  const char* latency_help;
};

constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kTraceDump);

constexpr OpMetricSpec kOpMetricSpecs[kNumOps] = {
    {"rdfcube_server_ping_requests_total", "ping requests handled",
     "rdfcube_server_ping_latency_us", "ping handling latency (us)"},
    {"rdfcube_server_containers_requests_total",
     "containers lookups handled", "rdfcube_server_containers_latency_us",
     "containers handling latency (us)"},
    {"rdfcube_server_contained_requests_total", "contained lookups handled",
     "rdfcube_server_contained_latency_us", "contained handling latency (us)"},
    {"rdfcube_server_complements_requests_total",
     "complements lookups handled", "rdfcube_server_complements_latency_us",
     "complements handling latency (us)"},
    {"rdfcube_server_partial_requests_total", "partial lookups handled",
     "rdfcube_server_partial_latency_us", "partial handling latency (us)"},
    {"rdfcube_server_scan_requests_total", "bulk scans handled",
     "rdfcube_server_scan_latency_us", "scan handling latency (us)"},
    {"rdfcube_server_stats_requests_total", "stats requests handled",
     "rdfcube_server_stats_latency_us", "stats handling latency (us)"},
    {"rdfcube_server_metrics_requests_total", "metrics scrapes handled",
     "rdfcube_server_metrics_latency_us", "metrics handling latency (us)"},
    {"rdfcube_server_slowlog_requests_total", "slowlog dumps handled",
     "rdfcube_server_slowlog_latency_us", "slowlog handling latency (us)"},
    {"rdfcube_server_tracedump_requests_total", "trace captures handled",
     "rdfcube_server_tracedump_latency_us", "tracedump handling latency (us)"},
};

const OpTelemetry& OpTelemetryFor(Op op) {
  static const std::array<OpTelemetry, kNumOps> table = [] {
    std::array<OpTelemetry, kNumOps> t{};
    for (std::size_t i = 0; i < kNumOps; ++i) {
      const OpMetricSpec& spec = kOpMetricSpecs[i];
      t[i].requests =
          &obs::DefaultCounter(spec.requests_name, spec.requests_help);
      t[i].latency =
          &obs::DefaultHistogram(spec.latency_name, spec.latency_help,
                                 obs::ExponentialBuckets(1.0, 4.0, 12));
    }
    return t;
  }();
  const std::size_t index = static_cast<std::size_t>(op) - 1;
  return table[index < kNumOps ? index : 0];
}

// Observability payloads must fit one response frame; rather than truncate
// (corrupting Prometheus text / JSON), an oversize payload becomes an error.
void ClampObsText(uint32_t max_frame_bytes, Response* resp) {
  if (resp->text.size() + 512 <= max_frame_bytes) return;
  resp->text.clear();
  resp->code = RespCode::kInternal;
  resp->error = "observability payload exceeds frame limit";
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      queue_(options.max_queue),
      slowlog_(options.slowlog_capacity) {}

Server::~Server() { Stop(); }

Status Server::Start(SnapshotPtr initial) {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already started");
  }
  store_.Publish(std::move(initial));

  RDFCUBE_ASSIGN_OR_RETURN(listener_, ListenOn(options_.port));
  RDFCUBE_ASSIGN_OR_RETURN(port_, LocalPort(listener_));

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    return Status::IOError(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_read_ = Fd(pipe_fds[0]);
  wake_write_ = Fd(pipe_fds[1]);

  reactor_ = std::thread([this] { ReactorLoop(); });
  workers_.reserve(options_.num_workers == 0 ? 1 : options_.num_workers);
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options_.num_workers);
       ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  obs::TraceSpan span("server/drain");
  // Phase 1: stop admitting. New frames get kShuttingDown inline; jobs
  // already admitted drain through the workers.
  draining_.store(true, std::memory_order_release);
  WakeReactor();
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Phase 2: every response is written; tear the reactor down.
  reactor_exit_.store(true, std::memory_order_release);
  WakeReactor();
  if (reactor_.joinable()) reactor_.join();
}

void Server::WakeReactor() {
  const char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  (void)!::write(wake_write_.get(), &byte, 1);
}

void Server::ReactorLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<int> pfd_conn;  // parallel: conn fd per pollfd (-1 = special)
  for (;;) {
    if (reactor_exit_.load(std::memory_order_acquire)) break;

    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_read_.get(), POLLIN, 0});
    pfd_conn.push_back(-1);
    const bool draining = draining_.load(std::memory_order_acquire);
    if (!draining && listener_.valid()) {
      pfds.push_back({listener_.get(), POLLIN, 0});
      pfd_conn.push_back(-2);
    }
    for (const auto& [fd, conn] : conns_) {
      if (conn.in_flight) continue;
      pfds.push_back({fd, POLLIN, 0});
      pfd_conn.push_back(fd);
    }

    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) break;

    // Worker handbacks first: a completed connection may already have the
    // next request buffered.
    std::vector<std::pair<int, bool>> done;
    {
      MutexLock lock(&completions_mu_);
      done.swap(completions_);
    }
    for (const auto& [fd, ok] : done) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      it->second.in_flight = false;
      if (!ok || it->second.closing || !ProcessFrames(fd, &it->second)) {
        conns_.erase(it);
      }
    }

    if (rc <= 0) continue;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      if (pfd_conn[i] == -1) {
        char buf[64];
        while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (pfd_conn[i] == -2) {
        for (;;) {
          const int cfd = ::accept4(listener_.get(), nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;
          Connection conn;
          conn.fd = Fd(cfd);
          conns_.emplace(cfd, std::move(conn));
        }
        continue;
      }
      auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end() || it->second.in_flight) continue;
      if (!DrainReadable(&it->second) ||
          !ProcessFrames(it->first, &it->second)) {
        conns_.erase(it);
      }
    }
  }
  // Shutdown: every worker has joined by now, so no fd is in flight.
  conns_.clear();
  listener_.Close();
}

bool Server::DrainReadable(Connection* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<std::size_t>(n));
      // Refuse to buffer unboundedly: stop reading and let ProcessFrames
      // triage what is buffered (an oversize prefix earns kBadRequest and a
      // hangup; complete frames are consumed, freeing the buffer).
      if (conn->inbuf.size() > options_.max_frame_bytes + 4u) return true;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool Server::ProcessFrames(int fd, Connection* conn) {
  while (!conn->in_flight) {
    if (conn->inbuf.size() < 4) return true;
    uint32_t size = 0;
    for (int i = 0; i < 4; ++i) {
      size |= static_cast<uint32_t>(
                  static_cast<unsigned char>(conn->inbuf[i]))
              << (8 * i);
    }
    if (size > options_.max_frame_bytes) {
      Response resp;
      resp.code = RespCode::kBadRequest;
      resp.error = "frame exceeds limit";
      RespondInline(conn, resp);
      return false;
    }
    if (conn->inbuf.size() < 4u + size) return true;
    const std::string payload = conn->inbuf.substr(4, size);
    conn->inbuf.erase(0, 4u + size);

    if (draining_.load(std::memory_order_acquire)) {
      Response resp;
      resp.code = RespCode::kShuttingDown;
      resp.error = "server is draining";
      RespondInline(conn, resp);
      return false;
    }
    Result<Request> decoded = DecodeRequest(payload);
    if (!decoded.ok()) {
      // Protocol desync: answer, then drop the stream (resynchronizing a
      // length-prefixed stream after garbage is guesswork).
      Response resp;
      resp.code = RespCode::kBadRequest;
      resp.error = decoded.status().message();
      RespondInline(conn, resp);
      return false;
    }
    const Request req = std::move(decoded).value();
    if (options_.obs_ops_bypass_admission &&
        (req.op == Op::kMetrics || req.op == Op::kSlowlog)) {
      // Admission-exempt scrape path: a saturated server that sheds every
      // point lookup still answers its metrics and slowlog endpoints.
      RespondObsInline(conn, req);
      continue;
    }
    double seconds = req.deadline_ms == 0
                         ? options_.default_deadline_seconds
                         : static_cast<double>(req.deadline_ms) / 1000.0;
    seconds = std::min(seconds, options_.max_deadline_seconds);
    const Deadline deadline(seconds);  // clock starts at admission
    const Stopwatch queued;            // queue-wait metric starts here
    switch (queue_.TryPush([this, fd, req, deadline, queued] {
      HandleJob(fd, req, deadline, queued);
    })) {
      case Admission::kAdmitted:
        conn->in_flight = true;
        break;
      case Admission::kShed: {
        shed_total_.fetch_add(1, std::memory_order_relaxed);
        Response resp;
        resp.code = RespCode::kShed;
        resp.retry_after_ms = options_.retry_after_ms;
        resp.error = "admission queue full";
        resp.request_id = req.request_id;
        RespondInline(conn, resp);
        break;  // connection survives; the client backs off and retries
      }
      case Admission::kClosed: {
        Response resp;
        resp.code = RespCode::kShuttingDown;
        resp.error = "server is draining";
        resp.request_id = req.request_id;
        RespondInline(conn, resp);
        return false;
      }
    }
  }
  return true;
}

void Server::RespondInline(Connection* conn, const Response& resp) {
  const Deadline write_deadline(options_.write_timeout_seconds);
  (void)WriteFrame(conn->fd.get(), EncodeResponse(resp), write_deadline);
}

void Server::WorkerLoop() {
  for (;;) {
    // Unlimited pop deadline: Close() is the wakeup that ends the loop.
    std::optional<std::function<void()>> job = queue_.Pop(Deadline());
    if (!job.has_value()) {
      if (queue_.closed()) return;
      continue;
    }
    (*job)();
  }
}

void Server::HandleJob(int fd, const Request& req, const Deadline& deadline,
                       const Stopwatch& queued) {
  obs::TraceSpan span("server/handle");
  static obs::Counter& requests = obs::DefaultCounter(
      "rdfcube_server_requests_total", "Requests evaluated by workers");
  static obs::Histogram& latency = obs::DefaultHistogram(
      "rdfcube_server_request_latency_us",
      "Worker-side request handling latency (µs)",
      obs::ExponentialBuckets(1.0, 4.0, 12));
  static obs::Histogram& queue_wait = obs::DefaultHistogram(
      "rdfcube_server_queue_wait_us",
      "Admission-to-worker-pickup wait (µs)",
      obs::ExponentialBuckets(1.0, 4.0, 12));
  static obs::Gauge& in_flight = obs::DefaultGauge(
      "rdfcube_server_in_flight_requests",
      "Requests currently held by workers");
  queue_wait.Observe(queued.ElapsedMicros());
  in_flight.Increment();
  requests.Increment();
  requests_total_.fetch_add(1, std::memory_order_relaxed);

  // One store lookup per request: the snapshot pointer is pinned here so the
  // hot Evaluate kernel below never touches the mutex-guarded store.
  const SnapshotPtr snap = store_.Current();
  const Response resp = Evaluate(req, snap, deadline);
  if (resp.code == RespCode::kDeadlineExceeded) {
    static obs::Counter& expired = obs::DefaultCounter(
        "rdfcube_server_deadline_expired_total",
        "Requests that missed their deadline");
    expired.Increment();
    deadline_expired_total_.fetch_add(1, std::memory_order_relaxed);
  }

  const Deadline write_deadline(options_.write_timeout_seconds);
  const Status wrote = WriteFrame(fd, EncodeResponse(resp), write_deadline);
  if (!wrote.ok()) {
    static obs::Counter& io_errors = obs::DefaultCounter(
        "rdfcube_server_io_errors_total", "Response writes that failed");
    io_errors.Increment();
  }
  const double handle_us = span.ElapsedSeconds() * 1e6;
  latency.Observe(handle_us);
  RecordOpTelemetry(req, resp, deadline, handle_us);
  in_flight.Decrement();
  {
    MutexLock lock(&completions_mu_);
    completions_.emplace_back(fd, wrote.ok());
  }
  WakeReactor();
}

// Cold epilogue: per-op RED attribution and the slowlog entry. Runs after
// the response is written so it never adds to client-visible latency.
RDFCUBE_COLD void Server::RecordOpTelemetry(const Request& req,
                                            const Response& resp,
                                            const Deadline& deadline,
                                            double handle_us) {
  const OpTelemetry& telemetry = OpTelemetryFor(req.op);
  telemetry.requests->Increment();
  telemetry.latency->Observe(handle_us);

  SlowlogEntry entry;
  entry.op = static_cast<uint8_t>(req.op);
  entry.request_id = req.request_id;
  entry.latency_us = handle_us;
  const double remaining = deadline.RemainingSeconds();
  entry.deadline_remaining_ms =
      std::isinf(remaining) ? -1.0 : remaining * 1000.0;
  entry.snapshot_version = resp.snapshot_version;
  slowlog_.Add(entry);
}

RDFCUBE_HOT Response Server::Evaluate(const Request& req,
                                      const SnapshotPtr& snap,
                                      const Deadline& deadline) {
  Response resp;
  resp.request_id = req.request_id;
  if (deadline.Expired()) {
    resp.code = RespCode::kDeadlineExceeded;
    resp.error = "deadline expired in queue";
    return resp;
  }
  if (snap == nullptr) {
    resp.code = RespCode::kInternal;
    resp.error = "no snapshot published";
    return resp;
  }
  resp.snapshot_version = snap->version();

  const auto fail = [&resp](const Status& st) {
    if (st.IsTimedOut()) {
      resp.code = RespCode::kDeadlineExceeded;
    } else if (st.IsNotFound()) {
      resp.code = RespCode::kNotFound;
    } else {
      resp.code = RespCode::kInternal;
    }
    resp.error = st.message();
  };

  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kContainers:
    case Op::kContained:
    case Op::kComplements: {
      Result<std::vector<qb::ObsId>> ids =
          req.op == Op::kContainers ? snap->Containers(req.target, deadline)
          : req.op == Op::kContained
              ? snap->Contained(req.target, deadline)
              : snap->Complements(req.target, deadline);
      if (!ids.ok()) {
        fail(ids.status());
        break;
      }
      resp.ids = std::move(ids).value();
      break;
    }
    case Op::kPartial: {
      Result<std::vector<core::IncrementalEngine::PartialMatch>> matches =
          snap->PartiallyContained(req.target, req.min_degree, deadline);
      if (!matches.ok()) {
        fail(matches.status());
        break;
      }
      resp.ids.reserve(matches.value().size());
      resp.degrees.reserve(matches.value().size());
      for (const auto& m : matches.value()) {
        resp.ids.push_back(m.other);
        resp.degrees.push_back(m.degree);
      }
      break;
    }
    case Op::kScan: {
      const uint32_t cap =
          req.limit == 0
              ? options_.max_scan_records
              : std::min(req.limit, options_.max_scan_records);
      ScanSink sink(&resp.records, cap);
      const Status st = snap->ScanAll(&sink, deadline);
      if (!st.ok()) {
        resp.records.clear();
        fail(st);
        break;
      }
      if (sink.truncated()) resp.error = "truncated to limit";
      break;
    }
    case Op::kStats:
      EvaluateStats(snap, &resp);
      break;
    case Op::kMetrics:
      EvaluateMetrics(&resp);
      break;
    case Op::kSlowlog:
      EvaluateSlowlog(&resp);
      break;
    case Op::kTraceDump:
      EvaluateTraceDump(req, deadline, &resp);
      break;
  }
  return resp;
}

// Introspection path: reads the store's mutex-guarded reload counters, so it
// is RDFCUBE_COLD to keep the lock facts out of Evaluate's hot summary.
RDFCUBE_COLD void Server::EvaluateStats(const SnapshotPtr& snap,
                                        Response* resp) {
  resp->stats.assign(kStatsNumFields, 0);
  resp->stats[kStatsObservations] = snap->num_observations();
  resp->stats[kStatsFull] = snap->num_full();
  resp->stats[kStatsPartial] = snap->num_partial();
  resp->stats[kStatsComplementary] = snap->num_complementary();
  resp->stats[kStatsRequests] =
      requests_total_.load(std::memory_order_relaxed);
  resp->stats[kStatsShed] = shed_total_.load(std::memory_order_relaxed);
  resp->stats[kStatsDeadlineExpired] =
      deadline_expired_total_.load(std::memory_order_relaxed);
  resp->stats[kStatsReloads] = store_.reloads();
  resp->stats[kStatsReloadFailures] = store_.reload_failures();
}

// Scrape path: snapshots the registry under its mutex — cold so the lock
// fact never reaches Evaluate's hot summary.
RDFCUBE_COLD void Server::EvaluateMetrics(Response* resp) {
  resp->text =
      obs::MetricsToPrometheus(obs::MetricsRegistry::Global().Snapshot());
  ClampObsText(options_.max_frame_bytes, resp);
}

RDFCUBE_COLD void Server::EvaluateSlowlog(Response* resp) {
  resp->text = slowlog_.ToJson();
  ClampObsText(options_.max_frame_bytes, resp);
}

// On-demand capture: when no external capture (bench harness, stats
// --report) owns the collector, enable it for a bounded window — sleeping
// on the worker thread, which is why kTraceDump always rides admission —
// then dump Chrome-trace JSON. An externally-enabled collector is dumped
// as-is, never toggled.
RDFCUBE_COLD void Server::EvaluateTraceDump(const Request& req,
                                            const Deadline& deadline,
                                            Response* resp) {
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  if (!collector.enabled()) {
    uint32_t window_ms = req.limit == 0 ? 100u : req.limit;
    window_ms = std::min(window_ms, options_.max_trace_window_ms);
    const double budget_ms = deadline.RemainingSeconds() * 1000.0;
    if (budget_ms < static_cast<double>(window_ms)) {
      window_ms = budget_ms > 0.0 ? static_cast<uint32_t>(budget_ms) : 0u;
    }
    collector.Enable(1u << 12);
    std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
    resp->text = collector.ChromeTraceJson();
    collector.Disable();
  } else {
    resp->text = collector.ChromeTraceJson();
  }
  ClampObsText(options_.max_frame_bytes, resp);
}

// Reactor-side scrape: no admission, no deadline, no requests_total_
// accounting (consistent with the other inline responses) — but the per-op
// counter still ticks so scrape traffic stays attributable.
RDFCUBE_COLD void Server::RespondObsInline(Connection* conn,
                                           const Request& req) {
  Response resp;
  resp.request_id = req.request_id;
  const SnapshotPtr snap = store_.Current();
  if (snap != nullptr) resp.snapshot_version = snap->version();
  if (req.op == Op::kMetrics) {
    EvaluateMetrics(&resp);
  } else {
    EvaluateSlowlog(&resp);
  }
  OpTelemetryFor(req.op).requests->Increment();
  RespondInline(conn, resp);
}

}  // namespace server
}  // namespace rdfcube
