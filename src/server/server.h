// The relationship server (DESIGN.md §6): reactor + bounded worker pool
// over the published RelationshipSnapshot.
//
// One reactor thread owns every connection: it accepts, accumulates frames,
// and either admits a decoded request to the AdmissionQueue (bounded; full
// queue => inline kShed response with retry-after) or answers protocol-level
// failures inline. Worker threads pop admitted jobs, honor the request
// deadline (expired => kDeadlineExceeded without touching the kernels),
// query the current snapshot, and write the response; the reactor resumes
// polling the connection afterwards (one outstanding request per
// connection). Stop() drains: new requests get kShuttingDown, admitted ones
// finish, then threads join and connections close.

#ifndef RDFCUBE_SERVER_SERVER_H_
#define RDFCUBE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/stopwatch.h"
#include "base/thread_annotations.h"
#include "qb/corpus.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/slowlog.h"
#include "server/snapshot_store.h"
#include "server/socket_io.h"

namespace rdfcube {
namespace server {

/// \brief Server tuning knobs.
struct ServerOptions {
  /// TCP port to listen on (loopback); 0 = kernel-assigned, read back via
  /// Server::port().
  uint16_t port = 0;
  /// Worker threads evaluating admitted requests.
  std::size_t num_workers = 2;
  /// Admission queue capacity; pushes beyond it are shed.
  std::size_t max_queue = 64;
  /// Backoff hint attached to kShed responses.
  uint32_t retry_after_ms = 50;
  /// Deadline applied when a request asks for none (deadline_ms == 0).
  double default_deadline_seconds = 1.0;
  /// Upper clamp on client-requested deadlines.
  double max_deadline_seconds = 10.0;
  /// Frame-size ceiling for reads and the advertised response cap.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Budget for writing one response back to a client.
  double write_timeout_seconds = 5.0;
  /// Cap on records in one kScan response (request limit clamps to it).
  uint32_t max_scan_records = 1u << 16;
  /// Entries retained by the keep-the-slowest slowlog ring (0 disables).
  std::size_t slowlog_capacity = 64;
  /// When true (default), kMetrics/kSlowlog answer inline from the reactor,
  /// bypassing admission so a saturated or shedding server stays
  /// scrapeable. kTraceDump always rides admission: its capture window
  /// occupies a worker for up to `max_trace_window_ms`.
  bool obs_ops_bypass_admission = true;
  /// Upper clamp on the kTraceDump capture window (request limit, ms).
  uint32_t max_trace_window_ms = 1000;
};

/// \brief The relationship server. Construct, Start(), eventually Stop().
class Server {
 public:
  explicit Server(const ServerOptions& options);

  /// Stops the server if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener, publishes `initial` (may be null: the server then
  /// answers kInternal until the first successful Reload), and starts the
  /// reactor + workers. FailedPrecondition when already started.
  [[nodiscard]] Status Start(SnapshotPtr initial);

  /// The bound port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Rebuilds the published snapshot from `corpus` (SnapshotStore::Reload:
  /// failure keeps the last-good snapshot serving).
  [[nodiscard]] Status Reload(qb::Corpus corpus, const Deadline& deadline) {
    return store_.Reload(std::move(corpus), deadline);
  }

  /// The publication store (tests inject snapshots / inspect versions).
  SnapshotStore& store() { return store_; }

  /// Orderly drain: stop admitting, finish in-flight requests, join all
  /// threads, close every connection. Idempotent; safe from a signal-driven
  /// shutdown path (but NOT from a signal handler itself — flag and call).
  void Stop();

  /// Total requests evaluated by workers (diagnostics/tests).
  uint64_t requests_total() const {
    return requests_total_.load(std::memory_order_relaxed);
  }

  /// Requests shed at admission (diagnostics/tests).
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }

  /// Requests whose deadline expired before or during evaluation.
  uint64_t deadline_expired_total() const {
    return deadline_expired_total_.load(std::memory_order_relaxed);
  }

 private:
  // One client connection; owned and touched only by the reactor thread
  // (workers get the raw fd, which stays open while a request is in
  // flight — the reactor neither polls nor closes it until completion).
  struct Connection {
    Fd fd;
    std::string inbuf;
    bool in_flight = false;
    bool closing = false;
  };

  void ReactorLoop();
  void WorkerLoop();
  void WakeReactor();
  // Reads whatever is available; false when the connection should close.
  bool DrainReadable(Connection* conn);
  // Extracts and dispatches complete frames; false => close connection.
  bool ProcessFrames(int fd, Connection* conn);
  // Worker-side evaluation + response write. HandleJob fetches the published
  // snapshot once; Evaluate is the lock-free hot kernel over that pointer
  // (the rare kStats op, which reads the store's guarded counters, lives in
  // the cold EvaluateStats helper — see DESIGN.md §5g). `queued` started
  // ticking at admission: its elapsed time is the queue-wait metric.
  void HandleJob(int fd, const Request& req, const Deadline& deadline,
                 const Stopwatch& queued);
  Response Evaluate(const Request& req, const SnapshotPtr& snap,
                    const Deadline& deadline);
  void EvaluateStats(const SnapshotPtr& snap, Response* resp);
  // Cold observability handlers (DESIGN.md §5d): Prometheus scrape, slowlog
  // dump, and on-demand trace capture. Dispatched from Evaluate when the op
  // rides admission, or inline from the reactor via RespondObsInline.
  void EvaluateMetrics(Response* resp);
  void EvaluateSlowlog(Response* resp);
  void EvaluateTraceDump(const Request& req, const Deadline& deadline,
                         Response* resp);
  // Reactor-side answer for admission-exempt kMetrics/kSlowlog requests.
  void RespondObsInline(Connection* conn, const Request& req);
  // Cold epilogue of HandleJob: per-op RED attribution + slowlog entry.
  void RecordOpTelemetry(const Request& req, const Response& resp,
                         const Deadline& deadline, double handle_us);
  // Inline (reactor-side) response for shed/bad-request/shutting-down.
  void RespondInline(Connection* conn, const Response& resp);

  const ServerOptions options_;
  SnapshotStore store_;
  AdmissionQueue queue_;
  SlowlogRing slowlog_;

  Fd listener_;
  Fd wake_read_, wake_write_;
  uint16_t port_ = 0;

  std::thread reactor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> reactor_exit_{false};

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> deadline_expired_total_{0};

  // Worker -> reactor handback: fds whose response was written (ok) or
  // whose stream died (not ok).
  Mutex completions_mu_;
  std::vector<std::pair<int, bool>> completions_
      RDFCUBE_GUARDED_BY(completions_mu_);

  std::unordered_map<int, Connection> conns_;  // reactor-only
};

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_SERVER_H_
