#include "server/slowlog.h"

#include <algorithm>

#include "base/hot.h"
#include "obs/json_writer.h"
#include "server/protocol.h"

namespace rdfcube {
namespace server {

SlowlogRing::SlowlogRing(std::size_t capacity) : capacity_(capacity) {}

void SlowlogRing::Add(SlowlogEntry entry) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  entry.sequence = next_sequence_++;
  if (entries_.size() < capacity_) {
    entries_.push_back(entry);
    return;
  }
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const SlowlogEntry& candidate = entries_[i];
    const SlowlogEntry& current = entries_[min_index];
    if (candidate.latency_us < current.latency_us ||
        (candidate.latency_us == current.latency_us &&
         candidate.sequence < current.sequence)) {
      min_index = i;
    }
  }
  if (entry.latency_us > entries_[min_index].latency_us) {
    entries_[min_index] = entry;
  }
}

std::vector<SlowlogEntry> SlowlogRing::Dump() const {
  std::vector<SlowlogEntry> out;
  {
    MutexLock lock(&mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowlogEntry& a, const SlowlogEntry& b) {
              if (a.latency_us != b.latency_us) {
                return a.latency_us > b.latency_us;
              }
              return a.sequence < b.sequence;
            });
  return out;
}

std::string SlowlogRing::ToJson() const {
  const std::vector<SlowlogEntry> entries = Dump();
  std::string out = "[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SlowlogEntry& e = entries[i];
    if (i > 0) out.push_back(',');
    out.append("{\"op\":");
    obs::AppendJsonString(&out, OpName(static_cast<Op>(e.op)));
    out.append(",\"request_id\":");
    out.append(std::to_string(e.request_id));
    out.append(",\"latency_us\":");
    obs::AppendJsonDouble(&out, e.latency_us);
    out.append(",\"deadline_remaining_ms\":");
    obs::AppendJsonDouble(&out, e.deadline_remaining_ms);
    out.append(",\"snapshot_version\":");
    out.append(std::to_string(e.snapshot_version));
    out.append(",\"sequence\":");
    out.append(std::to_string(e.sequence));
    out.append("}");
  }
  out.push_back(']');
  return out;
}

// RDFCUBE_COLD so the call-graph analyzer's name-based linking cannot thread
// this lock into hot functions that call an unrelated `size()` member.
RDFCUBE_COLD std::size_t SlowlogRing::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace server
}  // namespace rdfcube
