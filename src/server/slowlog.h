// Bounded ring of the slowest recent requests (DESIGN.md §5d / §6).
//
// Worker threads record every evaluated request into a SlowlogRing from the
// cold epilogue of HandleJob; the kSlowlog wire op dumps the ring as JSON.
// The ring keeps the `capacity` slowest entries seen so far: a new entry
// evicts the current minimum-latency entry only when it is strictly slower,
// so the dump converges on the worst tail rather than the most recent noise.

#ifndef RDFCUBE_SERVER_SLOWLOG_H_
#define RDFCUBE_SERVER_SLOWLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/thread_annotations.h"

namespace rdfcube {
namespace server {

/// \brief One completed request as remembered by the slowlog.
struct SlowlogEntry {
  /// Wire Op value of the request (see protocol.h).
  uint8_t op = 0;
  /// Client correlation id echoed from the request.
  uint64_t request_id = 0;
  /// End-to-end worker handling latency, microseconds.
  double latency_us = 0.0;
  /// Deadline budget left when the response was written, milliseconds
  /// (0 when the deadline had already expired).
  double deadline_remaining_ms = 0.0;
  /// Version of the snapshot that answered.
  uint64_t snapshot_version = 0;
  /// Ring-assigned admission order (monotonic; ties in latency dump oldest
  /// first). Assigned by Add(); caller-provided values are overwritten.
  uint64_t sequence = 0;
};

/// \brief Thread-safe bounded keep-the-slowest ring.
class SlowlogRing {
 public:
  /// A ring with space for `capacity` entries (0 disables recording).
  explicit SlowlogRing(std::size_t capacity);

  SlowlogRing(const SlowlogRing&) = delete;
  SlowlogRing& operator=(const SlowlogRing&) = delete;

  /// Offers one completed request. When full, the entry with the smallest
  /// latency (oldest first on ties) is evicted iff the newcomer is strictly
  /// slower; otherwise the newcomer is dropped.
  void Add(SlowlogEntry entry);

  /// Entries ordered by latency descending, then by sequence ascending.
  [[nodiscard]] std::vector<SlowlogEntry> Dump() const;

  /// Dump() rendered as a JSON array (op as its wire name, one object per
  /// entry) — the kSlowlog response payload.
  [[nodiscard]] std::string ToJson() const;

  /// Maximum entries retained.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Entries currently retained.
  [[nodiscard]] std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::vector<SlowlogEntry> entries_ RDFCUBE_GUARDED_BY(mu_);
  uint64_t next_sequence_ RDFCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_SLOWLOG_H_
