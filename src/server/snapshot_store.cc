#include "server/snapshot_store.h"

#include <utility>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/corpus.h"
#include "util/fault.h"

namespace rdfcube {
namespace server {

SnapshotPtr SnapshotStore::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

void SnapshotStore::Publish(SnapshotPtr snap) {
  MutexLock lock(&mu_);
  current_ = std::move(snap);
}

Status SnapshotStore::Reload(qb::Corpus corpus, const Deadline& deadline) {
  obs::TraceSpan span("server/reload");
  static obs::Counter& reloads = obs::DefaultCounter(
      "rdfcube_server_reloads_total", "Snapshot reloads published");
  static obs::Counter& failures = obs::DefaultCounter(
      "rdfcube_server_reload_failures_total",
      "Snapshot reloads degraded through (last-good kept)");
  const SnapshotPtr base = Current();

  core::RelationshipSnapshot::BuildOptions options;
  options.deadline = deadline;
  options.version = (base != nullptr ? base->version() + 1 : 1);
  if (base != nullptr) options.selector = base->selector();

  // Choose the refresh path up front (BuildIncremental consumes the corpus,
  // so probing it and falling back on failure is not an option).
  const bool extends =
      base != nullptr && corpus.observations != nullptr &&
      corpus.observations->size() >= base->num_observations() &&
      core::FingerprintObservationsPrefix(
          *corpus.observations,
          static_cast<qb::ObsId>(base->num_observations())) ==
          base->fingerprint();

  Result<SnapshotPtr> built =
      extends ? core::RelationshipSnapshot::BuildIncremental(
                    *base, std::move(corpus), options)
              : core::RelationshipSnapshot::Build(std::move(corpus), options);
  if (!built.ok()) {
    MutexLock lock(&mu_);
    ++reload_failures_;
    failures.Increment();
    return built.status();
  }
  if (FaultTriggered(kFaultReloadSwap)) {
    // Crash between build and publication: the finished snapshot is dropped
    // and readers keep the last-good one.
    MutexLock lock(&mu_);
    ++reload_failures_;
    failures.Increment();
    return Status::Internal("injected swap failure before publication");
  }
  {
    MutexLock lock(&mu_);
    current_ = std::move(built).value();
    ++reloads_;
  }
  reloads.Increment();
  return Status::OK();
}

uint64_t SnapshotStore::reloads() const {
  MutexLock lock(&mu_);
  return reloads_;
}

uint64_t SnapshotStore::reload_failures() const {
  MutexLock lock(&mu_);
  return reload_failures_;
}

}  // namespace server
}  // namespace rdfcube
