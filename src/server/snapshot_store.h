// Copy-on-write snapshot publication (DESIGN.md §6, "graceful degradation").
//
// The store holds the server's current RelationshipSnapshot behind a mutex-
// guarded shared_ptr. Readers grab the pointer and keep a consistent view
// for the whole request even while a reload swaps in a successor; a failed
// (or fault-injected) reload leaves the last-good snapshot published, so the
// server degrades to stale-but-consistent answers instead of going dark.

#ifndef RDFCUBE_SERVER_SNAPSHOT_STORE_H_
#define RDFCUBE_SERVER_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>

#include "base/status.h"
#include "base/stopwatch.h"
#include "base/thread_annotations.h"
#include "core/snapshot.h"
#include "qb/corpus.h"

namespace rdfcube {
namespace server {

/// How snapshots are shared between the store, workers, and reloaders.
using SnapshotPtr = core::RelationshipSnapshot::Ptr;

/// Injection point consulted just before a successful reload publishes its
/// snapshot: a triggered fault drops the new snapshot instead of swapping,
/// modelling a crash between build and publication.
inline constexpr char kFaultReloadSwap[] = "server.reload.swap";

/// \brief Holds the currently-published snapshot; swap is atomic wrt
/// readers, reload failures keep the last-good.
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The published snapshot (may be null before the first Publish).
  SnapshotPtr Current() const;

  /// Publishes `snap` unconditionally (initial load, tests).
  void Publish(SnapshotPtr snap);

  /// Rebuilds from `corpus` and publishes on success. Refreshes
  /// copy-on-write (BuildIncremental) when `corpus` extends the current
  /// snapshot's corpus, falls back to a full build otherwise. On ANY
  /// failure — build error, deadline expiry, injected crash, swap fault —
  /// the previously published snapshot stays current and the error is
  /// returned. The new snapshot's version is the old version + 1.
  [[nodiscard]] Status Reload(qb::Corpus corpus, const Deadline& deadline);

  /// Number of successful reloads (including the implicit version bumps).
  uint64_t reloads() const;

  /// Number of failed reload attempts that were degraded through.
  uint64_t reload_failures() const;

 private:
  mutable Mutex mu_;
  SnapshotPtr current_ RDFCUBE_GUARDED_BY(mu_);
  uint64_t reloads_ RDFCUBE_GUARDED_BY(mu_) = 0;
  uint64_t reload_failures_ RDFCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_SNAPSHOT_STORE_H_
