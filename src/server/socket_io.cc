#include "server/socket_io.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "base/blocking.h"
#include "base/untrusted.h"
#include "util/fault.h"

namespace rdfcube {
namespace server {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

// Polls `fd` for `events` until ready or the deadline expires. Returns OK
// when ready, TimedOut on expiry, IOError on poll failure.
Status PollFor(int fd, short events, const Deadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.HasLimit()) {
      const double remaining = deadline.RemainingSeconds();
      if (remaining <= 0.0) return Status::TimedOut("socket deadline expired");
      // Round up so a sub-millisecond remainder still sleeps, not spins.
      timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::TimedOut("socket deadline expired");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

// Writes the whole buffer, polling for writability between short writes.
Status WriteAll(int fd, const char* data, std::size_t size,
                const Deadline& deadline) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      RDFCUBE_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

// Reads exactly `size` bytes. `*eof_before_first` reports a clean EOF before
// any byte arrived (only meaningful on error return).
Status ReadAll(int fd, char* data, std::size_t size, const Deadline& deadline,
               bool* eof_before_first) {
  std::size_t done = 0;
  if (eof_before_first != nullptr) *eof_before_first = false;
  while (done < size) {
    const ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0 && eof_before_first != nullptr) *eof_before_first = true;
      return Status::IOError("connection closed mid-read");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      RDFCUBE_RETURN_IF_ERROR(PollFor(fd, POLLIN, deadline));
      continue;
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  return Status::OK();
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenOn(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 128) < 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(const Fd& listener) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.get(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

RDFCUBE_BLOCKING Result<Fd> ConnectTo(const std::string& host, uint16_t port,
                     const Deadline& deadline) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int rc = ::connect(
      fd.get(), reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc < 0) {
    RDFCUBE_RETURN_IF_ERROR(PollFor(fd.get(), POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  const int one = 1;
  // Small request/response frames: Nagle only adds latency here.
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

RDFCUBE_BLOCKING Status WriteFrame(int fd, const std::string& payload,
                  const Deadline& deadline) {
  if (FaultTriggered(kFaultNetWrite)) {
    return Status::IOError("injected network write failure");
  }
  const uint32_t size = static_cast<uint32_t>(payload.size());
  char prefix[4];
  for (int i = 0; i < 4; ++i) prefix[i] = static_cast<char>(size >> (8 * i));
  // Prefix and payload in one buffer: a frame is either fully queued to the
  // kernel or the stream is declared dead, never interleaved with another
  // writer's bytes (one writer per connection by construction).
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(prefix, 4);
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size(), deadline);
}

RDFCUBE_BLOCKING RDFCUBE_TAINT_SOURCE Status ReadFrame(
    int fd, std::string* payload, uint32_t max_frame_bytes,
    const Deadline& deadline) {
  if (FaultTriggered(kFaultNetRead)) {
    return Status::IOError("injected network read failure");
  }
  char prefix[4];
  bool clean_eof = false;
  Status st = ReadAll(fd, prefix, 4, deadline, &clean_eof);
  if (!st.ok()) {
    if (clean_eof) return Status::OutOfRange("connection closed");
    return st;
  }
  uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<uint32_t>(static_cast<unsigned char>(prefix[i]))
            << (8 * i);
  }
  if (size > max_frame_bytes) {
    return Status::ResourceExhausted("frame exceeds limit: " +
                                     std::to_string(size) + " bytes");
  }
  payload->resize(size);
  if (size == 0) return Status::OK();
  return ReadAll(fd, payload->data(), size, deadline, nullptr);
}

}  // namespace server
}  // namespace rdfcube
