// rdfcube:internal — POSIX socket plumbing for the relationship server,
// not part of the public API (excluded from the src/rdfcube/rdfcube.h
// umbrella; see tools/rdfcube_lint).
//
// Thin RAII + Status wrappers over loopback TCP: a listener, a deadline-
// bounded connect, and length-prefixed frame reads/writes driven by poll()
// so every blocking step honors a base::Deadline. Read/write paths consult
// the util/fault injection points below so the chaos soak can surface
// network failures deterministically.

#ifndef RDFCUBE_SERVER_SOCKET_IO_H_
#define RDFCUBE_SERVER_SOCKET_IO_H_

#include <cstdint>
#include <string>
#include <utility>

#include "base/result.h"
#include "base/status.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace server {

/// Injection point: a triggered fault fails the next frame read with
/// IOError, as if the peer's connection reset mid-frame.
inline constexpr char kFaultNetRead[] = "server.net.read";

/// Injection point: a triggered fault fails the next frame write with
/// IOError.
inline constexpr char kFaultNetWrite[] = "server.net.write";

/// \brief Owning file-descriptor handle (closes on destruction).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing; returns the raw descriptor.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the descriptor now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Opens a loopback TCP listener on `port` (0 = kernel-assigned ephemeral
/// port) with SO_REUSEADDR, non-blocking, backlog ready. IOError on failure.
[[nodiscard]] Result<Fd> ListenOn(uint16_t port);

/// The port a listener from ListenOn is bound to (resolves port 0).
[[nodiscard]] Result<uint16_t> LocalPort(const Fd& listener);

/// Connects to `host:port`, waiting at most `deadline` for the TCP
/// handshake. TimedOut on deadline expiry, IOError otherwise.
[[nodiscard]] Result<Fd> ConnectTo(const std::string& host, uint16_t port,
                                   const Deadline& deadline);

/// Writes one length-prefixed frame (u32 little-endian payload size, then
/// the payload). Blocks via poll() until written or `deadline` expires.
/// TimedOut / IOError on failure; the stream is unusable after either.
[[nodiscard]] Status WriteFrame(int fd, const std::string& payload,
                                const Deadline& deadline);

/// Reads one length-prefixed frame into `*payload`. A prefix larger than
/// `max_frame_bytes` fails with ResourceExhausted (protocol abuse, not an
/// allocation); a clean EOF *before any prefix byte* fails with OutOfRange
/// ("connection closed") so callers can tell orderly hangups from errors;
/// EOF mid-frame is an IOError.
[[nodiscard]] Status ReadFrame(int fd, std::string* payload,
                               uint32_t max_frame_bytes,
                               const Deadline& deadline);

}  // namespace server
}  // namespace rdfcube

#endif  // RDFCUBE_SERVER_SOCKET_IO_H_
