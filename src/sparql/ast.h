// AST for the SPARQL subset needed by the paper's comparison approach (§4):
// BGPs with variable predicates, property paths over skos:broader(Transitive),
// FILTER(?a != ?b), and (nested) FILTER NOT EXISTS.

#ifndef RDFCUBE_SPARQL_AST_H_
#define RDFCUBE_SPARQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace rdfcube {
namespace sparql {

/// \brief A subject/predicate/object position: variable or constant term.
struct NodeRef {
  bool is_var = false;
  std::string var;   // without '?'
  rdf::Term term;    // valid when !is_var

  static NodeRef Var(std::string name) {
    NodeRef n;
    n.is_var = true;
    n.var = std::move(name);
    return n;
  }
  static NodeRef Const(rdf::Term t) {
    NodeRef n;
    n.term = std::move(t);
    return n;
  }
};

/// \brief One step of a property path: an IRI with an optional modifier.
struct PathStep {
  enum class Mod { kOne, kStar, kPlus };
  std::string predicate_iri;
  Mod mod = Mod::kOne;
};

/// \brief A sequence path (steps joined with '/'). Empty means "plain
/// predicate" (the pattern's `p` NodeRef applies instead).
using PropertyPath = std::vector<PathStep>;

/// \brief Triple pattern; when `path` is non-empty it replaces `p`.
struct TriplePattern {
  NodeRef s, p, o;
  PropertyPath path;
};

struct GroupPattern;

/// \brief FILTER(?a != ?b) or FILTER NOT EXISTS { ... }.
struct Filter {
  enum class Kind { kNotEquals, kNotExists };
  Kind kind = Kind::kNotEquals;
  std::string lhs_var, rhs_var;          // kNotEquals
  std::unique_ptr<GroupPattern> group;   // kNotExists
};

/// \brief A brace-delimited group: triple patterns plus filters, evaluated
/// as their conjunction.
struct GroupPattern {
  std::vector<TriplePattern> patterns;
  std::vector<Filter> filters;
};

/// \brief SELECT query.
///
/// When `union_groups` is non-empty the WHERE clause was written as
/// `{ G1 } UNION { G2 } ...` and `where` is unused: the solutions are the
/// union of the branches' solutions. `limit` == 0 means unlimited.
struct Query {
  bool distinct = false;
  std::vector<std::string> select_vars;  // without '?'
  GroupPattern where;
  std::vector<GroupPattern> union_groups;
  std::size_t limit = 0;
};

}  // namespace sparql
}  // namespace rdfcube

#endif  // RDFCUBE_SPARQL_AST_H_
