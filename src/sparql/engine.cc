#include "sparql/engine.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "sparql/parser.h"

namespace rdfcube {
namespace sparql {

namespace {

using rdf::TermId;
using rdf::kNoTerm;

// Variable environment: name -> bound TermId (kNoTerm = unbound).
class Env {
 public:
  TermId Get(const std::string& var) const {
    auto it = vars_.find(var);
    return it == vars_.end() ? kNoTerm : it->second;
  }
  // Binds var; returns false on conflict with an existing binding.
  bool Bind(const std::string& var, TermId value, std::vector<std::string>* log) {
    auto [it, inserted] = vars_.emplace(var, value);
    if (!inserted) return it->second == value;
    log->push_back(var);
    return true;
  }
  void Unbind(const std::string& var) { vars_.erase(var); }

 private:
  std::unordered_map<std::string, TermId> vars_;
};

class Evaluator {
 public:
  Evaluator(const rdf::TripleStore& store, const EvalOptions& options)
      : store_(store), options_(options) {}

  Status Run(const GroupPattern& group, const std::vector<std::string>& project,
             bool distinct, std::vector<Row>* out) {
    if (options_.deadline.Expired()) {
      return Status::TimedOut("sparql evaluation timed out");
    }
    Status status;
    std::unordered_set<std::string> seen;
    const Status eval_status = EvalGroup(group, 0, 0, [&]() -> bool {
      Row row;
      row.reserve(project.size());
      std::string key;
      for (const std::string& var : project) {
        const TermId id = env_.Get(var);
        row.push_back(id);
        key += std::to_string(id);
        key.push_back('|');
      }
      if (distinct && !seen.insert(key).second) return true;
      out->push_back(std::move(row));
      if (options_.max_rows != 0 && out->size() > options_.max_rows) {
        status = Status::ResourceExhausted(
            "sparql result set exceeded max_rows");
        return false;
      }
      return true;
    });
    if (!eval_status.ok()) return eval_status;
    return status;
  }

  /// Candidate triples examined so far (the cooperative-deadline step count).
  std::size_t steps() const { return steps_; }

 private:
  // Resolves a NodeRef under the current environment. Returns kNoTerm for
  // unbound variables and for constants absent from the dictionary (in which
  // case *absent is set: no triple can match a term the store has never seen).
  TermId Resolve(const NodeRef& n, bool* absent) const {
    if (n.is_var) return env_.Get(n.var);
    auto id = store_.dictionary().Find(n.term);
    if (!id.has_value()) {
      *absent = true;
      return kNoTerm;
    }
    return *id;
  }

  // Cooperative deadline check, called per candidate triple.
  bool Expired() {
    if (++steps_ % 2048 == 0 && options_.deadline.Expired()) {
      timed_out_ = true;
    }
    return timed_out_;
  }

  // Evaluates group patterns[pi...] then filters; calls `emit` per solution.
  // `emit` returns false to stop enumeration. A type-erased callback (not a
  // template) so recursive NOT EXISTS nesting doesn't explode instantiations.
  Status EvalGroup(const GroupPattern& group, std::size_t pi,
                   std::size_t depth, const std::function<bool()>& emit) {
    if (timed_out_) return Status::TimedOut("sparql evaluation timed out");
    if (pi == group.patterns.size()) {
      // All triple patterns matched; apply filters.
      for (const Filter& f : group.filters) {
        if (f.kind == Filter::Kind::kNotEquals) {
          const TermId a = env_.Get(f.lhs_var);
          const TermId b = env_.Get(f.rhs_var);
          if (a != kNoTerm && b != kNoTerm && a == b) return Status::OK();
        } else {
          bool exists = false;
          // The witness search sets stop_ to cut enumeration; that must not
          // leak into the outer evaluation.
          const bool saved_stop = stop_;
          RDFCUBE_RETURN_IF_ERROR(
              EvalGroup(*f.group, 0, depth + 1, [&exists]() -> bool {
                exists = true;
                return false;  // one witness suffices
              }));
          stop_ = saved_stop;
          if (exists) return Status::OK();
        }
      }
      if (!emit()) stop_ = true;
      return Status::OK();
    }

    const TriplePattern& tp = group.patterns[pi];
    if (!tp.path.empty()) {
      return EvalPath(group, pi, depth, emit);
    }

    bool absent = false;
    const TermId s = Resolve(tp.s, &absent);
    const TermId p = Resolve(tp.p, &absent);
    const TermId o = Resolve(tp.o, &absent);
    if (absent) return Status::OK();

    Status inner;
    store_.Match(s, p, o, [&](const rdf::Triple& t) {
      if (Expired() || stop_) return false;
      std::vector<std::string> bound;
      bool ok = true;
      if (tp.s.is_var && s == kNoTerm) ok = env_.Bind(tp.s.var, t.s, &bound);
      if (ok && tp.p.is_var && p == kNoTerm) {
        ok = env_.Bind(tp.p.var, t.p, &bound);
      }
      if (ok && tp.o.is_var && o == kNoTerm) {
        ok = env_.Bind(tp.o.var, t.o, &bound);
      }
      if (ok) {
        inner = EvalGroup(group, pi + 1, depth, emit);
      }
      for (const std::string& var : bound) env_.Unbind(var);
      return inner.ok() && !stop_ && !timed_out_;
    });
    if (timed_out_) return Status::TimedOut("sparql evaluation timed out");
    return inner;
  }

  // Expands `frontier` by one path step (single predicate application).
  void StepForward(TermId pred, const std::unordered_set<TermId>& frontier,
                   std::unordered_set<TermId>* out) {
    for (TermId node : frontier) {
      store_.Match(node, pred, kNoTerm, [&](const rdf::Triple& t) {
        out->insert(t.o);
        return true;
      });
    }
  }

  // All nodes reachable from `start` via the path (sequence of modified
  // steps). Star = reflexive-transitive on that step; plus = transitive.
  std::unordered_set<TermId> PathTargets(TermId start,
                                         const PropertyPath& path) {
    std::unordered_set<TermId> current = {start};
    for (const PathStep& step : path) {
      auto pred_opt = store_.dictionary().Find(
          rdf::Term::Iri(step.predicate_iri));
      if (!pred_opt.has_value()) {
        if (step.mod == PathStep::Mod::kOne ||
            step.mod == PathStep::Mod::kPlus) {
          return {};
        }
        continue;  // star over a missing predicate: identity
      }
      const TermId pred = *pred_opt;
      std::unordered_set<TermId> next;
      if (step.mod == PathStep::Mod::kOne) {
        StepForward(pred, current, &next);
      } else {
        // BFS closure; star keeps the sources.
        std::unordered_set<TermId> visited =
            step.mod == PathStep::Mod::kStar ? current
                                             : std::unordered_set<TermId>{};
        std::unordered_set<TermId> frontier = current;
        while (!frontier.empty()) {
          std::unordered_set<TermId> expanded;
          StepForward(pred, frontier, &expanded);
          std::unordered_set<TermId> fresh;
          for (TermId n : expanded) {
            if (visited.insert(n).second) fresh.insert(n);
          }
          frontier.swap(fresh);
        }
        next = std::move(visited);
        if (step.mod == PathStep::Mod::kPlus) {
          // Plus: exclude pure sources unless re-reached. `visited` started
          // empty, so it already only holds reached nodes.
        }
      }
      current.swap(next);
    }
    return current;
  }

  // Path pattern evaluation: requires s bound or constant (the paper's
  // queries always bind ?v1 through a preceding pattern); falls back to
  // enumerating all subjects of the first step otherwise.
  Status EvalPath(const GroupPattern& group, std::size_t pi, std::size_t depth,
                  const std::function<bool()>& emit) {
    const TriplePattern& tp = group.patterns[pi];
    bool absent = false;
    const TermId s = Resolve(tp.s, &absent);
    const TermId o = Resolve(tp.o, &absent);
    if (absent) return Status::OK();

    std::vector<TermId> starts;
    if (s != kNoTerm) {
      starts.push_back(s);
    } else {
      // Enumerate candidate subjects: every subject of the first predicate.
      auto pred_opt = store_.dictionary().Find(
          rdf::Term::Iri(tp.path.front().predicate_iri));
      if (!pred_opt.has_value()) return Status::OK();
      std::unordered_set<TermId> subjects;
      store_.Match(kNoTerm, *pred_opt, kNoTerm, [&](const rdf::Triple& t) {
        subjects.insert(t.s);
        return true;
      });
      starts.assign(subjects.begin(), subjects.end());
    }

    Status inner;
    for (TermId start : starts) {
      if (Expired() || stop_) break;
      const std::unordered_set<TermId> targets = PathTargets(start, tp.path);
      for (TermId target : targets) {
        if (Expired() || stop_) break;
        if (o != kNoTerm && o != target) continue;
        std::vector<std::string> bound;
        bool ok = true;
        if (tp.s.is_var && s == kNoTerm) {
          ok = env_.Bind(tp.s.var, start, &bound);
        }
        if (ok && tp.o.is_var && o == kNoTerm) {
          ok = env_.Bind(tp.o.var, target, &bound);
        }
        if (ok) inner = EvalGroup(group, pi + 1, depth, emit);
        for (const std::string& var : bound) env_.Unbind(var);
        if (!inner.ok()) return inner;
      }
    }
    if (timed_out_) return Status::TimedOut("sparql evaluation timed out");
    return inner;
  }

  const rdf::TripleStore& store_;
  const EvalOptions& options_;
  Env env_;
  std::size_t steps_ = 0;
  bool timed_out_ = false;
  bool stop_ = false;
};

// Body of Evaluate(); `*steps` accumulates candidate triples examined even
// when a branch errors out, so the caller can flush them into metrics.
Result<std::vector<Row>> EvaluateImpl(const rdf::TripleStore& store,
                                      const Query& query,
                                      const EvalOptions& options,
                                      std::size_t* steps) {
  std::vector<Row> rows;
  if (query.union_groups.empty()) {
    Evaluator evaluator(store, options);
    const Status status =
        evaluator.Run(query.where, query.select_vars, query.distinct, &rows);
    *steps += evaluator.steps();
    RDFCUBE_RETURN_IF_ERROR(status);
  } else {
    // UNION: concatenate branch solutions; DISTINCT is applied across
    // branches afterwards.
    for (const GroupPattern& branch : query.union_groups) {
      Evaluator evaluator(store, options);
      std::vector<Row> branch_rows;
      const Status status = evaluator.Run(branch, query.select_vars,
                                          /*distinct=*/false, &branch_rows);
      *steps += evaluator.steps();
      RDFCUBE_RETURN_IF_ERROR(status);
      rows.insert(rows.end(), branch_rows.begin(), branch_rows.end());
    }
    if (query.distinct) {
      std::unordered_set<std::string> seen;
      std::vector<Row> unique;
      for (Row& row : rows) {
        std::string key;
        for (rdf::TermId id : row) {
          key += std::to_string(id);
          key.push_back('|');
        }
        if (seen.insert(key).second) unique.push_back(std::move(row));
      }
      rows.swap(unique);
    }
  }
  if (query.limit != 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  return rows;
}

}  // namespace

Result<std::vector<Row>> Evaluate(const rdf::TripleStore& store,
                                  const Query& query,
                                  const EvalOptions& options) {
  obs::TraceSpan span("sparql/evaluate");
  std::size_t steps = 0;
  Result<std::vector<Row>> result = EvaluateImpl(store, query, options, &steps);
  static obs::Counter& matches = obs::DefaultCounter(
      "rdfcube_sparql_pattern_matches_total",
      "Candidate triples examined by the SPARQL evaluator");
  matches.Increment(steps);
  if (!result.ok() && result.status().IsTimedOut()) {
    static obs::Counter& expired = obs::DefaultCounter(
        "rdfcube_sparql_deadline_expired_total",
        "SPARQL evaluations aborted by deadline expiry");
    expired.Increment();
  }
  return result;
}

Result<std::vector<Row>> EvaluateText(const rdf::TripleStore& store,
                                      std::string_view query_text,
                                      const EvalOptions& options) {
  RDFCUBE_ASSIGN_OR_RETURN(Query query, ParseQuery(query_text));
  return Evaluate(store, query, options);
}

}  // namespace sparql
}  // namespace rdfcube
