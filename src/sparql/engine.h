// Evaluator for the SPARQL subset: nested-loop BGP joins over the triple
// store indexes, BFS property paths, and per-binding NOT EXISTS anti-joins.
//
// This module exists to reproduce the paper's *comparison* approach. It is a
// faithful generic evaluator, not an optimized one: like the Virtuoso runs in
// the paper, the relationship queries are super-quadratic here, which is the
// experimental point (§4.1: SPARQL "perform[s] adequately for small inputs"
// then times out or exhausts memory).

#ifndef RDFCUBE_SPARQL_ENGINE_H_
#define RDFCUBE_SPARQL_ENGINE_H_

#include <string>
#include <vector>

#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "base/result.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace sparql {

/// \brief One result row: term ids parallel to Query::select_vars.
using Row = std::vector<rdf::TermId>;

/// \brief Evaluation limits (deadline, row caps) for the SPARQL engine.
struct EvalOptions {
  /// Cooperative timeout (the paper capped runs; "t/o" entries).
  Deadline deadline;
  /// Safety valve on result-set size (the paper's "o/m" out-of-memory
  /// entries); 0 = unlimited.
  std::size_t max_rows = 0;
};

/// \brief Evaluates `query` against `store`.
///
/// Returns TimedOut / ResourceExhausted when the corresponding EvalOptions
/// limit is hit. DISTINCT is applied to the projected rows.
[[nodiscard]] Result<std::vector<Row>> Evaluate(const rdf::TripleStore& store,
                                  const Query& query,
                                  const EvalOptions& options = {});

/// Parses and evaluates in one call.
[[nodiscard]] Result<std::vector<Row>> EvaluateText(const rdf::TripleStore& store,
                                      std::string_view query_text,
                                      const EvalOptions& options = {});

}  // namespace sparql
}  // namespace rdfcube

#endif  // RDFCUBE_SPARQL_ENGINE_H_
