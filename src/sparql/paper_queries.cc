#include "sparql/paper_queries.h"

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"

namespace rdfcube {
namespace sparql {

namespace {

const char kPrefixes[] =
    "PREFIX qb: <http://purl.org/linked-data/cube#>\n"
    "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

}  // namespace

std::string PartialContainmentQuery() {
  // skos:broader points child -> parent, so "?v2 broader/broader* ?v1" makes
  // ?v1 a (strict) ancestor of ?v2: o1's value contains o2's.
  return std::string(kPrefixes) +
         "SELECT DISTINCT ?o1 ?o2 WHERE {\n"
         "  ?o1 a qb:Observation .\n"
         "  ?o2 a qb:Observation .\n"
         "  ?o1 ?d1 ?v1 .\n"
         "  ?o2 ?d1 ?v2 .\n"
         "  ?v2 skos:broader/skos:broader* ?v1 .\n"
         "  FILTER(?o1 != ?o2)\n"
         "}";
}

std::string ComplementarityQuery() {
  return std::string(kPrefixes) +
         "SELECT DISTINCT ?o1 ?o2 WHERE {\n"
         "  ?o1 a qb:Observation .\n"
         "  ?o2 a qb:Observation .\n"
         "  FILTER(?o1 != ?o2)\n"
         "  FILTER NOT EXISTS {\n"
         "    ?d a qb:DimensionProperty .\n"
         "    ?o1 ?d ?v1 .\n"
         "    ?o2 ?d ?v2 .\n"
         "    FILTER(?v1 != ?v2)\n"
         "  }\n"
         "}";
}

std::string FullContainmentQuery() {
  // ∃ strictly containing dimension, ∀ shared dimensions ancestor-or-equal
  // (the universal via doubly-nested NOT EXISTS).
  return std::string(kPrefixes) +
         "SELECT DISTINCT ?o1 ?o2 WHERE {\n"
         "  ?o1 a qb:Observation .\n"
         "  ?o2 a qb:Observation .\n"
         "  ?da a qb:DimensionProperty .\n"
         "  ?o1 ?da ?va .\n"
         "  ?o2 ?da ?vb .\n"
         "  ?vb skos:broader/skos:broader* ?va .\n"
         "  FILTER(?o1 != ?o2)\n"
         "  FILTER NOT EXISTS {\n"
         "    ?d a qb:DimensionProperty .\n"
         "    ?o1 ?d ?v1 .\n"
         "    ?o2 ?d ?v2 .\n"
         "    FILTER(?v1 != ?v2)\n"
         "    FILTER NOT EXISTS { ?v2 skos:broader/skos:broader* ?v1 }\n"
         "  }\n"
         "}";
}

Result<QueryRunResult> RunRelationshipQuery(const rdf::TripleStore& store,
                                            const std::string& query_text,
                                            const Deadline& deadline,
                                            std::size_t max_rows) {
  EvalOptions options;
  options.deadline = deadline;
  options.max_rows = max_rows;
  Stopwatch watch;
  QueryRunResult result;
  auto rows = EvaluateText(store, query_text, options);
  result.elapsed_seconds = watch.ElapsedSeconds();
  if (!rows.ok()) {
    if (rows.status().IsTimedOut()) {
      result.timed_out = true;
      return result;
    }
    if (rows.status().IsResourceExhausted()) {
      result.out_of_memory = true;
      return result;
    }
    return rows.status();
  }
  const rdf::Dictionary& dict = store.dictionary();
  result.pairs.reserve(rows->size());
  for (const Row& row : *rows) {
    result.pairs.emplace_back(dict.Value(row[0]),
                              dict.Value(row[1]));
  }
  return result;
}

}  // namespace sparql
}  // namespace rdfcube
