// The paper's comparison queries (§4, "SPARQL-based"), expressed against the
// RDF export of a corpus, plus a driver that runs them and reports pairs.

#ifndef RDFCUBE_SPARQL_PAPER_QUERIES_H_
#define RDFCUBE_SPARQL_PAPER_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "rdf/triple_store.h"
#include "base/result.h"
#include "base/stopwatch.h"

namespace rdfcube {
namespace sparql {

/// Query text detecting *partial containment* pairs (?o1 partially contains
/// ?o2): shares a dimension whose value for ?o1 is a strict hierarchical
/// ancestor of the value for ?o2. As in the paper, the SPARQL formulation
/// only *detects* the relationship ("partial containment is only detected
/// and not quantified") and relaxes the schema conditions of §2.
std::string PartialContainmentQuery();

/// Query text detecting *complementarity* pairs: no shared dimension has
/// different values. Deviation from the paper's listing (documented in
/// DESIGN.md): the inner group constrains ?d to qb:DimensionProperty, since
/// without it the variable-predicate pattern also ranges over qb:dataSet and
/// rdf:type, which would wrongly eliminate cross-dataset pairs.
std::string ComplementarityQuery();

/// Query text detecting *full containment* (?o1 fully contains ?o2): at
/// least one strictly-containing shared dimension and no shared dimension
/// that fails ancestor-or-equal. Universal quantification is mimicked with
/// a doubly-nested NOT EXISTS, as the paper describes.
std::string FullContainmentQuery();

/// \brief Result of one relationship query run.
struct QueryRunResult {
  /// Detected (o1, o2) IRI pairs.
  std::vector<std::pair<std::string, std::string>> pairs;
  double elapsed_seconds = 0.0;
  /// True when the run hit the deadline / row cap (the paper's t/o / o/m).
  bool timed_out = false;
  bool out_of_memory = false;
};

/// Runs one of the above query texts against `store`, translating term ids
/// back to IRIs. A default-constructed Deadline means no time limit.
[[nodiscard]] Result<QueryRunResult> RunRelationshipQuery(const rdf::TripleStore& store,
                                            const std::string& query_text,
                                            const Deadline& deadline,
                                            std::size_t max_rows = 0);

}  // namespace sparql
}  // namespace rdfcube

#endif  // RDFCUBE_SPARQL_PAPER_QUERIES_H_
