#include "sparql/parser.h"

#include <cctype>
#include <unordered_map>

#include "rdf/vocab.h"

namespace rdfcube {
namespace sparql {

namespace {

// Deepest FILTER NOT EXISTS nesting the parser will follow; the paper's
// queries nest at most two levels, so 64 only rejects pathological inputs.
constexpr std::size_t kMaxGroupDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Query> Run() {
    Query q;
    SkipWs();
    while (PeekKeyword("PREFIX")) {
      RDFCUBE_RETURN_IF_ERROR(ParsePrefix());
      SkipWs();
    }
    if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
    SkipWs();
    if (PeekKeyword("DISTINCT")) {
      ConsumeKeyword("DISTINCT");
      q.distinct = true;
    }
    SkipWs();
    while (!AtEnd() && Peek() == '?') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string var, ParseVarName());
      q.select_vars.push_back(std::move(var));
      SkipWs();
    }
    if (q.select_vars.empty()) return Error("SELECT needs at least one ?var");
    if (!ConsumeKeyword("WHERE")) return Error("expected WHERE");
    // WHERE { { G1 } UNION { G2 } ... }  or a plain group.
    SkipWs();
    if (AtEnd() || Peek() != '{') return Error("expected {");
    const std::size_t where_start = pos_;
    ++pos_;
    SkipWs();
    if (!AtEnd() && Peek() == '{') {
      while (true) {
        RDFCUBE_ASSIGN_OR_RETURN(GroupPattern branch, ParseGroup(/*depth=*/0));
        q.union_groups.push_back(std::move(branch));
        SkipWs();
        if (PeekKeyword("UNION")) {
          ConsumeKeyword("UNION");
          SkipWs();
          continue;
        }
        break;
      }
      if (q.union_groups.size() < 2) {
        return Error("expected UNION between group branches");
      }
      SkipWs();
      if (AtEnd() || Peek() != '}') return Error("expected } closing WHERE");
      ++pos_;
    } else {
      pos_ = where_start;
      RDFCUBE_ASSIGN_OR_RETURN(q.where, ParseGroup(/*depth=*/0));
    }
    SkipWs();
    if (PeekKeyword("LIMIT")) {
      ConsumeKeyword("LIMIT");
      SkipWs();
      std::size_t value = 0;
      bool any = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + static_cast<std::size_t>(Peek() - '0');
        ++pos_;
        any = true;
      }
      if (!any) return Error("LIMIT expects a number");
      q.limit = value;
      SkipWs();
    }
    if (!AtEnd()) return Error("trailing input after query");
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd()) {
      if (Peek() == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      } else {
        return;
      }
    }
  }

  bool PeekKeyword(std::string_view kw) const {
    if (pos_ + kw.size() > text_.size()) return false;
    for (std::size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) != kw[i]) {
        return false;
      }
    }
    // Keyword must not continue as an identifier.
    if (pos_ + kw.size() < text_.size()) {
      const char next = text_[pos_ + kw.size()];
      if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
        return false;
      }
    }
    return true;
  }

  bool ConsumeKeyword(std::string_view kw) {
    SkipWs();
    if (!PeekKeyword(kw)) return false;
    pos_ += kw.size();
    return true;
  }

  Status Error(std::string_view msg) const {
    return Status::ParseError("sparql: " + std::string(msg) + " (at offset " +
                              std::to_string(pos_) + ")");
  }

  Status ParsePrefix() {
    ConsumeKeyword("PREFIX");
    SkipWs();
    std::string prefix;
    while (!AtEnd() && Peek() != ':') prefix.push_back(text_[pos_++]);
    if (AtEnd()) return Error("unterminated PREFIX");
    ++pos_;  // ':'
    SkipWs();
    if (AtEnd() || Peek() != '<') return Error("PREFIX expects <iri>");
    ++pos_;
    std::string iri;
    while (!AtEnd() && Peek() != '>') iri.push_back(text_[pos_++]);
    if (AtEnd()) return Error("unterminated IRI");
    ++pos_;
    prefixes_[prefix] = iri;
    return Status::OK();
  }

  Result<std::string> ParseVarName() {
    if (AtEnd() || Peek() != '?') return Error("expected ?var");
    ++pos_;
    std::string name;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      name.push_back(text_[pos_++]);
    }
    if (name.empty()) return Error("empty variable name");
    return name;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.';
  }

  Result<std::string> ParseIriOrPrefixed() {
    SkipWs();
    if (AtEnd()) return Error("expected IRI");
    if (Peek() == '<') {
      ++pos_;
      std::string iri;
      while (!AtEnd() && Peek() != '>') iri.push_back(text_[pos_++]);
      if (AtEnd()) return Error("unterminated IRI");
      ++pos_;
      return iri;
    }
    std::string prefix;
    while (!AtEnd() && Peek() != ':' && IsNameChar(Peek())) {
      prefix.push_back(text_[pos_++]);
    }
    if (AtEnd() || Peek() != ':') return Error("expected prefixed name");
    ++pos_;
    std::string local;
    while (!AtEnd() && IsNameChar(Peek())) {
      if (Peek() == '.') {
        const char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : ' ';
        if (!IsNameChar(next) || next == '.') break;
      }
      local.push_back(text_[pos_++]);
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) return Error("undefined prefix '" + prefix + "'");
    return it->second + local;
  }

  Result<NodeRef> ParseNode() {
    SkipWs();
    if (AtEnd()) return Error("expected term");
    if (Peek() == '?') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string var, ParseVarName());
      return NodeRef::Var(std::move(var));
    }
    if (Peek() == '"') {
      ++pos_;
      std::string value;
      while (!AtEnd() && Peek() != '"') value.push_back(text_[pos_++]);
      if (AtEnd()) return Error("unterminated literal");
      ++pos_;
      return NodeRef::Const(rdf::Term::Literal(std::move(value)));
    }
    RDFCUBE_ASSIGN_OR_RETURN(std::string iri, ParseIriOrPrefixed());
    return NodeRef::Const(rdf::Term::Iri(std::move(iri)));
  }

  // Predicate position: 'a', variable, or a property path.
  Status ParsePredicate(TriplePattern* pattern) {
    SkipWs();
    if (AtEnd()) return Error("expected predicate");
    if (Peek() == '?') {
      RDFCUBE_ASSIGN_OR_RETURN(std::string var, ParseVarName());
      pattern->p = NodeRef::Var(std::move(var));
      return Status::OK();
    }
    if (Peek() == 'a' && pos_ + 1 < text_.size() &&
        std::isspace(static_cast<unsigned char>(text_[pos_ + 1]))) {
      ++pos_;
      pattern->p =
          NodeRef::Const(rdf::Term::Iri(std::string(rdf::vocab::kRdfType)));
      return Status::OK();
    }
    // Path: step ('/' step)* where step = iri ('*'|'+')?
    PropertyPath path;
    while (true) {
      PathStep step;
      RDFCUBE_ASSIGN_OR_RETURN(step.predicate_iri, ParseIriOrPrefixed());
      if (!AtEnd() && Peek() == '*') {
        step.mod = PathStep::Mod::kStar;
        ++pos_;
      } else if (!AtEnd() && Peek() == '+') {
        step.mod = PathStep::Mod::kPlus;
        ++pos_;
      }
      path.push_back(std::move(step));
      SkipWs();
      if (!AtEnd() && Peek() == '/') {
        ++pos_;
        SkipWs();
        continue;
      }
      break;
    }
    if (path.size() == 1 && path[0].mod == PathStep::Mod::kOne) {
      pattern->p = NodeRef::Const(rdf::Term::Iri(path[0].predicate_iri));
    } else {
      pattern->path = std::move(path);
    }
    return Status::OK();
  }

  // `depth` counts NOT EXISTS group nesting through the ParseFilter <->
  // ParseGroup cycle; kMaxGroupDepth rejects adversarially deep queries
  // before the recursion overflows the stack (unbounded-recursion gate).
  Result<Filter> ParseFilter(std::size_t depth) {
    ConsumeKeyword("FILTER");
    SkipWs();
    Filter f;
    if (PeekKeyword("NOT")) {
      ConsumeKeyword("NOT");
      if (!ConsumeKeyword("EXISTS")) return Error("expected EXISTS after NOT");
      f.kind = Filter::Kind::kNotExists;
      RDFCUBE_ASSIGN_OR_RETURN(GroupPattern group, ParseGroup(depth + 1));
      f.group = std::make_unique<GroupPattern>(std::move(group));
      return f;
    }
    if (AtEnd() || Peek() != '(') return Error("expected ( after FILTER");
    ++pos_;
    RDFCUBE_ASSIGN_OR_RETURN(f.lhs_var, ParseVarName());
    SkipWs();
    if (pos_ + 1 >= text_.size() || text_[pos_] != '!' ||
        text_[pos_ + 1] != '=') {
      return Error("only != filters are supported");
    }
    pos_ += 2;
    SkipWs();
    RDFCUBE_ASSIGN_OR_RETURN(f.rhs_var, ParseVarName());
    SkipWs();
    if (AtEnd() || Peek() != ')') return Error("expected ) closing FILTER");
    ++pos_;
    f.kind = Filter::Kind::kNotEquals;
    return f;
  }

  Result<GroupPattern> ParseGroup(std::size_t depth) {
    if (depth > kMaxGroupDepth) return Error("group nesting too deep");
    SkipWs();
    if (AtEnd() || Peek() != '{') return Error("expected {");
    ++pos_;
    GroupPattern group;
    while (true) {
      SkipWs();
      if (AtEnd()) return Error("unterminated group");
      if (Peek() == '}') {
        ++pos_;
        return group;
      }
      if (Peek() == '.') {  // stray separator
        ++pos_;
        continue;
      }
      if (PeekKeyword("FILTER")) {
        RDFCUBE_ASSIGN_OR_RETURN(Filter f, ParseFilter(depth));
        group.filters.push_back(std::move(f));
        continue;
      }
      TriplePattern pattern;
      RDFCUBE_ASSIGN_OR_RETURN(pattern.s, ParseNode());
      RDFCUBE_RETURN_IF_ERROR(ParsePredicate(&pattern));
      RDFCUBE_ASSIGN_OR_RETURN(pattern.o, ParseNode());
      group.patterns.push_back(std::move(pattern));
      SkipWs();
      if (!AtEnd() && Peek() == '.') ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Parser parser(text);
  return parser.Run();
}

}  // namespace sparql
}  // namespace rdfcube
