// Text parser for the SPARQL subset described in ast.h.

#ifndef RDFCUBE_SPARQL_PARSER_H_
#define RDFCUBE_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/ast.h"
#include "base/result.h"

namespace rdfcube {
namespace sparql {

/// \brief Parses a query of the form
///
///   PREFIX qb: <...>
///   SELECT DISTINCT ?o1 ?o2 WHERE {
///     ?o1 a qb:Observation .
///     ?o1 ?d ?v1 .
///     ?v1 skos:broader/skos:broader* ?v2 .
///     FILTER(?o1 != ?o2)
///     FILTER NOT EXISTS { ... }
///   }
///
/// Supported: PREFIX directives, SELECT [DISTINCT] with an explicit variable
/// list, triple patterns whose terms are variables, <IRIs>, prefixed names or
/// the `a` keyword, sequence property paths with `*`/`+` modifiers,
/// FILTER(?x != ?y), and arbitrarily nested FILTER NOT EXISTS groups.
/// Anything else returns ParseError.
[[nodiscard]] Result<Query> ParseQuery(std::string_view text);

}  // namespace sparql
}  // namespace rdfcube

#endif  // RDFCUBE_SPARQL_PARSER_H_
