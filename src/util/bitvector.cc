#include "util/bitvector.h"

#include <bit>

#include "base/hot.h"

namespace rdfcube {

namespace {

// Returns a mask selecting bits [lo, hi) of a single word, 0 <= lo <= hi <= 64.
inline uint64_t RangeMask(std::size_t lo, std::size_t hi) {
  const uint64_t hi_mask =
      hi == 64 ? ~uint64_t{0} : ((uint64_t{1} << hi) - 1);
  const uint64_t lo_mask = (uint64_t{1} << lo) - 1;
  return hi_mask & ~lo_mask;
}

}  // namespace

RDFCUBE_HOT std::size_t BitVector::Count() const {
  std::size_t n = 0;
  for (uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

RDFCUBE_HOT std::size_t BitVector::CountRange(std::size_t begin, std::size_t end) const {
  if (begin >= end) return 0;
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  if (first_word == last_word) {
    const uint64_t m = RangeMask(begin & 63, ((end - 1) & 63) + 1);
    return static_cast<std::size_t>(std::popcount(words_[first_word] & m));
  }
  std::size_t n = static_cast<std::size_t>(
      std::popcount(words_[first_word] & RangeMask(begin & 63, 64)));
  for (std::size_t w = first_word + 1; w < last_word; ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w]));
  }
  n += static_cast<std::size_t>(
      std::popcount(words_[last_word] & RangeMask(0, ((end - 1) & 63) + 1)));
  return n;
}

RDFCUBE_HOT bool BitVector::Covers(const BitVector& other) const {
  const std::size_t n = words_.size() < other.words_.size()
                            ? words_.size()
                            : other.words_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != other.words_[i]) return false;
  }
  // Any extra set bits in a longer `other` cannot be covered.
  for (std::size_t i = n; i < other.words_.size(); ++i) {
    if (other.words_[i] != 0) return false;
  }
  return true;
}

RDFCUBE_HOT bool BitVector::CoversRange(const BitVector& other, std::size_t begin,
                            std::size_t end) const {
  if (begin >= end) return true;
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    const std::size_t lo = (w == first_word) ? (begin & 63) : 0;
    const std::size_t hi = (w == last_word) ? (((end - 1) & 63) + 1) : 64;
    const uint64_t m = RangeMask(lo, hi);
    const uint64_t b = other.words_[w] & m;
    if ((words_[w] & b) != b) return false;
  }
  return true;
}

RDFCUBE_HOT bool BitVector::EqualsRange(const BitVector& other, std::size_t begin,
                            std::size_t end) const {
  if (begin >= end) return true;
  const std::size_t first_word = begin >> 6;
  const std::size_t last_word = (end - 1) >> 6;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    const std::size_t lo = (w == first_word) ? (begin & 63) : 0;
    const std::size_t hi = (w == last_word) ? (((end - 1) & 63) + 1) : 64;
    const uint64_t m = RangeMask(lo, hi);
    if ((words_[w] & m) != (other.words_[w] & m)) return false;
  }
  return true;
}

RDFCUBE_HOT std::size_t BitVector::IntersectCount(const BitVector& other) const {
  const std::size_t n = words_.size() < other.words_.size()
                            ? words_.size()
                            : other.words_.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return count;
}

RDFCUBE_HOT std::size_t BitVector::UnionCount(const BitVector& other) const {
  const std::size_t n = words_.size() > other.words_.size()
                            ? words_.size()
                            : other.words_.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const uint64_t a = i < words_.size() ? words_[i] : 0;
    const uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    count += static_cast<std::size_t>(std::popcount(a | b));
  }
  return count;
}

RDFCUBE_HOT double BitVector::Jaccard(const BitVector& other) const {
  const std::size_t u = UnionCount(other);
  if (u == 0) return 1.0;
  return static_cast<double>(IntersectCount(other)) / static_cast<double>(u);
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

}  // namespace rdfcube
