// BitVector: dense dynamic bitset used for occurrence-matrix rows.

#ifndef RDFCUBE_UTIL_BITVECTOR_H_
#define RDFCUBE_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rdfcube {

/// \brief Fixed-size (after construction) dense bit vector.
///
/// Rows of the occurrence matrix (paper §3.1) are BitVectors over the
/// concatenated code-list feature space. The containment check of the paper —
/// `a AND b == b` — is provided both over whole vectors and over a [begin,end)
/// column slice, the latter implementing the per-dimension sub-matrix OM_i
/// without materializing it.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `nbits` zero bits.
  explicit BitVector(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  /// Sets bit `i` to 1. Precondition: i < size().
  void Set(std::size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }

  /// Clears bit `i`. Precondition: i < size().
  void Reset(std::size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }

  /// Reads bit `i`. Precondition: i < size().
  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set bits.
  std::size_t Count() const;

  /// Number of set bits in the half-open range [begin, end).
  std::size_t CountRange(std::size_t begin, std::size_t end) const;

  /// True iff `(*this AND other) == other`, i.e. this is a superset of
  /// `other`'s set bits. This is the paper's conditional function sf applied
  /// over the whole feature space.
  bool Covers(const BitVector& other) const;

  /// Superset test restricted to the column slice [begin, end): the
  /// per-dimension containment check sf(o_a, o_b)|p_i of §3.1.
  bool CoversRange(const BitVector& other, std::size_t begin,
                   std::size_t end) const;

  /// True iff the two vectors have identical bits in [begin, end).
  bool EqualsRange(const BitVector& other, std::size_t begin,
                   std::size_t end) const;

  /// Number of positions set in both vectors (|a AND b|).
  std::size_t IntersectCount(const BitVector& other) const;

  /// Number of positions set in either vector (|a OR b|).
  std::size_t UnionCount(const BitVector& other) const;

  /// Jaccard similarity |a AND b| / |a OR b|; 1.0 when both are empty.
  double Jaccard(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

  /// "0101..." rendering, most significant position last (index order).
  std::string ToString() const;

  /// Raw word storage (read-only), for hashing and bulk scans.
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  // Mask covering the valid bits of the final partial word.
  uint64_t TailMask() const {
    const std::size_t rem = nbits_ & 63;
    return rem == 0 ? ~uint64_t{0} : ((uint64_t{1} << rem) - 1);
  }

  std::size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_BITVECTOR_H_
