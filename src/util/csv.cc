#include "util/csv.h"

#include <cstddef>

#include "base/untrusted.h"

namespace rdfcube {

namespace {

// Parses one CSV record starting at *pos; advances *pos past the record's
// trailing newline. Returns false at end of input.
bool ParseRecord(std::string_view text, std::size_t* pos, char sep,
                 std::vector<std::string>* fields, Status* error) {
  fields->clear();
  if (*pos >= text.size()) return false;
  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (*pos < text.size()) {
    const char c = text[*pos];
    saw_any = true;
    if (in_quotes) {
      if (c == '"') {
        if (*pos + 1 < text.size() && text[*pos + 1] == '"') {
          field.push_back('"');
          *pos += 2;
          continue;
        }
        in_quotes = false;
        ++*pos;
        continue;
      }
      field.push_back(c);
      ++*pos;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++*pos;
      continue;
    }
    if (c == sep) {
      fields->push_back(std::move(field));
      field.clear();
      ++*pos;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume \n, \r, or \r\n.
      ++*pos;
      if (c == '\r' && *pos < text.size() && text[*pos] == '\n') ++*pos;
      break;
    }
    field.push_back(c);
    ++*pos;
  }
  if (in_quotes) {
    *error = Status::ParseError("unterminated quoted CSV field");
    return false;
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

bool NeedsQuoting(std::string_view field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

RDFCUBE_TAINT_SOURCE Result<CsvTable> ParseCsv(std::string_view text,
                                               char sep) {
  CsvTable table;
  std::size_t pos = 0;
  Status error;
  if (!ParseRecord(text, &pos, sep, &table.header, &error)) {
    if (!error.ok()) return error;
    return Status::ParseError("empty CSV input");
  }
  std::vector<std::string> fields;
  while (ParseRecord(text, &pos, sep, &fields, &error)) {
    // Skip blank trailing lines.
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (fields.size() != table.header.size()) {
      return Status::ParseError("CSV row has " + std::to_string(fields.size()) +
                                " fields, header has " +
                                std::to_string(table.header.size()));
    }
    table.rows.push_back(fields);
  }
  if (!error.ok()) return error;
  return table;
}

std::string WriteCsv(const CsvTable& table, char sep) {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(sep);
      if (NeedsQuoting(row[i], sep)) {
        out.push_back('"');
        for (char c : row[i]) {
          if (c == '"') out.push_back('"');
          out.push_back(c);
        }
        out.push_back('"');
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  append_row(table.header);
  for (const auto& row : table.rows) append_row(row);
  return out;
}

}  // namespace rdfcube
