// Minimal CSV reader/writer. The paper's pipeline ingests statistical CSVs
// and converts them to RDF QB (per [28] / CSV2RDF); qb::CsvImporter builds on
// this module.

#ifndef RDFCUBE_UTIL_CSV_H_
#define RDFCUBE_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace rdfcube {

/// \brief A parsed CSV table: a header row plus data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text with a header line. Supports double-quoted fields with
/// embedded separators and doubled-quote escapes; rejects rows whose field
/// count differs from the header.
[[nodiscard]] Result<CsvTable> ParseCsv(std::string_view text, char sep = ',');

/// Serializes a table back to CSV, quoting fields that need it.
std::string WriteCsv(const CsvTable& table, char sep = ',');

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_CSV_H_
