#include "util/fault.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace rdfcube {

namespace {

// The global slot. Installation is scoped and expected from one controlling
// thread; ShouldFail itself is thread-safe via the injector's mutex.
std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

uint64_t FaultInjector::StreamSeed(uint64_t seed, const std::string& point) {
  uint64_t h = 1469598103934665603ull ^ seed;
  for (char c : point) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  // Avoid the degenerate all-zero engine seed.
  return h == 0 ? 1 : h;
}

FaultInjector::Point& FaultInjector::PointLocked(const std::string& point) {
  auto it = points_.find(point);
  if (it == points_.end()) {
    it = points_.emplace(point, Point{}).first;
    streams_.emplace(point, Rng(StreamSeed(seed_, point)));
  }
  return it->second;
}

void FaultInjector::ArmProbability(const std::string& point, double p) {
  MutexLock lock(&mu_);
  Point& pt = PointLocked(point);
  pt.mode = Point::Mode::kProbability;
  pt.probability = std::clamp(p, 0.0, 1.0);
}

void FaultInjector::ArmNthCall(const std::string& point, uint64_t nth) {
  ArmCallRange(point, nth, nth);
}

void FaultInjector::ArmCallRange(const std::string& point, uint64_t first,
                                 uint64_t last) {
  MutexLock lock(&mu_);
  Point& pt = PointLocked(point);
  pt.mode = Point::Mode::kCallRange;
  pt.range_first = first;
  pt.range_last = last;
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  PointLocked(point).mode = Point::Mode::kDisarmed;
}

bool FaultInjector::ShouldFail(const std::string& point) {
  MutexLock lock(&mu_);
  Point& pt = PointLocked(point);
  ++pt.calls;
  bool fail = false;
  switch (pt.mode) {
    case Point::Mode::kDisarmed:
      break;
    case Point::Mode::kProbability:
      // Always draw, so that disarm/re-arm cycles do not shift the stream
      // relative to the call counter.
      fail = streams_.at(point).Chance(pt.probability);
      break;
    case Point::Mode::kCallRange:
      fail = pt.calls >= pt.range_first && pt.calls <= pt.range_last;
      break;
  }
  if (fail) {
    ++pt.fired;
    log_.push_back(FaultEvent{point, pt.calls});
  }
  return fail;
}

uint64_t FaultInjector::calls(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.calls;
}

uint64_t FaultInjector::fired(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

uint64_t FaultInjector::total_fired() const {
  MutexLock lock(&mu_);
  return log_.size();
}

std::vector<FaultEvent> FaultInjector::log() const {
  MutexLock lock(&mu_);
  return log_;
}

void FaultInjector::ResetCounters() {
  MutexLock lock(&mu_);
  log_.clear();
  for (auto& [name, pt] : points_) {
    pt.calls = 0;
    pt.fired = 0;
    streams_.at(name) = Rng(StreamSeed(seed_, name));
  }
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector* injector)
    : previous_(g_injector.exchange(injector)) {}

ScopedFaultInjection::~ScopedFaultInjection() { g_injector.store(previous_); }

FaultInjector* GlobalFaultInjector() { return g_injector.load(); }

bool FaultTriggered(const std::string& point) {
  FaultInjector* injector = g_injector.load();
  if (injector == nullptr || !injector->ShouldFail(point)) return false;
  static obs::Counter& fired = obs::DefaultCounter(
      "rdfcube_fault_injected_total", "Armed fault points that fired");
  fired.Increment();
  return true;
}

}  // namespace rdfcube
