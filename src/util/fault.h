// Deterministic fault injection for robustness testing (north star: a
// production-scale deployment cannot assume every worker survives and every
// message arrives). Failure-prone layers consult named injection points; a
// test (or bench) arms the points on a seeded FaultInjector and installs it
// into the scoped process-global registry. With no injector installed every
// point is a no-op, so instrumented hot paths cost one pointer load.

#ifndef RDFCUBE_UTIL_FAULT_H_
#define RDFCUBE_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/random.h"
#include "base/thread_annotations.h"

namespace rdfcube {

/// \brief One injected fault occurrence, in firing order.
struct FaultEvent {
  std::string point;
  /// 1-based call counter of the point at the moment it fired.
  uint64_t call_index = 0;

  bool operator==(const FaultEvent& o) const {
    return point == o.point && call_index == o.call_index;
  }
};

/// \brief Seeded registry of named injection points.
///
/// Determinism contract (tested property): two injectors with the same seed
/// and the same arming schedule, driven through the same sequence of
/// ShouldFail calls, fire at exactly the same call indices. Each point draws
/// from its own PRNG stream (derived from seed and point name), so the
/// relative interleaving of *different* points does not perturb a point's
/// decisions. All methods are thread-safe.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to fail each call independently with probability `p`
  /// (clamped to [0, 1]). Replaces any previous arming of the point.
  void ArmProbability(const std::string& point, double p);

  /// Arms `point` to fail exactly once, on its `nth` call (1-based).
  void ArmNthCall(const std::string& point, uint64_t nth);

  /// Arms `point` to fail on every call whose 1-based index lies in
  /// [first, last]. ArmCallRange(p, 1, k) makes the first k calls fail —
  /// the shape needed to exhaust a retry budget deterministically.
  void ArmCallRange(const std::string& point, uint64_t first, uint64_t last);

  /// Disarms `point`; its call counter keeps advancing.
  void Disarm(const std::string& point);

  /// Advances the call counter of `point` and reports whether this call
  /// should fail. Unarmed points never fail (but are still counted).
  bool ShouldFail(const std::string& point);

  /// Calls observed at `point` so far.
  uint64_t calls(const std::string& point) const;

  /// Faults fired at `point` so far.
  uint64_t fired(const std::string& point) const;

  /// Faults fired across all points.
  uint64_t total_fired() const;

  /// Every fault fired so far, in firing order (the injected-fault sequence
  /// of the determinism tests).
  std::vector<FaultEvent> log() const;

  /// Clears counters and the log and rewinds every point's PRNG stream to
  /// its seed; armings are kept. After ResetCounters() the injector replays
  /// the exact same decision sequence.
  void ResetCounters();

  uint64_t seed() const { return seed_; }

 private:
  struct Point {
    enum class Mode { kDisarmed, kProbability, kCallRange };
    Mode mode = Mode::kDisarmed;
    double probability = 0.0;
    uint64_t range_first = 0;
    uint64_t range_last = 0;
    uint64_t calls = 0;
    uint64_t fired = 0;
  };

  // Derives the per-point PRNG stream seed (FNV-1a of the name mixed with
  // the injector seed).
  static uint64_t StreamSeed(uint64_t seed, const std::string& point);

  Point& PointLocked(const std::string& point) RDFCUBE_REQUIRES(mu_);

  const uint64_t seed_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Point> points_ RDFCUBE_GUARDED_BY(mu_);
  std::unordered_map<std::string, Rng> streams_ RDFCUBE_GUARDED_BY(mu_);
  std::vector<FaultEvent> log_ RDFCUBE_GUARDED_BY(mu_);
};

/// \brief Installs `injector` as the process-global injector for the scope's
/// lifetime, restoring the previous one on destruction (scopes nest).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

/// Currently installed global injector, or nullptr.
FaultInjector* GlobalFaultInjector();

/// True iff a global injector is installed and `point` fires on this call.
/// The single call instrumented code makes.
bool FaultTriggered(const std::string& point);

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_FAULT_H_
