#include "util/random.h"

#include <cmath>

namespace rdfcube {

std::size_t Rng::Zipf(std::size_t n, double exponent) {
  if (n == 0) return 0;
  if (exponent <= 0.0) return static_cast<std::size_t>(Uniform(n));
  // Inverse-CDF over the truncated harmonic series. n in our generators is
  // small (hierarchy fanouts, code-list sizes), so the linear scan is fine.
  double norm = 0.0;
  for (std::size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), exponent);
  double u = NextDouble() * norm;
  for (std::size_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(double(i), exponent);
    if (u <= 0.0) return i - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  // Partial Fisher-Yates over an index array.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  if (k > n) k = n;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace rdfcube
