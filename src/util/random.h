// Deterministic PRNG wrapper for generators, sampling, and clustering seeds.

#ifndef RDFCUBE_UTIL_RANDOM_H_
#define RDFCUBE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rdfcube {

/// \brief Seeded pseudo-random source.
///
/// All stochastic components (dataset generators, cluster sampling, k-means
/// initialisation) draw from an explicitly seeded Rng so that experiments and
/// property tests are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): lower indices are more likely.
  /// exponent = 0 degenerates to uniform.
  std::size_t Zipf(std::size_t n, double exponent);

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (k <= n). Order of the returned indices is unspecified.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_RANDOM_H_
