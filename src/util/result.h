// Compatibility shim: Result<T> moved to src/base (the dependency-free bottom
// layer below obs and util; see DESIGN.md §5f). Include "base/result.h"
// directly in new code.

#ifndef RDFCUBE_UTIL_RESULT_H_
#define RDFCUBE_UTIL_RESULT_H_

#include "base/result.h"  // IWYU pragma: export

#endif  // RDFCUBE_UTIL_RESULT_H_
