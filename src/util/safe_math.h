// Overflow-checked size arithmetic for decode paths (DESIGN.md §5h).
//
// Lengths and counts read from untrusted bytes must not feed `a * b` or
// `a + b` into an allocation size: the multiplication can wrap and the
// subsequent bounds check then passes on a tiny value while the loop it
// guards runs to the original huge count. CheckedAdd/CheckedMul return the
// exact result or OutOfRange, never a wrapped value; the taint gate's
// unchecked-size-arith check (tools/callgraph) recognizes a call to them as
// the sanctioned form of size arithmetic in tainted functions.

#ifndef RDFCUBE_UTIL_SAFE_MATH_H_
#define RDFCUBE_UTIL_SAFE_MATH_H_

#include <type_traits>

#include "base/result.h"
#include "base/status.h"

namespace rdfcube {
namespace util {

/// Returns `a + b`, or OutOfRange when the sum does not fit in T.
template <typename T>
[[nodiscard]] Result<T> CheckedAdd(T a, T b) {
  static_assert(std::is_integral_v<T>, "CheckedAdd needs an integral type");
  T out{};
  if (__builtin_add_overflow(a, b, &out)) {
    return Status::OutOfRange("integer overflow in checked add");
  }
  return out;
}

/// Returns `a * b`, or OutOfRange when the product does not fit in T.
template <typename T>
[[nodiscard]] Result<T> CheckedMul(T a, T b) {
  static_assert(std::is_integral_v<T>, "CheckedMul needs an integral type");
  T out{};
  if (__builtin_mul_overflow(a, b, &out)) {
    return Status::OutOfRange("integer overflow in checked multiply");
  }
  return out;
}

}  // namespace util
}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_SAFE_MATH_H_
