// Compatibility shim: Status moved to src/base (the dependency-free bottom
// layer below obs and util; see DESIGN.md §5f). Include "base/status.h"
// directly in new code.

#ifndef RDFCUBE_UTIL_STATUS_H_
#define RDFCUBE_UTIL_STATUS_H_

#include "base/status.h"  // IWYU pragma: export

#endif  // RDFCUBE_UTIL_STATUS_H_
