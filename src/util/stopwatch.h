// Compatibility shim: Stopwatch/Deadline moved to src/base (the
// dependency-free bottom layer below obs and util; see DESIGN.md §5f).
// Include "base/stopwatch.h" directly in new code.

#ifndef RDFCUBE_UTIL_STOPWATCH_H_
#define RDFCUBE_UTIL_STOPWATCH_H_

#include "base/stopwatch.h"  // IWYU pragma: export

#endif  // RDFCUBE_UTIL_STOPWATCH_H_
