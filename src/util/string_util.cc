#include "util/string_util.h"

#include <cctype>
#include <charconv>

namespace rdfcube {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view IriLocalName(std::string_view iri) {
  const std::size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos) return iri.substr(hash + 1);
  const std::size_t slash = iri.rfind('/');
  if (slash != std::string_view::npos) return iri.substr(slash + 1);
  // CURIE-style names ("ex:refArea"): the part after the prefix.
  const std::size_t colon = iri.rfind(':');
  if (colon != std::string_view::npos) return iri.substr(colon + 1);
  return iri;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  double value = 0.0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("not a finite decimal double: '" +
                              std::string(s) + "'");
  }
  return value;
}

Result<uint64_t> ParseU64(std::string_view s) {
  uint64_t value = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("not an unsigned decimal integer: '" +
                              std::string(s) + "'");
  }
  return value;
}

}  // namespace rdfcube
