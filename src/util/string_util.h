// Small string helpers shared across modules.

#ifndef RDFCUBE_UTIL_STRING_UTIL_H_
#define RDFCUBE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace rdfcube {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Local name of an IRI: the part after the last '#' or '/'.
std::string_view IriLocalName(std::string_view iri);

/// Lower-cases ASCII letters.
std::string ToLowerAscii(std::string_view s);

/// Parses the whole of `s` as a decimal double. Unlike std::stod this never
/// throws (the repo bans unchecked std::sto* parses — see tools/rdfcube_lint):
/// empty input, trailing garbage, or out-of-range values return ParseError.
[[nodiscard]] Result<double> ParseDouble(std::string_view s);

/// Parses the whole of `s` as an unsigned 64-bit decimal integer; ParseError
/// on empty input, sign characters, trailing garbage, or overflow.
[[nodiscard]] Result<uint64_t> ParseU64(std::string_view s);

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_STRING_UTIL_H_
