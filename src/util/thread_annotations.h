// Compatibility shim: the thread-safety annotation macros and the annotated
// Mutex/MutexLock wrappers moved to src/base (the dependency-free bottom
// layer below obs and util; see DESIGN.md §5f). Include
// "base/thread_annotations.h" directly in new code.

#ifndef RDFCUBE_UTIL_THREAD_ANNOTATIONS_H_
#define RDFCUBE_UTIL_THREAD_ANNOTATIONS_H_

#include "base/thread_annotations.h"  // IWYU pragma: export

#endif  // RDFCUBE_UTIL_THREAD_ANNOTATIONS_H_
