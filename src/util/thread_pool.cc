#include "util/thread_pool.h"

#include <atomic>

namespace rdfcube {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t shards = pool->num_threads() * 4;
  const std::size_t chunk = (n + shards - 1) / shards;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    pool->Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

}  // namespace rdfcube
