#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "base/blocking.h"
#include "base/stopwatch.h"

namespace rdfcube {

namespace {

obs::Counter& TasksSubmitted() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_pool_tasks_submitted_total", "Tasks handed to ThreadPool");
  return c;
}

obs::Counter& TasksCompleted() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_pool_tasks_completed_total", "Tasks finished without error");
  return c;
}

obs::Counter& TasksFailed() {
  static obs::Counter& c = obs::DefaultCounter(
      "rdfcube_pool_tasks_failed_total", "Tasks that threw an exception");
  return c;
}

obs::Gauge& QueueDepth() {
  static obs::Gauge& g = obs::DefaultGauge(
      "rdfcube_pool_queue_depth", "Tasks submitted but not yet finished");
  return g;
}

obs::Histogram& TaskSeconds() {
  static obs::Histogram& h = obs::DefaultHistogram(
      "rdfcube_pool_task_seconds", "Per-task execution latency",
      obs::ExponentialBuckets(1e-5, 4.0, 12));  // 10us .. ~42s
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TasksSubmitted().Increment();
  QueueDepth().Increment();
  {
    MutexLock lock(&mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

RDFCUBE_BLOCKING void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  // Explicit predicate loop (not the lambda overload): the guarded read of
  // in_flight_ stays in this function's scope, where the analysis sees the
  // capability held.
  while (in_flight_ != 0) lock.Wait(all_done_);
}

Status ThreadPool::TakeError() {
  MutexLock lock(&mu_);
  Status error = std::move(first_error_);
  first_error_ = Status::OK();
  return error;
}

void ThreadPool::ReportError(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(&mu_);
  if (first_error_.ok()) first_error_ = status;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && tasks_.empty()) lock.Wait(task_available_);
      // Drain the queue before honoring shutdown so already-submitted tasks
      // still run; empty here implies shutting_down_.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Exceptions must not escape into the worker loop: they would skip the
    // in-flight decrement below and leave Wait() blocked forever. Catch and
    // convert to the pool's first error instead.
    Status error;
    Stopwatch task_watch;
    try {
      task();
    } catch (const std::exception& e) {
      error = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      error = Status::Internal("task threw a non-std exception");
    }
    TaskSeconds().Observe(task_watch.ElapsedSeconds());
    QueueDepth().Decrement();
    if (error.ok()) {
      TasksCompleted().Increment();
    } else {
      TasksFailed().Increment();
    }
    {
      MutexLock lock(&mu_);
      if (!error.ok() && first_error_.ok()) first_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

RDFCUBE_BLOCKING void ParallelFor(ThreadPool* pool, std::size_t n,
                                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t shards = pool->num_threads() * 4;
  const std::size_t chunk = (n + shards - 1) / shards;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    pool->Submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->Wait();
}

RDFCUBE_BLOCKING Status TryParallelFor(
    ThreadPool* pool, std::size_t n,
    const std::function<Status(std::size_t)>& fn) {
  if (n == 0) return Status::OK();
  std::atomic<bool> failed{false};
  Mutex error_mu;
  Status first_error;  // guarded by error_mu until pool->Wait() returns
  const std::size_t shards = pool->num_threads() * 4;
  const std::size_t chunk = (n + shards - 1) / shards;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = begin + chunk < n ? begin + chunk : n;
    pool->Submit([begin, end, &fn, &failed, &error_mu, &first_error] {
      for (std::size_t i = begin; i < end; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        Status st = fn(i);
        if (!st.ok()) {
          failed.store(true, std::memory_order_relaxed);
          MutexLock lock(&error_mu);
          if (first_error.ok()) first_error = std::move(st);
          return;
        }
      }
    });
  }
  pool->Wait();
  if (!first_error.ok()) return first_error;
  // A task that threw (rather than returned) still surfaces.
  return pool->TakeError();
}

}  // namespace rdfcube
