// Fixed-size thread pool used by the parallel cubeMasking variant (§6 of the
// paper lists parallel computation as future work; we implement it).

#ifndef RDFCUBE_UTIL_THREAD_POOL_H_
#define RDFCUBE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "base/status.h"
#include "base/thread_annotations.h"

namespace rdfcube {

/// \brief Minimal fixed-size thread pool with a Wait() barrier.
///
/// Tasks are plain std::function<void()>. A task that lets an exception
/// escape no longer wedges Wait(): the worker catches it, records the first
/// failure as a Status, and keeps the in-flight accounting correct; the
/// error is retrievable (once) via TakeError(). Tasks that fail by
/// computation should use TryParallelFor, which propagates the first non-OK
/// Status and skips remaining work.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished (successfully or not).
  void Wait();

  /// Returns the first error recorded since the last TakeError() (escaped
  /// task exceptions, or errors reported through ReportError) and clears it.
  [[nodiscard]] Status TakeError();

  /// Records `status` as the pool's first error if none is pending; OK
  /// statuses are ignored. Thread-safe; callable from inside tasks.
  void ReportError(const Status& status);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_;
  std::condition_variable task_available_ RDFCUBE_CONDVAR_PAIRED_WITH(mu_);
  std::condition_variable all_done_ RDFCUBE_CONDVAR_PAIRED_WITH(mu_);
  std::queue<std::function<void()>> tasks_ RDFCUBE_GUARDED_BY(mu_);
  std::size_t in_flight_ RDFCUBE_GUARDED_BY(mu_) = 0;
  bool shutting_down_ RDFCUBE_GUARDED_BY(mu_) = false;
  Status first_error_ RDFCUBE_GUARDED_BY(mu_);
  // Written once in the constructor before any worker can observe the pool;
  // joined in the destructor. Not touched by tasks, so no guard.
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Fallible ParallelFor: runs `fn(i)` for i in [0, n) across `pool` and
/// returns the first non-OK Status any invocation produced (iteration order
/// within a shard decides "first"; across shards it is the earliest
/// observed). Once an error is recorded, shards stop starting new indices —
/// a failing task aborts the loop instead of wedging it. Escaped task
/// exceptions surface as Internal.
[[nodiscard]] Status TryParallelFor(ThreadPool* pool, std::size_t n,
                      const std::function<Status(std::size_t)>& fn);

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_THREAD_POOL_H_
