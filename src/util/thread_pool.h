// Fixed-size thread pool used by the parallel cubeMasking variant (§6 of the
// paper lists parallel computation as future work; we implement it).

#ifndef RDFCUBE_UTIL_THREAD_POOL_H_
#define RDFCUBE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rdfcube {

/// \brief Minimal fixed-size thread pool with a Wait() barrier.
///
/// Tasks are plain std::function<void()>; exceptions must not escape tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace rdfcube

#endif  // RDFCUBE_UTIL_THREAD_POOL_H_
