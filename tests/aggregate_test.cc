// Tests for the roll-up aggregation module.

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/lattice.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRunningExample;

class RollUpTest : public ::testing::Test {
 protected:
  RollUpTest()
      : corpus_(MakeRunningExample()),
        lattice_(*corpus_.observations) {}

  const qb::ObservationSet& obs() const { return *corpus_.observations; }
  const qb::CubeSpace& space() const { return *corpus_.space; }

  qb::DimId Dim(const char* iri) const { return *space().FindDimension(iri); }
  hierarchy::CodeId Code(const char* dim, const char* code) const {
    return *space().code_list(Dim(dim)).Find(code);
  }
  qb::MeasureId Measure(const char* iri) const {
    return *space().FindMeasure(iri);
  }

  qb::Corpus corpus_;
  Lattice lattice_;
};

TEST_F(RollUpTest, GreeceJan2011SumsCityUnemployment) {
  // Roll up to (Greece, Jan2011): contains o32 (Athens, 30) and o34
  // (Ioannina, 15).
  auto result = RollUp(obs(), lattice_,
                       {{Dim(testutil::kRefArea), Code(testutil::kRefArea, "Greece")},
                        {Dim(testutil::kRefPeriod),
                         Code(testutil::kRefPeriod, "Jan2011")}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->contained.size(), 2u);
  ASSERT_EQ(result->measures.size(), 1u);
  EXPECT_EQ(result->measures[0].measure, Measure(testutil::kUnemployment));
  EXPECT_DOUBLE_EQ(result->measures[0].value, 45.0);  // 30 + 15
  EXPECT_EQ(result->measures[0].contributors, 2u);
}

TEST_F(RollUpTest, AverageAndMinMaxAndCount) {
  const std::vector<std::pair<qb::DimId, hierarchy::CodeId>> target = {
      {Dim(testutil::kRefArea), Code(testutil::kRefArea, "Greece")},
      {Dim(testutil::kRefPeriod), Code(testutil::kRefPeriod, "Jan2011")}};
  auto avg = RollUp(obs(), lattice_, target, AggregateFn::kAverage);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->measures[0].value, 22.5);
  auto min = RollUp(obs(), lattice_, target, AggregateFn::kMin);
  ASSERT_TRUE(min.ok());
  EXPECT_DOUBLE_EQ(min->measures[0].value, 15.0);
  auto max = RollUp(obs(), lattice_, target, AggregateFn::kMax);
  ASSERT_TRUE(max.ok());
  EXPECT_DOUBLE_EQ(max->measures[0].value, 30.0);
  auto count = RollUp(obs(), lattice_, target, AggregateFn::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->measures[0].value, 2.0);
}

TEST_F(RollUpTest, LeavesOnlyDropsInScopeAggregates) {
  // Roll up to (World, 2011) over unemployment: in scope are o21 (Greece,
  // 26), o22 (Italy, 20), o32/o33/o34 (cities), o35 (Austin, 3).
  // o21 strictly contains o32/o34 within D2? No — o32 is in D3. Same
  // dataset + shared measure is required, so o21/o22 (D2) are NOT treated
  // as aggregates of the D3 city rows and everything contributes.
  const std::vector<std::pair<qb::DimId, hierarchy::CodeId>> target = {
      {Dim(testutil::kRefPeriod), Code(testutil::kRefPeriod, "2011")}};
  auto all = RollUp(obs(), lattice_, target, AggregateFn::kSum,
                    /*leaves_only=*/true);
  ASSERT_TRUE(all.ok());
  double unemp = 0;
  for (const auto& m : all->measures) {
    if (m.measure == Measure(testutil::kUnemployment)) unemp = m.value;
  }
  EXPECT_DOUBLE_EQ(unemp, 26 + 20 + 30 + 7 + 15 + 3);

  // Within D3 alone: roll up to (Athens, 2011). o32 (Jan) is the only
  // in-scope D3 row; nothing to drop.
  auto athens = RollUp(
      obs(), lattice_,
      {{Dim(testutil::kRefArea), Code(testutil::kRefArea, "Athens")},
       {Dim(testutil::kRefPeriod), Code(testutil::kRefPeriod, "2011")}});
  ASSERT_TRUE(athens.ok());
  ASSERT_EQ(athens->measures.size(), 1u);
  EXPECT_DOUBLE_EQ(athens->measures[0].value, 30.0);
}

TEST_F(RollUpTest, LeavesOnlyWithinOneDataset) {
  // Build a dataset that carries both a coarse row and its fine rows.
  qb::CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "GR", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "Ath", "GR").ok());
  ASSERT_TRUE(b.AddCode("d", "Ioa", "GR").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddObservation("D", "gr", {{"d", "GR"}}, {{"m", 100.0}}).ok());
  ASSERT_TRUE(b.AddObservation("D", "ath", {{"d", "Ath"}}, {{"m", 60.0}}).ok());
  ASSERT_TRUE(b.AddObservation("D", "ioa", {{"d", "Ioa"}}, {{"m", 39.0}}).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  const Lattice lattice(*corpus->observations);

  // Roll up to ALL: with leaves_only the GR aggregate row (which strictly
  // contains ath/ioa in the same dataset) is dropped: 60 + 39.
  auto leaves = RollUp(*corpus->observations, lattice, {}, AggregateFn::kSum,
                       /*leaves_only=*/true);
  ASSERT_TRUE(leaves.ok());
  ASSERT_EQ(leaves->measures.size(), 1u);
  EXPECT_DOUBLE_EQ(leaves->measures[0].value, 99.0);  // 60 + 39
  EXPECT_EQ(leaves->measures[0].contributors, 2u);

  // Without leaves_only everything is summed (double counting): 100+60+39.
  auto raw = RollUp(*corpus->observations, lattice, {}, AggregateFn::kSum,
                    /*leaves_only=*/false);
  ASSERT_TRUE(raw.ok());
  EXPECT_DOUBLE_EQ(raw->measures[0].value, 199.0);
  EXPECT_EQ(raw->contained.size(), 3u);
}

TEST_F(RollUpTest, InvalidTargetsFail) {
  EXPECT_TRUE(RollUp(obs(), lattice_, {{99, 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(RollUp(obs(), lattice_, {{0, 9999}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RollUpTest, EmptyScopeYieldsNoMeasures) {
  // (Ioannina, 2001): no observation lives under it.
  auto result = RollUp(
      obs(), lattice_,
      {{Dim(testutil::kRefArea), Code(testutil::kRefArea, "Ioannina")},
       {Dim(testutil::kRefPeriod), Code(testutil::kRefPeriod, "2001")}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained.empty());
  EXPECT_TRUE(result->measures.empty());
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
