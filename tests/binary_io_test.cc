// Tests for the binary corpus format: round-trips, file I/O, and corrupt-
// input failure injection (the deserializer must reject, never crash or
// build an inconsistent corpus).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "datagen/realworld.h"
#include "qb/binary_io.h"
#include "tests/test_corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace qb {
namespace {

using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

// Full/partial/compl counts for equivalence checks.
struct Counts {
  std::size_t full, partial, compl_count;
  bool operator==(const Counts& o) const {
    return full == o.full && partial == o.partial &&
           compl_count == o.compl_count;
  }
};

Counts CountsOf(const ObservationSet& obs) {
  const core::OccurrenceMatrix om(obs);
  core::CountingSink sink;
  EXPECT_TRUE(core::RunBaseline(obs, om, core::BaselineOptions{}, &sink).ok());
  return {sink.full(), sink.partial(), sink.complementary()};
}

TEST(BinaryIoTest, RoundTripPreservesEverything) {
  Corpus original = MakeRunningExample();
  auto bytes = SerializeCorpus(original);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto reloaded = DeserializeCorpus(*bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  const CubeSpace& s1 = *original.space;
  const CubeSpace& s2 = *reloaded->space;
  ASSERT_EQ(s2.num_dimensions(), s1.num_dimensions());
  ASSERT_EQ(s2.num_measures(), s1.num_measures());
  for (DimId d = 0; d < s1.num_dimensions(); ++d) {
    EXPECT_EQ(s2.dimension_iri(d), s1.dimension_iri(d));
    ASSERT_EQ(s2.code_list(d).size(), s1.code_list(d).size());
    for (hierarchy::CodeId c = 0; c < s1.code_list(d).size(); ++c) {
      EXPECT_EQ(s2.code_list(d).name(c), s1.code_list(d).name(c));
      EXPECT_EQ(s2.code_list(d).level(c), s1.code_list(d).level(c));
    }
  }
  const ObservationSet& o1 = *original.observations;
  const ObservationSet& o2 = *reloaded->observations;
  ASSERT_EQ(o2.size(), o1.size());
  ASSERT_EQ(o2.num_datasets(), o1.num_datasets());
  for (ObsId i = 0; i < o1.size(); ++i) {
    EXPECT_EQ(o2.obs(i).iri, o1.obs(i).iri);
    EXPECT_EQ(o2.obs(i).dataset, o1.obs(i).dataset);
    EXPECT_EQ(o2.obs(i).dims, o1.obs(i).dims);
    EXPECT_EQ(o2.obs(i).measure_mask, o1.obs(i).measure_mask);
    EXPECT_EQ(o2.obs(i).values, o1.obs(i).values);
  }
  EXPECT_EQ(CountsOf(o2), CountsOf(o1));
}

TEST(BinaryIoTest, FileRoundTrip) {
  Corpus original = MakeRunningExample();
  const std::string path = ::testing::TempDir() + "/corpus.rdfcube";
  ASSERT_TRUE(SaveCorpus(original, path).ok());
  auto reloaded = LoadCorpusBinary(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->observations->size(), original.observations->size());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadCorpusBinary("/no/such/file.bin").status().IsIOError());
}

TEST(BinaryIoTest, DirectoryIsIOErrorNotCrash) {
  // Loading a directory must fail cleanly in both directions.
  const std::string dir = ::testing::TempDir();
  EXPECT_TRUE(LoadCorpusBinary(dir).status().IsIOError());
  Corpus corpus = MakeRunningExample();
  EXPECT_TRUE(SaveCorpus(corpus, dir).IsIOError());
}

TEST(BinaryIoTest, ZeroByteFileIsParseError) {
  const std::string path = ::testing::TempDir() + "/empty.rdfcube";
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }
  auto result = LoadCorpusBinary(path);
  EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsBadMagic) {
  EXPECT_TRUE(DeserializeCorpus("NOTMAGIC").status().IsParseError());
  EXPECT_TRUE(DeserializeCorpus("").status().IsParseError());
}

TEST(BinaryIoTest, RejectsEveryTruncation) {
  Corpus original = MakeRunningExample();
  auto bytes = SerializeCorpus(original);
  ASSERT_TRUE(bytes.ok());
  // Every strict prefix must be rejected (and never crash).
  for (std::size_t cut = 0; cut < bytes->size(); cut += 7) {
    auto result = DeserializeCorpus(bytes->substr(0, cut));
    EXPECT_FALSE(result.ok()) << "prefix " << cut << " accepted";
  }
  // Trailing garbage is rejected too.
  EXPECT_TRUE(DeserializeCorpus(*bytes + "x").status().IsParseError());
}

class BinaryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryFuzzTest, RandomCorruptionNeverCrashes) {
  Corpus original = MakeRandomCorpus(GetParam(), 30);
  auto bytes = SerializeCorpus(original);
  ASSERT_TRUE(bytes.ok());
  Rng rng(GetParam() * 101 + 17);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = *bytes;
    const std::size_t flips = 1 + rng.Uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto result = DeserializeCorpus(mutated);
    if (result.ok()) {
      // A mutation may leave the file valid (e.g. flips inside an IRI or a
      // double); the result must still be a *consistent* corpus.
      const ObservationSet& obs = *result->observations;
      for (ObsId i = 0; i < obs.size(); ++i) {
        for (DimId d = 0; d < result->space->num_dimensions(); ++d) {
          const hierarchy::CodeId c = obs.obs(i).dims[d];
          if (c != hierarchy::kNoCode) {
            ASSERT_LT(c, result->space->code_list(d).size());
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(BinaryIoTest, GeneratedCorpusRoundTrip) {
  auto corpus = datagen::GenerateRealWorldPrefix(500, 21);
  ASSERT_TRUE(corpus.ok());
  auto bytes = SerializeCorpus(*corpus);
  ASSERT_TRUE(bytes.ok());
  auto reloaded = DeserializeCorpus(*bytes);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(CountsOf(*reloaded->observations),
            CountsOf(*corpus->observations));
}

}  // namespace
}  // namespace qb
}  // namespace rdfcube
