// Unit tests for the cross-TU call-graph analyzer (tools/callgraph,
// DESIGN.md §5g): the function-level fact extractor, TU-visibility-filtered
// linking, transitive summaries with witness chains, the hot-path purity
// gate, the taint gate (§5h), and the lock gate (§5i: lock-scope dataflow,
// the derived lock-order graph, and the cycle/blocking/callback checks) —
// all over synthetic in-memory translation units, so every documented
// semantic (static-init exemption, reserve exemption, cold absorption,
// direct-call-only recursion, virtual dispatch non-linking, Wait-own-lock
// exemption, manifest gating) has a pinned proof.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/callgraph/callgraph.h"
#include "tools/callgraph/function_facts.h"
#include "tools/source_text.h"

namespace rdfcube {
namespace callgraph {
namespace {

lint::SourceFile SF(const std::string& path, const std::string& content) {
  return lint::StripSource(content, path);
}

int IndexOf(const CallGraph& graph, const std::string& suffix) {
  const std::vector<int> hits = graph.FindBySuffix(suffix);
  return hits.size() == 1 ? hits[0] : -1;
}

bool HasFact(const FunctionInfo& fn, FactKind kind) {
  return std::any_of(fn.facts.begin(), fn.facts.end(),
                     [kind](const BodyFact& f) { return f.kind == kind; });
}

// --- extractor ---------------------------------------------------------------

TEST(FunctionFactsTest, ExtractsNamespaceQualifiedFunctions) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "namespace rdfcube {\n"
                                       "namespace core {\n"
                                       "int Add(int a, int b) {\n"
                                       "  return a + b;\n"
                                       "}\n"
                                       "}\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "Add");
  EXPECT_EQ(fns[0].qualified, "rdfcube::core::Add");
  EXPECT_EQ(fns[0].line, 3u);
  EXPECT_EQ(fns[0].body_end, 5u);
  EXPECT_FALSE(fns[0].hot);
}

TEST(FunctionFactsTest, ExtractsClassMethodsAndOutOfLineDefinitions) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "class Engine {\n"
                                       "  int Size() { return n_; }\n"
                                       "};\n"
                                       "int Engine::Grow(int n) {\n"
                                       "  return n + 1;\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].qualified, "Engine::Size");
  EXPECT_EQ(fns[1].qualified, "Engine::Grow");
  EXPECT_EQ(fns[1].name, "Grow");
}

TEST(FunctionFactsTest, SkipsDeclarationsAndInitializers) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "int Declared(int x);\n"
                                       "int value = Compute(7);\n"
                                       "std::vector<int> v{1, 2, 3};\n"
                                       "int Defined() { return 1; }\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "Defined");
}

TEST(FunctionFactsTest, RecordsAllocThrowLockAndDispatchFacts) {
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "void F(const std::function<void()>& emit) {\n"
         "  auto p = std::make_unique<int>(3);\n"
         "  throw 1;\n"
         "  MutexLock lock(&mu_);\n"
         "  emit();\n"
         "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(HasFact(fns[0], FactKind::kAlloc));
  EXPECT_TRUE(HasFact(fns[0], FactKind::kThrow));
  EXPECT_TRUE(HasFact(fns[0], FactKind::kLock));
  EXPECT_TRUE(HasFact(fns[0], FactKind::kDispatch));
}

TEST(FunctionFactsTest, UnreservedGrowthIsAFactButReserveExempts) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "void Grow(std::vector<int>* v) {\n"
                                       "  v->push_back(1);\n"
                                       "}\n"
                                       "void Reserved(std::vector<int>* v) {\n"
                                       "  v->reserve(4);\n"
                                       "  v->push_back(1);\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_TRUE(HasFact(fns[0], FactKind::kGrowth));
  EXPECT_FALSE(fns[0].has_reserve);
  EXPECT_TRUE(fns[1].has_reserve);
}

TEST(FunctionFactsTest, StaticInitializerStatementsContributeNoFacts) {
  // The function-local `static obs::Counter& c = DefaultCounter(...)` idiom
  // is one-time initialization, not per-call work (CLAUDE.md).
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "void Count() {\n"
         "  static obs::Counter& c = obs::DefaultCounter(\n"
         "      \"rdfcube_a_x_total\", \"help\");\n"
         "  c.Increment();\n"
         "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(fns[0].facts.empty());
  // The static-init call is not a call site either; Increment still is.
  ASSERT_EQ(fns[0].calls.size(), 1u);
  EXPECT_EQ(fns[0].calls[0].name, "Increment");
  EXPECT_TRUE(fns[0].calls[0].member);
}

TEST(FunctionFactsTest, LambdaBodiesAttributeToTheEnclosingFunction) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "void Outer(std::vector<int>* v) {\n"
                                       "  auto fill = [&] {\n"
                                       "    v->push_back(1);\n"
                                       "  };\n"
                                       "  fill();\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "Outer");
  EXPECT_TRUE(HasFact(fns[0], FactKind::kGrowth));
}

TEST(FunctionFactsTest, HotAndColdAnnotationsAreRecorded) {
  const auto fns =
      ExtractFunctions(SF("src/a/x.cc",
                          "RDFCUBE_HOT int Fast() { return 1; }\n"
                          "RDFCUBE_COLD int Slow() { return 2; }\n"
                          "int Plain() { return 3; }\n"));
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_TRUE(fns[0].hot);
  EXPECT_FALSE(fns[0].cold);
  EXPECT_TRUE(fns[1].cold);
  EXPECT_FALSE(fns[2].hot);
}

TEST(FunctionFactsTest, PreprocessorLinesAreInvisible) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "#define BAD(x) { throw x; }\n"
                                       "#define MULTI \\\n"
                                       "  { new int; }\n"
                                       "int F() { return 1; }\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "F");
  EXPECT_TRUE(fns[0].facts.empty());
}

TEST(FunctionFactsTest, VirtualMethodNamesAreCollected) {
  const auto names =
      VirtualMethodNames(SF("src/a/x.h",
                            "class Sink {\n"
                            " public:\n"
                            "  virtual void OnRecord(int a) = 0;\n"
                            "  virtual ~Sink() = default;\n"
                            "  void Plain();\n"
                            "};\n"));
  EXPECT_TRUE(std::find(names.begin(), names.end(), "OnRecord") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "Plain") == names.end());
}

// --- linking + visibility ----------------------------------------------------

TEST(CallGraphTest, LinksCallsWithinOneTranslationUnit) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Helper() { return 1; }\n"
          "int Caller() { return Helper(); }\n")});
  ASSERT_EQ(graph.functions.size(), 2u);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.functions[graph.edges[0].caller].name, "Caller");
  EXPECT_EQ(graph.functions[graph.edges[0].callee].name, "Helper");
  EXPECT_TRUE(graph.edges[0].direct);
}

TEST(CallGraphTest, LinksAcrossTranslationUnitsThroughIncludedHeaders) {
  // caller.cc includes b/helper.h, so the call may link to the definition in
  // b/helper.cc (the sibling-source rule).
  const CallGraph graph = BuildCallGraph(
      {SF("src/b/helper.h", "int Escalate(int id);\n"),
       SF("src/b/helper.cc",
          "#include \"b/helper.h\"\n"
          "int Escalate(int id) { return id + 1; }\n"),
       SF("src/a/caller.cc",
          "#include \"b/helper.h\"\n"
          "int Call(int id) { return Escalate(id); }\n")});
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.functions[graph.edges[0].caller].name, "Call");
  EXPECT_EQ(graph.functions[graph.edges[0].callee].file, "src/b/helper.cc");
}

TEST(CallGraphTest, DoesNotLinkToDefinitionsOutsideTheIncludeClosure) {
  // Same-name function in a TU the caller never includes: name-only linking
  // would connect them; the TU-visibility filter must not.
  const CallGraph graph = BuildCallGraph(
      {SF("src/b/other.cc", "int Escalate(int id) { return id + 1; }\n"),
       SF("src/a/caller.cc", "int Call(int id) { return Escalate(id); }\n")});
  EXPECT_TRUE(graph.edges.empty());
}

TEST(CallGraphTest, QualifiedCallsRequireAQualifiedSuffixMatch) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "namespace aa { int Run() { return 1; } }\n"
          "namespace bb { int Run() { return 2; } }\n"
          "int Main() { return aa::Run(); }\n")});
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.functions[graph.edges[0].callee].qualified, "aa::Run");
}

TEST(CallGraphTest, VirtualMemberCallsDoNotLinkToOverrides) {
  // sink->OnRecord(...) is dynamic dispatch: the static target is unknown,
  // so the call must not charge the caller with a particular override's
  // facts; it surfaces as calls_virtual instead.
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/sink.h",
          "class Sink {\n"
          " public:\n"
          "  virtual void OnRecord(int a) = 0;\n"
          "};\n"
          "class Collecting : public Sink {\n"
          " public:\n"
          "  void OnRecord(int a) override { out_.push_back(a); }\n"
          "};\n"),
       SF("src/a/kernel.cc",
          "#include \"a/sink.h\"\n"
          "void Emit(Sink* sink) { sink->OnRecord(1); }\n")});
  for (const Edge& e : graph.edges) {
    EXPECT_NE(graph.functions[e.caller].name, "Emit")
        << "virtual call was linked to an override";
  }
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int emit = IndexOf(graph, "Emit");
  ASSERT_GE(emit, 0);
  EXPECT_TRUE(summaries[emit].calls_virtual);
  EXPECT_FALSE(summaries[emit].alloc.reaches);
}

// --- transitive summaries ----------------------------------------------------

TEST(CallGraphTest, FactsPropagateTransitivelyWithAWitnessChain) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Leaf() { return *new int(1); }\n"
          "int Mid() { return Leaf(); }\n"
          "int Top() { return Mid(); }\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int top = IndexOf(graph, "Top");
  ASSERT_GE(top, 0);
  EXPECT_TRUE(summaries[top].alloc.reaches);
  const std::string witness = WitnessChain(graph, summaries, top,
                                           FactKind::kAlloc);
  EXPECT_NE(witness.find("Top"), std::string::npos);
  EXPECT_NE(witness.find("Mid"), std::string::npos);
  EXPECT_NE(witness.find("Leaf"), std::string::npos);
  EXPECT_NE(witness.find("new"), std::string::npos);
}

TEST(CallGraphTest, ColdCalleesAbsorbTheirFacts) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_COLD int Slow() { return *new int(1); }\n"
          "int Fast() { return Slow(); }\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int fast = IndexOf(graph, "Fast");
  const int slow = IndexOf(graph, "Slow");
  ASSERT_GE(fast, 0);
  ASSERT_GE(slow, 0);
  EXPECT_TRUE(summaries[slow].alloc.reaches);  // the cold fn itself
  EXPECT_FALSE(summaries[fast].alloc.reaches);  // absorbed at the boundary
}

TEST(CallGraphTest, DirectRecursionAndMutualCyclesAreDetected) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Self(int x) { return Self(x - 1); }\n"
          "int PingB(int x);\n"
          "int PingA(int x) { return PingB(x); }\n"
          "int PingB(int x) { return PingA(x); }\n"
          "int Straight(int x) { return x; }\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  EXPECT_TRUE(summaries[IndexOf(graph, "Self")].recursive);
  EXPECT_TRUE(summaries[IndexOf(graph, "PingA")].recursive);
  EXPECT_TRUE(summaries[IndexOf(graph, "PingB")].recursive);
  EXPECT_FALSE(summaries[IndexOf(graph, "Straight")].recursive);
  EXPECT_EQ(summaries[IndexOf(graph, "PingA")].cycle.size(), 2u);
}

TEST(CallGraphTest, MemberCallsDoNotCreateRecursionCycles) {
  // Two size() methods calling each other's *name* through receivers must
  // not register as recursion: only direct (receiver-less) calls form
  // recursion edges.
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "class A {\n"
          "  int size() { return v_.size(); }\n"
          "};\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int fn = IndexOf(graph, "A::size");
  ASSERT_GE(fn, 0);
  EXPECT_FALSE(summaries[fn].recursive);
}

// --- the hot-path gate -------------------------------------------------------

TEST(CallGraphTest, HotGateFlagsAllocAndLockReachingHotFunctions) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Format(int id) { return std::to_string(id).size(); }\n"
          "RDFCUBE_HOT int Lookup(int id) { return Format(id); }\n"
          "RDFCUBE_HOT void Guarded() { MutexLock lock(&mu_); }\n"
          "RDFCUBE_HOT int Clean(int id) { return id + 1; }\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const std::vector<HotPathViolation> violations =
      EvaluateHotGate(graph, summaries);
  ASSERT_EQ(violations.size(), 2u);
  std::vector<std::string> kinds;
  for (const HotPathViolation& v : violations) kinds.push_back(v.kind);
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), "hot-path-alloc") !=
              kinds.end());
  EXPECT_TRUE(std::find(kinds.begin(), kinds.end(), "hot-path-lock") !=
              kinds.end());
}

TEST(CallGraphTest, HotGatePassesOnCleanKernels) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_COLD int NotFound(int id) {\n"
          "  return std::to_string(id).size();\n"
          "}\n"
          "RDFCUBE_HOT int Lookup(int id) {\n"
          "  if (id < 0) return NotFound(id);\n"
          "  return id;\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  EXPECT_TRUE(EvaluateHotGate(graph, summaries).empty());
}

TEST(CallGraphTest, ExportsRenderHotFunctionsAndEdges) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Helper() { return 1; }\n"
          "RDFCUBE_HOT int Kernel() { return Helper(); }\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const std::string dot = GraphToDot(graph, summaries);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Kernel"), std::string::npos);
  const std::string json = GraphToJson(graph, summaries);
  EXPECT_NE(json.find("\"num_functions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"num_edges\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"hot\": true"), std::string::npos);
  const std::string report = HotPathReportJson(graph, summaries,
                                               EvaluateHotGate(graph,
                                                               summaries));
  EXPECT_NE(report.find("\"violations_total\": 0"), std::string::npos);
  EXPECT_NE(report.find("Kernel"), std::string::npos);
}

// --- taint gate (DESIGN.md §5h) ----------------------------------------------

TEST(FunctionFactsTest, RecordsSizedSinkAndArithFacts) {
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "void Decode(std::string* out, size_t a, size_t b) {\n"
         "  out->resize(a * b);\n"
         "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_TRUE(HasFact(fns[0], FactKind::kSizedSink));
  EXPECT_TRUE(HasFact(fns[0], FactKind::kSizeArith));
  EXPECT_FALSE(fns[0].has_limit_guard);
}

TEST(FunctionFactsTest, StaticSizeofMemcpyIsNotASink) {
  // The double<->uint64 bit-cast idiom: size is statically sizeof, nothing
  // untrusted steers it. With identifier arithmetic it stays a sink.
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "void BitCast(double v) {\n"
         "  uint64_t bits;\n"
         "  std::memcpy(&bits, &v, sizeof(bits));\n"
         "}\n"
         "void Copy(char* dst, const char* src, size_t n) {\n"
         "  std::memcpy(dst, src, n * sizeof(uint32_t));\n"
         "}\n"));
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_FALSE(HasFact(fns[0], FactKind::kSizedSink));
  EXPECT_TRUE(HasFact(fns[1], FactKind::kSizedSink));
  EXPECT_TRUE(HasFact(fns[1], FactKind::kSizeArith));
}

TEST(FunctionFactsTest, LimitComparisonAndCheckedMathSetSanitizerBits) {
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "bool Guarded(size_t n, std::string* out) {\n"
         "  if (n > kMaxPayloadBytes) return false;\n"
         "  out->resize(n);\n"
         "  return true;\n"
         "}\n"
         "bool Checked(size_t a, size_t b, std::string* out) {\n"
         "  auto n = CheckedMul<size_t>(a, b);\n"
         "  out->resize(n.value());\n"
         "  return true;\n"
         "}\n"
         "void Arrow(Foo* p) { p->next->val = 1; }\n"));
  ASSERT_EQ(fns.size(), 3u);
  EXPECT_TRUE(fns[0].has_limit_guard);
  EXPECT_FALSE(fns[0].has_checked_math);
  EXPECT_TRUE(fns[1].has_checked_math);
  EXPECT_TRUE(fns[1].has_limit_guard);
  // `->` alone is not a comparison; without a limit token + comparator the
  // guard bit stays clear.
  EXPECT_FALSE(fns[2].has_limit_guard);
}

TEST(FunctionFactsTest, ParsesTaintAnnotations) {
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "RDFCUBE_TAINT_SOURCE int Decode(const std::string& b) {\n"
         "  return Helper(b);\n"
         "}\n"
         "RDFCUBE_TAINT_BARRIER int Validated(int n) { return n; }\n"));
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_TRUE(fns[0].taint_source);
  EXPECT_FALSE(fns[0].taint_barrier);
  EXPECT_TRUE(fns[1].taint_barrier);
}

TEST(CallGraphTest, TaintFlowsForwardFromSourceToSink) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "void Fill(std::string* out, size_t n) {\n"
          "  out->resize(n);\n"
          "}\n"
          "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
          "                                 std::string* out) {\n"
          "  if (b.size() > kMaxBytes) return;\n"
          "  Fill(out, b.size());\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int fill = IndexOf(graph, "Fill");
  const int decode = IndexOf(graph, "Decode");
  ASSERT_GE(fill, 0);
  ASSERT_GE(decode, 0);
  EXPECT_TRUE(summaries[static_cast<std::size_t>(decode)].taint.tainted);
  EXPECT_TRUE(summaries[static_cast<std::size_t>(fill)].taint.tainted);

  const auto violations = EvaluateTaintGate(graph, summaries);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "untrusted-size-sink");
  EXPECT_EQ(violations[0].fn, fill);
  EXPECT_EQ(violations[0].line, 2u);
  // Witness reads source-first and names the sink.
  EXPECT_NE(violations[0].witness.find("Decode"), std::string::npos);
  EXPECT_NE(violations[0].witness.find("-> Fill"), std::string::npos);
  EXPECT_NE(violations[0].witness.find("sized sink 'resize' at src/a/x.cc:2"),
            std::string::npos);
}

TEST(CallGraphTest, LimitGuardSilencesSink) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
          "                                 std::string* out) {\n"
          "  size_t n = b.size();\n"
          "  if (n > kMaxBytes) return;\n"
          "  out->resize(n);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  EXPECT_TRUE(EvaluateTaintGate(graph, summaries).empty());
}

TEST(CallGraphTest, BarrierStopsTaintPropagation) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_TAINT_BARRIER void Fill(std::string* out, size_t n) {\n"
          "  out->resize(n);\n"
          "}\n"
          "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
          "                                 std::string* out) {\n"
          "  if (b.size() > kMaxBytes) return;\n"
          "  Fill(out, b.size());\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int fill = IndexOf(graph, "Fill");
  ASSERT_GE(fill, 0);
  EXPECT_FALSE(summaries[static_cast<std::size_t>(fill)].taint.tainted);
  EXPECT_TRUE(EvaluateTaintGate(graph, summaries).empty());
}

TEST(CallGraphTest, TaintCrossesTranslationUnits) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/util.h",
          "inline void Grow(std::string* out, size_t n) {\n"
          "  out->resize(n);\n"
          "}\n"),
       SF("src/b/decode.cc",
          "#include \"a/util.h\"\n"
          "RDFCUBE_TAINT_SOURCE void Parse(const std::string& b,\n"
          "                                std::string* out) {\n"
          "  if (b.size() > kMaxBytes) return;\n"
          "  Grow(out, b.size());\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const int grow = IndexOf(graph, "Grow");
  ASSERT_GE(grow, 0);
  ASSERT_TRUE(summaries[static_cast<std::size_t>(grow)].taint.tainted);
  const auto violations = EvaluateTaintGate(graph, summaries);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "untrusted-size-sink");
  EXPECT_NE(violations[0].witness.find(
                "Parse (src/b/decode.cc:2) -> Grow (src/a/util.h:1)"),
            std::string::npos);
}

TEST(CallGraphTest, UncheckedSizeArithFiresAndCheckedMathSilences) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_TAINT_SOURCE void Raw(size_t rows, size_t cols,\n"
          "                              std::string* out) {\n"
          "  if (rows > kMaxRows) return;\n"
          "  out->resize(rows * cols);\n"
          "}\n"
          "RDFCUBE_TAINT_SOURCE void Safe(size_t rows, size_t cols,\n"
          "                               std::string* out) {\n"
          "  auto n = CheckedMul<size_t>(rows, cols);\n"
          "  if (!n.ok() || n.value() > kMaxBytes) return;\n"
          "  out->resize(n.value());\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateTaintGate(graph, summaries);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "unchecked-size-arith");
  EXPECT_NE(violations[0].witness.find("Raw"), std::string::npos);
}

TEST(CallGraphTest, MissingLimitClampFlagsClamplessDecoder) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "int Step(int v) { return v + 1; }\n"
          "RDFCUBE_TAINT_SOURCE int Decode(const std::string& b) {\n"
          "  return Step(static_cast<int>(b[0]));\n"
          "}\n"
          "RDFCUBE_TAINT_SOURCE int Clamped(const std::string& b) {\n"
          "  if (b.size() > kMaxBytes) return -1;\n"
          "  return Step(static_cast<int>(b[0]));\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateTaintGate(graph, summaries);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "missing-limit-clamp");
  const int decode = IndexOf(graph, "Decode");
  EXPECT_EQ(violations[0].fn, decode);
  EXPECT_NE(violations[0].witness.find("compares against a limit"),
            std::string::npos);
}

TEST(CallGraphTest, ClampInCalleeSatisfiesMissingLimitClamp) {
  // The source body itself has no comparison, but a helper in its closure
  // does — the closure-wide check accepts delegating decoders.
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "bool CheckSize(size_t n) { return n <= kMaxBytes; }\n"
          "RDFCUBE_TAINT_SOURCE int Decode(const std::string& b) {\n"
          "  return CheckSize(b.size()) ? 1 : -1;\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  EXPECT_TRUE(EvaluateTaintGate(graph, summaries).empty());
}

TEST(CallGraphTest, TaintReportJsonListsSourcesAndViolations) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_TAINT_BARRIER void Emit(int v) { (void)v; }\n"
          "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
          "                                 std::string* out) {\n"
          "  out->resize(b.size());\n"
          "  Emit(1);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateTaintGate(graph, summaries);
  const std::string report = TaintReportJson(graph, summaries, violations);
  EXPECT_NE(report.find("\"sources\""), std::string::npos);
  EXPECT_NE(report.find("Decode"), std::string::npos);
  EXPECT_NE(report.find("\"barriers\": [\"Emit\"]"), std::string::npos);
  EXPECT_NE(report.find("\"tainted_total\": 1"), std::string::npos);
  // Decode resizes by an untrusted length with no clamp anywhere: both the
  // per-sink check and the closure-wide clamp check fire.
  EXPECT_NE(report.find("\"violations_total\": 2"), std::string::npos);
  const std::string json = GraphToJson(graph, summaries);
  EXPECT_NE(json.find("\"taint_source\": true"), std::string::npos);
  EXPECT_NE(json.find("\"taint_barrier\": true"), std::string::npos);
  EXPECT_NE(json.find("\"tainted\": true"), std::string::npos);
}

// --- lock-scope dataflow + the lock gate (DESIGN.md §5i) ----------------------

const CallSite* FindCall(const FunctionInfo& fn, const std::string& name) {
  for (const CallSite& c : fn.calls) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(FunctionFactsTest, ExtractsClassScopeMutexMembersQualified) {
  std::vector<MutexMember> mutexes;
  (void)ExtractFunctions(SF("src/a/store.h",
                            "namespace rdfcube {\n"
                            "class Store {\n"
                            " public:\n"
                            "  void Put();\n"
                            " private:\n"
                            "  mutable Mutex mu_;\n"
                            "  struct Shard {\n"
                            "    Mutex mu;\n"
                            "  };\n"
                            "};\n"
                            "}  // namespace rdfcube\n"),
                         &mutexes);
  std::vector<std::string> qualified;
  for (const MutexMember& m : mutexes) qualified.push_back(m.qualified);
  std::sort(qualified.begin(), qualified.end());
  ASSERT_EQ(qualified.size(), 2u);
  EXPECT_EQ(qualified[0], "rdfcube::Store::Shard::mu");
  EXPECT_EQ(qualified[1], "rdfcube::Store::mu_");
}

TEST(FunctionFactsTest, HeldLocksAttributeToSitesInsideTheScopeOnly) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "void Run() {\n"
                                       "  Before();\n"
                                       "  {\n"
                                       "    MutexLock lock(&mu_);\n"
                                       "    During();\n"
                                       "  }\n"
                                       "  After();\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  const CallSite* before = FindCall(fns[0], "Before");
  const CallSite* during = FindCall(fns[0], "During");
  const CallSite* after = FindCall(fns[0], "After");
  ASSERT_TRUE(before != nullptr && during != nullptr && after != nullptr);
  EXPECT_TRUE(before->held.empty());
  ASSERT_EQ(during->held.size(), 1u);
  EXPECT_EQ(during->held[0], "mu_");
  EXPECT_TRUE(after->held.empty());
  // The acquisition itself is recorded, with nothing held at its decl.
  ASSERT_EQ(fns[0].lock_acquisitions.size(), 1u);
  EXPECT_EQ(fns[0].lock_acquisitions[0].expr, "mu_");
  EXPECT_TRUE(fns[0].lock_acquisitions[0].held.empty());
}

TEST(FunctionFactsTest, RequiresTransfersHeldLocksAcrossTheWholeBody) {
  const auto fns = ExtractFunctions(
      SF("src/a/x.cc",
         "void Flush() RDFCUBE_REQUIRES(mu_) {\n"
         "  Sink();\n"
         "}\n"));
  ASSERT_EQ(fns.size(), 1u);
  ASSERT_EQ(fns[0].requires_locks.size(), 1u);
  EXPECT_EQ(fns[0].requires_locks[0], "mu_");
  const CallSite* sink = FindCall(fns[0], "Sink");
  ASSERT_TRUE(sink != nullptr);
  ASSERT_EQ(sink->held.size(), 1u);
  EXPECT_EQ(sink->held[0], "mu_");
}

TEST(FunctionFactsTest, WaitOnTheHeldLockReleasesOnlyThatLock) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "void Pump() {\n"
                                       "  MutexLock lock(&mu_);\n"
                                       "  lock.Wait(ready_);\n"
                                       "}\n"
                                       "void Mixed() {\n"
                                       "  MutexLock a(&a_mu_);\n"
                                       "  MutexLock b(&b_mu_);\n"
                                       "  b.Wait(ready_);\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 2u);
  // Pump: the wait releases the only held lock — sanctioned, held empty.
  const CallSite* own = FindCall(fns[0], "Wait");
  ASSERT_TRUE(own != nullptr);
  EXPECT_TRUE(own->held.empty());
  // Mixed: waiting on b while a stays held keeps a_mu_ in the held set.
  const CallSite* other = FindCall(fns[1], "Wait");
  ASSERT_TRUE(other != nullptr);
  ASSERT_EQ(other->held.size(), 1u);
  EXPECT_EQ(other->held[0], "a_mu_");
}

TEST(FunctionFactsTest, BlockingAnnotationAndLocalMutexesAreRecorded) {
  const auto fns = ExtractFunctions(SF("src/a/x.cc",
                                       "RDFCUBE_BLOCKING void WaitFrame() {}\n"
                                       "void Scatter() {\n"
                                       "  Mutex error_mu;\n"
                                       "  MutexLock lock(&error_mu);\n"
                                       "}\n"));
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_TRUE(fns[0].blocking);
  EXPECT_FALSE(fns[1].blocking);
  ASSERT_EQ(fns[1].local_mutexes.size(), 1u);
  EXPECT_EQ(fns[1].local_mutexes[0], "error_mu");
}

TEST(CallGraphTest, LockGraphRecordsIntraFunctionNestings) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/x.cc",
          "#include \"a/pair.h\"\n"
          "void Nest(Pair* p) {\n"
          "  MutexLock la(&p->a_);\n"
          "  MutexLock lb(&p->b_);\n"
          "}\n")});
  const LockGraph lock_graph = BuildLockGraph(graph);
  ASSERT_EQ(lock_graph.edges.size(), 1u);
  EXPECT_EQ(lock_graph.edges[0].held, "Pair::a_");
  EXPECT_EQ(lock_graph.edges[0].acquired, "Pair::b_");
  EXPECT_EQ(lock_graph.edges[0].line, 4u);
}

TEST(CallGraphTest, LockGraphFollowsHeldCallsAcrossTranslationUnits) {
  // inner.h declares Inner, so outer.cc's call may link to the definition
  // in the sibling source inner.cc (the cross-TU visibility rule).
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/inner.h",
          "#include \"a/pair.h\"\n"
          "void Inner(Pair* p);\n"),
       SF("src/a/inner.cc",
          "#include \"a/inner.h\"\n"
          "void Inner(Pair* p) {\n"
          "  MutexLock lb(&p->b_);\n"
          "}\n"),
       SF("src/b/outer.cc",
          "#include \"a/inner.h\"\n"
          "void Outer(Pair* p) {\n"
          "  MutexLock la(&p->a_);\n"
          "  Inner(p);\n"
          "}\n")});
  const LockGraph lock_graph = BuildLockGraph(graph);
  ASSERT_EQ(lock_graph.edges.size(), 1u);
  EXPECT_EQ(lock_graph.edges[0].held, "Pair::a_");
  EXPECT_EQ(lock_graph.edges[0].acquired, "Pair::b_");
  // The witness walks holder -> callee -> acquisition.
  EXPECT_NE(lock_graph.edges[0].witness.find("Outer"), std::string::npos);
  EXPECT_NE(lock_graph.edges[0].witness.find("Inner"), std::string::npos);
  EXPECT_NE(lock_graph.edges[0].witness.find("src/a/inner.cc:3"),
            std::string::npos);
}

TEST(CallGraphTest, AbbaNestingAcrossTusIsALockOrderCycle) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/ab.cc",
          "#include \"a/pair.h\"\n"
          "void OrderAb(Pair* p) {\n"
          "  MutexLock la(&p->a_);\n"
          "  MutexLock lb(&p->b_);\n"
          "}\n"),
       SF("src/b/ba.cc",
          "#include \"a/pair.h\"\n"
          "void OrderBa(Pair* p) {\n"
          "  MutexLock lb(&p->b_);\n"
          "  MutexLock la(&p->a_);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const LockGraph lock_graph = BuildLockGraph(graph);
  ASSERT_EQ(lock_graph.edges.size(), 2u);
  const auto violations =
      EvaluateLockGate(graph, summaries, lock_graph, LockOrderManifest{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "lock-order-cycle");
  EXPECT_NE(violations[0].witness.find("Pair::a_"), std::string::npos);
  EXPECT_NE(violations[0].witness.find("Pair::b_"), std::string::npos);
  EXPECT_NE(violations[0].witness.find("ABBA"), std::string::npos);
}

TEST(CallGraphTest, DoubleLockIsASelfLoopFinding) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/x.cc",
          "#include \"a/pair.h\"\n"
          "void Re(Pair* p) {\n"
          "  MutexLock outer(&p->a_);\n"
          "  MutexLock inner(&p->a_);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateLockGate(
      graph, summaries, BuildLockGraph(graph), LockOrderManifest{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "lock-order-cycle");
  EXPECT_NE(violations[0].witness.find("double lock"), std::string::npos);
}

TEST(CallGraphTest, ManifestSanctionsDeclaredNestingsOnly) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/x.cc",
          "#include \"a/pair.h\"\n"
          "void Nest(Pair* p) {\n"
          "  MutexLock la(&p->a_);\n"
          "  MutexLock lb(&p->b_);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const LockGraph lock_graph = BuildLockGraph(graph);

  // Absent manifest: the consistent nesting passes (cycles would still fire).
  EXPECT_TRUE(
      EvaluateLockGate(graph, summaries, lock_graph, LockOrderManifest{})
          .empty());

  // Present manifest declaring the edge (by qualified suffix): passes.
  LockOrderManifest declared;
  declared.present = true;
  declared.path = "tools/lock_order.txt";
  declared.edges = {{"Pair::a_", "Pair::b_"}};
  EXPECT_TRUE(
      EvaluateLockGate(graph, summaries, lock_graph, declared).empty());

  // Present manifest without the edge: the observed nesting is undeclared.
  LockOrderManifest empty;
  empty.present = true;
  empty.path = "tools/lock_order.txt";
  const auto undeclared =
      EvaluateLockGate(graph, summaries, lock_graph, empty);
  ASSERT_EQ(undeclared.size(), 1u);
  EXPECT_EQ(undeclared[0].kind, "lock-order-cycle");
  EXPECT_NE(undeclared[0].witness.find("not declared"), std::string::npos);

  // A cycle among the declarations themselves is rejected even when the
  // observed graph is clean; the finding anchors at the manifest (fn < 0).
  LockOrderManifest cyclic;
  cyclic.present = true;
  cyclic.path = "tools/lock_order.txt";
  cyclic.edges = {{"Pair::a_", "Pair::b_"}, {"Pair::b_", "Pair::a_"}};
  const auto bad = EvaluateLockGate(graph, summaries, lock_graph, cyclic);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0].fn, -1);
  EXPECT_EQ(bad[0].file, "tools/lock_order.txt");
  EXPECT_NE(bad[0].witness.find("no consistent global order"),
            std::string::npos);
}

TEST(CallGraphTest, BlockingUnderLockFlagsHeldReachesOnly) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/x.cc",
          "RDFCUBE_BLOCKING void WaitFrame() {}\n"
          "void Guarded() {\n"
          "  MutexLock lock(&mu_);\n"
          "  WaitFrame();\n"
          "}\n"
          "void Free() {\n"
          "  WaitFrame();\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateLockGate(
      graph, summaries, BuildLockGraph(graph), LockOrderManifest{});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, "blocking-under-lock");
  EXPECT_EQ(violations[0].fn, IndexOf(graph, "Guarded"));
  EXPECT_EQ(violations[0].line, 4u);
  EXPECT_NE(violations[0].witness.find("WaitFrame"), std::string::npos);
}

TEST(CallGraphTest, CallbackUnderLockFlagsDispatchAndVirtualCalls) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/sink.h",
          "class Sink {\n"
          " public:\n"
          "  virtual void Write(int v) = 0;\n"
          "};\n"),
       SF("src/a/x.cc",
          "#include \"a/sink.h\"\n"
          "void Notify(const std::function<void()>& cb) {\n"
          "  MutexLock lock(&mu_);\n"
          "  cb();\n"
          "}\n"
          "void Emit(Sink* sink) {\n"
          "  MutexLock lock(&mu_);\n"
          "  sink->Write(1);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const auto violations = EvaluateLockGate(
      graph, summaries, BuildLockGraph(graph), LockOrderManifest{});
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, "callback-under-lock");
  EXPECT_EQ(violations[1].kind, "callback-under-lock");
}

TEST(CallGraphTest, LockReportJsonListsLocksEdgesManifestAndViolations) {
  const CallGraph graph = BuildCallGraph(
      {SF("src/a/pair.h", "struct Pair {\n  Mutex a_;\n  Mutex b_;\n};\n"),
       SF("src/a/x.cc",
          "#include \"a/pair.h\"\n"
          "void Nest(Pair* p) {\n"
          "  MutexLock la(&p->a_);\n"
          "  MutexLock lb(&p->b_);\n"
          "}\n")});
  const std::vector<FunctionSummary> summaries = ComputeSummaries(graph);
  const LockGraph lock_graph = BuildLockGraph(graph);
  LockOrderManifest manifest;
  manifest.present = true;
  manifest.path = "tools/lock_order.txt";
  const auto violations =
      EvaluateLockGate(graph, summaries, lock_graph, manifest);
  const std::string report =
      LockReportJson(graph, lock_graph, manifest, violations);
  EXPECT_NE(report.find("\"locks\""), std::string::npos);
  EXPECT_NE(report.find("Pair::a_"), std::string::npos);
  EXPECT_NE(report.find("\"manifest\": {\"present\": true"),
            std::string::npos);
  EXPECT_NE(report.find("\"violations_total\": 1"), std::string::npos);
  const std::string dot = LockGraphToDot(lock_graph);
  EXPECT_NE(dot.find("digraph rdfcube_lock_order"), std::string::npos);
  EXPECT_NE(dot.find("Pair::b_"), std::string::npos);
}

}  // namespace
}  // namespace callgraph
}  // namespace rdfcube
