// Tests for src/cluster (metrics, k-means, x-means, canopy, agglomerative)
// and the clustering computation method (Algorithm 3).

#include <gtest/gtest.h>

#include <set>

#include "cluster/agglomerative.h"
#include "cluster/canopy.h"
#include "cluster/kmeans.h"
#include "cluster/metric.h"
#include "cluster/xmeans.h"
#include "core/baseline.h"
#include "core/clustering_method.h"
#include "core/occurrence_matrix.h"
#include "tests/test_corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace cluster {
namespace {

// Two well-separated groups of binary points.
std::vector<BitVector> TwoBlobs(std::size_t per_blob, std::size_t dims,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> points;
  for (std::size_t blob = 0; blob < 2; ++blob) {
    // Blob b occupies columns [b*dims/2, (b+1)*dims/2).
    const std::size_t lo = blob * dims / 2;
    const std::size_t hi = (blob + 1) * dims / 2;
    for (std::size_t i = 0; i < per_blob; ++i) {
      BitVector v(dims);
      for (std::size_t c = lo; c < hi; ++c) {
        if (rng.Chance(0.8)) v.Set(c);
      }
      points.push_back(std::move(v));
    }
  }
  return points;
}

std::vector<const BitVector*> Ptrs(const std::vector<BitVector>& points) {
  std::vector<const BitVector*> out;
  for (const auto& p : points) out.push_back(&p);
  return out;
}

// --- Metric ------------------------------------------------------------------

TEST(MetricTest, JaccardDistanceBounds) {
  BitVector a(10), b(10);
  a.Set(1);
  b.Set(1);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 0.0);
  b.Reset(1);
  b.Set(2);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 1.0);
}

TEST(MetricTest, CentroidReducesToJaccardOnBinary) {
  BitVector a(8), b(8);
  a.Set(0);
  a.Set(1);
  b.Set(1);
  b.Set(2);
  Centroid c(8);
  c.Accumulate(b);
  c.Normalize();
  EXPECT_NEAR(CentroidDistance(a, c), JaccardDistance(a, b), 1e-12);
}

TEST(MetricTest, CentroidAveraging) {
  BitVector a(4), b(4);
  a.Set(0);
  b.Set(1);
  Centroid c(4);
  c.Accumulate(a);
  c.Accumulate(b);
  c.Normalize();
  EXPECT_DOUBLE_EQ(c.mean[0], 0.5);
  EXPECT_DOUBLE_EQ(c.mean[1], 0.5);
  EXPECT_DOUBLE_EQ(c.mean[2], 0.0);
  EXPECT_EQ(c.count, 2u);
}

TEST(MetricTest, SquaredEuclidean) {
  BitVector a(3);
  a.Set(0);
  Centroid c(3);
  c.mean = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, c), 2.0);
}

// --- KMeans -------------------------------------------------------------------

TEST(KMeansTest, SeparatesTwoBlobs) {
  const auto points = TwoBlobs(20, 40, 1);
  KMeansOptions options;
  options.k = 2;
  std::vector<uint32_t> assignment;
  auto model = KMeans(Ptrs(points), options, &assignment);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->centroids.size(), 2u);
  ASSERT_EQ(assignment.size(), 40u);
  // All of blob 0 together, all of blob 1 together, different clusters.
  for (std::size_t i = 1; i < 20; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (std::size_t i = 21; i < 40; ++i) {
    EXPECT_EQ(assignment[i], assignment[20]);
  }
  EXPECT_NE(assignment[0], assignment[20]);
}

TEST(KMeansTest, ErrorsOnBadInput) {
  EXPECT_TRUE(KMeans({}, KMeansOptions{}).status().IsInvalidArgument());
  const auto points = TwoBlobs(2, 8, 1);
  KMeansOptions zero_k;
  zero_k.k = 0;
  EXPECT_TRUE(KMeans(Ptrs(points), zero_k).status().IsInvalidArgument());
}

TEST(KMeansTest, ClampsKToPointCount) {
  const auto points = TwoBlobs(2, 8, 2);  // 4 points
  KMeansOptions options;
  options.k = 100;
  auto model = KMeans(Ptrs(points), options);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->centroids.size(), 4u);
}

TEST(KMeansTest, DeterministicUnderSeed) {
  const auto points = TwoBlobs(15, 30, 3);
  KMeansOptions options;
  options.k = 3;
  options.seed = 77;
  std::vector<uint32_t> a1, a2;
  ASSERT_TRUE(KMeans(Ptrs(points), options, &a1).ok());
  ASSERT_TRUE(KMeans(Ptrs(points), options, &a2).ok());
  EXPECT_EQ(a1, a2);
}

// --- XMeans -------------------------------------------------------------------

TEST(XMeansTest, FindsAtLeastTwoClustersOnBlobs) {
  const auto points = TwoBlobs(25, 40, 4);
  XMeansOptions options;
  options.min_k = 2;
  options.max_k = 8;
  std::vector<uint32_t> assignment;
  auto model = XMeans(Ptrs(points), options, &assignment);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->centroids.size(), 2u);
  EXPECT_LE(model->centroids.size(), 8u);
  // The two blobs must not share a cluster.
  std::set<uint32_t> blob0(assignment.begin(), assignment.begin() + 25);
  std::set<uint32_t> blob1(assignment.begin() + 25, assignment.end());
  for (uint32_t c : blob0) EXPECT_FALSE(blob1.count(c));
}

TEST(XMeansTest, RespectsMaxK) {
  const auto points = TwoBlobs(30, 60, 5);
  XMeansOptions options;
  options.min_k = 2;
  options.max_k = 3;
  auto model = XMeans(Ptrs(points), options);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->centroids.size(), 3u);
}

TEST(XMeansTest, ErrorsOnEmpty) {
  EXPECT_TRUE(XMeans({}, XMeansOptions{}).status().IsInvalidArgument());
}

// --- Canopy -------------------------------------------------------------------

TEST(CanopyTest, CoversAllPoints) {
  const auto points = TwoBlobs(20, 40, 6);
  CanopyOptions options;
  std::vector<uint32_t> assignment;
  auto model = Canopy(Ptrs(points), options, &assignment);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->centroids.size(), 1u);
  EXPECT_EQ(assignment.size(), points.size());
  for (uint32_t a : assignment) EXPECT_LT(a, model->centroids.size());
}

TEST(CanopyTest, TightThresholdBoundsCenters) {
  // With t2 >= 1 (the maximum Jaccard distance), every point falls inside
  // the first canopy's tight radius: a single center remains.
  const auto points = TwoBlobs(10, 20, 7);
  CanopyOptions options;
  options.t1 = 1.05;
  options.t2 = 1.0;
  auto model = Canopy(Ptrs(points), options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->centroids.size(), 1u);
}

TEST(CanopyTest, RequiresT2BelowT1) {
  const auto points = TwoBlobs(4, 8, 8);
  CanopyOptions options;
  options.t1 = 0.3;
  options.t2 = 0.5;
  EXPECT_TRUE(Canopy(Ptrs(points), options).status().IsInvalidArgument());
}

// --- Agglomerative ----------------------------------------------------------------

TEST(AgglomerativeTest, MergesDownToTargetK) {
  const auto points = TwoBlobs(10, 30, 9);
  AgglomerativeOptions options;
  options.target_k = 2;
  std::vector<uint32_t> assignment;
  auto model = Agglomerative(Ptrs(points), options, &assignment);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->centroids.size(), 2u);
  // Blob purity.
  for (std::size_t i = 1; i < 10; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (std::size_t i = 11; i < 20; ++i) {
    EXPECT_EQ(assignment[i], assignment[10]);
  }
}

TEST(AgglomerativeTest, MaxMergeDistanceStopsEarly) {
  const auto points = TwoBlobs(5, 30, 10);
  AgglomerativeOptions options;
  options.target_k = 1;
  options.max_merge_distance = 0.2;  // blobs are ~1.0 apart: cannot merge
  auto model = Agglomerative(Ptrs(points), options);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->centroids.size(), 2u);
}

TEST(AgglomerativeTest, ErrorsOnBadInput) {
  EXPECT_TRUE(
      Agglomerative({}, AgglomerativeOptions{}).status().IsInvalidArgument());
  const auto points = TwoBlobs(2, 8, 11);
  AgglomerativeOptions zero;
  zero.target_k = 0;
  EXPECT_TRUE(Agglomerative(Ptrs(points), zero).status().IsInvalidArgument());
}

// --- Clustering computation method (Algorithm 3) ------------------------------------

using core::ClusterAlgorithm;
using core::ClusteringMethodOptions;
using core::ClusteringMethodStats;
using core::CollectingSink;
using core::OccurrenceMatrix;

class ClusteringMethodTest
    : public ::testing::TestWithParam<ClusterAlgorithm> {};

TEST_P(ClusteringMethodTest, ProducesSubsetOfBaselineWithDecentRecall) {
  qb::Corpus corpus = testutil::MakeRandomCorpus(31, 150);
  const qb::ObservationSet& obs = *corpus.observations;
  const OccurrenceMatrix om(obs);

  CollectingSink base_sink;
  core::BaselineOptions base_options;
  ASSERT_TRUE(core::RunBaseline(obs, om, base_options, &base_sink).ok());

  CollectingSink cluster_sink;
  ClusteringMethodOptions options;
  options.algorithm = GetParam();
  options.sample_fraction = 0.2;
  ClusteringMethodStats stats;
  ASSERT_TRUE(
      core::RunClusteringMethod(obs, om, options, &cluster_sink, &stats).ok());
  EXPECT_GT(stats.num_clusters, 0u);
  EXPECT_GT(stats.sample_size, 0u);

  std::set<std::pair<qb::ObsId, qb::ObsId>> base_full(base_sink.full().begin(),
                                                      base_sink.full().end());
  for (const auto& p : cluster_sink.full()) {
    EXPECT_TRUE(base_full.count(p)) << p.first << "," << p.second;
  }
  std::set<std::pair<qb::ObsId, qb::ObsId>> base_compl(
      base_sink.complementary().begin(), base_sink.complementary().end());
  for (const auto& p : cluster_sink.complementary()) {
    EXPECT_TRUE(base_compl.count(p));
  }
  // Recall is data-dependent but must be positive on this corpus for the
  // centroid methods (identical observations always share a cluster).
  if (!base_compl.empty()) {
    EXPECT_GT(cluster_sink.complementary().size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ClusteringMethodTest,
                         ::testing::Values(ClusterAlgorithm::kXMeans,
                                           ClusterAlgorithm::kCanopy,
                                           ClusterAlgorithm::kHierarchical),
                         [](const auto& info) {
                           return core::ClusterAlgorithmName(info.param) ==
                                          std::string("x-means")
                                      ? "XMeans"
                                      : core::ClusterAlgorithmName(info.param) ==
                                                std::string("canopy")
                                            ? "Canopy"
                                            : "Hierarchical";
                         });

TEST(ClusteringMethodTest2, EmptyInputIsOk) {
  qb::CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  const OccurrenceMatrix om(*corpus->observations);
  CollectingSink sink;
  EXPECT_TRUE(core::RunClusteringMethod(*corpus->observations, om,
                                        ClusteringMethodOptions{}, &sink)
                  .ok());
}

}  // namespace
}  // namespace cluster
}  // namespace rdfcube
