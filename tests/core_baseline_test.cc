// Tests for the occurrence matrix, containment matrices (Tables 2/3 of the
// paper) and the streaming baseline on the running example.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baseline.h"
#include "core/containment_matrix.h"
#include "core/occurrence_matrix.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRunningExample;
using testutil::kO11;
using testutil::kO12;
using testutil::kO13;
using testutil::kO21;
using testutil::kO22;
using testutil::kO31;
using testutil::kO32;
using testutil::kO33;
using testutil::kO34;
using testutil::kO35;

using Pair = std::pair<qb::ObsId, qb::ObsId>;

class RunningExampleTest : public ::testing::Test {
 protected:
  RunningExampleTest() : corpus_(MakeRunningExample()), om_(*corpus_.observations) {}

  const qb::ObservationSet& obs() const { return *corpus_.observations; }
  const qb::CubeSpace& space() const { return *corpus_.space; }

  qb::Corpus corpus_;
  OccurrenceMatrix om_;
};

// --- Occurrence matrix (paper §3.1, Table 2) ---------------------------------

TEST_F(RunningExampleTest, MatrixShape) {
  EXPECT_EQ(om_.num_rows(), 10u);
  // refArea 11 codes + refPeriod 5 + sex 3 = 19 feature columns.
  EXPECT_EQ(om_.num_columns(), 19u);
  EXPECT_EQ(om_.num_dimensions(), 3u);
  EXPECT_EQ(om_.dim_begin(0), 0u);
  EXPECT_EQ(om_.dim_end(0), 11u);
  EXPECT_EQ(om_.dim_end(2), 19u);
}

// Column index of a named code within dimension `dim_iri`.
std::size_t Col(const qb::CubeSpace& space, const OccurrenceMatrix& om,
                const char* dim_iri, const char* code) {
  const qb::DimId d = *space.FindDimension(dim_iri);
  return om.dim_begin(d) + *space.code_list(d).Find(code);
}

TEST_F(RunningExampleTest, HierarchicalClosureBitsForO11) {
  // o11 = (Athens, 2001, Total): World/Europe/Greece/Athens set; Italy not.
  const BitVector& row = om_.row(kO11);
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefArea, "World")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefArea, "Europe")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefArea, "Greece")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefArea, "Athens")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kRefArea, "Italy")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kRefArea, "Ioannina")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefPeriod, "AllTime")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kRefPeriod, "2001")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kRefPeriod, "2011")));
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kSex, "Total")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kSex, "Male")));
}

TEST_F(RunningExampleTest, RootPaddingBitsForO21) {
  // o21 (D2) has no sex dimension: only the root bit of sex is set
  // ("dimensions not appearing in a schema are mapped to the top concept").
  const BitVector& row = om_.row(kO21);
  EXPECT_TRUE(row.Test(Col(space(), om_, testutil::kSex, "Total")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kSex, "Female")));
  EXPECT_FALSE(row.Test(Col(space(), om_, testutil::kSex, "Male")));
}

TEST_F(RunningExampleTest, PerDimensionContains) {
  // sf(o21, o32)|refArea = 1 (Greece contains Athens).
  const qb::DimId area = *space().FindDimension(testutil::kRefArea);
  const qb::DimId period = *space().FindDimension(testutil::kRefPeriod);
  EXPECT_TRUE(om_.Contains(kO21, kO32, area));
  EXPECT_FALSE(om_.Contains(kO32, kO21, area));
  // sf(o21, o31)|refPeriod = 0 (2011 does not contain 2001).
  EXPECT_FALSE(om_.Contains(kO21, kO31, period));
  EXPECT_TRUE(om_.Contains(kO21, kO32, period));
  // Whole-row cover equals per-dimension conjunction.
  EXPECT_TRUE(om_.ContainsAll(kO21, kO32));
  EXPECT_FALSE(om_.ContainsAll(kO21, kO31));
}

TEST_F(RunningExampleTest, ToTableRendersHeaderAndRows) {
  const std::string table = om_.ToTable(obs());
  EXPECT_NE(table.find("refArea"), std::string::npos);
  EXPECT_NE(table.find("o11"), std::string::npos);
  // One header plus ten observation lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 11);
}

// --- Containment matrices (Algorithm 1; Table 3) --------------------------------

class ContainmentMatrixTest : public RunningExampleTest {
 protected:
  ContainmentMatrixTest() {
    auto computed = ContainmentMatrices::Compute(om_);
    EXPECT_TRUE(computed.ok());
    cm_ = std::make_unique<ContainmentMatrices>(std::move(*computed));
  }
  std::unique_ptr<ContainmentMatrices> cm_;
};

TEST_F(ContainmentMatrixTest, DiagonalIsOne) {
  for (qb::ObsId i = 0; i < obs().size(); ++i) {
    EXPECT_DOUBLE_EQ(cm_->ocm(i, i), 1.0);
  }
}

TEST_F(ContainmentMatrixTest, KnownCellsMatchPaperSemantics) {
  // o11 vs o31 share identical coordinates: OCM 1 both ways.
  EXPECT_DOUBLE_EQ(cm_->ocm(kO11, kO31), 1.0);
  EXPECT_DOUBLE_EQ(cm_->ocm(kO31, kO11), 1.0);
  // o21 dimensionally contains o32 fully.
  EXPECT_DOUBLE_EQ(cm_->ocm(kO21, kO32), 1.0);
  // o21 vs o31: refArea contains, refPeriod does not, sex root==root:
  // 2 of 3 dimensions.
  EXPECT_NEAR(cm_->ocm(kO21, kO31), 2.0 / 3.0, 1e-9);
  // o22 vs o12: refArea Italy vs Austin fails; refPeriod equal; sex
  // Total contains Male: 2/3.
  EXPECT_NEAR(cm_->ocm(kO22, kO12), 2.0 / 3.0, 1e-9);
}

TEST_F(ContainmentMatrixTest, CmMatricesFeedOcm) {
  const qb::DimId area = *space().FindDimension(testutil::kRefArea);
  const qb::DimId period = *space().FindDimension(testutil::kRefPeriod);
  const qb::DimId sex = *space().FindDimension(testutil::kSex);
  const double sum = (cm_->cm(area, kO21, kO31) ? 1 : 0) +
                     (cm_->cm(period, kO21, kO31) ? 1 : 0) +
                     (cm_->cm(sex, kO21, kO31) ? 1 : 0);
  EXPECT_NEAR(cm_->ocm(kO21, kO31), sum / 3.0, 1e-9);
  EXPECT_TRUE(cm_->cm(area, kO21, kO31));
  EXPECT_FALSE(cm_->cm(period, kO21, kO31));
  EXPECT_TRUE(cm_->cm(sex, kO21, kO31));
}

TEST_F(ContainmentMatrixTest, RefusesHugeInputs) {
  auto result = ContainmentMatrices::Compute(om_, /*max_cells=*/50);
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST_F(ContainmentMatrixTest, ToTableRenders) {
  const std::string ocm_table = cm_->ToTable(obs());
  EXPECT_NE(ocm_table.find("OCM"), std::string::npos);
  EXPECT_NE(ocm_table.find("1.00"), std::string::npos);
  const std::string cm_table = cm_->ToTable(obs(), 0);
  EXPECT_NE(cm_table.find("CM[refArea]"), std::string::npos);
}

// --- Relationship extraction (Algorithm 2 semantics) -----------------------------

// Expected sets on the running example (hand-derived; see DESIGN.md §1):
//   full: (o13 ⊐ o12), (o21 ⊐ o32), (o21 ⊐ o34), (o22 ⊐ o33),
//         plus the equal-coordinate mutual pairs with shared measures:
//         (o31 ⊐ o32)? no — 2001 vs Jan2011 fails. (o32,o34) differ in
//         refArea siblings. (o35 ⊐ o32)? Austin vs Athens no. None besides
//         the four directed ones... except equal-coordinate pairs
//         (o11,o31),(o13,o35) lack shared measures, and (o32,o34) are not
//         comparable. Also (o21 ⊐ o31) fails on refPeriod.
//   compl: (o11,o31), (o13,o35).
std::set<Pair> ExpectedFull() {
  return {{kO13, kO12}, {kO21, kO32}, {kO21, kO34}, {kO22, kO33}};
}
std::set<Pair> ExpectedCompl() {
  return {{kO11, kO31}, {kO13, kO35}};
}

TEST_F(ContainmentMatrixTest, EmitRelationshipsMatchesExpectations) {
  CollectingSink sink;
  cm_->EmitRelationships(obs(), RelationshipSelector::All(), &sink);
  sink.Canonicalize();
  std::set<Pair> full(sink.full().begin(), sink.full().end());
  EXPECT_EQ(full, ExpectedFull());
  std::set<Pair> compl_set(sink.complementary().begin(),
                           sink.complementary().end());
  EXPECT_EQ(compl_set, ExpectedCompl());
  // Spot partial facts: o21 partially contains o31 at degree 2/3.
  bool found = false;
  for (const auto& p : sink.partial()) {
    if (p.a == kO21 && p.b == kO31) {
      found = true;
      EXPECT_NEAR(p.degree, 2.0 / 3.0, 1e-9);
    }
    // Full pairs must not be double-reported as partial.
    EXPECT_FALSE(ExpectedFull().count({p.a, p.b})) << p.a << "," << p.b;
  }
  EXPECT_TRUE(found);
}

TEST_F(RunningExampleTest, StreamingBaselineMatchesMaterialized) {
  auto matrices = ContainmentMatrices::Compute(om_);
  ASSERT_TRUE(matrices.ok());
  CollectingSink materialized;
  matrices->EmitRelationships(obs(), RelationshipSelector::All(),
                              &materialized);
  materialized.Canonicalize();

  CollectingSink streaming;
  BaselineOptions options;
  ASSERT_TRUE(RunBaseline(obs(), om_, options, &streaming).ok());
  streaming.Canonicalize();

  EXPECT_EQ(streaming.full(), materialized.full());
  EXPECT_EQ(streaming.complementary(), materialized.complementary());
  ASSERT_EQ(streaming.partial().size(), materialized.partial().size());
  for (std::size_t i = 0; i < streaming.partial().size(); ++i) {
    EXPECT_EQ(streaming.partial()[i].a, materialized.partial()[i].a);
    EXPECT_EQ(streaming.partial()[i].b, materialized.partial()[i].b);
    EXPECT_NEAR(streaming.partial()[i].degree,
                materialized.partial()[i].degree, 1e-9);
  }
}

TEST_F(RunningExampleTest, PartialDimensionMapIdentifiesDimensions) {
  CollectingSink sink;
  BaselineOptions options;
  options.selector.partial_dimension_map = true;
  ASSERT_TRUE(RunBaseline(obs(), om_, options, &sink).ok());
  const qb::DimId area = *space().FindDimension(testutil::kRefArea);
  const qb::DimId period = *space().FindDimension(testutil::kRefPeriod);
  const qb::DimId sex = *space().FindDimension(testutil::kSex);
  bool found = false;
  for (const auto& p : sink.partial()) {
    if (p.a == kO21 && p.b == kO31) {
      found = true;
      EXPECT_TRUE(p.dim_mask & (uint64_t{1} << area));
      EXPECT_FALSE(p.dim_mask & (uint64_t{1} << period));
      EXPECT_TRUE(p.dim_mask & (uint64_t{1} << sex));
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RunningExampleTest, FastPathMatchesQuantifyingPathOnFullAndCompl) {
  CollectingSink quantifying, fast;
  BaselineOptions all;
  ASSERT_TRUE(RunBaseline(obs(), om_, all, &quantifying).ok());
  BaselineOptions no_partial;
  no_partial.selector.partial_containment = false;
  ASSERT_TRUE(RunBaseline(obs(), om_, no_partial, &fast).ok());
  quantifying.Canonicalize();
  fast.Canonicalize();
  EXPECT_EQ(fast.full(), quantifying.full());
  EXPECT_EQ(fast.complementary(), quantifying.complementary());
  EXPECT_TRUE(fast.partial().empty());
}

TEST_F(RunningExampleTest, MeasureGateExcludesContainmentNotComplementarity) {
  // o11/o31 have identical coordinates but disjoint measures: they are
  // complementary but neither fully contains the other (Def. 4 cond. (3)).
  CollectingSink sink;
  BaselineOptions options;
  ASSERT_TRUE(RunBaseline(obs(), om_, options, &sink).ok());
  for (const auto& [a, b] : sink.full()) {
    EXPECT_TRUE(obs().SharesMeasure(a, b));
  }
  std::set<Pair> compl_set(sink.complementary().begin(),
                           sink.complementary().end());
  EXPECT_TRUE(compl_set.count({kO11, kO31}));
}

TEST_F(RunningExampleTest, DeadlineAbortsBaseline) {
  CollectingSink sink;
  BaselineOptions options;
  options.deadline = Deadline(0.0);
  // With a stride of 4096 pair visits per check, the 45-pair example always
  // finishes before the first deadline check; use a bigger corpus.
  qb::Corpus big = testutil::MakeRandomCorpus(7, /*num_obs=*/400);
  const OccurrenceMatrix big_om(*big.observations);
  const Status st = RunBaseline(*big.observations, big_om, options, &sink);
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
}

TEST_F(RunningExampleTest, SelectorSubsetsEmitSubsets) {
  CollectingSink full_only;
  BaselineOptions options;
  options.selector = RelationshipSelector::FullOnly();
  ASSERT_TRUE(RunBaseline(obs(), om_, options, &full_only).ok());
  EXPECT_EQ(full_only.full().size(), ExpectedFull().size());
  EXPECT_TRUE(full_only.complementary().empty());
  EXPECT_TRUE(full_only.partial().empty());

  CollectingSink compl_only;
  options.selector = RelationshipSelector::ComplOnly();
  ASSERT_TRUE(RunBaseline(obs(), om_, options, &compl_only).ok());
  EXPECT_TRUE(compl_only.full().empty());
  EXPECT_EQ(compl_only.complementary().size(), ExpectedCompl().size());
}

TEST(CountingSinkTest, CountsWithoutStoring) {
  CountingSink sink;
  sink.OnFullContainment(1, 2);
  sink.OnFullContainment(2, 1);
  sink.OnPartialContainment(1, 3, 0.5, 0);
  sink.OnComplementarity(4, 5);
  EXPECT_EQ(sink.full(), 2u);
  EXPECT_EQ(sink.partial(), 1u);
  EXPECT_EQ(sink.complementary(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
