// Tests for the extension features: skyline / k-dominant skyline and the
// incremental engine (batch-equivalence property).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baseline.h"
#include "core/incremental.h"
#include "core/occurrence_matrix.h"
#include "core/skyline.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

// --- Skyline -----------------------------------------------------------------

TEST(SkylineTest, RunningExampleSkyline) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const Lattice lattice(obs);
  const auto skyline = ComputeSkyline(obs, lattice);
  const std::set<qb::ObsId> sky(skyline.begin(), skyline.end());
  // Strictly dominated observations (with measure sharing): o12 (by o13),
  // o32 & o34 (by o21), o33 (by o22). Everything else is on the skyline.
  EXPECT_FALSE(sky.count(testutil::kO12));
  EXPECT_FALSE(sky.count(testutil::kO32));
  EXPECT_FALSE(sky.count(testutil::kO34));
  EXPECT_FALSE(sky.count(testutil::kO33));
  EXPECT_TRUE(sky.count(testutil::kO11));
  EXPECT_TRUE(sky.count(testutil::kO13));
  EXPECT_TRUE(sky.count(testutil::kO21));
  EXPECT_TRUE(sky.count(testutil::kO22));
  EXPECT_TRUE(sky.count(testutil::kO31));
  EXPECT_TRUE(sky.count(testutil::kO35));
}

TEST(SkylineTest, WithoutMeasureGateMoreDominationHappens) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const Lattice lattice(obs);
  SkylineOptions options;
  options.require_shared_measure = false;
  const auto skyline = ComputeSkyline(obs, lattice, options);
  const std::set<qb::ObsId> sky(skyline.begin(), skyline.end());
  // o31 (Athens 2001) is now dominated by... nothing still (no ancestor obs
  // at 2001), but o32 stays dominated and o35 becomes dominated? o35 =
  // (Austin, 2011, root); a strict dominator must sit at ancestor values:
  // none exists in D1/D2 (o21/o22 are Greece/Italy). It remains undominated.
  // The gate-free skyline can only shrink or stay equal.
  const auto gated = ComputeSkyline(obs, lattice);
  EXPECT_LE(sky.size(), gated.size());
  for (qb::ObsId id : sky) {
    EXPECT_TRUE(std::find(gated.begin(), gated.end(), id) != gated.end());
  }
}

// Property: the skyline is exactly the set of observations that are not the
// target of a strict full-containment-with-shared-measure pair.
class SkylinePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylinePropertyTest, MatchesBaselineDerivation) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam(), 70);
  const qb::ObservationSet& obs = *corpus.observations;

  // Ground truth from the baseline full-containment pairs (strict = the
  // coordinates differ somewhere).
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  BaselineOptions options;
  options.selector = RelationshipSelector::FullOnly();
  ASSERT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  std::set<qb::ObsId> dominated;
  for (const auto& [a, b] : sink.full()) {
    bool strict = false;
    for (qb::DimId d = 0; d < obs.space().num_dimensions(); ++d) {
      if (obs.ValueOrRoot(a, d) != obs.ValueOrRoot(b, d)) {
        strict = true;
        break;
      }
    }
    if (strict) dominated.insert(b);
  }
  std::set<qb::ObsId> expected;
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    if (!dominated.count(i)) expected.insert(i);
  }

  const Lattice lattice(obs);
  const auto skyline = ComputeSkyline(obs, lattice);
  EXPECT_EQ(std::set<qb::ObsId>(skyline.begin(), skyline.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylinePropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(KDominantSkylineTest, DegeneratesToSkylineAtFullK) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const Lattice lattice(obs);
  const auto sky = ComputeSkyline(obs, lattice);
  const auto kd = ComputeKDominantSkyline(obs, obs.space().num_dimensions());
  EXPECT_EQ(std::set<qb::ObsId>(sky.begin(), sky.end()),
            std::set<qb::ObsId>(kd.begin(), kd.end()));
}

TEST(KDominantSkylineTest, SmallerKPrunesMore) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const auto k3 = ComputeKDominantSkyline(obs, 3);
  const auto k2 = ComputeKDominantSkyline(obs, 2);
  const auto k1 = ComputeKDominantSkyline(obs, 1);
  EXPECT_LE(k1.size(), k2.size());
  EXPECT_LE(k2.size(), k3.size());
  // k=2: o31 is 2-dominated by o21 (refArea strictly, sex equal).
  EXPECT_TRUE(std::find(k2.begin(), k2.end(), testutil::kO31) == k2.end());
}

// --- Incremental engine ---------------------------------------------------------

// Property: after adding all observations one at a time (in varying orders)
// and retiring some, the engine matches a batch run over the live subset.
class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalPropertyTest, EqualsBatchAfterAddsAndRetires) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 17 + 1, 50);
  const qb::ObservationSet& obs = *corpus.observations;
  Rng rng(GetParam());

  // Insertion order: random permutation.
  std::vector<qb::ObsId> order(obs.size());
  for (qb::ObsId i = 0; i < obs.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }

  IncrementalEngine engine(&obs, RelationshipSelector::All());
  for (qb::ObsId id : order) {
    ASSERT_TRUE(engine.OnObservationAdded(id).ok());
  }

  // Retire ~25%.
  std::set<qb::ObsId> retired;
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    if (rng.Chance(0.25)) {
      ASSERT_TRUE(engine.OnObservationRetired(i).ok());
      retired.insert(i);
    }
  }

  // Batch ground truth over live observations only.
  const OccurrenceMatrix om(obs);
  std::vector<qb::ObsId> live;
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    if (!retired.count(i)) live.push_back(i);
  }
  CollectingSink sink;
  BaselineOptions options;
  ASSERT_TRUE(RunBaselineSubset(obs, om, live, options, &sink).ok());

  std::set<std::pair<qb::ObsId, qb::ObsId>> batch_full(sink.full().begin(),
                                                       sink.full().end());
  std::set<std::pair<qb::ObsId, qb::ObsId>> batch_compl(
      sink.complementary().begin(), sink.complementary().end());
  std::size_t batch_partial = sink.partial().size();

  EXPECT_EQ(engine.num_full(), batch_full.size());
  EXPECT_EQ(engine.num_complementary(), batch_compl.size());
  EXPECT_EQ(engine.num_partial(), batch_partial);
  for (const auto& [a, b] : batch_full) {
    EXPECT_TRUE(engine.HasFullContainment(a, b)) << a << "->" << b;
  }
  for (const auto& [a, b] : batch_compl) {
    EXPECT_TRUE(engine.HasComplementarity(a, b));
    EXPECT_TRUE(engine.HasComplementarity(b, a));  // symmetric query
  }
  for (const auto& p : sink.partial()) {
    EXPECT_NEAR(engine.PartialDegree(p.a, p.b), p.degree, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(IncrementalEngineTest, RunningExampleQueries) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  IncrementalEngine engine(&obs, RelationshipSelector::All());
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    ASSERT_TRUE(engine.OnObservationAdded(i).ok());
  }
  EXPECT_TRUE(engine.HasFullContainment(testutil::kO21, testutil::kO32));
  EXPECT_FALSE(engine.HasFullContainment(testutil::kO32, testutil::kO21));
  EXPECT_TRUE(engine.HasComplementarity(testutil::kO11, testutil::kO31));
  EXPECT_NEAR(engine.PartialDegree(testutil::kO21, testutil::kO31), 2.0 / 3.0,
              1e-12);
  EXPECT_EQ(engine.num_full(), 4u);
  EXPECT_EQ(engine.num_complementary(), 2u);

  // Retiring o21 removes its relationships.
  ASSERT_TRUE(engine.OnObservationRetired(testutil::kO21).ok());
  EXPECT_FALSE(engine.HasFullContainment(testutil::kO21, testutil::kO32));
  EXPECT_EQ(engine.PartialDegree(testutil::kO21, testutil::kO31), 0.0);
  EXPECT_EQ(engine.num_full(), 2u);  // o13>o12 and o22>o33 remain
}

TEST(IncrementalEngineTest, ErrorsOnMisuse) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  IncrementalEngine engine(&obs, RelationshipSelector::All());
  EXPECT_TRUE(engine.OnObservationAdded(999).IsInvalidArgument());
  ASSERT_TRUE(engine.OnObservationAdded(0).ok());
  EXPECT_TRUE(engine.OnObservationAdded(0).IsAlreadyExists());
  EXPECT_TRUE(engine.OnObservationRetired(5).IsNotFound());
  ASSERT_TRUE(engine.OnObservationRetired(0).ok());
  EXPECT_TRUE(engine.OnObservationRetired(0).IsNotFound());
}

TEST(IncrementalEngineTest, ExportDumpsStoredSets) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  IncrementalEngine engine(&obs, RelationshipSelector::All());
  for (qb::ObsId i = 0; i < obs.size(); ++i) {
    ASSERT_TRUE(engine.OnObservationAdded(i).ok());
  }
  CollectingSink sink;
  engine.Export(&sink);
  EXPECT_EQ(sink.full().size(), engine.num_full());
  EXPECT_EQ(sink.partial().size(), engine.num_partial());
  EXPECT_EQ(sink.complementary().size(), engine.num_complementary());
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
