// Tests for the lattice, cubeMasking (equivalence with the baseline — the
// paper's losslessness claim), the prefetch option, and parallel masking.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baseline.h"
#include "core/cube_masking.h"
#include "core/engine.h"
#include "core/occurrence_matrix.h"
#include "core/parallel_masking.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

// Canonical snapshot of a sink for set comparison.
struct Snapshot {
  std::set<std::pair<qb::ObsId, qb::ObsId>> full;
  std::set<std::pair<qb::ObsId, qb::ObsId>> compl_pairs;
  std::set<std::tuple<qb::ObsId, qb::ObsId, int>> partial;  // degree in 1/1000

  static Snapshot From(const CollectingSink& sink) {
    Snapshot s;
    for (const auto& p : sink.full()) s.full.insert(p);
    for (const auto& p : sink.complementary()) s.compl_pairs.insert(p);
    for (const auto& p : sink.partial()) {
      s.partial.insert({p.a, p.b, static_cast<int>(p.degree * 1000 + 0.5)});
    }
    return s;
  }
  bool operator==(const Snapshot& o) const {
    return full == o.full && compl_pairs == o.compl_pairs &&
           partial == o.partial;
  }
};

Snapshot RunBaselineSnapshot(const qb::ObservationSet& obs) {
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  BaselineOptions options;
  EXPECT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  return Snapshot::From(sink);
}

Snapshot RunMaskingSnapshot(const qb::ObservationSet& obs, bool prefetch) {
  CollectingSink sink;
  CubeMaskingOptions options;
  options.prefetch_children = prefetch;
  EXPECT_TRUE(RunCubeMasking(obs, options, &sink).ok());
  return Snapshot::From(sink);
}

// --- Lattice ---------------------------------------------------------------------

TEST(LatticeTest, RunningExampleCubes) {
  qb::Corpus corpus = MakeRunningExample();
  const Lattice lattice(*corpus.observations);
  // Signatures: o11 (3,1,0), o12 (5,1,1), o13 (5,1,0), o21/o22 (2,1,0),
  // o31 (3,1,0), o32/o33/o34 (3,2,0), o35 (5,1,0)  ->  5 distinct cubes.
  EXPECT_EQ(lattice.num_cubes(), 5u);
  EXPECT_EQ(lattice.cube_of(testutil::kO11), lattice.cube_of(testutil::kO31));
  EXPECT_EQ(lattice.cube_of(testutil::kO21), lattice.cube_of(testutil::kO22));
  EXPECT_EQ(lattice.cube_of(testutil::kO13), lattice.cube_of(testutil::kO35));
  EXPECT_NE(lattice.cube_of(testutil::kO11), lattice.cube_of(testutil::kO12));
  EXPECT_EQ(lattice.cube_of(testutil::kO32), lattice.cube_of(testutil::kO34));
}

TEST(LatticeTest, SignatureDominance) {
  CubeSignature a{{1, 1, 0}};
  CubeSignature b{{2, 1, 0}};
  CubeSignature c{{0, 2, 1}};
  EXPECT_TRUE(a.DominatesAll(b));
  EXPECT_FALSE(b.DominatesAll(a));
  EXPECT_TRUE(a.DominatesAll(a));
  EXPECT_FALSE(a.DominatesAll(c));
  EXPECT_TRUE(a.DominatesAny(c));   // dim 0: 1 > 0? no: 1 <= ... dim1 1<=2 yes
  EXPECT_TRUE(c.DominatesAny(a));
}

TEST(LatticeTest, ToStringSignature) {
  CubeSignature s{{2, 1, 0}};
  EXPECT_EQ(s.ToString(), "210");
  CubeSignature deep{{12}};
  EXPECT_EQ(deep.ToString(), "(12)");
}

TEST(LatticeTest, AddRemoveObservation) {
  qb::Corpus corpus = MakeRunningExample();
  Lattice lattice(*corpus.observations);
  const CubeId cube = lattice.cube_of(testutil::kO11);
  EXPECT_EQ(lattice.members(cube).size(), 2u);  // o11, o31
  lattice.RemoveObservation(testutil::kO11);
  EXPECT_EQ(lattice.members(cube).size(), 1u);
}

// --- cubeMasking equivalence ------------------------------------------------------

TEST(CubeMaskingTest, MatchesBaselineOnRunningExample) {
  qb::Corpus corpus = MakeRunningExample();
  const Snapshot base = RunBaselineSnapshot(*corpus.observations);
  EXPECT_EQ(RunMaskingSnapshot(*corpus.observations, true), base);
  EXPECT_EQ(RunMaskingSnapshot(*corpus.observations, false), base);
  EXPECT_FALSE(base.full.empty());
  EXPECT_FALSE(base.compl_pairs.empty());
}

TEST(CubeMaskingTest, StatsReportCubes) {
  qb::Corpus corpus = MakeRunningExample();
  CollectingSink sink;
  CubeMaskingStats stats;
  ASSERT_TRUE(RunCubeMasking(*corpus.observations, CubeMaskingOptions{}, &sink,
                             &stats)
                  .ok());
  EXPECT_EQ(stats.num_cubes, 5u);
  EXPECT_GT(stats.cube_pairs_checked, 0u);
  EXPECT_GT(stats.observation_pairs_compared, 0u);
  EXPECT_LE(stats.cube_pairs_comparable, stats.cube_pairs_checked);
}

TEST(CubeMaskingTest, PrunesComparisons) {
  // cubeMasking must compare strictly fewer observation pairs than the
  // baseline's n^2 when several incomparable cubes exist.
  qb::Corpus corpus = MakeRandomCorpus(3, 80);
  CountingSink sink;
  CubeMaskingStats stats;
  CubeMaskingOptions options;
  options.selector.partial_containment = false;  // strongest pruning case
  ASSERT_TRUE(
      RunCubeMasking(*corpus.observations, options, &sink, &stats).ok());
  const std::size_t n = corpus.observations->size();
  EXPECT_LT(stats.observation_pairs_compared, n * (n - 1));
}

TEST(CubeMaskingTest, DeadlineAborts) {
  qb::Corpus corpus = MakeRandomCorpus(11, 500);
  CollectingSink sink;
  CubeMaskingOptions options;
  options.deadline = Deadline(0.0);
  EXPECT_TRUE(RunCubeMasking(*corpus.observations, options, &sink).IsTimedOut());
}

// Property sweep: on random corpora, cubeMasking (both prefetch modes) and
// the parallel variant produce exactly the baseline's relationship sets.
class MaskingEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaskingEquivalenceTest, LosslessAcrossMethods) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam(), 50 + GetParam() % 40);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = RunBaselineSnapshot(obs);
  EXPECT_EQ(RunMaskingSnapshot(obs, true), base) << "prefetch=true";
  EXPECT_EQ(RunMaskingSnapshot(obs, false), base) << "prefetch=false";

  const Lattice lattice(obs);
  CollectingSink parallel_sink;
  ParallelMaskingOptions par;
  par.num_threads = 3;
  ASSERT_TRUE(RunCubeMaskingParallel(obs, lattice, par, &parallel_sink).ok());
  EXPECT_EQ(Snapshot::From(parallel_sink), base) << "parallel";
}

TEST_P(MaskingEquivalenceTest, SelectorsAreConsistentProjections) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 131, 40);
  const qb::ObservationSet& obs = *corpus.observations;
  CollectingSink all_sink, full_sink, compl_sink;
  CubeMaskingOptions all_opts;
  ASSERT_TRUE(RunCubeMasking(obs, all_opts, &all_sink).ok());
  CubeMaskingOptions full_opts;
  full_opts.selector = RelationshipSelector::FullOnly();
  ASSERT_TRUE(RunCubeMasking(obs, full_opts, &full_sink).ok());
  CubeMaskingOptions compl_opts;
  compl_opts.selector = RelationshipSelector::ComplOnly();
  ASSERT_TRUE(RunCubeMasking(obs, compl_opts, &compl_sink).ok());
  const Snapshot all = Snapshot::From(all_sink);
  EXPECT_EQ(Snapshot::From(full_sink).full, all.full);
  EXPECT_EQ(Snapshot::From(compl_sink).compl_pairs, all.compl_pairs);
}

TEST_P(MaskingEquivalenceTest, ChildrenIndexPathIsEquivalent) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 7 + 3, 45);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = RunBaselineSnapshot(obs);
  const Lattice lattice(obs);
  const CubeChildrenIndex index(lattice);
  ASSERT_EQ(index.num_cubes(), lattice.num_cubes());
  for (bool prefetch : {false, true}) {
    CollectingSink sink;
    CubeMaskingOptions options;
    options.prefetch_children = prefetch;
    ASSERT_TRUE(
        RunCubeMasking(obs, lattice, options, &sink, nullptr, &index).ok());
    EXPECT_EQ(Snapshot::From(sink), base) << "prefetch=" << prefetch;
  }
  // Index invariants: all_dominated is a sublist of any_dominated and every
  // cube dominates itself.
  for (CubeId c = 0; c < index.num_cubes(); ++c) {
    EXPECT_LE(index.all_dominated(c).size(), index.any_dominated(c).size());
    EXPECT_NE(std::find(index.all_dominated(c).begin(),
                        index.all_dominated(c).end(), c),
              index.all_dominated(c).end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskingEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 26));

// --- Engine facade ------------------------------------------------------------------

TEST(EngineTest, AllMethodsAgreeOnFullAndCompl) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  CollectingSink baseline_sink, masking_sink;
  EngineOptions options;
  options.method = Method::kBaseline;
  EngineReport report;
  ASSERT_TRUE(ComputeRelationships(obs, options, &baseline_sink, &report).ok());
  EXPECT_GE(report.elapsed_seconds, 0.0);
  options.method = Method::kCubeMasking;
  ASSERT_TRUE(ComputeRelationships(obs, options, &masking_sink, &report).ok());
  EXPECT_EQ(report.masking.num_cubes, 5u);
  EXPECT_EQ(Snapshot::From(baseline_sink), Snapshot::From(masking_sink));
}

TEST(EngineTest, ClusteringIsSubsetOfBaseline) {
  qb::Corpus corpus = MakeRandomCorpus(21, 120);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = RunBaselineSnapshot(obs);
  CollectingSink cluster_sink;
  EngineOptions options;
  options.method = Method::kClustering;
  options.cluster_sample_fraction = 0.25;
  EngineReport report;
  ASSERT_TRUE(ComputeRelationships(obs, options, &cluster_sink, &report).ok());
  EXPECT_GT(report.cluster.num_clusters, 0u);
  const Snapshot clustered = Snapshot::From(cluster_sink);
  for (const auto& p : clustered.full) EXPECT_TRUE(base.full.count(p));
  for (const auto& p : clustered.compl_pairs) {
    EXPECT_TRUE(base.compl_pairs.count(p));
  }
  for (const auto& p : clustered.partial) EXPECT_TRUE(base.partial.count(p));
}

TEST(EngineTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kBaseline), "baseline");
  EXPECT_STREQ(MethodName(Method::kClustering), "clustering");
  EXPECT_STREQ(MethodName(Method::kCubeMasking), "cubeMasking");
  EXPECT_STREQ(MethodName(Method::kHybrid), "hybrid");
}

TEST(EngineTest, HybridThroughFacade) {
  qb::Corpus corpus = MakeRandomCorpus(41, 80);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = RunBaselineSnapshot(obs);
  CollectingSink sink;
  EngineOptions options;
  options.method = Method::kHybrid;
  EngineReport report;
  ASSERT_TRUE(ComputeRelationships(obs, options, &sink, &report).ok());
  const Snapshot hybrid = Snapshot::From(sink);
  EXPECT_EQ(hybrid.full, base.full);            // exact stage
  EXPECT_EQ(hybrid.compl_pairs, base.compl_pairs);
  for (const auto& p : hybrid.partial) {        // lossy stage: subset
    EXPECT_TRUE(base.partial.count(p));
  }
  EXPECT_GT(report.masking.num_cubes, 0u);
  EXPECT_GT(report.cluster.num_clusters, 0u);
}

TEST(EngineTest, DeadlinePropagates) {
  qb::Corpus corpus = MakeRandomCorpus(5, 600);
  CollectingSink sink;
  EngineOptions options;
  options.method = Method::kBaseline;
  options.deadline = Deadline(1e-9);
  EXPECT_TRUE(
      ComputeRelationships(*corpus.observations, options, &sink).IsTimedOut());
}

TEST(EngineTest, DeprecatedTimeoutSecondsStillHonored) {
  qb::Corpus corpus = MakeRandomCorpus(5, 600);
  CollectingSink sink;
  EngineOptions options;
  options.method = Method::kBaseline;
  options.timeout_seconds = 1e-9;  // legacy field, no Deadline supplied
  EXPECT_TRUE(
      ComputeRelationships(*corpus.observations, options, &sink).IsTimedOut());
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
