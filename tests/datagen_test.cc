// Tests for the data generators (Table 4 corpus, synthetic scalability
// corpus, URI perturbation) and the alignment matcher.

#include <gtest/gtest.h>

#include <set>

#include "align/matcher.h"
#include "core/lattice.h"
#include "datagen/perturb.h"
#include "datagen/realworld.h"
#include "datagen/synthetic.h"
#include "qb/validate.h"

namespace rdfcube {
namespace datagen {
namespace {

// --- Real-world corpus (Table 4) ------------------------------------------------

TEST(RealWorldSpecsTest, MatchesTable4) {
  const auto& specs = RealWorldSpecs();
  ASSERT_EQ(specs.size(), 7u);
  std::size_t total = 0;
  std::set<std::string> measures;
  for (const auto& spec : specs) {
    total += spec.observations_at_scale1;
    measures.insert(spec.measure);
    // Every dataset has refArea and refPeriod (Table 4: all Y/Y).
    EXPECT_NE(std::find(spec.dimensions.begin(), spec.dimensions.end(),
                        "http://example.org/dim/refArea"),
              spec.dimensions.end());
    EXPECT_NE(std::find(spec.dimensions.begin(), spec.dimensions.end(),
                        "http://example.org/dim/refPeriod"),
              spec.dimensions.end());
  }
  EXPECT_EQ(total, 246500u);       // 58k+4.2k+6.7k+15k+68k+73k+21.6k
  EXPECT_EQ(measures.size(), 6u);  // population shared by D1 and D3
  EXPECT_EQ(specs[0].observations_at_scale1, 58000u);
  EXPECT_EQ(specs[1].observations_at_scale1, 4200u);
}

TEST(RealWorldCorpusTest, SmallScaleGeneration) {
  RealWorldOptions options;
  options.scale = 0.004;  // ~1k observations
  auto corpus = GenerateRealWorldCorpus(options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->space->num_dimensions(), 9u);
  EXPECT_EQ(corpus->space->num_measures(), 6u);
  EXPECT_EQ(corpus->observations->num_datasets(), 7u);
  // Observation total ~ ceil of each dataset's scaled size.
  EXPECT_GE(corpus->observations->size(), 980u);
  EXPECT_LE(corpus->observations->size(), 1020u);
  // Shared code bus: ~2.3k distinct hierarchical values.
  std::size_t codes = 0;
  for (qb::DimId d = 0; d < corpus->space->num_dimensions(); ++d) {
    codes += corpus->space->code_list(d).size();
  }
  EXPECT_GT(codes, 1500u);
  EXPECT_LT(codes, 3000u);
}

TEST(RealWorldCorpusTest, SatisfiesIc12) {
  auto corpus = GenerateRealWorldPrefix(800);
  ASSERT_TRUE(corpus.ok());
  const qb::ValidationReport report = qb::ValidateCorpus(*corpus);
  for (const auto& issue : report.issues) {
    EXPECT_NE(issue.kind, qb::ValidationIssue::Kind::kDuplicateKey)
        << issue.detail;
    EXPECT_NE(issue.kind, qb::ValidationIssue::Kind::kNoMeasure);
  }
}

TEST(RealWorldCorpusTest, DeterministicUnderSeed) {
  auto a = GenerateRealWorldPrefix(300, 9);
  auto b = GenerateRealWorldPrefix(300, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().observations->size(), b.value().observations->size());
  for (qb::ObsId i = 0; i < a.value().observations->size(); ++i) {
    EXPECT_EQ(a.value().observations->obs(i).dims,
              b.value().observations->obs(i).dims);
  }
}

TEST(RealWorldCorpusTest, ValuesSpanHierarchyLevels) {
  auto corpus = GenerateRealWorldPrefix(1000);
  ASSERT_TRUE(corpus.ok());
  const qb::DimId area = *corpus->space->FindDimension(
      "http://example.org/dim/refArea");
  std::set<uint32_t> levels;
  for (qb::ObsId i = 0; i < corpus->observations->size(); ++i) {
    levels.insert(corpus->observations->LevelOf(i, area));
  }
  // Containment needs multi-level data: at least 3 distinct levels in use.
  EXPECT_GE(levels.size(), 3u);
}

// --- Synthetic corpus -----------------------------------------------------------

TEST(SyntheticCorpusTest, GeneratesRequestedSize) {
  SyntheticOptions options;
  options.num_observations = 2000;
  auto corpus = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->observations->size(), 2000u);
  EXPECT_EQ(corpus->space->num_dimensions(), options.num_dimensions);
}

TEST(SyntheticCorpusTest, PopulatesProjectedCubesEvenly) {
  SyntheticOptions options;
  options.num_observations = 3000;
  options.seed = 5;
  const std::size_t projected = ProjectedCubeCount(options);
  auto corpus = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(corpus.ok());
  const core::Lattice lattice(*corpus->observations);
  // All projected signatures get populated (even split).
  EXPECT_EQ(lattice.num_cubes(), projected);
  // Even distribution: largest cube at most ~2x the smallest.
  std::size_t smallest = SIZE_MAX, largest = 0;
  for (core::CubeId c = 0; c < lattice.num_cubes(); ++c) {
    smallest = std::min(smallest, lattice.members(c).size());
    largest = std::max(largest, lattice.members(c).size());
  }
  EXPECT_LE(largest, 2 * smallest + 2);
}

TEST(SyntheticCorpusTest, CubeRatioDecreasesWithSize) {
  // Fig. 5(f): cubes-per-observation falls as input grows.
  SyntheticOptions small;
  small.num_observations = 500;
  SyntheticOptions large;
  large.num_observations = 8000;
  const double ratio_small =
      static_cast<double>(ProjectedCubeCount(small)) / 500.0;
  const double ratio_large =
      static_cast<double>(ProjectedCubeCount(large)) / 8000.0;
  EXPECT_LT(ratio_large, ratio_small);
}

TEST(SyntheticCorpusTest, RejectsZeroDimensions) {
  SyntheticOptions options;
  options.num_dimensions = 0;
  EXPECT_TRUE(GenerateSyntheticCorpus(options).status().IsInvalidArgument());
}

TEST(SyntheticCorpusTest, MeasureOverlapAcrossDatasets) {
  SyntheticOptions options;
  options.num_observations = 200;
  options.num_datasets = 3;
  auto corpus = GenerateSyntheticCorpus(options);
  ASSERT_TRUE(corpus.ok());
  // Observations from different datasets share the common measure.
  const qb::ObservationSet& obs = *corpus->observations;
  qb::ObsId a = obs.dataset(0).observations[0];
  qb::ObsId b = obs.dataset(1).observations[0];
  EXPECT_TRUE(obs.SharesMeasure(a, b));
}

// --- Perturbation + alignment ----------------------------------------------------

TEST(PerturbTest, KeepsParallelOrderAndChangesNamespace) {
  const std::vector<std::string> uris = {
      "http://example.org/code/Athens", "http://example.org/code/Rome",
      "http://example.org/code/Jan-2011"};
  const auto perturbed = PerturbUris(uris);
  ASSERT_EQ(perturbed.size(), 3u);
  for (const auto& p : perturbed) {
    EXPECT_EQ(p.find("http://other-source.example.com/code/"), 0u);
  }
}

TEST(AlignMatcherTest, TrigramCosineBasics) {
  EXPECT_DOUBLE_EQ(align::TrigramCosine("athens", "athens"), 1.0);
  EXPECT_GT(align::TrigramCosine("athens", "athens-v1"), 0.6);
  EXPECT_LT(align::TrigramCosine("athens", "rome"), 0.2);
  EXPECT_DOUBLE_EQ(align::TrigramCosine("", "x"), 0.0);
}

TEST(AlignMatcherTest, RecoversPerturbedUris) {
  // The LIMES-substitute pipeline: original codes vs a perturbed remote copy.
  std::vector<std::string> originals;
  for (const char* name :
       {"Athens", "Ioannina", "Rome", "Milan", "Berlin", "Hamburg", "Paris",
        "Lyon", "Madrid", "Seville", "Vienna", "Prague"}) {
    originals.push_back(std::string("http://example.org/code/") + name);
  }
  PerturbOptions perturb;
  perturb.suffix_prob = 0.0;  // pure case/separator noise
  const auto remote = PerturbUris(originals, perturb);
  align::MatcherOptions options;
  options.threshold = 0.5;
  const auto links = align::MatchUris(remote, originals, options);
  // Every remote URI links back to its original.
  ASSERT_EQ(links.size(), originals.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    // links are in source order (remote order).
    if (links[i].target == originals[i]) ++correct;
  }
  EXPECT_EQ(correct, originals.size());
}

TEST(AlignMatcherTest, ThresholdDropsPoorMatches) {
  const std::vector<std::string> sources = {"http://a/completely-different"};
  const std::vector<std::string> targets = {"http://b/zzz"};
  align::MatcherOptions options;
  options.threshold = 0.9;
  EXPECT_TRUE(align::MatchUris(sources, targets, options).empty());
}

TEST(AlignMatcherTest, OneToOneMatching) {
  const std::vector<std::string> sources = {"http://a/athens",
                                            "http://b/athens"};
  const std::vector<std::string> targets = {"http://c/Athens"};
  align::MatcherOptions options;
  options.threshold = 0.5;
  const auto links = align::MatchUris(sources, targets, options);
  EXPECT_EQ(links.size(), 1u);  // the single target is consumed once
}

}  // namespace
}  // namespace datagen
}  // namespace rdfcube
