// Architecture-gate unit tests (tools/deps + tools/source_text): the include
// extractor must be comment/string-aware, cycle detection must find seeded
// cycles, the layer-manifest parser must enforce its grammar and DAG rule,
// and AnalyzeDeps must fail seeded layering violations — the negative proof
// that the gate actually gates (a checker that passes everything would also
// pass the real tree).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/deps/deps_analysis.h"
#include "tools/deps/include_graph.h"
#include "tools/deps/layer_manifest.h"
#include "tools/source_text.h"

namespace rdfcube {
namespace deps {
namespace {

namespace fs = std::filesystem;

// --- tokenizer (tools/source_text) -------------------------------------------

TEST(SourceTextTest, LineCommentIsBlankedInTextAndCode) {
  const lint::SourceFile f =
      lint::StripSource("int x = 1;  // throw here", "a.cc");
  ASSERT_EQ(f.raw.size(), 1u);
  EXPECT_NE(f.raw[0].find("throw"), std::string::npos);
  EXPECT_EQ(f.text[0].find("throw"), std::string::npos);
  EXPECT_EQ(f.code[0].find("throw"), std::string::npos);
  EXPECT_NE(f.code[0].find("int x = 1;"), std::string::npos);
}

TEST(SourceTextTest, BlockCommentSpansLines) {
  const lint::SourceFile f =
      lint::StripSource("/* begin\nthrow 1;\nend */ int y;", "a.cc");
  ASSERT_EQ(f.code.size(), 3u);
  EXPECT_EQ(f.code[1].find("throw"), std::string::npos);
  EXPECT_NE(f.code[2].find("int y;"), std::string::npos);
}

TEST(SourceTextTest, StringContentsSurviveTextButNotCode) {
  const lint::SourceFile f =
      lint::StripSource("auto s = \"rdfcube_qb_loads_total\";\n", "a.cc");
  EXPECT_NE(f.text[0].find("rdfcube_qb_loads_total"), std::string::npos);
  EXPECT_EQ(f.code[0].find("rdfcube_qb_loads_total"), std::string::npos);
  // Positions are preserved: the quotes stay, contents are blanked.
  EXPECT_EQ(f.code[0].size(), f.raw[0].size());
}

TEST(SourceTextTest, CommentInsideStringIsNotAComment) {
  const lint::SourceFile f =
      lint::StripSource("auto s = \"not // a comment\"; int z;\n", "a.cc");
  EXPECT_NE(f.text[0].find("not // a comment"), std::string::npos);
  EXPECT_NE(f.code[0].find("int z;"), std::string::npos);
}

TEST(SourceTextTest, RawStringIsBlankedInCode) {
  const lint::SourceFile f = lint::StripSource(
      "auto re = R\"(throw\\b)\"; int after;\n", "a.cc");
  EXPECT_EQ(f.code[0].find("throw"), std::string::npos);
  EXPECT_NE(f.code[0].find("int after;"), std::string::npos);
}

TEST(SourceTextTest, DigitSeparatorIsNotACharLiteral) {
  const lint::SourceFile f =
      lint::StripSource("int n = 1'000'000; int m = 2;\n", "a.cc");
  EXPECT_NE(f.code[0].find("int m = 2;"), std::string::npos);
}

TEST(SourceTextTest, IncludeHeaderNameSurvivesInCode) {
  // The header-name in a #include directive is not a runtime string literal;
  // the include extractor reads it from the code view.
  const lint::SourceFile f =
      lint::StripSource("#include \"util/fault.h\"\n", "a.cc");
  EXPECT_NE(f.code[0].find("util/fault.h"), std::string::npos);
}

TEST(SourceTextTest, LineSuppressedReadsRawComments) {
  const lint::SourceFile f = lint::StripSource(
      "throw 1;  // lint:allow(no-throw)\nthrow 2;\n", "a.cc");
  EXPECT_TRUE(lint::LineSuppressed(f, 0, "no-throw"));
  EXPECT_FALSE(lint::LineSuppressed(f, 1, "no-throw"));
  EXPECT_FALSE(lint::LineSuppressed(f, 0, "checked-value"));
}

// --- include extraction ------------------------------------------------------

TEST(IncludeGraphTest, ExtractsQuotedIncludesWithLineNumbers) {
  const auto incs = ExtractIncludes(
      "// header comment\n"
      "#include \"qb/corpus.h\"\n"
      "#include <vector>\n"
      "#include \"util/fault.h\"\n");
  ASSERT_EQ(incs.size(), 2u);
  EXPECT_EQ(incs[0].line, 2u);
  EXPECT_EQ(incs[0].written, "qb/corpus.h");
  EXPECT_EQ(incs[1].line, 4u);
  EXPECT_EQ(incs[1].written, "util/fault.h");
}

TEST(IncludeGraphTest, CommentedOutIncludeIsNotAnEdge) {
  const auto incs = ExtractIncludes(
      "// #include \"qb/corpus.h\"\n"
      "/* #include \"qb/slice.h\" */\n");
  EXPECT_TRUE(incs.empty());
}

TEST(IncludeGraphTest, IncludeInStringLiteralIsNotAnEdge) {
  const auto incs = ExtractIncludes(
      "const char* kDoc = \"#include \\\"qb/corpus.h\\\"\";\n");
  EXPECT_TRUE(incs.empty());
}

TEST(IncludeGraphTest, ConditionalIncludeIsRecordedUnconditionally) {
  // Over-approximation: every edge any configuration could take is checked.
  const auto incs = ExtractIncludes(
      "#ifdef RDFCUBE_EXTRA\n"
      "#include \"qb/corpus.h\"\n"
      "#endif\n");
  ASSERT_EQ(incs.size(), 1u);
  EXPECT_EQ(incs[0].written, "qb/corpus.h");
}

TEST(IncludeGraphTest, ModuleOfUsesSecondComponentUnderSrc) {
  EXPECT_EQ(ModuleOf("src/qb/corpus.h"), "qb");
  EXPECT_EQ(ModuleOf("src/core/engine.cc"), "core");
  EXPECT_EQ(ModuleOf("tools/deps/include_graph.h"), "tools");
  EXPECT_EQ(ModuleOf("bench/bench_fig9.cc"), "bench");
  EXPECT_EQ(ModuleOf("tests/test_corpus.h"), "tests");
}

// --- temp-tree fixture -------------------------------------------------------

class DepsTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("deps_test_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  std::vector<std::string> ChecksFired(const DepsOptions& options = {}) {
    std::vector<std::string> names;
    for (const lint::Violation& v :
         AnalyzeDeps(root_.string(), options).violations) {
      names.push_back(v.check);
    }
    return names;
  }

  bool Fired(const std::string& check, const DepsOptions& options = {}) {
    const auto names = ChecksFired(options);
    return std::find(names.begin(), names.end(), check) != names.end();
  }

  fs::path root_;
};

TEST_F(DepsTreeTest, ResolvesAgainstSrcThenRoot) {
  WriteFile("src/qb/corpus.h", "\n");
  WriteFile("tools/helper.h", "\n");
  WriteFile("src/core/engine.cc",
            "#include \"qb/corpus.h\"\n"
            "#include \"tools/helper.h\"\n"
            "#include \"qb/missing.h\"\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src", "tools"});
  const FileNode* node = graph.Find("src/core/engine.cc");
  ASSERT_NE(node, nullptr);
  ASSERT_EQ(node->includes.size(), 3u);
  EXPECT_TRUE(node->includes[0].resolved);
  EXPECT_EQ(node->includes[0].target, "src/qb/corpus.h");
  EXPECT_TRUE(node->includes[1].resolved);
  EXPECT_EQ(node->includes[1].target, "tools/helper.h");
  EXPECT_FALSE(node->includes[2].resolved);
}

TEST_F(DepsTreeTest, AcyclicGraphHasNoCycle) {
  WriteFile("src/qb/a.h", "#include \"qb/b.h\"\n");
  WriteFile("src/qb/b.h", "\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src"});
  EXPECT_FALSE(FindIncludeCycle(graph).has_value());
}

TEST_F(DepsTreeTest, SeededTwoFileCycleIsFound) {
  WriteFile("src/qb/a.h", "#include \"qb/b.h\"\n");
  WriteFile("src/qb/b.h", "#include \"qb/a.h\"\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src"});
  const auto cycle = FindIncludeCycle(graph);
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), cycle->back());
  // Both files are on the cycle.
  EXPECT_NE(std::find(cycle->begin(), cycle->end(), "src/qb/a.h"),
            cycle->end());
  EXPECT_NE(std::find(cycle->begin(), cycle->end(), "src/qb/b.h"),
            cycle->end());
}

TEST_F(DepsTreeTest, SelfIncludeIsACycle) {
  WriteFile("src/qb/a.h", "#include \"qb/a.h\"\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src"});
  ASSERT_TRUE(FindIncludeCycle(graph).has_value());
}

TEST_F(DepsTreeTest, ModuleEdgesAreDeduplicatedWithCounts) {
  WriteFile("src/qb/a.h", "\n");
  WriteFile("src/qb/b.h", "\n");
  WriteFile("src/core/x.cc",
            "#include \"qb/a.h\"\n"
            "#include \"qb/b.h\"\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src"});
  const auto edges = ModuleEdges(graph);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "core");
  EXPECT_EQ(edges[0].to, "qb");
  EXPECT_EQ(edges[0].count, 2u);
}

TEST_F(DepsTreeTest, DotAndJsonExportsCarryTheModuleEdge) {
  WriteFile("src/qb/a.h", "\n");
  WriteFile("src/core/x.cc", "#include \"qb/a.h\"\n");
  const IncludeGraph graph = BuildIncludeGraph(root_, {"src"});
  const std::string dot = GraphToDot(graph);
  EXPECT_NE(dot.find("\"core\" -> \"qb\""), std::string::npos);
  const std::string json = GraphToJson(graph);
  EXPECT_NE(json.find("\"module_edges\""), std::string::npos);
  EXPECT_NE(json.find("\"from\": \"core\""), std::string::npos);
  EXPECT_NE(json.find("\"to\": \"qb\""), std::string::npos);
}

// --- layer manifest ----------------------------------------------------------

TEST(LayerManifestTest, ParsesLeavesDepsWildcardsAndComments) {
  const auto manifest = ParseLayerManifest(
      "# the DAG\n"
      "base:\n"
      "qb: base   # qb sits above base\n"
      "tools: *\n");
  ASSERT_TRUE(manifest.ok());
  const LayerManifest& m = manifest.value();
  ASSERT_EQ(m.modules.size(), 3u);
  EXPECT_TRUE(m.Allows("qb", "base"));
  EXPECT_FALSE(m.Allows("base", "qb"));
  EXPECT_TRUE(m.Allows("qb", "qb"));  // self always allowed
  EXPECT_TRUE(m.Allows("tools", "qb"));
  EXPECT_TRUE(m.Allows("tools", "base"));
  EXPECT_FALSE(m.Allows("unknown", "base"));
}

TEST(LayerManifestTest, MissingColonIsAParseError) {
  EXPECT_FALSE(ParseLayerManifest("base\n").ok());
}

TEST(LayerManifestTest, DuplicateDeclarationIsAParseError) {
  EXPECT_FALSE(ParseLayerManifest("qb:\nqb:\n").ok());
}

TEST(LayerManifestTest, UndeclaredDepIsAParseError) {
  EXPECT_FALSE(ParseLayerManifest("qb: ghost\n").ok());
}

TEST(LayerManifestTest, SelfDependencyIsAParseError) {
  EXPECT_FALSE(ParseLayerManifest("qb: qb\n").ok());
}

TEST(LayerManifestTest, WildcardMixedWithDepsIsAParseError) {
  EXPECT_FALSE(ParseLayerManifest("base:\ntools: * base\n").ok());
  EXPECT_FALSE(ParseLayerManifest("base:\ntools: base *\n").ok());
}

TEST(LayerManifestTest, DeclaredCycleIsAParseError) {
  const auto manifest = ParseLayerManifest("a: b\nb: c\nc: a\n");
  ASSERT_FALSE(manifest.ok());
  EXPECT_NE(manifest.status().message().find("cyclic"), std::string::npos);
}

TEST(LayerManifestTest, FindManifestCycleReturnsThePath) {
  LayerManifest m;
  m.modules.push_back({"a", false, {"b"}, 1});
  m.modules.push_back({"b", false, {"a"}, 2});
  const auto cycle = FindManifestCycle(m);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), cycle->back());
}

TEST(LayerManifestTest, DependingBackOnAWildcardRootIsACycle) {
  // tools: * gives tools an edge to qb; qb: tools closes the loop.
  EXPECT_FALSE(ParseLayerManifest("tools: *\nqb: tools\n").ok());
}

// --- the gate (AnalyzeDeps) --------------------------------------------------

TEST_F(DepsTreeTest, DeclaredEdgePassesTheGate) {
  WriteFile("tools/layers.txt", "base:\nqb: base\n");
  WriteFile("src/base/status.h", "\n");
  WriteFile("src/qb/corpus.cc", "#include \"base/status.h\"\n");
  EXPECT_TRUE(ChecksFired().empty());
}

TEST_F(DepsTreeTest, UndeclaredEdgeFailsTheGate) {
  WriteFile("tools/layers.txt", "base:\nqb: base\n");
  WriteFile("src/base/status.h", "\n");
  WriteFile("src/qb/corpus.h", "\n");
  WriteFile("src/base/bad.cc", "#include \"qb/corpus.h\"\n");
  const auto report = AnalyzeDeps(root_.string(), {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "layer-dag");
  EXPECT_EQ(report.violations[0].file, "src/base/bad.cc");
  EXPECT_EQ(report.violations[0].line, 1u);
}

TEST_F(DepsTreeTest, UndeclaredEdgeCanBeSuppressedOnTheIncludeLine) {
  WriteFile("tools/layers.txt", "base:\nqb: base\n");
  WriteFile("src/qb/corpus.h", "\n");
  WriteFile("src/base/bad.cc",
            "#include \"qb/corpus.h\"  // lint:allow(layer-dag)\n");
  EXPECT_FALSE(Fired("layer-dag"));
}

TEST_F(DepsTreeTest, ModuleMissingFromManifestFailsTheGate) {
  WriteFile("tools/layers.txt", "qb:\n");
  WriteFile("src/ghost/thing.h", "\n");
  EXPECT_TRUE(Fired("layer-dag"));
}

TEST_F(DepsTreeTest, UnparseableManifestIsALayerDagViolation) {
  WriteFile("tools/layers.txt", "qb: ghost\n");
  WriteFile("src/qb/a.h", "\n");
  EXPECT_TRUE(Fired("layer-dag"));
}

TEST_F(DepsTreeTest, MissingManifestSkipsLayerChecksUnlessRequired) {
  WriteFile("src/qb/a.h", "\n");
  EXPECT_FALSE(Fired("layer-dag"));
  DepsOptions require;
  require.require_manifest = true;
  EXPECT_TRUE(Fired("layer-dag", require));
}

TEST_F(DepsTreeTest, SeededIncludeCycleFailsTheGate) {
  // The negative proof for the cycle check: a freshly planted cycle must
  // fail even with a fully permissive manifest.
  WriteFile("tools/layers.txt", "qb:\n");
  WriteFile("src/qb/a.h", "#include \"qb/b.h\"\n");
  WriteFile("src/qb/b.h", "#include \"qb/a.h\"\n");
  const auto report = AnalyzeDeps(root_.string(), {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "include-cycle");
  EXPECT_NE(report.violations[0].message.find("src/qb/a.h"),
            std::string::npos);
  EXPECT_NE(report.violations[0].message.find("src/qb/b.h"),
            std::string::npos);
}

TEST_F(DepsTreeTest, IwyuDirectFiresOnTransitiveOnlyNamespaceUse) {
  WriteFile("tools/layers.txt", "qb:\ncore: qb\n");
  WriteFile("src/qb/corpus.h", "\n");
  WriteFile("src/qb/slice.h", "#include \"qb/corpus.h\"\n");
  // x.cc includes a qb header directly, so its qb:: use is fine; y.cc uses
  // qb:: with no qb include at all (it would only compile through someone
  // else's transitive include) — that one fires.
  WriteFile("src/core/x.cc",
            "#include \"qb/slice.h\"\n"
            "void F() { qb::Corpus c; }\n");
  WriteFile("src/core/y.cc", "void G() { qb::Corpus c; }\n");
  const auto report = AnalyzeDeps(root_.string(), {});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].check, "iwyu-direct");
  EXPECT_EQ(report.violations[0].file, "src/core/y.cc");
  EXPECT_EQ(report.violations[0].line, 1u);
}

TEST_F(DepsTreeTest, ForwardDeclaringTheNamespaceExemptsIwyu) {
  WriteFile("tools/layers.txt", "qb:\ncore: qb\n");
  WriteFile("src/qb/corpus.h", "\n");
  WriteFile("src/core/fwd.h",
            "namespace qb { class Corpus; }\n"
            "void F(const qb::Corpus& c);\n");
  EXPECT_FALSE(Fired("iwyu-direct"));
}

TEST_F(DepsTreeTest, IwyuIgnoresNamespacesThatAreNotModules) {
  WriteFile("tools/layers.txt", "qb:\n");
  WriteFile("src/qb/a.cc", "void F() { std::string s; vocab::Lookup(s); }\n");
  EXPECT_FALSE(Fired("iwyu-direct"));
}

}  // namespace
}  // namespace deps
}  // namespace rdfcube
