// Tests for the materialized-relationship RDF vocabulary, the CubeExplorer
// point-query API, and qb:Slice support.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/baseline.h"
#include "core/explorer.h"
#include "core/occurrence_matrix.h"
#include "core/relationship_rdf.h"
#include "qb/exporter.h"
#include "qb/loader.h"
#include "qb/slice.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace {

using core::CollectingSink;
using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

// --- RDF materialization ------------------------------------------------------

class RelationshipRdfTest : public ::testing::Test {
 protected:
  RelationshipRdfTest() : corpus_(MakeRunningExample()) {}
  qb::Corpus corpus_;
};

TEST_F(RelationshipRdfTest, MaterializeAndReloadRoundTrips) {
  const qb::ObservationSet& obs = *corpus_.observations;
  const core::OccurrenceMatrix om(obs);

  rdf::TripleStore rel_store;
  core::RdfMaterializingSink rdf_sink(&obs, &rel_store);
  CollectingSink reference;
  // Tee into both sinks through two runs (deterministic).
  ASSERT_TRUE(core::RunBaseline(obs, om, core::BaselineOptions{}, &rdf_sink).ok());
  ASSERT_TRUE(
      core::RunBaseline(obs, om, core::BaselineOptions{}, &reference).ok());
  EXPECT_GT(rdf_sink.triples_written(), 0u);

  // Serialize + reparse the materialized graph, then reload.
  rdf::TripleStore reparsed;
  ASSERT_TRUE(rdf::ParseTurtle(rdf::WriteNTriples(rel_store), &reparsed).ok());
  CollectingSink reloaded;
  std::size_t skipped = 0;
  ASSERT_TRUE(core::LoadMaterializedRelationships(reparsed, obs, &reloaded,
                                                  &skipped)
                  .ok());
  EXPECT_EQ(skipped, 0u);

  reference.Canonicalize();
  reloaded.Canonicalize();
  EXPECT_EQ(reloaded.full(), reference.full());
  EXPECT_EQ(reloaded.complementary(), reference.complementary());
  ASSERT_EQ(reloaded.partial().size(), reference.partial().size());
  for (std::size_t i = 0; i < reloaded.partial().size(); ++i) {
    EXPECT_EQ(reloaded.partial()[i].a, reference.partial()[i].a);
    EXPECT_EQ(reloaded.partial()[i].b, reference.partial()[i].b);
    EXPECT_NEAR(reloaded.partial()[i].degree, reference.partial()[i].degree,
                1e-6);
  }
}

TEST_F(RelationshipRdfTest, ComplementarityIsWrittenSymmetrically) {
  const qb::ObservationSet& obs = *corpus_.observations;
  rdf::TripleStore store;
  core::RdfMaterializingSink sink(&obs, &store);
  sink.OnComplementarity(testutil::kO11, testutil::kO31);
  auto pred = store.dictionary().Find(
      rdf::Term::Iri(std::string(core::relvocab::kComplements)));
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(store.MatchAll(rdf::kNoTerm, *pred, rdf::kNoTerm).size(), 2u);
}

TEST_F(RelationshipRdfTest, UnknownObservationsAreSkippedOnLoad) {
  const qb::ObservationSet& obs = *corpus_.observations;
  rdf::TripleStore store;
  store.Insert(rdf::Term::Iri("urn:rdfcube:obs:ghost"),
               rdf::Term::Iri(std::string(core::relvocab::kFullyContains)),
               rdf::Term::Iri("urn:rdfcube:obs:o11"));
  CollectingSink sink;
  std::size_t skipped = 0;
  ASSERT_TRUE(
      core::LoadMaterializedRelationships(store, obs, &sink, &skipped).ok());
  EXPECT_EQ(skipped, 1u);
  EXPECT_TRUE(sink.full().empty());
}

// --- CubeExplorer ----------------------------------------------------------------

TEST(CubeExplorerTest, RunningExampleNeighbourhoods) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const core::CubeExplorer explorer(&obs);

  // o21 drills down to o32 and o34.
  auto contained = explorer.ContainedBy(testutil::kO21);
  std::set<qb::ObsId> contained_set(contained.begin(), contained.end());
  EXPECT_EQ(contained_set,
            (std::set<qb::ObsId>{testutil::kO32, testutil::kO34}));

  // o32 rolls up to o21.
  auto containers = explorer.Containers(testutil::kO32);
  ASSERT_EQ(containers.size(), 1u);
  EXPECT_EQ(containers[0], testutil::kO21);

  // o11 and o31 complement each other.
  auto compl_o11 = explorer.Complements(testutil::kO11);
  ASSERT_EQ(compl_o11.size(), 1u);
  EXPECT_EQ(compl_o11[0], testutil::kO31);

  // o21 partially contains o31 at degree 2/3 >= 0.5.
  auto partial = explorer.PartiallyContained(testutil::kO21, 0.5);
  bool found = false;
  for (const auto& match : partial) {
    if (match.other == testutil::kO31) {
      found = true;
      EXPECT_NEAR(match.degree, 2.0 / 3.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

// Property: explorer point queries agree with the batch baseline.
class ExplorerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExplorerPropertyTest, AgreesWithBatchBaseline) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 13 + 5, 40);
  const qb::ObservationSet& obs = *corpus.observations;
  const core::OccurrenceMatrix om(obs);
  CollectingSink batch;
  ASSERT_TRUE(
      core::RunBaseline(obs, om, core::BaselineOptions{}, &batch).ok());

  std::set<std::pair<qb::ObsId, qb::ObsId>> batch_full(batch.full().begin(),
                                                       batch.full().end());
  std::set<std::pair<qb::ObsId, qb::ObsId>> batch_compl(
      batch.complementary().begin(), batch.complementary().end());

  const core::CubeExplorer explorer(&obs);
  std::set<std::pair<qb::ObsId, qb::ObsId>> explored_full, explored_compl;
  for (qb::ObsId id = 0; id < obs.size(); ++id) {
    for (qb::ObsId o : explorer.ContainedBy(id)) explored_full.insert({id, o});
    for (qb::ObsId o : explorer.Complements(id)) {
      explored_compl.insert({std::min(id, o), std::max(id, o)});
    }
    // Containers is the inverse of ContainedBy.
    for (qb::ObsId o : explorer.Containers(id)) {
      EXPECT_TRUE(batch_full.count({o, id})) << o << "->" << id;
    }
  }
  EXPECT_EQ(explored_full, batch_full);
  EXPECT_EQ(explored_compl, batch_compl);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplorerPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

// --- Slices ---------------------------------------------------------------------

constexpr char kSliceDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .

e:geoScheme a skos:ConceptScheme .
e:World skos:inScheme e:geoScheme .
e:Greece skos:inScheme e:geoScheme ; skos:broader e:World .
e:Athens skos:inScheme e:geoScheme ; skos:broader e:Greece .
e:geo a qb:DimensionProperty ; qb:codeList e:geoScheme .
e:year a qb:DimensionProperty .
e:pop a qb:MeasureProperty .
e:dsd a qb:DataStructureDefinition ; qb:component e:c1, e:c2, e:c3 .
e:c1 qb:dimension e:geo .
e:c2 qb:dimension e:year .
e:c3 qb:measure e:pop .
e:ds a qb:DataSet ; qb:structure e:dsd .

e:o1 a qb:Observation ; qb:dataSet e:ds ; e:geo e:Greece ; e:year e:Y1 ; e:pop 1 .
e:o2 a qb:Observation ; qb:dataSet e:ds ; e:geo e:Athens ; e:year e:Y1 ; e:pop 2 .
e:o3 a qb:Observation ; qb:dataSet e:ds ; e:geo e:Athens ; e:year e:Y2 ; e:pop 3 .

e:sliceY1 a qb:Slice ; e:year e:Y1 ; qb:observation e:o1, e:o2 .
e:sliceAthens a qb:Slice ; e:geo e:Athens ; qb:observation e:o2, e:o3 .
e:sliceGreeceY1 a qb:Slice ; e:geo e:Greece ; e:year e:Y1 ;
  qb:observation e:o1 .
)";

class SliceTest : public ::testing::Test {
 protected:
  SliceTest() {
    EXPECT_TRUE(rdf::ParseTurtle(kSliceDoc, &store_).ok());
    auto corpus = qb::LoadCorpusFromRdf(store_);
    EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
    corpus_ = std::move(*corpus);
  }
  rdf::TripleStore store_;
  qb::Corpus corpus_;
};

TEST_F(SliceTest, LoadsSlicesWithFixedValuesAndMembers) {
  auto slices = qb::LoadSlicesFromRdf(store_, corpus_);
  ASSERT_TRUE(slices.ok()) << slices.status().ToString();
  ASSERT_EQ(slices->size(), 3u);
  const qb::Slice* y1 = nullptr;
  for (const auto& s : *slices) {
    if (s.iri == "http://e/sliceY1") y1 = &s;
  }
  ASSERT_NE(y1, nullptr);
  EXPECT_EQ(y1->fixed.size(), 1u);
  EXPECT_EQ(y1->observations.size(), 2u);
}

TEST_F(SliceTest, ValidatesMembersAgainstFixedValues) {
  auto slices = qb::LoadSlicesFromRdf(store_, corpus_);
  ASSERT_TRUE(slices.ok());
  EXPECT_TRUE(qb::ValidateSlices(*slices, corpus_).empty());

  // Corrupt a slice: claim o3 (Y2) belongs to the Y1 slice.
  for (auto& s : *slices) {
    if (s.iri == "http://e/sliceY1") {
      // o3's id: find by IRI.
      for (qb::ObsId i = 0; i < corpus_.observations->size(); ++i) {
        if (corpus_.observations->obs(i).iri == "http://e/o3") {
          s.observations.push_back(i);
        }
      }
    }
  }
  const auto violations = qb::ValidateSlices(*slices, corpus_);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].observation_iri, "http://e/o3");
}

TEST_F(SliceTest, SliceContainment) {
  auto slices = qb::LoadSlicesFromRdf(store_, corpus_);
  ASSERT_TRUE(slices.ok());
  const qb::Slice *y1 = nullptr, *athens = nullptr, *greece_y1 = nullptr;
  for (const auto& s : *slices) {
    if (s.iri == "http://e/sliceY1") y1 = &s;
    if (s.iri == "http://e/sliceAthens") athens = &s;
    if (s.iri == "http://e/sliceGreeceY1") greece_y1 = &s;
  }
  ASSERT_TRUE(y1 && athens && greece_y1);
  // The Y1 slice (geo free = World) contains the Greece-Y1 slice.
  EXPECT_TRUE(qb::SliceContains(*y1, *greece_y1, corpus_));
  EXPECT_FALSE(qb::SliceContains(*greece_y1, *y1, corpus_));
  // Athens-any-year vs Greece-Y1: neither contains the other.
  EXPECT_FALSE(qb::SliceContains(*athens, *greece_y1, corpus_));
  EXPECT_FALSE(qb::SliceContains(*greece_y1, *athens, corpus_));
  // Reflexive.
  EXPECT_TRUE(qb::SliceContains(*y1, *y1, corpus_));
}

TEST_F(SliceTest, UnknownMemberFails) {
  rdf::TripleStore bad = store_;
  ASSERT_TRUE(rdf::ParseTurtle(
                  "@prefix qb: <http://purl.org/linked-data/cube#> .\n"
                  "@prefix e: <http://e/> .\n"
                  "e:sliceBad a qb:Slice ; qb:observation e:ghost .\n",
                  &bad)
                  .ok());
  EXPECT_TRUE(qb::LoadSlicesFromRdf(bad, corpus_).status().IsParseError());
}

TEST(SliceNoSlicesTest, EmptyGraphYieldsNoSlices) {
  qb::Corpus corpus = MakeRunningExample();
  rdf::TripleStore store;
  ASSERT_TRUE(qb::ExportCorpusToRdf(corpus, &store).ok());
  auto slices = qb::LoadSlicesFromRdf(store, corpus);
  ASSERT_TRUE(slices.ok());
  EXPECT_TRUE(slices->empty());
}

}  // namespace
}  // namespace rdfcube
