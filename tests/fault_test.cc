// Fault-injection framework tests: injector determinism, thread-pool error
// surfacing, crash/drop/duplicate recovery in the distributed simulation,
// and checkpoint/resume identity for the cubeMasking and incremental
// engines.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/baseline.h"
#include "core/checkpoint.h"
#include "core/cube_masking.h"
#include "core/distributed.h"
#include "core/incremental.h"
#include "core/lattice.h"
#include "core/occurrence_matrix.h"
#include "tests/test_corpus.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

struct Snapshot {
  std::set<std::pair<qb::ObsId, qb::ObsId>> full;
  std::set<std::pair<qb::ObsId, qb::ObsId>> compl_pairs;
  std::set<std::tuple<qb::ObsId, qb::ObsId, int>> partial;

  static Snapshot From(const CollectingSink& sink) {
    Snapshot s;
    for (const auto& p : sink.full()) s.full.insert(p);
    for (const auto& p : sink.complementary()) s.compl_pairs.insert(p);
    for (const auto& p : sink.partial()) {
      s.partial.insert({p.a, p.b, static_cast<int>(p.degree * 1000 + 0.5)});
    }
    return s;
  }
  bool operator==(const Snapshot& o) const {
    return full == o.full && compl_pairs == o.compl_pairs &&
           partial == o.partial;
  }
};

Snapshot BaselineSnapshot(const qb::ObservationSet& obs) {
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  BaselineOptions options;
  EXPECT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  return Snapshot::From(sink);
}

std::size_t NumLatticeCubes(const qb::ObservationSet& obs) {
  Lattice lattice;
  for (qb::ObsId i = 0; i < obs.size(); ++i) lattice.AddObservation(obs, i);
  return lattice.num_cubes();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjectorTest, UnarmedPointsNeverFire) {
  FaultInjector injector(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(injector.ShouldFail("p"));
  EXPECT_EQ(injector.calls("p"), 100u);
  EXPECT_EQ(injector.fired("p"), 0u);
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST(FaultInjectorTest, NthCallFiresExactlyOnce) {
  FaultInjector injector(7);
  injector.ArmNthCall("p", 3);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.ShouldFail("p"));
  EXPECT_EQ(fired,
            (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(injector.fired("p"), 1u);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0], (FaultEvent{"p", 3}));
}

TEST(FaultInjectorTest, CallRangeFiresOnEveryCallInRange) {
  FaultInjector injector(7);
  injector.ArmCallRange("p", 2, 4);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.ShouldFail("p"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false, false}));
  EXPECT_EQ(injector.fired("p"), 3u);
}

TEST(FaultInjectorTest, DisarmStopsFiringButKeepsCounting) {
  FaultInjector injector(7);
  injector.ArmProbability("p", 1.0);
  EXPECT_TRUE(injector.ShouldFail("p"));
  injector.Disarm("p");
  EXPECT_FALSE(injector.ShouldFail("p"));
  EXPECT_EQ(injector.calls("p"), 2u);
}

TEST(FaultInjectorTest, SameSeedSameScheduleSameFaultSequence) {
  // The determinism contract: identical seed + arming schedule => identical
  // fault sequence.
  auto drive = [](FaultInjector* injector) {
    injector->ArmProbability("a", 0.3);
    injector->ArmProbability("b", 0.7);
    for (int i = 0; i < 500; ++i) {
      (void)injector->ShouldFail("a");
      (void)injector->ShouldFail("b");
    }
  };
  FaultInjector one(42), two(42);
  drive(&one);
  drive(&two);
  EXPECT_GT(one.total_fired(), 0u);
  EXPECT_EQ(one.log(), two.log());

  // A different seed produces a different sequence (overwhelmingly likely
  // over 1000 draws).
  FaultInjector three(43);
  drive(&three);
  EXPECT_NE(one.log(), three.log());
}

TEST(FaultInjectorTest, InterleavingOtherPointsDoesNotPerturbAStream) {
  // Point "a" must fire at the same call indices whether or not point "x"
  // is also being exercised: each point draws from its own PRNG stream.
  FaultInjector alone(11), mixed(11);
  alone.ArmProbability("a", 0.4);
  mixed.ArmProbability("a", 0.4);
  mixed.ArmProbability("x", 0.9);
  std::vector<uint64_t> fired_alone, fired_mixed;
  for (int i = 0; i < 300; ++i) {
    if (alone.ShouldFail("a")) fired_alone.push_back(alone.calls("a"));
    (void)mixed.ShouldFail("x");
    if (mixed.ShouldFail("a")) fired_mixed.push_back(mixed.calls("a"));
    (void)mixed.ShouldFail("x");
  }
  EXPECT_FALSE(fired_alone.empty());
  EXPECT_EQ(fired_alone, fired_mixed);
}

TEST(FaultInjectorTest, ResetCountersReplaysIdentically) {
  FaultInjector injector(5);
  injector.ArmProbability("p", 0.5);
  for (int i = 0; i < 200; ++i) (void)injector.ShouldFail("p");
  const std::vector<FaultEvent> first = injector.log();
  injector.ResetCounters();
  EXPECT_EQ(injector.total_fired(), 0u);
  for (int i = 0; i < 200; ++i) (void)injector.ShouldFail("p");
  EXPECT_EQ(injector.log(), first);
}

TEST(FaultInjectorTest, ScopedRegistryNestsAndRestores) {
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
  EXPECT_FALSE(FaultTriggered("p"));  // no injector installed: never fires
  FaultInjector outer(1), inner(2);
  outer.ArmNthCall("p", 1);
  inner.ArmNthCall("q", 1);
  {
    ScopedFaultInjection outer_scope(&outer);
    EXPECT_EQ(GlobalFaultInjector(), &outer);
    {
      ScopedFaultInjection inner_scope(&inner);
      EXPECT_EQ(GlobalFaultInjector(), &inner);
      EXPECT_TRUE(FaultTriggered("q"));
    }
    EXPECT_EQ(GlobalFaultInjector(), &outer);
    EXPECT_TRUE(FaultTriggered("p"));
  }
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
}

// --- ThreadPool failure handling ---------------------------------------------

TEST(ThreadPoolFaultTest, ThrowingTaskDoesNotWedgeWait) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  pool.Wait();  // must return despite every task throwing
  const Status error = pool.TakeError();
  EXPECT_TRUE(error.IsInternal()) << error.ToString();
  EXPECT_NE(error.message().find("boom"), std::string::npos);
  // TakeError clears: the pool stays usable.
  EXPECT_TRUE(pool.TakeError().ok());
  pool.Submit([] {});
  pool.Wait();
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolFaultTest, TryParallelForSurfacesFirstError) {
  ThreadPool pool(4);
  const Status st = TryParallelFor(&pool, 1000, [](std::size_t i) {
    if (i == 137) return Status::InvalidArgument("index 137 is cursed");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_NE(st.message().find("137"), std::string::npos);
}

TEST(ThreadPoolFaultTest, TryParallelForOkRunsEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  const Status st = TryParallelFor(&pool, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolFaultTest, TryParallelForSurfacesThrownException) {
  ThreadPool pool(2);
  const Status st = TryParallelFor(&pool, 4, [](std::size_t i) -> Status {
    if (i == 0) throw std::runtime_error("thrown, not returned");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

// --- Distributed recovery ----------------------------------------------------

class DistributedRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributedRecoveryTest, RecoversExactResultUnderInjectedFaults) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 11 + 2, 60);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = BaselineSnapshot(obs);

  FaultInjector injector(GetParam());
  injector.ArmProbability(kFaultWorkerCrash, 0.2);
  injector.ArmProbability(kFaultMessageDrop, 0.1);
  injector.ArmProbability(kFaultMessageDuplicate, 0.1);
  ScopedFaultInjection scope(&injector);

  std::size_t total_crashes = 0;
  for (std::size_t workers : {2u, 3u, 5u}) {
    CollectingSink sink;
    DistributedOptions options;
    options.num_workers = workers;
    DistributedStats stats;
    ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, &stats).ok());
    // Bit-identical to the failure-free relationship set.
    EXPECT_TRUE(Snapshot::From(sink) == base) << "workers=" << workers;
    // The accounting is internally consistent: every crash is answered by
    // either a same-worker retry or a worker death, every drop by a resend.
    EXPECT_EQ(stats.worker_crashes, stats.task_retries + stats.workers_lost);
    EXPECT_EQ(stats.dropped_messages, stats.replayed_messages);
    EXPECT_GE(stats.reassignments, stats.workers_lost);
    if (stats.worker_crashes > 0) {
      EXPECT_GT(stats.simulated_backoff_ms, 0.0);
    }
    total_crashes += stats.worker_crashes;
  }
  // At p=0.2 across three runs the crash point fires essentially always.
  EXPECT_GT(total_crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedRecoveryTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DistributedFaultTest, ExhaustedRetryBudgetReassignsToSurvivor) {
  qb::Corpus corpus = MakeRandomCorpus(3, 40);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = BaselineSnapshot(obs);

  DistributedOptions options;
  options.num_workers = 3;
  // The first task's first max_retries + 1 attempts all crash: its worker
  // exhausts the retry budget, dies, and the partition moves to a survivor.
  FaultInjector injector(1);
  injector.ArmCallRange(kFaultWorkerCrash, 1, options.max_retries_per_task + 1);
  ScopedFaultInjection scope(&injector);

  CollectingSink sink;
  DistributedStats stats;
  ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, &stats).ok());
  EXPECT_TRUE(Snapshot::From(sink) == base);
  EXPECT_EQ(stats.worker_crashes, options.max_retries_per_task + 1);
  EXPECT_EQ(stats.task_retries, options.max_retries_per_task);
  EXPECT_EQ(stats.workers_lost, 1u);
  EXPECT_GE(stats.reassignments, 1u);
  EXPECT_GT(stats.simulated_backoff_ms, 0.0);
}

TEST(DistributedFaultTest, AllWorkersLostIsInternalErrorNotHang) {
  qb::Corpus corpus = MakeRandomCorpus(4, 30);
  const qb::ObservationSet& obs = *corpus.observations;
  FaultInjector injector(1);
  injector.ArmProbability(kFaultWorkerCrash, 1.0);  // every attempt crashes
  ScopedFaultInjection scope(&injector);
  CollectingSink sink;
  DistributedOptions options;
  options.num_workers = 2;
  const Status st = RunDistributedMasking(obs, options, &sink);
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
}

TEST(DistributedFaultTest, DropStormExhaustsResendBudget) {
  qb::Corpus corpus = MakeRandomCorpus(5, 30);
  const qb::ObservationSet& obs = *corpus.observations;
  FaultInjector injector(1);
  injector.ArmProbability(kFaultMessageDrop, 1.0);  // every delivery drops
  ScopedFaultInjection scope(&injector);
  CollectingSink sink;
  DistributedOptions options;
  options.num_workers = 2;
  const Status st = RunDistributedMasking(obs, options, &sink);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

TEST(DistributedFaultTest, DuplicatesAreDiscardedNotDoubleCounted) {
  qb::Corpus corpus = MakeRandomCorpus(6, 50);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = BaselineSnapshot(obs);
  FaultInjector injector(9);
  injector.ArmProbability(kFaultMessageDuplicate, 1.0);
  ScopedFaultInjection scope(&injector);
  CollectingSink sink;
  DistributedOptions options;
  options.num_workers = 3;
  DistributedStats stats;
  ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, &stats).ok());
  EXPECT_TRUE(Snapshot::From(sink) == base);
  EXPECT_GT(stats.duplicate_messages, 0u);
}

TEST(DistributedFaultTest, SameSeedSameOutcome) {
  // The fault-determinism property: same seed + same schedule => identical
  // injected-fault sequence AND identical recovered output and stats.
  qb::Corpus corpus = MakeRandomCorpus(13, 60);
  const qb::ObservationSet& obs = *corpus.observations;
  auto run = [&](uint64_t seed, Snapshot* out, DistributedStats* stats,
                 std::vector<FaultEvent>* log) {
    FaultInjector injector(seed);
    injector.ArmProbability(kFaultWorkerCrash, 0.3);
    injector.ArmProbability(kFaultMessageDrop, 0.2);
    ScopedFaultInjection scope(&injector);
    CollectingSink sink;
    DistributedOptions options;
    options.num_workers = 4;
    ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, stats).ok());
    *out = Snapshot::From(sink);
    *log = injector.log();
  };
  Snapshot s1, s2;
  DistributedStats st1, st2;
  std::vector<FaultEvent> log1, log2;
  run(21, &s1, &st1, &log1);
  run(21, &s2, &st2, &log2);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log2);
  EXPECT_TRUE(s1 == s2);
  EXPECT_EQ(st1.worker_crashes, st2.worker_crashes);
  EXPECT_EQ(st1.task_retries, st2.task_retries);
  EXPECT_EQ(st1.reassignments, st2.reassignments);
  EXPECT_EQ(st1.dropped_messages, st2.dropped_messages);
  EXPECT_EQ(st1.simulated_backoff_ms, st2.simulated_backoff_ms);
}

// --- Masking checkpoint/resume -----------------------------------------------

TEST(CheckpointTest, SerializeRoundTrip) {
  MaskingCheckpoint ckpt;
  ckpt.fingerprint = 0xdeadbeefcafef00dull;
  ckpt.selector_bits = 7;
  ckpt.next_cube = 42;
  ckpt.full = {{1, 2}, {3, 4}};
  ckpt.partial = {{5, 6, 0.5, 3}};
  ckpt.complementary = {{7, 8}};
  auto back = DeserializeMaskingCheckpoint(SerializeMaskingCheckpoint(ckpt));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back->selector_bits, ckpt.selector_bits);
  EXPECT_EQ(back->next_cube, ckpt.next_cube);
  EXPECT_EQ(back->full, ckpt.full);
  ASSERT_EQ(back->partial.size(), 1u);
  EXPECT_EQ(back->partial[0].a, 5u);
  EXPECT_EQ(back->partial[0].b, 6u);
  EXPECT_EQ(back->partial[0].degree, 0.5);
  EXPECT_EQ(back->partial[0].dim_mask, 3u);
  EXPECT_EQ(back->complementary, ckpt.complementary);
}

TEST(CheckpointTest, EveryTruncationIsParseError) {
  MaskingCheckpoint ckpt;
  ckpt.full = {{1, 2}};
  ckpt.partial = {{5, 6, 0.5, 0}};
  ckpt.complementary = {{7, 8}};
  const std::string bytes = SerializeMaskingCheckpoint(ckpt);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DeserializeMaskingCheckpoint(bytes.substr(0, cut));
    ASSERT_FALSE(result.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
  }
  EXPECT_TRUE(
      DeserializeMaskingCheckpoint(bytes + "x").status().IsParseError());
}

TEST(CheckpointTest, CheckpointedRunMatchesPlainRun) {
  qb::Corpus corpus = MakeRandomCorpus(3, 80);
  const qb::ObservationSet& obs = *corpus.observations;
  CollectingSink plain;
  CubeMaskingOptions options;
  ASSERT_TRUE(RunCubeMasking(obs, options, &plain).ok());

  CollectingSink checkpointed;
  CheckpointOptions ckpt;
  ckpt.path = TempPath("masking_plain.ckpt");
  ckpt.interval_cubes = 4;
  CheckpointRunStats run_stats;
  ASSERT_TRUE(RunCubeMaskingCheckpointed(obs, options, ckpt, &checkpointed,
                                         nullptr, &run_stats)
                  .ok());
  EXPECT_FALSE(run_stats.resumed);
  EXPECT_GT(run_stats.checkpoints_written, 0u);
  EXPECT_TRUE(Snapshot::From(checkpointed) == Snapshot::From(plain));
}

TEST(CheckpointTest, KilledRunResumesToIdenticalOutput) {
  qb::Corpus corpus = MakeRandomCorpus(7, 100);
  const qb::ObservationSet& obs = *corpus.observations;
  ASSERT_GE(NumLatticeCubes(obs), 6u) << "corpus too small for the kill point";
  CubeMaskingOptions options;
  CollectingSink uninterrupted;
  ASSERT_TRUE(RunCubeMasking(obs, options, &uninterrupted).ok());

  CheckpointOptions ckpt;
  ckpt.path = TempPath("masking_killed.ckpt");
  ckpt.interval_cubes = 2;

  // Kill the run mid-computation, after the 5th completed outer cube.
  {
    FaultInjector injector(1);
    injector.ArmNthCall(kFaultCheckpointKill, 5);
    ScopedFaultInjection scope(&injector);
    CollectingSink dead;
    const Status st = RunCubeMaskingCheckpointed(obs, options, ckpt, &dead);
    ASSERT_TRUE(st.IsInternal()) << st.ToString();
  }

  // Resume with a fresh sink: the per-type emission sequences must equal an
  // uninterrupted run's exactly (not just as sets).
  CollectingSink resumed;
  CheckpointRunStats run_stats;
  ASSERT_TRUE(RunCubeMaskingCheckpointed(obs, options, ckpt, &resumed,
                                         nullptr, &run_stats)
                  .ok());
  EXPECT_TRUE(run_stats.resumed);
  EXPECT_GT(run_stats.resumed_from, 0u);
  EXPECT_EQ(resumed.full(), uninterrupted.full());
  EXPECT_EQ(resumed.complementary(), uninterrupted.complementary());
  ASSERT_EQ(resumed.partial().size(), uninterrupted.partial().size());
  for (std::size_t i = 0; i < resumed.partial().size(); ++i) {
    EXPECT_EQ(resumed.partial()[i].a, uninterrupted.partial()[i].a);
    EXPECT_EQ(resumed.partial()[i].b, uninterrupted.partial()[i].b);
    EXPECT_EQ(resumed.partial()[i].degree, uninterrupted.partial()[i].degree);
  }
  // delete_on_success removed the snapshot: a re-run starts fresh.
  CollectingSink rerun;
  CheckpointRunStats rerun_stats;
  ASSERT_TRUE(RunCubeMaskingCheckpointed(obs, options, ckpt, &rerun, nullptr,
                                         &rerun_stats)
                  .ok());
  EXPECT_FALSE(rerun_stats.resumed);
}

TEST(CheckpointTest, RepeatedKillsStillConverge) {
  // Kill every run after 3 completed cubes until the computation finally
  // goes to completion; each resume makes monotone progress and the final
  // output is exact.
  qb::Corpus corpus = MakeRandomCorpus(9, 80);
  const qb::ObservationSet& obs = *corpus.observations;
  CubeMaskingOptions options;
  CollectingSink expected;
  ASSERT_TRUE(RunCubeMasking(obs, options, &expected).ok());

  CheckpointOptions ckpt;
  ckpt.path = TempPath("masking_repeated.ckpt");
  ckpt.interval_cubes = 1;

  Status st;
  CollectingSink final_sink;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    FaultInjector injector(1);
    injector.ArmNthCall(kFaultCheckpointKill, 3);
    ScopedFaultInjection scope(&injector);
    CollectingSink sink;
    st = RunCubeMaskingCheckpointed(obs, options, ckpt, &sink);
    if (st.ok()) {
      final_sink = sink;
      break;
    }
    ASSERT_TRUE(st.IsInternal()) << st.ToString();
  }
  ASSERT_TRUE(st.ok()) << "never converged";
  EXPECT_TRUE(Snapshot::From(final_sink) == Snapshot::From(expected));
}

TEST(CheckpointTest, MismatchedCorpusOrSelectorRejected) {
  qb::Corpus corpus = MakeRandomCorpus(4, 60);
  const qb::ObservationSet& obs = *corpus.observations;
  CubeMaskingOptions options;
  CheckpointOptions ckpt;
  ckpt.path = TempPath("masking_mismatch.ckpt");
  ckpt.interval_cubes = 1;
  {
    FaultInjector injector(1);
    injector.ArmNthCall(kFaultCheckpointKill, 2);
    ScopedFaultInjection scope(&injector);
    CollectingSink dead;
    ASSERT_TRUE(
        RunCubeMaskingCheckpointed(obs, options, ckpt, &dead).IsInternal());
  }
  // A snapshot can resume neither against different data...
  qb::Corpus other = MakeRandomCorpus(5, 60);
  CollectingSink sink;
  EXPECT_TRUE(RunCubeMaskingCheckpointed(*other.observations, options, ckpt,
                                         &sink)
                  .IsFailedPrecondition());
  // ...nor against a different relationship selection.
  CubeMaskingOptions full_only;
  full_only.selector = RelationshipSelector::FullOnly();
  EXPECT_TRUE(RunCubeMaskingCheckpointed(obs, full_only, ckpt, &sink)
                  .IsFailedPrecondition());
  std::remove(ckpt.path.c_str());
}

TEST(CheckpointTest, LoadErrors) {
  EXPECT_TRUE(LoadMaskingCheckpoint("/no/such/dir/ckpt").status().IsIOError());
  EXPECT_TRUE(
      LoadMaskingCheckpoint(::testing::TempDir()).status().IsIOError());
}

// --- Incremental engine checkpoint/resume ------------------------------------

TEST(IncrementalCheckpointTest, KilledStreamResumesToIdenticalSets) {
  qb::Corpus corpus = MakeRandomCorpus(15, 80);
  const qb::ObservationSet& obs = *corpus.observations;
  const RelationshipSelector selector;

  // Uninterrupted engine over the full add/retire stream.
  IncrementalEngine uninterrupted(&obs, selector);
  for (qb::ObsId id = 0; id < obs.size(); ++id) {
    ASSERT_TRUE(uninterrupted.OnObservationAdded(id).ok());
    if (id % 11 == 10) {
      ASSERT_TRUE(uninterrupted.OnObservationRetired(id - 5).ok());
    }
  }

  // Interrupted engine: checkpoint every 10 stream steps, "crash" before
  // integrating observation 47 (everything after the last snapshot is lost).
  const std::string path = TempPath("incremental.ckpt");
  qb::ObsId resume_from = 0;  // first stream step the snapshot does not cover
  {
    IncrementalEngine engine(&obs, selector);
    for (qb::ObsId id = 0; id < 47; ++id) {
      ASSERT_TRUE(engine.OnObservationAdded(id).ok());
      if (id % 11 == 10) {
        ASSERT_TRUE(engine.OnObservationRetired(id - 5).ok());
      }
      if (id % 10 == 9) {
        ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
        resume_from = id + 1;
      }
    }
  }
  ASSERT_EQ(resume_from, 40u);

  // Recovery: restore into a fresh engine and replay the stream from the
  // position the snapshot covers (a crash-tolerant driver persists the
  // stream position alongside the snapshot).
  IncrementalEngine resumed(&obs, selector);
  ASSERT_TRUE(resumed.RestoreFromCheckpoint(path).ok());
  EXPECT_TRUE(resumed.OnObservationAdded(0).IsAlreadyExists());
  for (qb::ObsId id = resume_from; id < obs.size(); ++id) {
    ASSERT_TRUE(resumed.OnObservationAdded(id).ok());
    if (id % 11 == 10) {
      ASSERT_TRUE(resumed.OnObservationRetired(id - 5).ok());
    }
  }
  EXPECT_EQ(resumed.num_full(), uninterrupted.num_full());
  EXPECT_EQ(resumed.num_partial(), uninterrupted.num_partial());
  EXPECT_EQ(resumed.num_complementary(), uninterrupted.num_complementary());
  CollectingSink a, b;
  uninterrupted.Export(&a);
  resumed.Export(&b);
  EXPECT_TRUE(Snapshot::From(a) == Snapshot::From(b));
  std::remove(path.c_str());
}

TEST(IncrementalCheckpointTest, StateRoundTripAndValidation) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  IncrementalEngine engine(&obs, RelationshipSelector::All());
  for (qb::ObsId id = 0; id < obs.size(); ++id) {
    ASSERT_TRUE(engine.OnObservationAdded(id).ok());
  }
  const std::string bytes = engine.SerializeState();
  // Serialization is deterministic: the same state gives the same bytes.
  EXPECT_EQ(engine.SerializeState(), bytes);

  // Restore into a fresh engine: the sets match.
  IncrementalEngine restored(&obs, RelationshipSelector::All());
  ASSERT_TRUE(restored.RestoreState(bytes).ok());
  EXPECT_EQ(restored.num_full(), engine.num_full());
  EXPECT_EQ(restored.num_partial(), engine.num_partial());
  EXPECT_EQ(restored.num_complementary(), engine.num_complementary());
  CollectingSink a, b;
  engine.Export(&a);
  restored.Export(&b);
  EXPECT_TRUE(Snapshot::From(a) == Snapshot::From(b));

  // Retirement still works after a restore (the partner index was rebuilt):
  // the post-retire sets equal a from-scratch engine that never saw id 0.
  ASSERT_TRUE(restored.OnObservationRetired(0).ok());
  IncrementalEngine reference(&obs, RelationshipSelector::All());
  for (qb::ObsId id = 1; id < obs.size(); ++id) {
    ASSERT_TRUE(reference.OnObservationAdded(id).ok());
  }
  CollectingSink c, d;
  restored.Export(&c);
  reference.Export(&d);
  EXPECT_TRUE(Snapshot::From(c) == Snapshot::From(d));

  // A non-fresh engine refuses to restore.
  EXPECT_TRUE(restored.RestoreState(bytes).IsFailedPrecondition());
  // A selector mismatch refuses to restore.
  IncrementalEngine full_only(&obs, RelationshipSelector::FullOnly());
  EXPECT_TRUE(full_only.RestoreState(bytes).IsFailedPrecondition());
  // Every strict truncation is a ParseError, never a crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    IncrementalEngine fresh(&obs, RelationshipSelector::All());
    const Status st = fresh.RestoreState(bytes.substr(0, cut));
    ASSERT_FALSE(st.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(st.IsParseError()) << st.ToString();
  }
  // Trailing garbage is rejected too.
  IncrementalEngine fresh(&obs, RelationshipSelector::All());
  EXPECT_TRUE(fresh.RestoreState(bytes + "x").IsParseError());
}

TEST(IncrementalCheckpointTest, MissingCheckpointFileIsIOError) {
  qb::Corpus corpus = MakeRunningExample();
  IncrementalEngine engine(corpus.observations.get(),
                           RelationshipSelector::All());
  EXPECT_TRUE(engine.RestoreFromCheckpoint("/no/such/dir/ckpt").IsIOError());
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
