// Unit + property tests for src/hierarchy: code lists, interval-label
// ancestry, levels, SKOS loading (including malformed schemes).

#include <gtest/gtest.h>

#include <vector>

#include "hierarchy/code_list.h"
#include "hierarchy/skos_loader.h"
#include "rdf/turtle_parser.h"
#include "util/random.h"

namespace rdfcube {
namespace hierarchy {
namespace {

CodeList MakeGeo() {
  CodeList list("World");
  auto eu = list.Add("Europe", list.root());
  auto am = list.Add("America", list.root());
  auto gr = list.Add("Greece", *eu);
  auto it = list.Add("Italy", *eu);
  list.Add("Athens", *gr).value();
  list.Add("Ioannina", *gr).value();
  list.Add("Rome", *it).value();
  list.Add("US", *am).value();
  EXPECT_TRUE(list.Finalize().ok());
  return list;
}

TEST(CodeListTest, BasicStructure) {
  CodeList list = MakeGeo();
  EXPECT_EQ(list.size(), 9u);
  EXPECT_EQ(list.root(), 0u);
  EXPECT_EQ(list.name(list.root()), "World");
  EXPECT_EQ(list.max_level(), 3u);
}

TEST(CodeListTest, LevelsAreDepths) {
  CodeList list = MakeGeo();
  EXPECT_EQ(list.level(list.root()), 0u);
  EXPECT_EQ(list.level(*list.Find("Europe")), 1u);
  EXPECT_EQ(list.level(*list.Find("Greece")), 2u);
  EXPECT_EQ(list.level(*list.Find("Athens")), 3u);
}

TEST(CodeListTest, AncestryIsReflexive) {
  CodeList list = MakeGeo();
  for (CodeId c = 0; c < list.size(); ++c) {
    EXPECT_TRUE(list.IsAncestorOrSelf(c, c));
    EXPECT_FALSE(list.IsStrictAncestor(c, c));
  }
}

TEST(CodeListTest, AncestryFollowsTree) {
  CodeList list = MakeGeo();
  const CodeId world = list.root();
  const CodeId europe = *list.Find("Europe");
  const CodeId greece = *list.Find("Greece");
  const CodeId athens = *list.Find("Athens");
  const CodeId rome = *list.Find("Rome");
  const CodeId us = *list.Find("US");
  EXPECT_TRUE(list.IsAncestorOrSelf(world, athens));
  EXPECT_TRUE(list.IsAncestorOrSelf(europe, athens));
  EXPECT_TRUE(list.IsAncestorOrSelf(greece, athens));
  EXPECT_FALSE(list.IsAncestorOrSelf(athens, greece));
  EXPECT_FALSE(list.IsAncestorOrSelf(greece, rome));
  EXPECT_FALSE(list.IsAncestorOrSelf(rome, greece));
  EXPECT_FALSE(list.IsAncestorOrSelf(us, athens));
  EXPECT_TRUE(list.IsStrictAncestor(world, us));
}

TEST(CodeListTest, AncestorsOrSelfChain) {
  CodeList list = MakeGeo();
  const auto chain = list.AncestorsOrSelf(*list.Find("Athens"));
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(list.name(chain[0]), "Athens");
  EXPECT_EQ(list.name(chain[1]), "Greece");
  EXPECT_EQ(list.name(chain[2]), "Europe");
  EXPECT_EQ(list.name(chain[3]), "World");
}

TEST(CodeListTest, ChildrenLists) {
  CodeList list = MakeGeo();
  EXPECT_EQ(list.children(list.root()).size(), 2u);
  EXPECT_EQ(list.children(*list.Find("Greece")).size(), 2u);
  EXPECT_TRUE(list.children(*list.Find("Athens")).empty());
}

TEST(CodeListTest, ReAddSameParentIsNoOp) {
  CodeList list("R");
  auto a = list.Add("A", 0);
  auto a2 = list.Add("A", 0);
  ASSERT_TRUE(a.ok() && a2.ok());
  EXPECT_EQ(*a, *a2);
  EXPECT_EQ(list.size(), 2u);
}

TEST(CodeListTest, ReAddDifferentParentFails) {
  CodeList list("R");
  auto a = list.Add("A", 0);
  list.Add("B", 0).value();
  auto conflict = list.Add("A", *list.Find("B"));
  EXPECT_FALSE(conflict.ok());
  EXPECT_TRUE(conflict.status().IsInvalidArgument());
  (void)a;
}

TEST(CodeListTest, AddWithBogusParentFails) {
  CodeList list("R");
  EXPECT_TRUE(list.Add("A", 99).status().IsInvalidArgument());
}

TEST(CodeListTest, FindMissing) {
  CodeList list("R");
  EXPECT_FALSE(list.Find("nope").has_value());
}

TEST(CodeListTest, RefinalizeAfterGrowth) {
  CodeList list("R");
  auto a = list.Add("A", 0);
  ASSERT_TRUE(list.Finalize().ok());
  EXPECT_TRUE(list.finalized());
  auto b = list.Add("B", *a);
  EXPECT_FALSE(list.finalized());
  ASSERT_TRUE(list.Finalize().ok());
  EXPECT_TRUE(list.IsAncestorOrSelf(*a, *b));
  EXPECT_EQ(list.level(*b), 2u);
}

// Property: interval ancestry agrees with parent-chain walking on random
// trees of assorted shapes.
class CodeListPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodeListPropertyTest, IntervalAncestryMatchesChainWalk) {
  Rng rng(GetParam());
  CodeList list("root");
  std::vector<CodeId> all = {0};
  const std::size_t n = 5 + rng.Uniform(60);
  for (std::size_t i = 0; i < n; ++i) {
    const CodeId parent = all[rng.Uniform(all.size())];
    auto added = list.Add("c" + std::to_string(i), parent);
    ASSERT_TRUE(added.ok());
    all.push_back(*added);
  }
  ASSERT_TRUE(list.Finalize().ok());
  auto chain_has = [&](CodeId a, CodeId b) {
    for (CodeId cur : list.AncestorsOrSelf(b)) {
      if (cur == a) return true;
    }
    return false;
  };
  for (CodeId a : all) {
    for (CodeId b : all) {
      EXPECT_EQ(list.IsAncestorOrSelf(a, b), chain_has(a, b))
          << "a=" << a << " b=" << b;
    }
  }
  // Levels equal chain length - 1.
  for (CodeId c : all) {
    EXPECT_EQ(list.level(c), list.AncestorsOrSelf(c).size() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodeListPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// --- SKOS loading ----------------------------------------------------------------

constexpr char kScheme[] = "http://e/scheme";

rdf::TripleStore ParseOrDie(const std::string& ttl) {
  rdf::TripleStore store;
  const Status st = rdf::ParseTurtle(ttl, &store);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

TEST(SkosLoaderTest, SingleTopConceptBecomesRoot) {
  auto store = ParseOrDie(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:World skos:inScheme e:scheme .
e:Europe skos:inScheme e:scheme ; skos:broader e:World .
e:Greece skos:inScheme e:scheme ; skos:broader e:Europe .
)");
  auto list = hierarchy::LoadCodeListFromSkos(store, kScheme);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list->size(), 3u);
  EXPECT_EQ(list->name(list->root()), "http://e/World");
  EXPECT_EQ(list->level(*list->Find("http://e/Greece")), 2u);
}

TEST(SkosLoaderTest, MultipleTopsGetSyntheticRoot) {
  auto store = ParseOrDie(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:A skos:inScheme e:scheme .
e:B skos:inScheme e:scheme .
e:A1 skos:inScheme e:scheme ; skos:broader e:A .
)");
  auto list = hierarchy::LoadCodeListFromSkos(store, kScheme);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->size(), 4u);  // synthetic root + A + B + A1
  EXPECT_EQ(list->name(list->root()), std::string(kScheme) + "/ALL");
  EXPECT_EQ(list->level(*list->Find("http://e/A1")), 2u);
}

TEST(SkosLoaderTest, MissingSchemeFails) {
  auto store = ParseOrDie("@prefix e: <http://e/> . e:x e:p e:y .");
  EXPECT_TRUE(
      hierarchy::LoadCodeListFromSkos(store, kScheme).status().IsNotFound());
}

TEST(SkosLoaderTest, CycleFails) {
  auto store = ParseOrDie(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:Top skos:inScheme e:scheme .
e:A skos:inScheme e:scheme ; skos:broader e:B .
e:B skos:inScheme e:scheme ; skos:broader e:A .
)");
  auto list = hierarchy::LoadCodeListFromSkos(store, kScheme);
  ASSERT_FALSE(list.ok());
  EXPECT_TRUE(list.status().IsParseError());
}

TEST(SkosLoaderTest, MultiParentFails) {
  auto store = ParseOrDie(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:R skos:inScheme e:scheme .
e:S skos:inScheme e:scheme .
e:X skos:inScheme e:scheme ; skos:broader e:R ; skos:broader e:S .
)");
  EXPECT_TRUE(
      hierarchy::LoadCodeListFromSkos(store, kScheme).status().IsParseError());
}

TEST(SkosLoaderTest, BroaderOutsideSchemeFails) {
  auto store = ParseOrDie(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:R skos:inScheme e:scheme .
e:X skos:inScheme e:scheme ; skos:broader e:Elsewhere .
)");
  EXPECT_TRUE(
      hierarchy::LoadCodeListFromSkos(store, kScheme).status().IsParseError());
}

}  // namespace
}  // namespace hierarchy
}  // namespace rdfcube
