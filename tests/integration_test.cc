// End-to-end integration tests: the full pipeline Turtle -> triple store ->
// QB load -> relationship engines, plus export/reload equivalence and
// native-vs-comparison-engine cross-checks on generated corpora.

#include <gtest/gtest.h>

#include <set>

#include "core/baseline.h"
#include "core/cube_masking.h"
#include "core/occurrence_matrix.h"
#include "datagen/realworld.h"
#include "qb/exporter.h"
#include "qb/loader.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "rules/paper_rules.h"
#include "sparql/paper_queries.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace {

using core::BaselineOptions;
using core::CollectingSink;
using core::CountingSink;
using core::OccurrenceMatrix;

// Counts of (full, partial, compl) from a baseline run.
struct Counts {
  std::size_t full, partial, compl_count;
  bool operator==(const Counts& o) const {
    return full == o.full && partial == o.partial &&
           compl_count == o.compl_count;
  }
};

Counts BaselineCounts(const qb::ObservationSet& obs) {
  const OccurrenceMatrix om(obs);
  CountingSink sink;
  BaselineOptions options;
  EXPECT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  return {sink.full(), sink.partial(), sink.complementary()};
}

TEST(IntegrationTest, TurtleToRelationshipsEndToEnd) {
  // A hand-written two-source cube document, through the whole pipeline.
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .

e:geoScheme a skos:ConceptScheme .
e:World skos:inScheme e:geoScheme .
e:Greece skos:inScheme e:geoScheme ; skos:broader e:World .
e:Athens skos:inScheme e:geoScheme ; skos:broader e:Greece .
e:geo a qb:DimensionProperty ; qb:codeList e:geoScheme .
e:pop a qb:MeasureProperty .
e:unemp a qb:MeasureProperty .

e:dsd1 a qb:DataStructureDefinition ; qb:component e:c11, e:c12 .
e:c11 qb:dimension e:geo .
e:c12 qb:measure e:pop .
e:ds1 a qb:DataSet ; qb:structure e:dsd1 .

e:dsd2 a qb:DataStructureDefinition ; qb:component e:c21, e:c22 .
e:c21 qb:dimension e:geo .
e:c22 qb:measure e:unemp .
e:ds2 a qb:DataSet ; qb:structure e:dsd2 .

e:o1 a qb:Observation ; qb:dataSet e:ds1 ; e:geo e:Greece ; e:pop 10700000 .
e:o2 a qb:Observation ; qb:dataSet e:ds1 ; e:geo e:Athens ; e:pop 3100000 .
e:o3 a qb:Observation ; qb:dataSet e:ds2 ; e:geo e:Athens ; e:unemp 22.5 .
e:o4 a qb:Observation ; qb:dataSet e:ds2 ; e:geo e:Greece ; e:unemp 26.1 .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  auto corpus = qb::LoadCorpusFromRdf(store);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();

  const qb::ObservationSet& obs = *corpus->observations;
  ASSERT_EQ(obs.size(), 4u);
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  ASSERT_TRUE(RunBaseline(obs, om, BaselineOptions{}, &sink).ok());

  // Resolve loader-assigned ids by IRI.
  auto id_of = [&](const std::string& iri) -> qb::ObsId {
    for (qb::ObsId i = 0; i < obs.size(); ++i) {
      if (obs.obs(i).iri == iri) return i;
    }
    ADD_FAILURE() << "missing " << iri;
    return 0;
  };
  const qb::ObsId o1 = id_of("http://e/o1");
  const qb::ObsId o2 = id_of("http://e/o2");
  const qb::ObsId o3 = id_of("http://e/o3");
  const qb::ObsId o4 = id_of("http://e/o4");

  std::set<std::pair<qb::ObsId, qb::ObsId>> full(sink.full().begin(),
                                                 sink.full().end());
  // Within ds1: Greece contains Athens (shared measure pop).
  EXPECT_TRUE(full.count({o1, o2}));
  // Within ds2: Greece contains Athens (shared measure unemp).
  EXPECT_TRUE(full.count({o4, o3}));
  // Cross-dataset containment is blocked by the measure gate.
  EXPECT_FALSE(full.count({o1, o3}));
  EXPECT_FALSE(full.count({o4, o2}));

  std::set<std::pair<qb::ObsId, qb::ObsId>> compl_pairs(
      sink.complementary().begin(), sink.complementary().end());
  // Equal coordinates across datasets: (o2,o3) Athens, (o1,o4) Greece.
  EXPECT_TRUE(compl_pairs.count({std::min(o2, o3), std::max(o2, o3)}));
  EXPECT_TRUE(compl_pairs.count({std::min(o1, o4), std::max(o1, o4)}));
  EXPECT_EQ(compl_pairs.size(), 2u);
}

TEST(IntegrationTest, ExportReloadPreservesRelationshipCounts) {
  // Corpus -> RDF -> N-Triples text -> parse -> load -> identical counts.
  qb::Corpus original = testutil::MakeRunningExample();
  const Counts before = BaselineCounts(*original.observations);

  rdf::TripleStore exported;
  ASSERT_TRUE(qb::ExportCorpusToRdf(original, &exported).ok());
  const std::string text = rdf::WriteNTriples(exported);
  rdf::TripleStore reparsed;
  ASSERT_TRUE(rdf::ParseTurtle(text, &reparsed).ok());
  auto reloaded = qb::LoadCorpusFromRdf(reparsed);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const Counts after = BaselineCounts(*reloaded->observations);
  EXPECT_EQ(before, after);
}

TEST(IntegrationTest, GeneratedCorpusExportReloadRoundTrip) {
  auto corpus = datagen::GenerateRealWorldPrefix(400, 3);
  ASSERT_TRUE(corpus.ok());
  const Counts before = BaselineCounts(*corpus->observations);
  rdf::TripleStore exported;
  ASSERT_TRUE(qb::ExportCorpusToRdf(*corpus, &exported).ok());
  auto reloaded = qb::LoadCorpusFromRdf(exported);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->observations->size(), corpus->observations->size());
  const Counts after = BaselineCounts(*reloaded->observations);
  EXPECT_EQ(before, after);
}

TEST(IntegrationTest, NativeAndComparisonEnginesAgreeOnStrictFullPairs) {
  // On the running example, native full containment restricted to pairs
  // with >= 1 strictly-deeper dimension AND relaxed of the measure gate is
  // exactly what the SPARQL/rule engines derive. Cross-check via the native
  // baseline with the measure gate manually disabled through dimension-only
  // analysis.
  qb::Corpus corpus = testutil::MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;

  // Native dimensional-full pairs with a strict dimension.
  std::set<std::pair<std::string, std::string>> native;
  const OccurrenceMatrix om(obs);
  for (qb::ObsId a = 0; a < obs.size(); ++a) {
    for (qb::ObsId b = 0; b < obs.size(); ++b) {
      if (a == b || !om.ContainsAll(a, b)) continue;
      bool strict = false;
      for (qb::DimId d = 0; d < obs.space().num_dimensions(); ++d) {
        if (obs.ValueOrRoot(a, d) != obs.ValueOrRoot(b, d)) strict = true;
      }
      // The comparison engines can only see dimensions materialized in RDF:
      // strictness via root-padding of an absent dimension is invisible to
      // them, so restrict to pairs whose strict dimension is materialized.
      bool visible_strict = false;
      for (qb::DimId d = 0; d < obs.space().num_dimensions(); ++d) {
        if (obs.obs(a).dims[d] == hierarchy::kNoCode ||
            obs.obs(b).dims[d] == hierarchy::kNoCode) {
          continue;
        }
        const auto va = obs.ValueOrRoot(a, d);
        const auto vb = obs.ValueOrRoot(b, d);
        if (va != vb && obs.space().code_list(d).IsAncestorOrSelf(va, vb)) {
          visible_strict = true;
        }
      }
      if (strict && visible_strict) {
        native.insert({"urn:rdfcube:obs:" + obs.obs(a).iri,
                       "urn:rdfcube:obs:" + obs.obs(b).iri});
      }
    }
  }

  rdf::TripleStore exported;
  ASSERT_TRUE(qb::ExportCorpusToRdf(corpus, &exported).ok());
  auto sparql_result = sparql::RunRelationshipQuery(
      exported, sparql::FullContainmentQuery(), Deadline(60.0));
  ASSERT_TRUE(sparql_result.ok());
  const std::set<std::pair<std::string, std::string>> from_sparql(
      sparql_result->pairs.begin(), sparql_result->pairs.end());
  EXPECT_EQ(from_sparql, native);
}

TEST(IntegrationTest, MaskingMatchesBaselineOnGeneratedCorpus) {
  auto corpus = datagen::GenerateRealWorldPrefix(600, 11);
  ASSERT_TRUE(corpus.ok());
  const qb::ObservationSet& obs = *corpus->observations;
  const Counts base = BaselineCounts(obs);
  CountingSink masked;
  core::CubeMaskingOptions options;
  ASSERT_TRUE(core::RunCubeMasking(obs, options, &masked).ok());
  EXPECT_EQ(masked.full(), base.full);
  EXPECT_EQ(masked.partial(), base.partial);
  EXPECT_EQ(masked.complementary(), base.compl_count);
}

}  // namespace
}  // namespace rdfcube
